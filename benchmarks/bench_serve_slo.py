#!/usr/bin/env python
"""Multi-tenant serving SLO benchmark: fairness, overload, failover.

The cluster plane's operational claims, measured end to end on wall
clock with three resident SCALE-9 tenant graphs (one per service
class) behind two replicas:

1. **Solo baselines** — each tenant's sub-stream of the shared seeded
   diurnal workload runs alone; its p99 must sit inside its class SLO
   threshold (gold 250 ms, silver 500 ms, bronze 1 s — generous bounds,
   the solo p99 is typically well under 100 ms).
2. **Fairness** — the full workload runs with the gold tenant offered
   ~10x every other tenant's load (Pareto-style popularity pinned to
   10:1:1).  Deficit round-robin must keep each cold tenant's p99
   within 1.5x its solo baseline (plus a 50 ms noise floor).
3. **2x overload** — the same stream is offered at twice the measured
   fairness-phase throughput with tiny admission quotas and zero client
   retries.  Every query must terminate as a response or a *typed*
   shed: zero dropped-without-typed-shed responses, and the overload
   must actually shed (sheds > 0), or the phase didn't test anything.
4. **Failover drill** — a replica is killed mid-run; every response
   must still arrive and be bit-identical to a sequential run of the
   same root on the same tenant graph, with exactly one recorded
   failover.

Modes::

    PYTHONPATH=src python benchmarks/bench_serve_slo.py           # run + write baseline
    PYTHONPATH=src python benchmarks/bench_serve_slo.py --check benchmarks/results/BENCH_serve_slo.json

``--check`` re-runs everything, re-evaluates every gate, and
additionally drift-gates the *deterministic* workload fields against
the committed artifact — per-tenant query counts, popularity shares,
and the root-stream checksum are bit-reproducible from the seed, so
any drift means the generator changed; regenerate the baseline
deliberately, not accidentally.  Wall-clock latencies are recorded in
the artifact for tracking but never drift-gated (CI machines vary).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.analysis.reporting import ascii_table  # noqa: E402
from repro.cluster import (  # noqa: E402
    TenantSpec,
    build_registry,
    run_cluster_session,
)
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.serve.workload import make_diurnal_workload  # noqa: E402

SCALE = 9
ROWS = COLS = 2
SEED = 7
REPLICAS = 2
#: One tenant per service class; gold is the hot tenant.
TENANTS = (("hot", "gold"), ("mid", "silver"), ("cold", "bronze"))
#: Pinned popularity: the gold tenant offers ~10x each cold tenant.
POPULARITY = {"hot": 10.0, "mid": 1.0, "cold": 1.0}
FAIR_QUERIES = 480
FAIR_DURATION = 0.5
#: Class SLO bounds gating the solo p99 (seconds).
CLASS_P99_BOUND = {"gold": 0.25, "silver": 0.5, "bronze": 1.0}
#: Fairness gate: cold p99 <= FAIR_RATIO x solo p99 + FAIR_FLOOR.
FAIR_RATIO = 1.5
FAIR_FLOOR = 0.05
#: Overload phase: offered rate multiple and per-tenant quota.
OVERLOAD_X = 2.0
OVERLOAD_QUOTA = 8
#: Allowed drift of popularity floats vs the committed baseline.
SHARE_TOLERANCE = 1e-9

RESULTS = Path(__file__).parent / "results" / "BENCH_serve_slo.json"


def _specs(quota: int | None = None) -> list[TenantSpec]:
    return [
        TenantSpec(
            tenant_id=name, scale=SCALE, rows=ROWS, cols=COLS,
            seed=SEED + i, slo_class=cls,
            quota=quota,
        )
        for i, (name, cls) in enumerate(TENANTS)
    ]


def _workload(registry, *, hot_friendly: bool = True):
    return make_diurnal_workload(
        registry.degrees_map(), FAIR_QUERIES, seed=SEED,
        duration_seconds=FAIR_DURATION,
        popularity=POPULARITY,
        hot_fraction=0.8 if hot_friendly else 0.0,
        hot_set_size=8,
    )


def _checksum(workload) -> str:
    """Deterministic digest of the query stream (tenants, roots, and
    arrival-time bits)."""
    h = hashlib.sha256()
    for q in workload.queries:
        h.update(f"{q.tenant}:{q.root};".encode())
    h.update(
        np.array(
            [q.arrival_seconds for q in workload.queries], dtype=np.float64
        ).tobytes()
    )
    return h.hexdigest()


def _staged_p99(metrics, tenant: str) -> dict:
    """Per-stage p99 from the tenant's cumulative latency histograms
    (quantized to bucket bounds; informational)."""
    return {
        labels["stage"]: hist.percentile(0.99)
        for labels, hist in metrics.samples("cluster_latency_seconds")
        if labels.get("tenant") == tenant and hist.count
    }


def _session(workload, *, quota=None, replicas=REPLICAS, expected=None,
             time_scale=1.0, max_shed_retries=10_000, kill_at=None):
    registry = build_registry(_specs(quota))
    metrics = MetricsRegistry()
    t0 = time.perf_counter()
    report, cluster = run_cluster_session(
        registry, workload,
        replicas=replicas, expected=expected, time_scale=time_scale,
        max_shed_retries=max_shed_retries, kill_at=kill_at,
        metrics=metrics,
    )
    elapsed = time.perf_counter() - t0
    return report, cluster, registry, metrics, elapsed


def run_bench() -> dict:
    failures: list[str] = []
    base_registry = build_registry(_specs())
    workload = _workload(base_registry)

    # ------------------------------------------------------------- solo
    solo = {}
    for tenant in base_registry:
        tid = tenant.tenant_id
        sub = workload.for_tenant(tid)
        report, cluster, _, metrics, elapsed = _session(sub)
        p99 = report.latency_percentile(99)
        bound = CLASS_P99_BOUND[tenant.spec.slo_class]
        solo[tid] = dict(
            slo_class=tenant.spec.slo_class,
            queries=sub.num_queries,
            served=report.served,
            p50_seconds=report.latency_percentile(50),
            p99_seconds=p99,
            p99_bound_seconds=bound,
            staged_p99_seconds=_staged_p99(metrics, tid),
            elapsed_seconds=elapsed,
        )
        if report.served != sub.num_queries:
            failures.append(f"solo {tid}: {sub.num_queries - report.served} "
                            "queries not served")
        if not p99 < bound:
            failures.append(f"solo {tid}: p99 {p99:.3f}s over class bound "
                            f"{bound:g}s")

    # --------------------------------------------------------- fairness
    report, cluster, registry, metrics, fair_elapsed = _session(workload)
    per = report.per_tenant()
    fairness = dict(hot_tenant="hot", cold={}, elapsed_seconds=fair_elapsed)
    if report.accounted != workload.num_queries:
        failures.append(
            f"fairness: {workload.num_queries - report.accounted} "
            "silent drops"
        )
    for tid in ("mid", "cold"):
        sub = per.get(tid)
        p99 = sub.latency_percentile(99) if sub else float("nan")
        solo_p99 = solo[tid]["p99_seconds"]
        limit = FAIR_RATIO * solo_p99 + FAIR_FLOOR
        fairness["cold"][tid] = dict(
            p99_seconds=p99,
            solo_p99_seconds=solo_p99,
            limit_seconds=limit,
            ratio_vs_solo=p99 / solo_p99 if solo_p99 else float("nan"),
            staged_p99_seconds=_staged_p99(metrics, tid),
        )
        if not p99 <= limit:
            failures.append(
                f"fairness {tid}: p99 {p99:.3f}s past "
                f"{FAIR_RATIO:g}x solo + {FAIR_FLOOR:g}s = {limit:.3f}s "
                "while the hot tenant saturated"
            )

    # --------------------------------------------------------- overload
    # Offer the traversal-heavy stream at 2x the measured fairness
    # throughput, with tiny quotas and no client retries: every query
    # must end served, failed-typed, or shed-typed — never dropped.
    heavy = _workload(base_registry, hot_friendly=False)
    rate = workload.num_queries / max(fair_elapsed, 1e-9)
    time_scale = (heavy.num_queries / (OVERLOAD_X * rate)) / max(
        heavy.duration_seconds, 1e-9
    )
    report, cluster, _, metrics, over_elapsed = _session(
        heavy, quota=OVERLOAD_QUOTA, time_scale=time_scale,
        max_shed_retries=0,
    )
    silent = heavy.num_queries - report.accounted
    overload = dict(
        offered_x=OVERLOAD_X,
        queries=heavy.num_queries,
        time_scale=time_scale,
        served=report.served,
        typed_sheds=report.typed_sheds,
        failed=report.failed,
        silent_drops=silent,
        quota=OVERLOAD_QUOTA,
        elapsed_seconds=over_elapsed,
        per_class_p99_seconds={
            tid: sub.latency_percentile(99)
            for tid, sub in report.per_tenant().items()
        },
    )
    if silent:
        failures.append(f"overload: {silent} dropped without a typed shed")
    if report.failed:
        failures.append(f"overload: {report.failed} typed failures "
                        "(expected none: sheds only)")
    if report.typed_sheds == 0:
        failures.append("overload: no typed sheds — 2x overload did not "
                        "stress admission, phase is vacuous")

    # --------------------------------------------------------- failover
    expected = {}
    for tenant in base_registry:
        mine = sorted(
            {q.root for q in workload.queries
             if q.tenant == tenant.tenant_id}
        )
        expected[tenant.tenant_id] = {
            r: tenant.sequential.run(r).parent for r in mine
        }
    report, cluster, _, metrics, drill_elapsed = _session(
        workload, expected=expected,
        kill_at=("r0", workload.num_queries // 2),
    )
    downs = len(cluster.replica_ids) - len(cluster.live_replicas)
    failover = dict(
        killed="r0",
        replicas=REPLICAS,
        replicas_down=downs,
        served=report.served,
        validated=report.validated,
        wrong_parents=report.wrong_parents,
        failover_replays=cluster.stats.replays,
        elapsed_seconds=drill_elapsed,
    )
    if report.served != workload.num_queries:
        failures.append(
            f"failover: {workload.num_queries - report.served} queries "
            "lost across the replica kill"
        )
    if report.wrong_parents:
        failures.append(f"failover: {report.wrong_parents} parents differ "
                        "from the sequential reference after re-route")
    if downs != 1:
        failures.append(f"failover: expected exactly 1 replica down, "
                        f"found {downs}")

    return dict(
        schema="bench.serve_slo.v1",
        config=dict(
            scale=SCALE, mesh=f"{ROWS}x{COLS}", seed=SEED,
            replicas=REPLICAS,
            tenants={name: cls for name, cls in TENANTS},
            popularity=POPULARITY,
            queries=FAIR_QUERIES, duration_seconds=FAIR_DURATION,
            fair_ratio=FAIR_RATIO, fair_floor_seconds=FAIR_FLOOR,
            overload_x=OVERLOAD_X, overload_quota=OVERLOAD_QUOTA,
        ),
        workload=dict(
            num_queries=workload.num_queries,
            per_tenant_counts=workload.per_tenant_counts(),
            popularity=workload.popularity,
            checksum=_checksum(workload),
            heavy_checksum=_checksum(heavy),
        ),
        solo=solo,
        fairness=fairness,
        overload=overload,
        failover=failover,
        gate=dict(passed=not failures, failures=failures),
    )


def render(result: dict) -> str:
    rows = []
    for tid, doc in result["solo"].items():
        fair = result["fairness"]["cold"].get(tid)
        rows.append([
            tid, doc["slo_class"], doc["queries"],
            f"{doc['p99_seconds'] * 1e3:.1f}ms",
            f"{doc['p99_bound_seconds'] * 1e3:g}ms",
            f"{fair['p99_seconds'] * 1e3:.1f}ms" if fair else "(hot)",
            f"{fair['limit_seconds'] * 1e3:.1f}ms" if fair else "-",
        ])
    table = ascii_table(
        ["tenant", "class", "queries", "solo p99", "class bound",
         "fair p99", "fair limit"],
        rows,
        title=f"per-tenant SLOs ({result['config']['queries']} queries, "
              f"hot tenant at ~10x):",
    )
    o = result["overload"]
    f = result["failover"]
    return "\n".join([
        table,
        f"overload {o['offered_x']:g}x: {o['served']} served, "
        f"{o['typed_sheds']} typed sheds, {o['failed']} failed, "
        f"{o['silent_drops']} silent drops (quota {o['quota']})",
        f"failover: replica {f['killed']} killed mid-run -> "
        f"{f['served']} served, {f['wrong_parents']} wrong parents, "
        f"{f['failover_replays']} failover replays",
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="re-run and gate against this committed artifact",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=str(RESULTS),
        help="artifact destination when not in --check mode",
    )
    args = parser.parse_args(argv)

    result = run_bench()
    print(render(result))
    ok = result["gate"]["passed"]
    for failure in result["gate"]["failures"]:
        print(f"FAIL: {failure}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        base_wl, new_wl = baseline["workload"], result["workload"]
        for key in ("num_queries", "per_tenant_counts", "checksum",
                    "heavy_checksum"):
            if base_wl[key] != new_wl[key]:
                print(f"FAIL: workload.{key} drifted from baseline "
                      f"({base_wl[key]!r} -> {new_wl[key]!r}); the seeded "
                      f"generator changed — regenerate {args.check} if "
                      "intended")
                ok = False
        for tid, share in base_wl["popularity"].items():
            drift = abs(new_wl["popularity"].get(tid, float("nan")) - share)
            if not drift <= SHARE_TOLERANCE:
                print(f"FAIL: popularity[{tid}] drifted {drift:g} "
                      "from baseline")
                ok = False
        print(f"check vs {args.check}: {'PASS' if ok else 'FAIL'}")
    else:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"baseline: {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
