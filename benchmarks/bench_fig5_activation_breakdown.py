"""Figure 5 — active-vertex percentage per class per iteration.

The paper's observation motivating sub-iteration direction optimization:
E and H vertices are "intensively visited earlier than vertices with
lower degrees".  Expected shape: E's activation peaks in an iteration no
later than H's, and H's no later than L's.
"""

from conftest import emit

from repro.analysis.experiments import build_setup, run_15d
from repro.analysis.reporting import ascii_table, write_csv

SCALE, ROWS, COLS = 16, 16, 16


def test_fig5_activation_breakdown(benchmark, results_dir):
    def run():
        setup = build_setup(SCALE, ROWS, COLS, seed=1, root_kind="random")
        part, res = run_15d(setup)
        return part, res

    part, res = benchmark.pedantic(run, rounds=1, iterations=1)
    trace = res.activation_trace(part.class_sizes())

    rows = []
    for i in range(res.num_iterations):
        rows.append(
            [i]
            + [f"{100 * trace[cls][i]:.2f}%" for cls in ("E", "H", "L")]
        )
    table = ascii_table(
        ["iteration", "E activated", "H activated", "L activated"],
        rows,
        title="Fig. 5 (reproduced): newly-activated fraction per class",
    )
    emit(results_dir, "fig5_activation_breakdown", table)
    write_csv(
        results_dir / "fig5_activation_breakdown.csv",
        ["iteration", "E", "H", "L"],
        [
            [i, trace["E"][i], trace["H"][i], trace["L"][i]]
            for i in range(res.num_iterations)
        ],
    )

    # Shape assertions: hubs activate earlier.
    peak = lambda xs: max(range(len(xs)), key=lambda i: xs[i])
    assert peak(trace["E"]) <= peak(trace["H"]) <= peak(trace["L"])
    # E is (almost) fully activated by the end (connected hubs).
    assert sum(trace["E"]) > 0.95
    benchmark.extra_info["peak_iteration"] = {
        cls: peak(trace[cls]) for cls in ("E", "H", "L")
    }
