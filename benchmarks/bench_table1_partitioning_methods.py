"""Table 1 — partitioning methods compared on one machine.

The paper's Table 1 surveys prior Graph500 records (1D+delegates on
BlueGene/Q and TaihuLight, 2D on K/Fugaku) against the 1.5D result.  We
cannot rebuild those machines, so this bench makes the *methodological*
comparison the table implies: all four partitioning schemes run on the
same simulated New Sunway across a weak-scaling ladder.

Expected shape (paper §2, §2.3): vanilla 1D trails everywhere;
1D+delegates hits its global-delegate sync wall and plateaus; 2D is
competitive at small meshes but degrades as its row/column delegate state
grows ~sqrt(P); 1.5D leads at the largest points — the paper's headline
is 1.75x over the best 2D record — while carrying the smallest per-node
delegate state (the 8x capacity headroom).
"""

from conftest import emit, ladder

from repro.analysis.experiments import run_partition_comparison
from repro.analysis.reporting import ascii_table, write_csv


def test_table1_partitioning_methods(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_partition_comparison(points=ladder()), rounds=1, iterations=1
    )
    table = ascii_table(
        ["nodes", "scale", "method", "sim GTEPS", "delegate KiB/node", "comm MB"],
        [
            [
                r["nodes"],
                r["scale"],
                r["method"],
                f"{r['gteps']:.1f}",
                f"{r['delegate_bytes_per_node'] / 1024:.1f}",
                f"{r['comm_bytes'] / 1e6:.2f}",
            ]
            for r in rows
        ],
        title="Table 1 (reproduced): partitioning methods on the simulated machine",
    )
    emit(results_dir, "table1_partitioning_methods", table)
    write_csv(
        results_dir / "table1_partitioning_methods.csv",
        ["nodes", "scale", "method", "gteps", "delegate_bytes_per_node", "comm_bytes"],
        [
            [r["nodes"], r["scale"], r["method"], r["gteps"],
             r["delegate_bytes_per_node"], r["comm_bytes"]]
            for r in rows
        ],
    )

    # Shape assertions: who wins at the largest point.
    largest = max(r["nodes"] for r in rows)
    at_largest = {r["method"]: r for r in rows if r["nodes"] == largest}
    ours = at_largest["1.5D (ours)"]
    assert ours["gteps"] >= at_largest["2D"]["gteps"]
    assert ours["gteps"] > 3 * at_largest["1D"]["gteps"]
    assert ours["gteps"] > at_largest["1D+delegates"]["gteps"]
    # capacity story: smallest delegate state among delegated schemes
    assert (
        ours["delegate_bytes_per_node"]
        < at_largest["2D"]["delegate_bytes_per_node"]
    )
    benchmark.extra_info["gteps_at_largest"] = {
        k: round(v["gteps"], 1) for k, v in at_largest.items()
    }
