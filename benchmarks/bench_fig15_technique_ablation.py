"""Figure 15 — time breakdown across optimization levels.

Three levels on the same workload (paper: SCALE 35 on 256 nodes):
(a) Baseline — vanilla whole-iteration direction optimization, no
segmenting; (b) + Sub-Iter. — per-component direction selection; (c)
+ Segment. — plus CG-aware core subgraph segmenting.

Expected shape: sub-iteration direction reduces the time spent pushing
the E/H-related subgraphs (replaced by cheaper pulls); segmenting then
cuts the EH2EH pull kernel ~9x.
"""

from conftest import emit

from repro.analysis.breakdown import ablation_breakdown
from repro.analysis.experiments import run_ablation
from repro.analysis.reporting import ascii_table, format_seconds, write_csv

SCALE, ROWS, COLS = 16, 16, 16


def test_fig15_technique_ablation(benchmark, results_dir):
    runs = benchmark.pedantic(
        lambda: run_ablation(scale=SCALE, rows=ROWS, cols=COLS),
        rounds=1,
        iterations=1,
    )
    labels, cats, series = ablation_breakdown(runs)

    rows = [
        [cat] + [format_seconds(series[cat][i]) for i in range(len(labels))]
        for cat in cats
    ]
    totals = [sum(series[c][i] for c in cats) for i in range(len(labels))]
    rows.append(["TOTAL"] + [format_seconds(t) for t in totals])
    table = ascii_table(
        ["component"] + labels,
        rows,
        title=(
            f"Fig. 15 (reproduced): ablation at SCALE {SCALE}, "
            f"{ROWS * COLS} nodes"
        ),
    )
    emit(results_dir, "fig15_technique_ablation", table)
    write_csv(
        results_dir / "fig15_technique_ablation.csv",
        ["category"] + labels,
        [[cat] + [series[cat][i] for i in range(len(labels))] for cat in cats],
    )

    by = {label: dict(bd) for label, bd in runs}
    base, sub, seg = (by[k] for k in ("Baseline", "+ Sub-Iter.", "+ Segment."))

    # Segmenting cuts the EH2EH pull kernel (9x rate difference).
    if sub["EH2EH pull"] > 0:
        assert seg["EH2EH pull"] < sub["EH2EH pull"]
    # Full system is the fastest level.
    assert totals[2] <= totals[0] * 1.02
    benchmark.extra_info["totals_seconds"] = [round(t, 9) for t in totals]
