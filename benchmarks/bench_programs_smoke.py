"""SCALE-12 vertex-program smoke benchmark — the programs baseline.

Runs the pinned programs smoke configuration
(:data:`repro.obs.report.PROGRAMS_SMOKE_CONFIG`: every registered
program — BFS, Bellman-Ford and delta-stepping SSSP, PageRank,
connected components, triangle counting — on one SCALE-12 seed-7 graph
over a 2x2 mesh) and emits the resulting
:class:`~repro.obs.report.RunReport` as
``results/BENCH_programs_smoke.json``.

That artifact is committed as the CI baseline: the workflow's
programs-smoke job regenerates the same report via ``python -m repro
algo --smoke`` and runs ``python -m repro compare`` against the
committed file, failing the build when any program's tracked metrics
(simulated seconds/bytes, iteration counts, relaxation/bucket/
component/triangle counters, PageRank residual) drift past the
threshold.  All quantities are simulated and deterministic, so an
unchanged engine reproduces the baseline exactly.

To refresh the baseline after an intentional model change::

    PYTHONPATH=src python -m repro algo --smoke \
        --report benchmarks/results/BENCH_programs_smoke.json
"""

from conftest import emit

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    RUN_REPORT_SCHEMA,
    compare_reports,
    programs_smoke_report,
)

BASELINE_NAME = "BENCH_programs_smoke.json"


def test_programs_smoke_report(benchmark, results_dir):
    registry = MetricsRegistry()
    report = benchmark.pedantic(
        lambda: programs_smoke_report(metrics=registry), rounds=1, iterations=1
    )
    assert report.schema == RUN_REPORT_SCHEMA
    # Every registered program contributed its tracked metrics.
    for name in ("bfs", "sssp", "sssp-delta", "pagerank", "cc", "triangles"):
        assert report.metrics[f"program.{name}.total_seconds"] > 0
    assert report.metrics["program.pagerank.delta"] < 1e-8
    assert report.metrics["program.triangles.total_triangles"] > 0

    # If a committed baseline exists, gate the fresh run against it
    # *before* overwriting (the same check CI applies).
    baseline = results_dir / BASELINE_NAME
    if baseline.exists():
        from repro.obs.report import RunReport

        deltas = compare_reports(RunReport.load(baseline), report, 0.05)
        regressed = [d.name for d in deltas if d.regressed]
        assert not regressed, f"programs smoke metrics regressed: {regressed}"

    path = report.save(baseline)
    emit(results_dir, "programs_smoke", report.render())

    benchmark.extra_info["programs"] = 6
    benchmark.extra_info["report"] = str(path)
