"""Figure 14 — throughput of bucketing implementations.

The paper buckets 4 GB of uniform 64-bit integers by their low 8 bits and
reports 0.0406 GB/s (sequential MPE), 12.5 GB/s (one CG with OCS-RMA),
and 58.6 GB/s (six CGs) — 47.0% memory-bandwidth utilization and 1443x
over the MPE.  The reproduction runs the same microbenchmark through the
functional OCS-RMA simulator on a laptop-sized slice of the stream (the
kernel is stream-oblivious: throughput is volume-independent beyond
warmup, and the simulator's event counts scale linearly).
"""

import numpy as np

from conftest import emit

from repro.analysis.reporting import ascii_bar_chart, write_csv
from repro.sort.bucket import mpe_bucket_sort
from repro.sort.ocs import OCSConfig, simulate_ocs_rma

NUM_INTS = 1 << 22  # 32 MiB slice of the paper's 4 GB stream
NUM_BUCKETS = 256


def test_fig14_ocs_throughput(benchmark, results_dir):
    rng = np.random.default_rng(1)
    values = rng.integers(0, 2**63 - 1, size=NUM_INTS)
    buckets = values & 0xFF

    def run():
        mpe = mpe_bucket_sort(values, buckets, NUM_BUCKETS)
        one = simulate_ocs_rma(values, buckets, NUM_BUCKETS, config=OCSConfig(num_cgs=1))
        six = simulate_ocs_rma(values, buckets, NUM_BUCKETS, config=OCSConfig(num_cgs=6))
        return mpe, one, six

    mpe, one, six = benchmark.pedantic(run, rounds=1, iterations=1)

    gbps = {
        "MPE": mpe.throughput_bytes_per_s / 1e9,
        "1 CG": one.throughput_bytes_per_s / 1e9,
        "6 CGs": six.throughput_bytes_per_s / 1e9,
    }
    chart = ascii_bar_chart(
        list(gbps),
        list(gbps.values()),
        log=True,
        unit=" GB/s",
        title=(
            "Fig. 14 (reproduced): bucketing throughput "
            "(paper: 0.0406 / 12.5 / 58.6 GB/s)"
        ),
    )
    util = six.bandwidth_utilization()
    chart += f"\n6-CG memory-bandwidth utilization: {100 * util:.1f}% (paper: 47.0%)"
    chart += f"\n6-CG speedup over MPE: {gbps['6 CGs'] / gbps['MPE']:.0f}x (paper: 1443x)"
    emit(results_dir, "fig14_ocs_throughput", chart)
    write_csv(
        results_dir / "fig14_ocs_throughput.csv",
        ["implementation", "gbps"],
        [[k, v] for k, v in gbps.items()],
    )

    # Shape assertions against the paper's anchors.
    assert abs(gbps["MPE"] - 0.0406) / 0.0406 < 0.10
    assert abs(gbps["1 CG"] - 12.5) / 12.5 < 0.25
    assert abs(gbps["6 CGs"] - 58.6) / 58.6 < 0.25
    assert 0.38 < util < 0.50
    assert 900 < gbps["6 CGs"] / gbps["MPE"] < 2000
    # functional correctness of the kernel output
    for b in range(NUM_BUCKETS):
        sl = six.values[six.offsets[b] : six.offsets[b + 1]]
        assert np.all((sl & 0xFF) == b)
    benchmark.extra_info["gbps"] = {k: round(v, 2) for k, v in gbps.items()}
