"""§6.1.1's network claim, quantified.

"Traditionally communication is considered the bottleneck ... performance
is expected to hurt a lot due to the 8x fat-tree oversubscription ...
But with our 3-level degree-aware 1.5D partitioning, we greatly reduce
the network traffic crossing supernodes, avoiding the bottleneck in the
top-level tree network."

This bench sweeps the oversubscription factor from 1x (full bisection)
to 16x and reports each scheme's slowdown relative to its own 1x time.
Expected shape: the 1.5D engine's slowdown stays small (its H delegation
keeps remote-edge messaging intra-supernode); vanilla 1D — whose per-edge
messages are global — degrades the most.
"""

from conftest import emit

from repro.analysis.reporting import ascii_table, write_csv
from repro.analysis.sweeps import run_oversubscription_sweep

FACTORS = (1.0, 4.0, 8.0, 16.0)


def test_oversubscription_sensitivity(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_oversubscription_sweep(factors=FACTORS), rounds=1, iterations=1
    )
    methods = sorted({r["method"] for r in rows})
    base = {
        m: next(
            r["seconds"]
            for r in rows
            if r["method"] == m and r["oversubscription"] == 1.0
        )
        for m in methods
    }
    slowdown = {
        (r["method"], r["oversubscription"]): r["seconds"] / base[r["method"]]
        for r in rows
    }
    table = ascii_table(
        ["method"] + [f"{f:g}x oversub" for f in FACTORS],
        [
            [m] + [f"{slowdown[(m, f)]:.2f}x" for f in FACTORS]
            for m in methods
        ],
        title="Slowdown vs full-bisection network (each method vs its own 1x)",
    )
    emit(results_dir, "oversubscription_sensitivity", table)
    write_csv(
        results_dir / "oversubscription_sensitivity.csv",
        ["method", "oversubscription", "seconds", "inter_bytes"],
        [
            [r["method"], r["oversubscription"], r["seconds"], r["inter_bytes"]]
            for r in rows
        ],
    )

    # Shape: the 1.5D engine tolerates oversubscription better than
    # vanilla 1D, whose global messaging rides the oversubscribed layer.
    ours_16 = slowdown[("1.5D (ours)", 16.0)]
    oned_16 = slowdown[("1D", 16.0)]
    deleg_16 = slowdown[("1D+delegates", 16.0)]
    # 1.5D tolerates oversubscription less than half as badly as the
    # global-messaging 1D schemes (the residual sensitivity is L2L's
    # two-stage column hop, inflated at toy scale — see EXPERIMENTS.md).
    assert ours_16 < 0.6 * oned_16
    assert ours_16 < 0.6 * deleg_16
    benchmark.extra_info["slowdown_at_16x"] = {
        m: round(slowdown[(m, 16.0)], 2) for m in methods
    }
