"""Figure 11 — time breakdown by communication type over the scaling runs.

Expected shape (paper §6.1.2): communication share grows with scale, led
by alltoallv (remote-edge messaging) and reduce-scatter (delegate sync /
parent reduction); the imbalance component stays roughly flat thanks to
the partitioning's balance.
"""

from conftest import emit

from repro.analysis.breakdown import stack_series
from repro.analysis.reporting import ascii_table, write_csv
from repro.analysis.timeline import category_seconds_from_trace


def test_fig11_comm_breakdown(benchmark, scaling_sweep, results_dir):
    points = benchmark.pedantic(lambda: scaling_sweep, rounds=1, iterations=1)
    # Aggregate from the traced span tree (repro.obs); equals the
    # ledger's time_by_category for the same run.
    data = [(p.nodes, category_seconds_from_trace(p.trace)) for p in points]
    xs, cats, series = stack_series(data)

    rows = [
        [cat] + [f"{100 * v:.1f}%" for v in series[cat]] for cat in cats
    ]
    table = ascii_table(
        ["category"] + [f"{x} nodes" for x in xs],
        rows,
        title="Fig. 11 (reproduced): time share by communication type",
    )
    emit(results_dir, "fig11_comm_breakdown", table)
    write_csv(
        results_dir / "fig11_comm_breakdown.csv",
        ["category"] + [str(x) for x in xs],
        [[cat] + series[cat] for cat in cats],
    )

    # Shape assertions: communication share grows with node count.
    comm_cats = [c for c in cats if c not in ("compute", "imbalance/latency")]
    comm_share = [sum(series[c][i] for c in comm_cats) for i in range(len(xs))]
    assert comm_share[-1] > comm_share[0]
    # alltoallv and reduce_scatter are the main communication costs.
    main = sorted(comm_cats, key=lambda c: -series[c][-1])[:2]
    assert set(main) <= {"alltoallv", "reduce_scatter", "allgather"}
    benchmark.extra_info["comm_share"] = [round(s, 3) for s in comm_share]
