"""Figure 2 — degree distribution of a Graph500 graph.

The paper plots SCALE 40; R-MAT's self-similarity reproduces the same
multi-peak, heavily skewed shape at SCALE 18.  The distribution's
discreteness (mixture of hypergeometric modes) is what constrains the
threshold tuning of §6.2.1, so this bench also reports the detected peak
positions used to build the Fig. 12 grid.
"""

import numpy as np

from conftest import emit

from repro.analysis.reporting import ascii_bar_chart, write_csv
from repro.graph500.rmat import generate_edges
from repro.graphs.stats import degree_histogram, degree_peaks, degrees_from_edges

SCALE = 18


def test_fig2_degree_distribution(benchmark, results_dir):
    def run():
        src, dst = generate_edges(SCALE, seed=1)
        degrees = degrees_from_edges(src, dst, 1 << SCALE)
        return degrees, degree_histogram(degrees), degree_peaks(degrees)

    degrees, (values, counts), peaks = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # log-binned rendering (both axes log, like the paper's figure)
    edges = np.logspace(0, np.log10(values.max() + 1), 24)
    binned, _ = np.histogram(np.repeat(values, counts), bins=edges)
    labels = [f"deg<{int(e):>7d}" for e in edges[1:]]
    chart = ascii_bar_chart(
        labels,
        binned.astype(float),
        log=True,
        title=f"Fig. 2 (reproduced): degree distribution, SCALE {SCALE} "
        f"(log-log; multi-peak as in the paper)",
        unit=" vertices",
    )
    emit(results_dir, "fig2_degree_distribution", chart + f"\npeaks at degrees: {peaks.tolist()}")
    write_csv(
        results_dir / "fig2_degree_distribution.csv",
        ["degree", "num_vertices"],
        zip(values.tolist(), counts.tolist()),
    )

    # Shape assertions: heavy skew spanning many decades, multiple modes.
    assert degrees.max() > 1000 * max(int(np.median(degrees[degrees > 0])), 1)
    assert peaks.size >= 2
    benchmark.extra_info["max_degree"] = int(degrees.max())
    benchmark.extra_info["num_peaks"] = int(peaks.size)
