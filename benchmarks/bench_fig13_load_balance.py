"""Figure 13 — distribution of per-partition subgraph sizes.

The paper partitions SCALE 44 to 103,912 nodes and reports tight edge
distributions: max-min spread 4.2% for EH2EH and <=0.35% for the others;
max/avg 2.8% and <=0.17%.  The reproduction partitions SCALE 18 to 256
ranks.  At a million times fewer edges per rank the sampling noise is
larger, so the asserted bounds are looser, but the shape — EH2EH widest,
every component's spread small — must hold.
"""

import numpy as np

from conftest import emit

from repro.analysis.experiments import build_setup
from repro.analysis.reporting import ascii_table, write_csv
from repro.core import partition_graph
from repro.core.subgraphs import COMPONENT_ORDER
from repro.graphs.stats import gini_coefficient

SCALE, ROWS, COLS = 18, 16, 16


def test_fig13_load_balance(benchmark, results_dir):
    def run():
        setup = build_setup(SCALE, ROWS, COLS, seed=1)
        part = partition_graph(
            setup.src, setup.dst, setup.num_vertices, setup.mesh,
            e_threshold=2048, h_threshold=64,
        )
        return part

    part = benchmark.pedantic(run, rounds=1, iterations=1)
    loads = part.component_load_vectors()

    rows = []
    stats = {}
    for name in COMPONENT_ORDER:
        v = loads[name].astype(float)
        if v.sum() == 0:
            continue
        spread = (v.max() - v.min()) / v.mean()
        max_over_avg = v.max() / v.mean() - 1.0
        stats[name] = (spread, max_over_avg)
        rows.append(
            [
                name,
                int(v.min()),
                int(v.max()),
                f"{100 * spread:.2f}%",
                f"{100 * max_over_avg:.2f}%",
                f"{gini_coefficient(v):.4f}",
            ]
        )
    table = ascii_table(
        ["component", "min edges", "max edges", "(max-min)/avg", "max/avg - 1", "gini"],
        rows,
        title=(
            f"Fig. 13 (reproduced): per-rank subgraph sizes, SCALE {SCALE} "
            f"on {ROWS * COLS} ranks"
        ),
    )
    emit(results_dir, "fig13_load_balance", table)
    write_csv(
        results_dir / "fig13_load_balance.csv",
        ["component", "rank", "edges"],
        [
            [name, rank, int(c)]
            for name in COMPONENT_ORDER
            for rank, c in enumerate(loads[name])
        ],
    )

    # Shape assertions: everything well balanced; nothing pathological.
    for name, (spread, moa) in stats.items():
        assert spread < 0.60, f"{name} spread {spread:.2%}"
        assert moa < 0.35, f"{name} max/avg {moa:.2%}"
    benchmark.extra_info["spreads"] = {
        k: round(v[0], 4) for k, v in stats.items()
    }
