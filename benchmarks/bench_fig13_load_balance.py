"""Figure 13 — distribution of per-partition subgraph sizes and work.

The paper partitions SCALE 44 to 103,912 nodes and reports tight edge
distributions: max-min spread 4.2% for EH2EH and <=0.35% for the others;
max/avg 2.8% and <=0.17%.  The reproduction partitions SCALE 18 to 256
ranks.  At a million times fewer edges per rank the sampling noise is
larger, so the asserted bounds are looser, but the shape — EH2EH widest,
every component's spread small — must hold.

Both tables render from the metrics registry of one metered BFS run
(``metrics=MetricsRegistry()``): the ``rank_items`` per-rank vectors give
the exact scanned-work totals each rank performed per component, and the
``rank_load`` exponential histograms give the shape of the per-kernel
load distribution.  This is the same instrumentation every engine feeds
through :meth:`~repro.runtime.ledger.TrafficLedger.charge_compute`, so
the figure reflects the balance the simulated run actually experienced,
not just the static partition.
"""

import numpy as np

from conftest import emit

from repro.analysis.experiments import build_setup
from repro.analysis.reporting import ascii_table, write_csv
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.core.subgraphs import COMPONENT_ORDER
from repro.graphs.stats import gini_coefficient
from repro.obs.metrics import MetricsRegistry

SCALE, ROWS, COLS = 18, 16, 16
E_THR, H_THR = 2048, 64


def test_fig13_load_balance(benchmark, results_dir):
    def run():
        setup = build_setup(SCALE, ROWS, COLS, seed=1)
        part = partition_graph(
            setup.src, setup.dst, setup.num_vertices, setup.mesh,
            e_threshold=E_THR, h_threshold=H_THR,
        )
        registry = MetricsRegistry()
        engine = DistributedBFS(
            part, machine=setup.machine,
            config=BFSConfig(e_threshold=E_THR, h_threshold=H_THR),
            metrics=registry,
        )
        res = engine.run(setup.root)
        return part, res, registry

    part, res, registry = benchmark.pedantic(run, rounds=1, iterations=1)

    # Table 1: static per-rank subgraph sizes (the paper's Fig. 13).
    loads = part.component_load_vectors()
    rows = []
    stats = {}
    for name in COMPONENT_ORDER:
        v = loads[name].astype(float)
        if v.sum() == 0:
            continue
        spread = (v.max() - v.min()) / v.mean()
        max_over_avg = v.max() / v.mean() - 1.0
        stats[name] = (spread, max_over_avg)
        rows.append(
            [
                name,
                int(v.min()),
                int(v.max()),
                f"{100 * spread:.2f}%",
                f"{100 * max_over_avg:.2f}%",
                f"{gini_coefficient(v):.4f}",
            ]
        )
    table = ascii_table(
        ["component", "min edges", "max edges", "(max-min)/avg", "max/avg - 1", "gini"],
        rows,
        title=(
            f"Fig. 13 (reproduced): per-rank subgraph sizes, SCALE {SCALE} "
            f"on {ROWS * COLS} ranks"
        ),
    )

    # Table 2: per-rank *runtime* work from the registry's rank_items
    # vectors — what each rank actually scanned across the whole BFS.
    work_rows = []
    work_stats = {}
    for labels, vec in registry.samples("rank_items"):
        name = labels.get("phase", "?")
        if name not in COMPONENT_ORDER:
            continue
        s = vec.summary()
        if s["sum"] == 0:
            continue
        work_stats[name] = s
        work_rows.append(
            [
                name,
                int(s["min"]),
                int(s["max"]),
                int(s["p95"]),
                f"{100 * s['spread']:.2f}%",
                f"{100 * s['max_over_avg']:.2f}%",
            ]
        )
    work_rows.sort(key=lambda r: COMPONENT_ORDER.index(r[0]))
    work_table = ascii_table(
        ["component", "min items", "max items", "p95", "(max-min)/avg",
         "max/avg - 1"],
        work_rows,
        title="per-rank scanned work over the run (rank_items vectors)",
    )
    emit(results_dir, "fig13_load_balance", table + "\n\n" + work_table)
    write_csv(
        results_dir / "fig13_load_balance.csv",
        ["component", "rank", "edges"],
        [
            [name, rank, int(c)]
            for name in COMPONENT_ORDER
            for rank, c in enumerate(loads[name])
        ],
    )

    # The exact vectors and the exponential rank_load histograms must
    # describe the same population the ledger charged.
    total_vec = sum(
        float(vec.values.sum()) for _, vec in registry.samples("rank_items")
    )
    total_items = sum(e.total_items for e in res.ledger.compute_events)
    assert total_vec == float(total_items)
    hist_count = sum(
        int(h.count) for _, h in registry.samples("rank_load")
    )
    assert hist_count > 0

    # Shape assertions: everything well balanced; nothing pathological.
    for name, (spread, moa) in stats.items():
        assert spread < 0.60, f"{name} spread {spread:.2%}"
        assert moa < 0.35, f"{name} max/avg {moa:.2%}"
    # Runtime work tracks the static balance: no component's scanned-work
    # spread may blow up past a (loose) multiple of its size spread.
    for name, s in work_stats.items():
        assert s["spread"] < 1.5, f"{name} work spread {s['spread']:.2%}"
    benchmark.extra_info["spreads"] = {
        k: round(v[0], 4) for k, v in stats.items()
    }
    benchmark.extra_info["work_spreads"] = {
        k: round(s["spread"], 4) for k, s in work_stats.items()
    }
