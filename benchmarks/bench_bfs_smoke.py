"""SCALE-10 smoke benchmark — the perf-regression baseline.

Runs the pinned smoke configuration (:data:`repro.obs.report.SMOKE_CONFIG`:
SCALE 10, 2x2 mesh, seed 7, 4 roots, thresholds 128/16 — the same shape
the golden-equivalence suite pins) and emits the resulting
:class:`~repro.obs.report.RunReport` as ``results/BENCH_bfs_smoke.json``.

That artifact is committed as the CI baseline: the workflow's perf-gate
job regenerates the same report via ``python -m repro report --smoke``
and runs ``python -m repro compare`` against the committed file, failing
the build when a tracked metric (simulated GTEPS, second/byte totals)
regresses past the threshold.  All quantities are simulated and
deterministic, so an unchanged model reproduces the baseline exactly.

To refresh the baseline after an intentional model change::

    PYTHONPATH=src python -m repro report --smoke \
        --out benchmarks/results/BENCH_bfs_smoke.json
"""

from conftest import emit

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RUN_REPORT_SCHEMA, bfs_smoke_report, compare_reports

BASELINE_NAME = "BENCH_bfs_smoke.json"


def test_bfs_smoke_report(benchmark, results_dir):
    registry = MetricsRegistry()
    report = benchmark.pedantic(
        lambda: bfs_smoke_report(metrics=registry), rounds=1, iterations=1
    )
    assert report.schema == RUN_REPORT_SCHEMA
    assert report.metrics["mean_gteps"] > 0
    assert report.metrics["total_bytes"] > 0
    # The registry the run fed must agree with the report's ledger sums.
    assert registry.counter_total("comm_bytes") == report.metrics["total_bytes"]

    # If a committed baseline exists, gate the fresh run against it
    # *before* overwriting (the same check CI applies).
    baseline = results_dir / BASELINE_NAME
    if baseline.exists():
        from repro.obs.report import RunReport

        deltas = compare_reports(RunReport.load(baseline), report, 0.05)
        regressed = [d.name for d in deltas if d.regressed]
        assert not regressed, f"smoke metrics regressed: {regressed}"

    path = report.save(baseline)
    emit(results_dir, "bfs_smoke", report.render())

    benchmark.extra_info["mean_gteps"] = round(report.metrics["mean_gteps"], 3)
    benchmark.extra_info["report"] = str(path)
