"""Serving throughput benchmark — batch window x queue depth sweep.

Two tables, one artifact (``results/BENCH_serve.json``):

- **Amortization** (deterministic, simulated): the same 64 roots run as
  one multi-source batch vs 64 sequential traversals.  The batch=64
  amortized cost per query must stay at least 4x below the single-root
  baseline — this is the CI-gateable number, bit-stable run to run.
- **Service** (end-to-end, wall-clock): the seeded closed-loop workload
  driven through the full admission-controlled :class:`TraversalService`
  across (queue depth x batch window) points.  Wall QPS and latency
  percentiles vary with the host and are recorded for trend context;
  correctness columns (wrong parents, failed) gate at zero.

Refresh after an intentional model change::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py -q
"""

import json

import numpy as np
from conftest import emit

from repro.graph500.driver import sample_roots
from repro.serve.bench import (
    amortization_sweep,
    build_serving_pair,
    service_sweep,
)
from repro.serve.workload import make_workload_roots

ARTIFACT_NAME = "BENCH_serve.json"
SCALE, ROWS, COLS, SEED = 10, 2, 2, 7
E_THRESHOLD, H_THRESHOLD = 128, 16
MIN_AMORTIZATION_AT_64 = 4.0


def render(amortization, service) -> str:
    lines = [
        f"serving benchmark: SCALE-{SCALE}, {ROWS}x{COLS} mesh, seed {SEED}",
        "",
        "amortization (simulated, deterministic)",
        f"{'batch':>6} {'s/query':>12} {'seq s/query':>12} "
        f"{'factor':>8} {'bytes ratio':>12} {'waves':>6}",
    ]
    for p in amortization:
        lines.append(
            f"{p.batch_size:>6} {p.amortized_seconds:>12.3e} "
            f"{p.sequential_seconds / p.batch_size:>12.3e} "
            f"{p.amortization_factor:>8.2f} "
            f"{p.batch_bytes / p.sequential_bytes:>12.3f} {p.waves:>6}"
        )
    lines += [
        "",
        "service sweep (wall-clock, closed loop)",
        f"{'depth':>6} {'window':>8} {'served':>7} {'hit%':>6} "
        f"{'mean b':>7} {'qps':>9} {'p50 ms':>8} {'p99 ms':>8}",
    ]
    for p in service:
        lines.append(
            f"{p.queue_depth:>6} {p.batch_window:>8.3f} {p.served:>7} "
            f"{100 * p.cache_hit_rate:>6.1f} {p.mean_batch_size:>7.1f} "
            f"{p.qps:>9.1f} {1e3 * p.p50_seconds:>8.2f} "
            f"{1e3 * p.p99_seconds:>8.2f}"
        )
    return "\n".join(lines)


def test_serve_throughput(benchmark, results_dir):
    sequential, batched = build_serving_pair(
        SCALE, ROWS, COLS, seed=SEED,
        e_threshold=E_THRESHOLD, h_threshold=H_THRESHOLD,
    )
    degrees = batched.part.degrees
    roots = sample_roots(
        degrees, 64, rng=np.random.default_rng(SEED)
    )
    expected = {int(r): sequential.run(int(r)).parent for r in roots}

    amortization = benchmark.pedantic(
        lambda: amortization_sweep(
            sequential, batched, roots, batch_sizes=(1, 4, 16, 64)
        ),
        rounds=1, iterations=1,
    )
    workload_roots = np.unique(make_workload_roots(degrees, 256, seed=1))
    expected |= {
        int(r): sequential.run(int(r)).parent
        for r in workload_roots
        if int(r) not in expected
    }
    service = service_sweep(
        batched, degrees,
        num_queries=256, seed=1, batch_sizes=(64,),
        queue_depths=(64, 256), batch_windows=(0.005,),
        expected=expected,
    )

    # The tentpole gate: batched queries amortize the traversal.
    at64 = next(p for p in amortization if p.batch_size == 64)
    assert at64.amortization_factor >= MIN_AMORTIZATION_AT_64, (
        f"batch=64 amortization {at64.amortization_factor:.2f}x fell "
        f"below the {MIN_AMORTIZATION_AT_64}x floor"
    )
    # Batching must also move strictly fewer ledger bytes.
    assert at64.batch_bytes < at64.sequential_bytes
    # Correctness gates on the end-to-end sweep.
    for p in service:
        assert p.wrong_parents == 0
        assert p.failed == 0
        assert p.served == p.num_queries
        assert p.cache_hit_rate > 0

    artifact = {
        "schema": "repro.bench_serve/1",
        "config": dict(
            scale=SCALE, rows=ROWS, cols=COLS, seed=SEED,
            e_threshold=E_THRESHOLD, h_threshold=H_THRESHOLD,
        ),
        "amortization": [p.to_dict() for p in amortization],
        "service": [p.to_dict() for p in service],
    }
    path = results_dir / ARTIFACT_NAME
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    emit(results_dir, "serve_throughput", render(amortization, service))

    benchmark.extra_info["amortization_x64"] = round(
        at64.amortization_factor, 2
    )
    benchmark.extra_info["artifact"] = str(path)
