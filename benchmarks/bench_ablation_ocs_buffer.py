"""Ablation: OCS-RMA send-buffer size (paper §4.4's 512-byte choice).

The paper reserves "32 buffers of 512 bytes" per core.  Smaller buffers
pay the RMA latency more often; much larger buffers would not fit 32+32
of them in the 256 KB LDM alongside the working set.  The sweep shows
512 B sits on the throughput plateau while respecting the LDM budget.
"""

import numpy as np

from conftest import emit

from repro.analysis.reporting import ascii_table
from repro.machine.chip import SW26010_PRO
from repro.sort.ocs import OCSConfig, simulate_ocs_rma

BUFFER_SIZES = (64, 128, 256, 512, 1024, 2048)


def test_ablation_ocs_buffer_size(benchmark, results_dir):
    rng = np.random.default_rng(1)
    values = rng.integers(0, 2**63 - 1, size=1 << 20)
    buckets = values & 0xFF

    def run():
        out = {}
        for size in BUFFER_SIZES:
            res = simulate_ocs_rma(
                values, buckets, 256,
                config=OCSConfig(buffer_bytes=size, num_cgs=6),
            )
            out[size] = res
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    ldm = SW26010_PRO.ldm_bytes
    rows = []
    for size, res in results.items():
        # each CPE needs 32 send + 32 receive buffers of this size
        ldm_use = 64 * size
        rows.append([
            size,
            f"{res.throughput_bytes_per_s / 1e9:.1f}",
            res.num_batches,
            f"{100 * ldm_use / ldm:.0f}%",
        ])
    table = ascii_table(
        ["buffer bytes", "GB/s", "RMA batches", "LDM used by buffers"],
        rows,
        title="Ablation: OCS-RMA buffer size (paper uses 512 B)",
    )
    emit(results_dir, "ablation_ocs_buffer", table)

    gbps = {s: r.throughput_bytes_per_s for s, r in results.items()}
    # throughput is monotone non-decreasing in buffer size...
    sizes = list(BUFFER_SIZES)
    assert all(gbps[b] >= gbps[a] * 0.999 for a, b in zip(sizes, sizes[1:]))
    # ...with diminishing returns: 512 B already reaches ~3/4 of the 2 KB
    # rate while its 64 buffers take only 12.5% of the 256 KB LDM — 2 KB
    # buffers would consume half the scratchpad, leaving no room for the
    # DMA staging and bit-vector segments the other kernels need.  That
    # budget constraint is why the paper settles on 512 B.
    assert gbps[512] > 0.7 * gbps[2048]
    assert gbps[64] < 0.5 * gbps[512]
    assert 64 * 512 / SW26010_PRO.ldm_bytes == 0.125
    assert 64 * 2048 / SW26010_PRO.ldm_bytes == 0.5
