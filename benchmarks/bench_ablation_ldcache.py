"""Ablation: why LDCache is not enough for the bottom-up kernel (§3.1.3).

SW26010-Pro's optional LDCache can serve main-memory loads, but §3.3
argues it cannot hold the hot frontier bits "given millions of vertices
each node is responsible for" — motivating CG-aware segmenting + RMA.
This bench sweeps the column-EH working-set size across the three
bottom-up implementations (GLD, LDCache, segmented RMA): LDCache matches
segmenting while the bit-vector fits, then collapses toward the GLD rate,
while the segmented rate is size-independent (the bit-vector always fits
the CG's combined LDM by construction).
"""

from conftest import emit

from repro.analysis.reporting import ascii_table
from repro.machine.costmodel import NodeKernelRates

# column E+H populations: the paper caps at 100M; LDCache is 256 KB/CPE.
WORKING_SETS = (1 << 20, 1 << 22, 1 << 24, 1 << 26, 100_000_000)


def test_ablation_ldcache_vs_segmenting(benchmark, results_dir):
    rates = benchmark.pedantic(NodeKernelRates, rounds=1, iterations=1)

    gld = rates.pull_rate_unsegmented()
    seg = rates.pull_rate_segmented()
    rows = []
    ldc_rates = []
    for bits in WORKING_SETS:
        ldc = rates.pull_rate_ldcache(bits)
        ldc_rates.append(ldc)
        rows.append([
            f"{bits:,}",
            f"{gld / 1e9:.2f}",
            f"{ldc / 1e9:.2f}",
            f"{seg / 1e9:.2f}",
            f"{seg / ldc:.1f}x",
        ])
    table = ascii_table(
        ["frontier bits", "GLD G/s", "LDCache G/s", "segmented G/s", "seg vs LDC"],
        rows,
        title="Ablation: bottom-up kernel rates vs frontier working set",
    )
    emit(results_dir, "ablation_ldcache", table)

    # LDCache degrades monotonically with working-set size ...
    assert all(b <= a for a, b in zip(ldc_rates, ldc_rates[1:]))
    # ... matches segmenting-ish when everything fits ...
    assert ldc_rates[0] > 0.5 * seg
    # ... but collapses to within 2x of GLD at the paper's 100M bits,
    # while segmenting keeps its ~9x advantage (the §4.3 motivation).
    assert ldc_rates[-1] < 2.0 * gld
    assert seg > 4.0 * ldc_rates[-1]
