#!/usr/bin/env python
"""Wall-clock GTEPS for the pluggable execution backends.

Unlike every other bench in this directory, which reads the *simulated*
:class:`TrafficLedger` clock, this one measures real host time: the
tracer stamps each traversal span with ``perf_counter`` and
:func:`repro.obs.report.wallclock_metrics` turns the spans into
``wallclock.*`` metrics.  The sweep runs the shared-memory backend at
workers ∈ {1, 2, 4} across two smoke scales, reports speedup over
workers=1, and writes the committed baseline
``benchmarks/results/BENCH_wallclock.json``.

Modes::

    PYTHONPATH=src python benchmarks/bench_wallclock.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke   # CI gate

``--smoke`` exits nonzero if (1) the shmem backend's run record diverges
from the simulated backend's on the smoke graph, (2) measured GTEPS
regresses more than 25 % below the committed baseline (generous bound
for CI-runner jitter), (3) on hosts with at least four CPUs, the
workers=4 speedup over workers=1 falls below 1.5x, or (4) attaching
worker-telemetry metrics to the backend (the always-on production
path; span tracing is opt-in debugging and outside the budget) slows
the same traversal by more than 5 % (best-of-N on both sides).  The
speedup gate is skipped — loudly, never silently — on smaller hosts,
where real parallel speedup is physically unavailable; the committed
baseline records the capture host's CPU count for the same reason.

The full sweep also records each shmem rung's per-worker utilization
(busy / measured lifetime) and mean chunk skew (per-dispatch max/mean
busy ratio) from the worker telemetry counters.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import partition_graph  # noqa: E402
from repro.core.engine import DistributedBFS  # noqa: E402
from repro.graph500.rmat import generate_edges  # noqa: E402
from repro.machine.network import MachineSpec  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.report import (  # noqa: E402
    wallclock_metrics,
    worker_telemetry_metrics,
)
from repro.obs.tracer import Tracer  # noqa: E402
from repro.runtime.backends import SharedMemoryBackend  # noqa: E402
from repro.runtime.mesh import ProcessMesh  # noqa: E402

RESULTS = Path(__file__).parent / "results" / "BENCH_wallclock.json"

SEED = 7
E_THR = 128
H_THR = 16
SMOKE_SCALE = 10
FULL_SCALES = (10, 12)
WORKER_LADDER = (1, 2, 4)
NUM_ROOTS = 4
#: CI jitter allowance on absolute GTEPS (the ISSUE's generous bound).
GTEPS_TOLERANCE = 0.25
#: Required workers=4 speedup — only meaningful with >= 4 real CPUs.
SPEEDUP_FLOOR = 1.5
#: Allowed telemetry-on slowdown (ISSUE acceptance: <= 5 %).
TELEMETRY_OVERHEAD = 0.05


def build(scale: int):
    src, dst = generate_edges(scale, seed=SEED)
    n = 1 << scale
    machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
    mesh = ProcessMesh(2, 2, machine=machine)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=E_THR, h_threshold=H_THR
    )
    rng = np.random.default_rng(SEED)
    roots = [int(r) for r in rng.choice(n, size=NUM_ROOTS, replace=False)]
    return part, machine, roots


def run_record(result) -> dict:
    return {
        "root": result.root,
        "num_iterations": result.num_iterations,
        "num_visited": result.num_visited,
        "total_seconds": result.total_seconds,
        "total_bytes": result.ledger.total_bytes,
    }


def measure(
    part, machine, roots, backend=None, registry=None
) -> tuple[dict, list[dict]]:
    """Run every root once; return wallclock metrics + per-run records.

    ``registry`` (optional) attaches a metrics registry, so a parallel
    backend records per-worker telemetry into it.
    """
    tracer = Tracer()
    engine = DistributedBFS(
        part, machine=machine, tracer=tracer, backend=backend,
        **({"metrics": registry} if registry is not None else {}),
    )
    records = [run_record(engine.run(root)) for root in roots]
    metrics = wallclock_metrics(tracer, num_edges=engine.num_input_edges)
    return metrics, records


def sweep_scale(scale: int) -> dict:
    part, machine, roots = build(scale)
    sim_metrics, sim_records = measure(part, machine, roots)
    entry = {
        "scale": scale,
        "mesh": "2x2",
        "seed": SEED,
        "roots": roots,
        "num_edges": int(part.total_arcs // 2),
        "simulated": {
            "wall_seconds": sim_metrics["wallclock.traversal_seconds"],
            "gteps": sim_metrics.get("wallclock.gteps", 0.0),
        },
        "shmem": {},
    }
    base_seconds = None
    for workers in WORKER_LADDER:
        registry = MetricsRegistry()
        with SharedMemoryBackend(workers=workers) as backend:
            metrics, records = measure(
                part, machine, roots, backend=backend, registry=registry
            )
        if records != sim_records:
            raise SystemExit(
                f"FAIL: shmem(workers={workers}) diverged from simulated "
                f"at scale {scale}"
            )
        telem = worker_telemetry_metrics(registry)
        seconds = metrics["wallclock.traversal_seconds"]
        if base_seconds is None:
            base_seconds = seconds
        entry["shmem"][str(workers)] = {
            "wall_seconds": seconds,
            "gteps": metrics.get("wallclock.gteps", 0.0),
            "speedup_vs_workers1": base_seconds / seconds,
            "worker_utilization": {
                key.rsplit(".", 1)[1]: value
                for key, value in sorted(telem.items())
                if key.startswith("worker.utilization.")
            },
            "chunk_skew_mean": telem.get("worker.chunk_skew_mean", 0.0),
        }
        util = entry["shmem"][str(workers)]["worker_utilization"]
        mean_util = sum(util.values()) / len(util) if util else 0.0
        print(
            f"  scale {scale} shmem workers={workers}: "
            f"{seconds:.3f}s wall, {entry['shmem'][str(workers)]['gteps']:.4f}"
            f" GTEPS, {base_seconds / seconds:.2f}x vs workers=1, "
            f"util {mean_util:.0%}, skew "
            f"{entry['shmem'][str(workers)]['chunk_skew_mean']:.2f}"
        )
    return entry


def host_info() -> dict:
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def cmd_full(out: Path) -> int:
    host = host_info()
    scales = [sweep_scale(scale) for scale in FULL_SCALES]
    payload = {
        "schema": "bench.wallclock.v1",
        "host": host,
        "note": (
            "Wall-clock times are host-dependent; the smoke gate allows "
            f"{GTEPS_TOLERANCE:.0%} jitter. Captured on a "
            f"{host['cpu_count']}-CPU host: with fewer than 4 CPUs the "
            "workers=4 speedup cannot exceed 1x and the speedup gate is "
            "reported as skipped, not passed."
        ),
        "scales": scales,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def _best_of(repeats: int, part, machine, roots, workers=None):
    """Min wall time (max GTEPS) over repeats — the standard noise filter
    for sub-second timings on shared CI runners."""
    best = None
    records = None
    for _ in range(repeats):
        if workers is None:
            metrics, records = measure(part, machine, roots)
        else:
            with SharedMemoryBackend(workers=workers) as backend:
                metrics, records = measure(
                    part, machine, roots, backend=backend
                )
        if best is None or (
            metrics["wallclock.traversal_seconds"]
            < best["wallclock.traversal_seconds"]
        ):
            best = metrics
    return best, records


def _telemetry_overhead(
    part, machine, roots, *, workers, repeats=5, sweeps=3
):
    """Best-of wall time for ``sweeps`` full root sweeps, telemetry off
    vs on, interleaved within a single worker pool so host-load drift
    hits both sides equally.  Returns ``(off_seconds, on_seconds)``.
    Each timed sample covers several sweeps because a single ~60 ms
    sweep sits below the scheduling-noise floor of a small CI runner.

    "On" attaches a metrics registry to the *backend* — the per-worker
    counter/histogram path that stays on in production.  Full span
    tracing is the opt-in debugging mode and is deliberately outside
    this budget (a ``Tracer`` allocates a span per chunk).
    """
    from time import perf_counter

    from repro.obs.tracer import NULL_TRACER

    best = {False: float("inf"), True: float("inf")}
    with SharedMemoryBackend(workers=workers) as backend:
        # One untimed warm-up sweep: first dispatch pays segment
        # creation and worker spin-up.
        engine = DistributedBFS(part, machine=machine, backend=backend)
        for root in roots:
            engine.run(root)
        for _ in range(repeats):
            for telemetry in (False, True):
                engine = DistributedBFS(
                    part, machine=machine, backend=backend
                )
                if telemetry:
                    backend.attach_telemetry(
                        NULL_TRACER, MetricsRegistry()
                    )
                else:
                    backend.attach_telemetry(None, None)
                start = perf_counter()
                for _ in range(sweeps):
                    for root in roots:
                        engine.run(root)
                best[telemetry] = min(
                    best[telemetry], perf_counter() - start
                )
    return best[False], best[True]


def cmd_smoke(baseline_path: Path) -> int:
    failures = []
    part, machine, roots = build(SMOKE_SCALE)

    sim_metrics, sim_records = _best_of(3, part, machine, roots)
    shm_metrics, shm_records = _best_of(3, part, machine, roots, workers=2)
    if shm_records == sim_records:
        print("parity: shmem == simulated on the smoke graph")
    else:
        failures.append("shmem run records diverge from simulated")

    baseline = json.loads(baseline_path.read_text())
    pinned = next(
        s for s in baseline["scales"] if s["scale"] == SMOKE_SCALE
    )
    floor = 1.0 - GTEPS_TOLERANCE
    for label, measured, committed in (
        ("simulated", sim_metrics.get("wallclock.gteps", 0.0),
         pinned["simulated"]["gteps"]),
        ("shmem", shm_metrics.get("wallclock.gteps", 0.0),
         pinned["shmem"]["2"]["gteps"]),
    ):
        ratio = measured / committed if committed else float("inf")
        verdict = "ok" if ratio >= floor else "REGRESSED"
        print(
            f"gteps[{label}]: measured {measured:.4f} vs committed "
            f"{committed:.4f} ({ratio:.2f}x, floor {floor:.2f}x) {verdict}"
        )
        if ratio < floor:
            failures.append(
                f"{label} GTEPS regressed >{GTEPS_TOLERANCE:.0%} "
                f"vs committed baseline"
            )

    off, on = _telemetry_overhead(part, machine, roots, workers=2)
    overhead = on / off - 1.0
    verdict = "ok" if overhead <= TELEMETRY_OVERHEAD else "REGRESSED"
    print(
        f"telemetry overhead: off {off:.3f}s, on {on:.3f}s "
        f"({overhead:+.1%}, cap {TELEMETRY_OVERHEAD:.0%}) {verdict}"
    )
    if overhead > TELEMETRY_OVERHEAD:
        failures.append(
            f"telemetry-on overhead {overhead:.1%} > "
            f"{TELEMETRY_OVERHEAD:.0%}"
        )

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        one, _ = _best_of(3, part, machine, roots, workers=1)
        four, _ = _best_of(3, part, machine, roots, workers=4)
        speedup = (
            one["wallclock.traversal_seconds"]
            / four["wallclock.traversal_seconds"]
        )
        print(f"speedup workers=4 vs workers=1: {speedup:.2f}x "
              f"(floor {SPEEDUP_FLOOR}x)")
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"workers=4 speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x"
            )
    else:
        print(
            f"speedup gate SKIPPED: host has {cpus} CPU(s); "
            "parallel speedup needs >= 4"
        )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("wallclock smoke: PASS")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke", action="store_true",
        help="gate against the committed baseline instead of rewriting it",
    )
    ap.add_argument(
        "--out", type=Path, default=RESULTS,
        help="baseline path (written in full mode, read in --smoke)",
    )
    args = ap.parse_args(argv)
    if args.smoke:
        return cmd_smoke(args.out)
    return cmd_full(args.out)


if __name__ == "__main__":
    raise SystemExit(main())
