"""Figure 12 — BFS performance vs (E, H) degree thresholds.

The paper grids H in {128, 512, 2048, 4096} and E in {512, 2048, 4096,
16384} at SCALE 35 on 256 nodes; cells with E < H are invalid (0.0).
The reproduction grids threshold values aligned to the small-SCALE degree
peaks.  Expected shape: invalid cells zero; the presence of H vertices
improves performance even without network oversubscription pressure; the
best cell sits in the interior.
"""

from conftest import emit

from repro.analysis.experiments import run_threshold_grid
from repro.analysis.reporting import ascii_table, write_csv

SCALE, ROWS, COLS = 14, 8, 8
E_THRESHOLDS = (4096, 1024, 256, 64)
H_THRESHOLDS = (1024, 256, 64, 16)


def test_fig12_threshold_grid(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: run_threshold_grid(
            scale=SCALE,
            rows=ROWS,
            cols=COLS,
            e_thresholds=E_THRESHOLDS,
            h_thresholds=H_THRESHOLDS,
        ),
        rounds=1,
        iterations=1,
    )
    cells = {(r["e"], r["h"]): r["gteps"] for r in rows}
    table = ascii_table(
        ["E \\ H"] + [str(h) for h in H_THRESHOLDS],
        [
            [e] + [f"{cells[(e, h)]:.1f}" for h in H_THRESHOLDS]
            for e in E_THRESHOLDS
        ],
        title=(
            f"Fig. 12 (reproduced): sim GTEPS vs degree thresholds, "
            f"SCALE {SCALE}, {ROWS * COLS} nodes"
        ),
    )
    emit(results_dir, "fig12_threshold_grid", table)
    write_csv(
        results_dir / "fig12_threshold_grid.csv",
        ["e_threshold", "h_threshold", "gteps"],
        [[r["e"], r["h"], r["gteps"]] for r in rows],
    )

    # Shape assertions.
    invalid = [(e, h) for e in E_THRESHOLDS for h in H_THRESHOLDS if e < h]
    assert all(cells[c] == 0.0 for c in invalid)
    valid = {c: v for c, v in cells.items() if c[0] >= c[1]}
    assert all(v > 0 for v in valid.values())
    # H presence helps: best cell with H < E beats the degenerate |H|=0
    # column analogue (h == e), matching the paper's first observation.
    with_h = max(v for (e, h), v in valid.items() if h < e)
    no_h = max((v for (e, h), v in valid.items() if h == e), default=0.0)
    if no_h:
        assert with_h >= 0.9 * no_h
    benchmark.extra_info["best_cell"] = max(valid, key=valid.get)
