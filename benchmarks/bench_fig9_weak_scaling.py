"""Figure 9 — weak scalability of the 1.5D BFS.

The paper scales 256 -> 103,912 nodes (SCALE 35 -> 44) and reports 52%
relative parallel efficiency at the top.  The reproduction ladder keeps
per-rank work constant (see DESIGN.md for the work-scale extrapolation);
the expected shape is near-linear GTEPS growth with efficiency above
~40% at the largest point relative to the smallest.
"""

from conftest import emit, ladder

from repro.analysis.experiments import run_scaling_sweep
from repro.analysis.reporting import ascii_table, write_csv


def test_fig9_weak_scaling(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: run_scaling_sweep(points=ladder()), rounds=1, iterations=1
    )

    base = points[0]
    rows = []
    for p in points:
        ideal = base.gteps * (p.nodes / base.nodes)
        eff = p.gteps / ideal
        rows.append(
            [p.nodes, p.scale, f"{p.gteps:.1f}", f"{ideal:.1f}", f"{100 * eff:.0f}%"]
        )
    table = ascii_table(
        ["nodes", "scale", "sim GTEPS", "ideal GTEPS", "efficiency"],
        rows,
        title="Fig. 9 (reproduced): weak scalability of the 1.5D engine",
    )
    emit(results_dir, "fig9_weak_scaling", table)
    write_csv(
        results_dir / "fig9_weak_scaling.csv",
        ["nodes", "scale", "gteps", "seconds"],
        [[p.nodes, p.scale, p.gteps, p.seconds] for p in points],
    )

    # Shape assertions: monotone growth, reasonable efficiency.
    gteps = [p.gteps for p in points]
    assert all(b > a for a, b in zip(gteps, gteps[1:]))
    largest = points[-1]
    eff = largest.gteps / (base.gteps * largest.nodes / base.nodes)
    assert eff > 0.25, f"parallel efficiency collapsed: {eff:.2f}"
    benchmark.extra_info["efficiency_at_largest"] = round(eff, 3)
    benchmark.extra_info["gteps"] = [round(g, 1) for g in gteps]
