"""Ablations of the auxiliary design choices (paper §5, DESIGN.md).

Three single-knob ablations on the same workload, complementing the
Fig. 15 headline ablation:

- **delayed reduction** (§5): reducing delegated parent arrays once at
  the end vs every iteration — the paper argues it "significantly
  reduces collective communication volume during the BFS run".
- **edge-aware vertex-cut** (§5): GraphIt-style accumulated-degree cuts
  vs naive vertex-count cuts in EH2EH push — the paper adopts it because
  a few frontier hubs otherwise starve most CPEs.
- **sub-iteration freshness** is covered by Fig. 15; here we also verify
  the segmenting feasibility margin (§4.3/§8: more segments shrink the
  per-CG footprint).
"""

import numpy as np

from conftest import emit

from repro.analysis.experiments import build_setup, run_15d
from repro.analysis.reporting import ascii_table, format_seconds
from repro.core.balance import vertex_cut_imbalance
from repro.core.segmenting import plan_segmenting
from repro.machine.chip import ChipSpec

SCALE, ROWS, COLS = 14, 8, 8


def test_ablation_delayed_reduction(benchmark, results_dir):
    def run():
        setup = build_setup(SCALE, ROWS, COLS, seed=1)
        _, delayed = run_15d(setup, config_overrides=dict(delayed_reduction=True))
        _, eager = run_15d(setup, config_overrides=dict(delayed_reduction=False))
        return delayed, eager

    delayed, eager = benchmark.pedantic(run, rounds=1, iterations=1)
    reduce_delayed = delayed.time_by_phase().get("reduce", 0.0)
    reduce_eager = eager.time_by_phase().get("reduce", 0.0)
    table = ascii_table(
        ["variant", "total", "reduce phase", "reduce events"],
        [
            [
                "delayed (paper)",
                format_seconds(delayed.total_seconds),
                format_seconds(reduce_delayed),
                sum(1 for e in delayed.ledger.comm_events if e.phase == "reduce"),
            ],
            [
                "every iteration",
                format_seconds(eager.total_seconds),
                format_seconds(reduce_eager),
                sum(1 for e in eager.ledger.comm_events if e.phase == "reduce"),
            ],
        ],
        title="Ablation: delayed reduction of delegated parent arrays (§5)",
    )
    emit(results_dir, "ablation_delayed_reduction", table)

    assert delayed.total_seconds <= eager.total_seconds
    assert reduce_delayed < reduce_eager
    # identical functional output
    assert np.array_equal(delayed.parent >= 0, eager.parent >= 0)


def test_ablation_edge_aware_balance(benchmark, results_dir):
    def run():
        setup = build_setup(SCALE, ROWS, COLS, seed=1)
        _, aware = run_15d(setup, config_overrides=dict(edge_aware_balance=True))
        _, naive = run_15d(setup, config_overrides=dict(edge_aware_balance=False))
        return aware, naive

    aware, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    t_aware = aware.time_by_direction()["EH2EH push"]
    t_naive = naive.time_by_direction()["EH2EH push"]
    table = ascii_table(
        ["variant", "EH2EH push time", "total"],
        [
            ["edge-aware cut (paper)", format_seconds(t_aware), format_seconds(aware.total_seconds)],
            ["vertex-count cut", format_seconds(t_naive), format_seconds(naive.total_seconds)],
        ],
        title="Ablation: edge-aware vertex-cut in EH2EH push (§5)",
    )
    # also show the raw CPE imbalance factor on a skewed synthetic frontier
    rng = np.random.default_rng(0)
    frontier = rng.integers(1, 4, size=2000)
    frontier[:40] = 5000
    f_naive = vertex_cut_imbalance(frontier, 384, edge_aware=False)
    f_aware = vertex_cut_imbalance(frontier, 384, edge_aware=True)
    extra = (
        f"\nCPE load factor on a hub-heavy frontier: naive {f_naive:.1f}x "
        f"vs edge-aware {f_aware:.2f}x"
    )
    emit(results_dir, "ablation_edge_aware_balance", table + extra)

    assert t_aware <= t_naive
    assert f_aware < f_naive


def test_ablation_segment_count(benchmark, results_dir):
    """§8: more segments shrink the per-CG destination footprint."""

    def run():
        setup = build_setup(16, 16, 16, seed=1)
        from repro.core.partition import partition_graph

        return partition_graph(
            setup.src, setup.dst, setup.num_vertices, setup.mesh,
            e_threshold=4096, h_threshold=512,
        )

    part = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    bits = []
    for cgs in (1, 2, 3, 6):
        plan = plan_segmenting(part, chip=ChipSpec(num_core_groups=cgs))
        rows.append([
            cgs, plan.segment_bits, plan.segment_bytes, plan.feasible,
        ])
        bits.append(plan.segment_bits)
    table = ascii_table(
        ["segments (CGs)", "bits/segment", "bytes/segment", "fits LDM"],
        rows,
        title="Ablation: core-subgraph segment count (§4.3, §8)",
    )
    emit(results_dir, "ablation_segment_count", table)

    # monotone: more segments, smaller per-segment footprint
    assert bits == sorted(bits, reverse=True)
