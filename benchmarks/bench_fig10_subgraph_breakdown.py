"""Figure 10 — execution-time breakdown by subgraph over the scaling runs.

Expected shape (paper §6.1.2): L2L costs a notable share despite being
the smallest component (sparse-iteration latency and global messaging);
the EH2EH share shrinks at larger scales thanks to the partitioning and
sub-iteration direction optimization.
"""

from conftest import emit

from repro.analysis.breakdown import stack_series
from repro.analysis.reporting import ascii_table, write_csv
from repro.analysis.timeline import phase_seconds_from_trace

PHASES = ["EH2EH", "E2L", "L2E", "H2L", "L2H", "L2L", "reduce", "other"]


def test_fig10_subgraph_breakdown(benchmark, scaling_sweep, results_dir):
    points = benchmark.pedantic(lambda: scaling_sweep, rounds=1, iterations=1)
    # Aggregate from the traced span tree (repro.obs); equals the
    # ledger's seconds_by_phase for the same run.
    data = [(p.nodes, phase_seconds_from_trace(p.trace)) for p in points]
    xs, cats, series = stack_series(data)

    rows = []
    for phase in PHASES:
        if phase not in series:
            continue
        rows.append([phase] + [f"{100 * v:.1f}%" for v in series[phase]])
    table = ascii_table(
        ["phase"] + [f"{x} nodes" for x in xs],
        rows,
        title="Fig. 10 (reproduced): time share by subgraph over scaling",
    )
    emit(results_dir, "fig10_subgraph_breakdown", table)
    write_csv(
        results_dir / "fig10_subgraph_breakdown.csv",
        ["phase"] + [str(x) for x in xs],
        [[phase] + series[phase] for phase in series],
    )

    # Shape assertions.
    l2l = series.get("L2L", [0.0] * len(xs))
    arcs = {n: p.partition.components for n, p in zip(xs, points)}
    smallest_is_l2l_heavy = l2l[-1] > 0.05
    assert smallest_is_l2l_heavy, "L2L should cost a notable share (paper §6.1.2)"
    # EH2EH holds the majority of edges but not the majority of time.
    eh = series.get("EH2EH", [0.0] * len(xs))
    assert eh[-1] < 0.5
    benchmark.extra_info["l2l_share_at_largest"] = round(l2l[-1], 3)
