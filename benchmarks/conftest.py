"""Shared fixtures for the benchmark harness.

Every paper table/figure has one bench module.  Heavy experiment runs are
cached at session scope so Figures 9/10/11 (which share the weak-scaling
sweep) pay for it once.  Rendered ASCII figures and CSVs are written under
``results/`` next to this directory.

Set ``REPRO_BENCH_FULL=1`` to extend the weak-scaling ladder with the
scale-18 / 1024-rank point (a few extra minutes).
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"


def ladder():
    points = [(12, 4, 4), (14, 8, 8), (16, 16, 16)]
    if os.environ.get("REPRO_BENCH_FULL"):
        points.append((18, 32, 32))
    return tuple(points)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scaling_sweep():
    """The weak-scaling sweep shared by Figures 9, 10, and 11.

    Run with tracing on so the Fig. 10/11 breakdowns aggregate the real
    span tree (``point.trace``) instead of re-deriving from the ledger.
    """
    from repro.analysis.experiments import run_scaling_sweep

    return run_scaling_sweep(points=ladder(), trace=True)


def emit(results_dir: Path, name: str, text: str) -> None:
    """Write a rendered figure and echo it (visible with pytest -s)."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
