"""The Graph500 benchmark's two kernels + construction on the 1.5D system.

Not a paper figure, but the paper's result *is* a Graph500 submission:
this bench runs the official flow end to end — kernel 1 (construction
via the §5 in-place global sort pipeline), kernel 2 (BFS over sampled
roots with validation), and the SSSP kernel the benchmark also defines —
and prints the official statistics block.
"""

import numpy as np

from conftest import emit

from repro.analysis.reporting import ascii_table, format_seconds
from repro.core.algorithms import generate_weights, sssp
from repro.core.preprocessing import preprocess
from repro.graph500.driver import run_graph500
from repro.graph500.rmat import generate_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh

SCALE, ROWS, COLS = 13, 4, 4
NUM_ROOTS = 8


def test_graph500_full_flow(benchmark, results_dir):
    def run():
        # kernel 1 through the executed preprocessing pipeline
        src, dst = generate_edges(SCALE, seed=1)
        p = ROWS * COLS
        machine = MachineSpec(
            num_nodes=p, nodes_per_supernode=COLS
        ).scaled_for(src.size / p)
        mesh = ProcessMesh(ROWS, COLS, machine=machine)
        part, prep = preprocess(
            src, dst, 1 << SCALE, mesh,
            e_threshold=1024, h_threshold=128, machine=machine,
        )
        report = run_graph500(
            SCALE, ROWS, COLS, seed=1, num_roots=NUM_ROOTS,
            e_threshold=1024, h_threshold=128,
            machine=machine,
            construction_seconds=prep.construction_seconds,
        )
        wres = sssp(
            part,
            int(report.roots[0]),
            generate_weights(src.size, seed=2),
            edge_src=src,
            edge_dst=dst,
            machine=machine,
        )
        return report, prep, wres

    report, prep, wres = benchmark.pedantic(run, rounds=1, iterations=1)

    block = report.render()
    extra = ascii_table(
        ["kernel", "simulated time", "metric"],
        [
            ["1 (construction)", format_seconds(prep.construction_seconds),
             f"{prep.num_arcs:,} arcs sorted"],
            ["2 (BFS, harmonic mean)", format_seconds(float(np.mean(report.bfs_times))),
             f"{report.mean_gteps:.1f} GTEPS"],
            ["SSSP (one root)", format_seconds(wres.total_seconds),
             f"{wres.relaxations:,} relaxations"],
        ],
        title="",
    )
    emit(results_dir, "graph500_kernels", block + "\n" + extra)

    assert report.validated
    assert report.roots.size == NUM_ROOTS
    assert prep.construction_seconds > 0
    # SSSP converged to finite distances on the root's component
    assert np.isfinite(wres.distance[wres.root])
    assert wres.num_iterations >= report.results[0].num_iterations - 1
    benchmark.extra_info["harmonic_mean_gteps"] = round(report.mean_gteps, 2)
