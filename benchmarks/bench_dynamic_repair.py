#!/usr/bin/env python
"""Incremental repair vs full rebuild cost across update-batch sizes.

The dynamic subsystem's economic claim: repairing the 1.5D partition
in place after a batch of edge updates must charge the simulated
:class:`TrafficLedger` far less than rebuilding the partition from
scratch — otherwise streaming ingestion is pointless.  This bench
streams seeded ``mixed`` update batches sized as fractions of the live
edge count through :class:`~repro.dynamic.repair.IncrementalGraph`
(SCALE-15 R-MAT on a 4x4 mesh, tuned thresholds) and compares the
ledger's cumulative repair charge — delta alltoallv, reclassification
pass, amortized compactions — against the construction estimate for
the same number of from-scratch rebuilds.

Modes::

    PYTHONPATH=src python benchmarks/bench_dynamic_repair.py           # sweep + write baseline
    PYTHONPATH=src python benchmarks/bench_dynamic_repair.py --check benchmarks/results/BENCH_dynamic.json

``--check`` re-runs the sweep and exits nonzero unless (1) repair
charges under 25 % of rebuild cost at every batch size at or below 1 %
of |E| (the acceptance gate), (2) the repaired partition is
bit-identical to a from-scratch rebuild at the gate point, and (3) the
per-point ratios stay within 10 % of the committed baseline (the
ledger is simulated and deterministic, so drift means the cost model
or the repair path changed — regenerate the baseline deliberately,
not accidentally).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.analysis.experiments import tuned_thresholds  # noqa: E402
from repro.analysis.reporting import ascii_table  # noqa: E402
from repro.dynamic.gate import parts_bitwise_equal  # noqa: E402
from repro.dynamic.repair import IncrementalGraph  # noqa: E402
from repro.dynamic.updates import (  # noqa: E402
    UpdateSpec,
    generate_update_stream,
)
from repro.graph500.rmat import generate_edges  # noqa: E402
from repro.machine.network import MachineSpec  # noqa: E402
from repro.runtime.mesh import ProcessMesh  # noqa: E402

SCALE = 15
ROWS = COLS = 4
SEED = 7
BATCHES = 4
COMPACT_EVERY = 4
#: Batch sizes as fractions of the live edge count.
FRACTIONS = (0.0025, 0.005, 0.01, 0.02, 0.04)
#: The acceptance gate: repair < 25 % of rebuild at batches <= 1 % |E|.
GATE_FRACTION = 0.01
GATE_RATIO = 0.25
#: Allowed relative drift of a point's ratio vs the committed baseline.
CHECK_TOLERANCE = 0.10

RESULTS = Path(__file__).parent / "results" / "BENCH_dynamic.json"


def run_sweep(*, verify_gate_point: bool = True) -> dict:
    src, dst = generate_edges(SCALE, seed=SEED)
    num_vertices = 2**SCALE
    e_thr, h_thr = tuned_thresholds(SCALE)
    machine = MachineSpec(num_nodes=ROWS * COLS, nodes_per_supernode=COLS)
    points = []
    mismatches: list[str] = []
    for frac in FRACTIONS:
        mesh = ProcessMesh(ROWS, COLS, machine=machine)
        inc = IncrementalGraph(
            src, dst, num_vertices, mesh,
            e_threshold=e_thr, h_threshold=h_thr,
            machine=machine, compact_every=COMPACT_EVERY,
        )
        num_edges = inc.num_edges
        size = max(1, round(frac * num_edges))
        lo, hi = inc.edges()
        stream = generate_update_stream(
            lo, hi, num_vertices,
            UpdateSpec("mixed", batches=BATCHES, size=size), seed=SEED,
        )
        moved = 0
        for batch in stream:
            moved += inc.apply_batch(batch).num_arcs_moved
        part = inc.graph()  # final compaction is part of the repair bill
        repair = inc.ledger.total_seconds
        rebuild = inc.rebuild_cost_estimate() * BATCHES
        if verify_gate_point and frac == GATE_FRACTION:
            mismatches = parts_bitwise_equal(part, inc.rebuild_reference())
        points.append(dict(
            fraction=frac,
            batch_size=size,
            batches=BATCHES,
            arcs_moved=moved,
            repair_seconds=repair,
            rebuild_seconds=rebuild,
            ratio=repair / rebuild,
        ))
    gated = [p for p in points if p["fraction"] <= GATE_FRACTION]
    worst = max(p["ratio"] for p in gated)
    return dict(
        schema="bench.dynamic_repair.v1",
        config=dict(
            scale=SCALE, mesh=f"{ROWS}x{COLS}", seed=SEED,
            batches=BATCHES, compact_every=COMPACT_EVERY,
            e_threshold=e_thr, h_threshold=h_thr,
        ),
        num_edges=int(points[0]["batch_size"] / FRACTIONS[0]) if points else 0,
        points=points,
        gate=dict(
            max_fraction=GATE_FRACTION,
            max_ratio=GATE_RATIO,
            worst_ratio_at_gate=worst,
            bitwise_mismatches=mismatches,
            passed=worst < GATE_RATIO and not mismatches,
        ),
    )


def render(result: dict) -> str:
    return ascii_table(
        ["batch (% |E|)", "updates/batch", "arcs moved", "repair s",
         "rebuild s", "repair/rebuild"],
        [
            [f"{100 * p['fraction']:g}%", p["batch_size"], p["arcs_moved"],
             f"{p['repair_seconds']:.3e}", f"{p['rebuild_seconds']:.3e}",
             f"{100 * p['ratio']:.1f}%"]
            for p in result["points"]
        ],
        title=f"incremental repair vs {BATCHES} full rebuilds "
              f"(SCALE {SCALE}, {ROWS}x{COLS}, mixed batches):",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="re-run the sweep and gate it against this committed artifact",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=str(RESULTS),
        help="artifact destination when not in --check mode",
    )
    args = parser.parse_args(argv)

    result = run_sweep()
    print(render(result))
    gate = result["gate"]
    print(f"gate: repair/rebuild {100 * gate['worst_ratio_at_gate']:.1f}% "
          f"at batches <= {100 * gate['max_fraction']:g}% of |E| "
          f"(bound {100 * gate['max_ratio']:g}%), "
          f"bitwise {'ok' if not gate['bitwise_mismatches'] else 'MISMATCH'}")

    ok = gate["passed"]
    if not ok:
        for m in gate["bitwise_mismatches"][:8]:
            print(f"MISMATCH: {m}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        for base_p, new_p in zip(baseline["points"], result["points"]):
            drift = abs(new_p["ratio"] - base_p["ratio"]) / base_p["ratio"]
            if drift > CHECK_TOLERANCE:
                print(f"FAIL: ratio at {100 * new_p['fraction']:g}% |E| "
                      f"drifted {100 * drift:.1f}% from baseline "
                      f"({base_p['ratio']:.3f} -> {new_p['ratio']:.3f}); "
                      f"regenerate {args.check} if this is intended")
                ok = False
        print(f"check vs {args.check}: {'PASS' if ok else 'FAIL'}")
    else:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"baseline: {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
