"""Trace-export smoke check: a SCALE-10 traced BFS round-trips to JSON.

Not a paper figure — a CI gate for the observability layer: the driver
must export Chrome trace_event JSON that (a) survives ``json.loads``,
(b) has monotonically nested span timestamps on the simulated clock, and
(c) carries byte counters summing to the run's TrafficLedger totals.
"""

import json

from conftest import emit

from repro.graph500.driver import run_graph500
from repro.obs import Tracer, render_flame, write_chrome_trace


def test_trace_smoke(benchmark, results_dir):
    tracer = Tracer()
    report = benchmark.pedantic(
        lambda: run_graph500(10, 2, 2, num_roots=2, tracer=tracer),
        rounds=1,
        iterations=1,
    )
    assert report.validated

    trace_path = results_dir / "trace_smoke.json"
    write_chrome_trace(tracer, trace_path)
    doc = json.loads(trace_path.read_text())  # (a) round-trips
    events = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    assert len(events) == len(tracer.spans)

    # (b) monotone nesting: every span closed, within its parent's
    # simulated window, and charge leaves never run the clock backwards.
    by_sid = {sp.sid: sp for sp in tracer.spans}
    for sp in tracer.spans:
        assert sp.closed and sp.sim_end >= sp.sim_start
        if sp.parent is not None:
            parent = by_sid[sp.parent]
            assert parent.sim_start <= sp.sim_start <= sp.sim_end <= parent.sim_end

    # (c) traced bytes == ledger bytes over all roots.
    ledger_bytes = sum(r.ledger.total_bytes for r in report.results)
    assert tracer.counter_total("bytes") == ledger_bytes

    emit(results_dir, "trace_smoke_flame", render_flame(tracer, min_share=0.01))
    benchmark.extra_info["num_spans"] = len(tracer.spans)
    benchmark.extra_info["trace_bytes"] = ledger_bytes
