"""Resilience overhead: checkpoint cadence vs. cost vs. recovery time.

Quantifies what the resilience subsystem charges on the SCALE-10 smoke
workload (the same pinned shape as the perf-gate baseline):

1. **Cadence sweep** — fault-free runs at ``--checkpoint-every`` 0/1/2/4,
   reporting the simulated-time overhead each cadence adds over the
   uncheckpointed run and the bytes persisted.
2. **Recovery cost** — a rank crash at iteration 2 recovered (a) from the
   latest every-level checkpoint and (b) from scratch, reporting the
   end-to-end inflation, the wasted (aborted-attempt) seconds, and the
   levels each strategy re-executes.  Checkpointing always saves
   re-executed levels; whether it saves *time* depends on scale — at
   SCALE 10 the fixed checkpoint-write collectives dominate the
   microseconds-long traversal, which is exactly the cadence-vs-overhead
   trade-off this artifact records.

Emits ``results/BENCH_resilience.json`` (committed, like the perf-gate
baseline) plus a rendered ``resilience_overhead.txt`` table.  Everything
is simulated and seeded, so the artifact is deterministic.
"""

import json

import numpy as np
from conftest import emit

from repro.analysis.experiments import build_setup, run_15d
from repro.analysis.reporting import ascii_table
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.resilience import FaultInjector, LevelCheckpointer, run_with_recovery

CADENCES = (0, 1, 2, 4)
CRASH_SPEC = "crash:rank=3,iter=2"


def _engine(setup, part):
    return DistributedBFS(
        part, machine=setup.machine,
        config=BFSConfig(e_threshold=128, h_threshold=16),
    )


def test_resilience_overhead(benchmark, results_dir):
    setup = build_setup(10, 2, 2, seed=7)
    part = partition_graph(
        setup.src, setup.dst, setup.num_vertices, setup.mesh,
        e_threshold=128, h_threshold=16,
    )

    def run_all():
        cadence_rows = []
        golden = None
        for every in CADENCES:
            _, res = run_15d(
                setup, e_threshold=128, h_threshold=16,
                checkpoint_every=every,
            )
            if golden is None:
                golden = res
            ckpt_bytes = sum(
                e.total_bytes for e in res.ledger.comm_events
                if e.phase == "checkpoint"
            )
            cadence_rows.append({
                "checkpoint_every": every,
                "total_seconds": res.total_seconds,
                "overhead_pct": 100.0 * (
                    res.total_seconds / golden.total_seconds - 1.0
                ),
                "checkpoint_bytes": ckpt_bytes,
                "parents_match": bool(
                    np.array_equal(res.parent, golden.parent)
                ),
            })

        recovery_rows = []
        for label, checkpointer in (
            ("from checkpoint (every=1)",
             LevelCheckpointer(every=1, mesh=setup.mesh)),
            ("from scratch", None),
        ):
            out = run_with_recovery(
                _engine(setup, part), setup.root,
                faults=FaultInjector(CRASH_SPEC),
                checkpointer=checkpointer,
            )
            levels = len(golden.iterations)
            recovery_rows.append({
                "strategy": label,
                "resumed_from_iteration": out.resumed_from[0],
                "levels_reexecuted": levels - 1 - out.resumed_from[0],
                "total_seconds": out.result.total_seconds,
                "wasted_seconds": out.wasted_seconds,
                "inflation_pct": 100.0 * (
                    out.result.total_seconds / golden.total_seconds - 1.0
                ),
                "parents_match": bool(
                    np.array_equal(out.result.parent, golden.parent)
                ),
            })
        return cadence_rows, recovery_rows

    cadence_rows, recovery_rows = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    assert all(r["parents_match"] for r in cadence_rows + recovery_rows)
    assert cadence_rows[0]["overhead_pct"] == 0.0
    # Denser cadence -> more persisted bytes.
    ck = [r["checkpoint_bytes"] for r in cadence_rows]
    assert ck[0] == 0 and ck[1] > ck[2] > ck[3] > 0
    # Checkpointed recovery re-executes strictly fewer levels than a
    # from-scratch restart (time can still favour scratch at smoke scale,
    # where the checkpoint-write collectives dominate the traversal).
    assert (
        recovery_rows[0]["levels_reexecuted"]
        < recovery_rows[1]["levels_reexecuted"]
    )

    doc = {
        "schema": "repro.bench_resilience/1",
        "config": dict(scale=10, rows=2, cols=2, seed=7,
                       e_threshold=128, h_threshold=16,
                       crash=CRASH_SPEC),
        "cadence": cadence_rows,
        "recovery": recovery_rows,
    }
    (results_dir / "BENCH_resilience.json").write_text(
        json.dumps(doc, indent=2) + "\n"
    )

    text = ascii_table(
        ["every", "sim seconds", "overhead", "ckpt KiB"],
        [
            [r["checkpoint_every"], f"{r['total_seconds']:.3e}",
             f"{r['overhead_pct']:+.1f}%",
             f"{r['checkpoint_bytes'] / 1024:.1f}"]
            for r in cadence_rows
        ],
        title="checkpoint cadence overhead (SCALE 10, 2x2):",
    ) + "\n\n" + ascii_table(
        ["recovery strategy", "resumed from", "levels redone",
         "sim seconds", "inflation"],
        [
            [r["strategy"], r["resumed_from_iteration"],
             r["levels_reexecuted"],
             f"{r['total_seconds']:.3e}", f"{r['inflation_pct']:+.1f}%"]
            for r in recovery_rows
        ],
        title=f"crash recovery ({CRASH_SPEC}):",
    )
    emit(results_dir, "resilience_overhead", text)

    benchmark.extra_info["ckpt_every1_overhead_pct"] = round(
        cadence_rows[1]["overhead_pct"], 2
    )
    benchmark.extra_info["recovery_inflation_pct"] = round(
        recovery_rows[0]["inflation_pct"], 2
    )
