"""Tests for the interconnect model."""

import numpy as np
import pytest

from repro.machine.network import MachineSpec


class TestMachineSpec:
    def test_defaults(self):
        m = MachineSpec()
        assert m.num_nodes == 256
        assert m.nodes_per_supernode == 256
        assert m.nic_bytes_per_s == pytest.approx(25e9)
        assert m.inter_supernode_bytes_per_s == pytest.approx(25e9 / 8)

    def test_supernode_of(self):
        m = MachineSpec(num_nodes=1024, nodes_per_supernode=256)
        assert m.num_supernodes == 4
        sn = m.supernode_of(np.array([0, 255, 256, 1023]))
        assert sn.tolist() == [0, 0, 1, 3]

    def test_supernode_count_rounds_up(self):
        m = MachineSpec(num_nodes=300, nodes_per_supernode=256)
        assert m.num_supernodes == 2

    def test_same_supernode(self):
        m = MachineSpec(num_nodes=512)
        assert bool(m.same_supernode(0, 255))
        assert not bool(m.same_supernode(0, 256))

    def test_node_out_of_range(self):
        m = MachineSpec(num_nodes=8)
        with pytest.raises(ValueError):
            m.supernode_of(8)

    def test_bandwidth_for(self):
        m = MachineSpec()
        assert m.bandwidth_for(False) == pytest.approx(25e9)
        assert m.bandwidth_for(True) == pytest.approx(25e9 / 8)

    def test_collective_latency_grows_with_participants(self):
        m = MachineSpec(num_nodes=4096)
        assert m.collective_latency(1024) > m.collective_latency(4)
        with pytest.raises(ValueError):
            m.collective_latency(0)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            MachineSpec(num_nodes=0)
        with pytest.raises(ValueError):
            MachineSpec(fat_tree_oversubscription=0.5)
        with pytest.raises(ValueError):
            MachineSpec(nodes_per_supernode=0)
