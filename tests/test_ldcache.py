"""Tests for the LDCache pull-rate model (§3.1.2 / §3.3)."""

import pytest

from repro.machine.chip import ChipSpec
from repro.machine.costmodel import NodeKernelRates


class TestLDCacheRate:
    def setup_method(self):
        self.rates = NodeKernelRates()

    def test_tiny_working_set_beats_gld(self):
        fast = self.rates.pull_rate_ldcache(1 << 16)
        assert fast > 5 * self.rates.pull_rate_unsegmented()

    def test_monotone_degradation(self):
        sizes = [1 << k for k in range(18, 30, 2)]
        rates = [self.rates.pull_rate_ldcache(s) for s in sizes]
        assert all(b <= a for a, b in zip(rates, rates[1:]))

    def test_collapses_to_gld_at_paper_scale(self):
        """§3.3: millions of vertices per node defeat the cache."""
        big = self.rates.pull_rate_ldcache(100_000_000)
        assert big < 1.1 * self.rates.pull_rate_unsegmented() * 1.05

    def test_segmenting_still_wins_at_scale(self):
        big = self.rates.pull_rate_ldcache(100_000_000)
        assert self.rates.pull_rate_segmented() > 4 * big

    def test_hit_rate_floor(self):
        # working set of 0/1 bits never divides by zero
        assert self.rates.pull_rate_ldcache(1) > 0

    def test_bigger_cache_helps(self):
        big_cache = NodeKernelRates(chip=ChipSpec(ldm_bytes=1024 * 1024))
        ws = 1 << 23
        assert big_cache.pull_rate_ldcache(ws) > self.rates.pull_rate_ldcache(ws)
