"""Tests for BFSRunResult metrics and figure-shaped queries."""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.core.metrics import BFSRunResult, IterationRecord
from repro.graph500.rmat import generate_edges
from repro.graph500.spec import Graph500Problem
from repro.machine.costmodel import CollectiveKind, CostModel
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh


@pytest.fixture(scope="module")
def run_result():
    scale = 11
    src, dst = generate_edges(scale, seed=3)
    machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
    mesh = ProcessMesh(2, 2, machine=machine)
    part = partition_graph(
        src, dst, 1 << scale, mesh, e_threshold=128, h_threshold=16
    )
    engine = DistributedBFS(
        part, machine=machine, config=BFSConfig(e_threshold=128, h_threshold=16)
    )
    root = int(np.argmax(part.degrees))
    return engine, engine.run(root)


class TestBasics:
    def test_counts(self, run_result):
        engine, res = run_result
        assert res.num_iterations == len(res.iterations)
        assert 0 < res.num_visited <= engine.part.num_vertices
        assert res.num_input_edges == engine.part.total_arcs // 2

    def test_gteps_with_and_without_problem(self, run_result):
        _, res = run_result
        own = res.simulated_gteps()
        prob = res.simulated_gteps(Graph500Problem(scale=11))
        assert own > 0 and prob > 0

    def test_gteps_zero_time(self):
        ledger = TrafficLedger(CostModel(MachineSpec()))
        res = BFSRunResult(
            root=0,
            parent=np.array([0]),
            iterations=[],
            ledger=ledger,
            total_seconds=0.0,
            num_input_edges=10,
        )
        assert res.simulated_gteps() == 0.0


class TestFigureQueries:
    def test_activation_trace_fractions(self, run_result):
        engine, res = run_result
        trace = res.activation_trace(engine.part.class_sizes())
        for cls in ("E", "H", "L"):
            assert len(trace[cls]) == res.num_iterations
            assert all(0.0 <= x <= 1.0 for x in trace[cls])
        # activations sum to (nearly) the whole class for reachable classes
        assert sum(trace["E"]) == pytest.approx(1.0, abs=0.05)

    def test_time_by_phase_sums_to_total(self, run_result):
        _, res = run_result
        assert sum(res.time_by_phase().values()) == pytest.approx(
            res.total_seconds, rel=1e-9
        )

    def test_time_by_category_sums_to_total(self, run_result):
        _, res = run_result
        assert sum(res.time_by_category().values()) == pytest.approx(
            res.total_seconds, rel=1e-9
        )

    def test_time_by_direction_sums_to_total(self, run_result):
        _, res = run_result
        assert sum(res.time_by_direction().values()) == pytest.approx(
            res.total_seconds, rel=1e-9
        )

    def test_category_names_match_fig11(self, run_result):
        _, res = run_result
        cats = set(res.time_by_category())
        assert {"compute", "imbalance/latency"} <= cats
        assert "alltoallv" in cats or "allgather" in cats

    def test_directions_of_unknown_component(self, run_result):
        _, res = run_result
        assert set(res.directions_of("nope")) == {"-"}

    def test_iteration_records_have_directions(self, run_result):
        _, res = run_result
        for rec in res.iterations:
            assert set(rec.directions) == {
                "EH2EH", "E2L", "L2E", "H2L", "L2H", "L2L",
            }
