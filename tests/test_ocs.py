"""Tests for OCS-RMA and the MPE bucketing baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.chip import SW26010_PRO, ChipSpec
from repro.machine.costmodel import NodeKernelRates
from repro.sort.bucket import bucket_partition, mpe_bucket_sort
from repro.sort.ocs import OCSConfig, simulate_ocs_rma


class TestBucketPartition:
    def test_simple(self):
        values = np.array([10, 20, 30, 40])
        buckets = np.array([1, 0, 1, 0])
        out, offsets = bucket_partition(values, buckets, 2)
        assert out.tolist() == [20, 40, 10, 30]
        assert offsets.tolist() == [0, 2, 4]

    def test_stability(self):
        values = np.arange(8)
        buckets = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        out, _ = bucket_partition(values, buckets, 2)
        assert out.tolist() == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_empty_buckets_allowed(self):
        out, offsets = bucket_partition(np.array([1]), np.array([3]), 5)
        assert offsets.tolist() == [0, 0, 0, 0, 1, 1]

    def test_2d_records(self):
        values = np.array([[1, 2], [3, 4], [5, 6]])
        out, offsets = bucket_partition(values, np.array([1, 0, 1]), 2)
        assert out.tolist() == [[3, 4], [1, 2], [5, 6]]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            bucket_partition(np.array([1]), np.array([5]), 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="match"):
            bucket_partition(np.array([1, 2]), np.array([0]), 2)

    @given(st.lists(st.integers(0, 15), max_size=200), st.integers(16, 32))
    @settings(max_examples=50, deadline=None)
    def test_property_is_stable_permutation(self, bucket_list, num_buckets):
        buckets = np.array(bucket_list, dtype=np.int64)
        values = np.arange(buckets.size)
        out, offsets = bucket_partition(values, buckets, num_buckets)
        # permutation
        assert sorted(out.tolist()) == values.tolist()
        # each slice has the right bucket and preserves original order
        for b in range(num_buckets):
            sl = out[offsets[b] : offsets[b + 1]]
            assert np.all(buckets[sl] == b)
            assert np.all(np.diff(sl) > 0) if sl.size > 1 else True


class TestOCSFunctional:
    def test_bucketing_correct(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**63 - 1, size=10_000)
        buckets = values & 0xFF
        res = simulate_ocs_rma(values, buckets, 256)
        assert res.num_messages == 10_000
        assert sorted(res.values.tolist()) == sorted(values.tolist())
        for b in range(256):
            sl = res.values[res.offsets[b] : res.offsets[b + 1]]
            assert np.all((sl & 0xFF) == b)

    def test_empty_input(self):
        res = simulate_ocs_rma(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 8
        )
        assert res.num_messages == 0
        assert res.num_batches == 0
        assert res.throughput_bytes_per_s == pytest.approx(0.0)

    def test_batch_count_includes_final_flush(self):
        # One message still needs one batch flush.
        res = simulate_ocs_rma(np.array([7]), np.array([0]), 4)
        assert res.num_batches == 1

    def test_batch_count_scales(self):
        cfg = OCSConfig(num_cgs=1)
        n = cfg.messages_per_batch * cfg.producers_per_cg * 4
        values = np.arange(n, dtype=np.int64)
        buckets = np.zeros(n, dtype=np.int64)  # all one bucket
        res = simulate_ocs_rma(values, buckets, 1, config=cfg)
        # each producer sends 4 full batches to consumer 0
        assert res.num_batches == cfg.producers_per_cg * 4

    def test_atomics_only_with_multiple_cgs(self):
        values = np.arange(1000, dtype=np.int64)
        buckets = values % 16
        one = simulate_ocs_rma(values, buckets, 16, config=OCSConfig(num_cgs=1))
        six = simulate_ocs_rma(values, buckets, 16, config=OCSConfig(num_cgs=6))
        assert one.num_atomics == 0
        assert six.num_atomics == six.num_batches > 0

    def test_too_many_cgs_rejected(self):
        with pytest.raises(ValueError, match="CGs"):
            simulate_ocs_rma(
                np.array([1]), np.array([0]), 1, config=OCSConfig(num_cgs=7)
            )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            OCSConfig(buffer_bytes=4, message_bytes=8)
        with pytest.raises(ValueError):
            OCSConfig(num_cgs=0)
        with pytest.raises(ValueError):
            OCSConfig(producers_per_cg=0)


class TestOCSModeledPerformance:
    """Fig. 14 shape: 6 CGs >> 1 CG >> MPE with ~47% utilization."""

    @staticmethod
    def run(num_cgs, n=1 << 20, seed=0):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**63 - 1, size=n)
        return simulate_ocs_rma(
            values, values & 0xFF, 256, config=OCSConfig(num_cgs=num_cgs)
        )

    def test_one_cg_near_paper(self):
        gbps = self.run(1).throughput_bytes_per_s / 1e9
        assert gbps == pytest.approx(12.5, rel=0.2)

    def test_six_cg_near_paper(self):
        gbps = self.run(6).throughput_bytes_per_s / 1e9
        assert gbps == pytest.approx(58.6, rel=0.2)

    def test_utilization_under_half(self):
        util = self.run(6).bandwidth_utilization()
        assert 0.38 < util < 0.50

    def test_speedup_vs_mpe_three_orders(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**63 - 1, size=1 << 18)
        mpe = mpe_bucket_sort(values, values & 0xFF, 256)
        ocs = simulate_ocs_rma(values, values & 0xFF, 256)
        speedup = ocs.throughput_bytes_per_s / mpe.throughput_bytes_per_s
        assert 900 < speedup < 2000  # paper: 1443x

    def test_event_model_matches_closed_form(self):
        """The event-driven simulator and NodeKernelRates agree."""
        rates = NodeKernelRates()
        for cgs in (1, 6):
            sim = self.run(cgs).throughput_bytes_per_s
            closed = rates.message_throughput_bytes_per_s(cgs)
            assert sim == pytest.approx(closed, rel=0.1)

    def test_skewed_buckets_slower_than_uniform(self):
        """All messages to one consumer serializes the consumer side."""
        n = 1 << 18
        values = np.arange(n, dtype=np.int64)
        uniform = simulate_ocs_rma(values, values % 256, 256)
        skewed = simulate_ocs_rma(values, np.zeros(n, dtype=np.int64), 256)
        assert skewed.modeled_seconds > uniform.modeled_seconds

    def test_mpe_throughput_near_paper(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**63 - 1, size=1 << 16)
        res = mpe_bucket_sort(values, values & 0xFF, 256)
        assert res.throughput_bytes_per_s / 1e9 == pytest.approx(0.0406, rel=0.05)
