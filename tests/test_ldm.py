"""Tests for the LDM offset mapping (paper Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.ldm import LDMLayout, SegmentBitVectorMap


class TestLDMLayout:
    def test_line_round_robin(self):
        layout = LDMLayout(line_bytes=1024, num_cpes=64)
        # Byte 0 -> line 0 -> CPE 0; byte 1024 -> line 1 -> CPE 1.
        cpe, local = layout.locate_byte(np.array([0, 1024, 1024 * 64]))
        assert cpe.tolist() == [0, 1, 0]
        assert local.tolist() == [0, 0, 1024]

    def test_offset_within_line_preserved(self):
        layout = LDMLayout()
        cpe, local = layout.locate_byte(1024 * 5 + 37)
        assert int(cpe) == 5
        assert int(local) == 37

    def test_bit_mapping(self):
        layout = LDMLayout()
        cpe, local, bit = layout.locate_bit(8 * (1024 * 64) + 3)
        assert int(cpe) == 0
        assert int(local) == 1024
        assert int(bit) == 3

    def test_roundtrip_bijection(self):
        layout = LDMLayout(line_bytes=256, num_cpes=8)
        offsets = np.arange(0, 256 * 8 * 5)
        cpe, local = layout.locate_byte(offsets)
        back = layout.global_byte(cpe, local)
        assert np.array_equal(back, offsets)

    def test_capacity(self):
        layout = LDMLayout(num_cpes=64, ldm_budget_bytes=96 * 1024)
        assert layout.capacity_bytes == 64 * 96 * 1024
        # Paper: a ~2 MB per-CG bit-vector segment must fit.
        assert layout.fits(8 * 2 * 1024 * 1024)

    def test_power_of_two_lines_required(self):
        with pytest.raises(ValueError):
            LDMLayout(line_bytes=1000)

    @given(st.integers(0, 10**7))
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, offset):
        layout = LDMLayout()
        cpe, local = layout.locate_byte(offset)
        assert 0 <= int(cpe) < 64
        assert int(layout.global_byte(cpe, local)) == offset


class TestSegmentBitVectorMap:
    def test_rejects_oversized_segment(self):
        with pytest.raises(ValueError, match="exceeds"):
            SegmentBitVectorMap(0, 10**9)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="inverted"):
            SegmentBitVectorMap(10, 5)

    def test_serving_cpe_range(self):
        seg = SegmentBitVectorMap(1000, 1000 + 8 * 1024 * 64 * 2)
        cpes = seg.serving_cpe(np.arange(1000, 1000 + 100_000, 997))
        assert cpes.min() >= 0 and cpes.max() < 64

    def test_serving_cpe_out_of_range(self):
        seg = SegmentBitVectorMap(100, 200)
        with pytest.raises(ValueError):
            seg.serving_cpe(np.array([99]))

    def test_rma_fraction_near_63_over_64(self):
        seg = SegmentBitVectorMap(0, 8 * 1024 * 64 * 4)
        rng = np.random.default_rng(0)
        vertices = rng.integers(0, seg.num_vertices, size=20_000)
        readers = rng.integers(0, 64, size=20_000)
        frac = seg.rma_fraction(vertices, readers)
        assert frac == pytest.approx(63 / 64, abs=0.01)

    def test_rma_fraction_empty(self):
        seg = SegmentBitVectorMap(0, 100)
        assert seg.rma_fraction(np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == 0.0
