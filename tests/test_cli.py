"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_mesh_parsing(self):
        args = build_parser().parse_args(["bfs", "--mesh", "4x8"])
        assert args.mesh == (4, 8)

    def test_bad_mesh_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bfs", "--mesh", "4by8"])

    def test_zero_mesh_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bfs", "--mesh", "0x8"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_bfs(self, capsys):
        rc = main(["bfs", "--scale", "10", "--mesh", "2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sim GTEPS" in out
        assert "per-iteration directions" in out

    def test_bfs_explicit_root(self, capsys):
        rc = main(["bfs", "--scale", "10", "--mesh", "2x2", "--root", "5"])
        assert rc == 0

    def test_graph500(self, capsys):
        rc = main([
            "graph500", "--scale", "10", "--mesh", "2x2", "--roots", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "harmonic_mean_TEPS" in out
        assert "validation: PASSED" in out

    def test_graph500_no_validate(self, capsys):
        rc = main([
            "graph500", "--scale", "10", "--mesh", "2x2", "--roots", "2",
            "--no-validate",
        ])
        assert rc == 0

    def test_sweep(self, capsys):
        rc = main(["sweep", "--points", "9:2x2,10:2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "weak scaling" in out
        assert "100%" in out

    def test_partitions(self, capsys):
        rc = main(["partitions", "--scale", "10", "--mesh", "2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1.5D (ours)" in out
        assert "2D" in out

    def test_ocs(self, capsys):
        rc = main(["ocs", "--mib", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "6 CGs" in out
        assert "utilization" in out

    def test_bfs_trace_export(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        rc = main([
            "bfs", "--scale", "10", "--mesh", "2x2", "--trace", str(out_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace:" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["generator"] == "repro.obs"

    def test_bfs_flame_summary(self, capsys):
        rc = main(["bfs", "--scale", "10", "--mesh", "2x2", "--flame"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "iteration" in out and "share" in out

    def test_graph500_trace_export(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "g5.json"
        rc = main([
            "graph500", "--scale", "10", "--mesh", "2x2", "--roots", "2",
            "--trace", str(out_path),
        ])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert {"construction", "root", "iteration"} <= names

    def test_threshold_flags(self, capsys):
        rc = main([
            "bfs", "--scale", "10", "--mesh", "2x2",
            "--e-threshold", "64", "--h-threshold", "8",
        ])
        assert rc == 0

    def test_sssp_delta_stepping(self, capsys):
        rc = main(["sssp", "--scale", "10", "--mesh", "2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "buckets" in out and "relaxations" in out

    def test_sssp_bellman_ford(self, capsys):
        rc = main([
            "sssp", "--scale", "10", "--mesh", "2x2",
            "--algorithm", "bellman-ford",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Bellman-Ford rounds" in out

    def test_sssp_explicit_delta(self, capsys):
        rc = main(["sssp", "--scale", "9", "--mesh", "2x2", "--delta", "0.25"])
        assert rc == 0
        assert "delta = 0.25" in capsys.readouterr().out


class TestResilienceFlags:
    def test_malformed_faults_spec_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["bfs", "--faults", "explode:rank=1"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown fault kind" in err and "usage" in err

    def test_out_of_range_rank_exits_two(self, capsys):
        rc = main([
            "graph500", "--scale", "10", "--mesh", "2x2", "--roots", "1",
            "--faults", "crash:rank=99,iter=1", "--checkpoint-every", "1",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "rank 99" in err

    def test_graph500_recovers_from_crash(self, capsys):
        rc = main([
            "graph500", "--scale", "10", "--mesh", "2x2", "--seed", "7",
            "--roots", "2", "--faults", "crash:rank=1,iter=2",
            "--checkpoint-every", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validation: PASSED" in out
        assert "1 crash(es), 1 restart(s)" in out

    def test_bfs_with_faults(self, capsys):
        rc = main([
            "bfs", "--scale", "10", "--mesh", "2x2",
            "--faults", "drop:phase=L2L,count=1,retries=1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resilience:" in out

    def test_chaos_gate_passes(self, capsys):
        rc = main([
            "chaos", "--scale", "10", "--mesh", "2x2", "--seed", "7",
            "--roots", "2", "--matrix", "crash:rank=1,iter=2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MATCH" in out and "chaos gate: PASS" in out

    def test_chaos_malformed_matrix_exits_two(self, capsys):
        rc = main(["chaos", "--scale", "10", "--mesh", "2x2",
                   "--matrix", "kaboom"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestMainEntryPoint:
    """``python -m repro`` error surfaces, via the real interpreter."""

    def _run(self, *argv):
        import subprocess
        import sys as _sys
        from pathlib import Path

        repo = Path(__file__).parent.parent
        return subprocess.run(
            [_sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_unknown_subcommand_exits_two_with_usage(self):
        proc = self._run("nosuchcmd")
        assert proc.returncode == 2
        assert "usage:" in proc.stderr
        assert "invalid choice" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_malformed_faults_exits_two_with_usage(self):
        proc = self._run("bfs", "--faults", "drop:count")
        assert proc.returncode == 2
        assert "usage:" in proc.stderr
        assert "expected key=value" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_unknown_backend_exits_two_with_usage(self):
        proc = self._run("bfs", "--scale", "10", "--mesh", "2x2",
                         "--backend", "cuda")
        assert proc.returncode == 2
        assert "usage:" in proc.stderr
        assert "invalid choice" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_nonpositive_workers_exits_two_with_usage(self):
        proc = self._run("bfs", "--scale", "10", "--mesh", "2x2",
                         "--backend", "shmem", "--workers", "0")
        assert proc.returncode == 2
        assert "usage:" in proc.stderr
        assert "workers must be >= 1" in proc.stderr
        assert "Traceback" not in proc.stderr


class TestBackendFlags:
    """--backend/--workers wiring on the in-process entry point."""

    def test_bfs_shmem_backend_runs(self, capsys):
        rc = main(["bfs", "--scale", "10", "--mesh", "2x2",
                   "--backend", "shmem", "--workers", "2"])
        assert rc == 0
        assert "visited" in capsys.readouterr().out

    def test_shmem_matches_simulated_output(self, capsys):
        argv = ["bfs", "--scale", "10", "--mesh", "2x2", "--seed", "7"]
        assert main(argv) == 0
        sim_out = capsys.readouterr().out
        assert main(argv + ["--backend", "shmem", "--workers", "2"]) == 0
        assert capsys.readouterr().out == sim_out

    def test_graph500_accepts_backend(self, capsys):
        rc = main(["graph500", "--scale", "10", "--mesh", "2x2",
                   "--roots", "2", "--backend", "shmem", "--workers", "2"])
        assert rc == 0
        assert "validation: PASSED" in capsys.readouterr().out


class TestReportAndCompare:
    def _write_report(self, path, **kwargs):
        args = ["report", "--scale", "10", "--mesh", "2x2", "--seed", "7",
                "--roots", "2", "--out", str(path)]
        for flag, value in kwargs.items():
            args += [f"--{flag}", str(value)]
        return main(args)

    def test_report_writes_artifact(self, capsys, tmp_path):
        from repro.obs.report import RUN_REPORT_SCHEMA, RunReport

        out = tmp_path / "run.json"
        rc = self._write_report(out)
        assert rc == 0
        report = RunReport.load(out)
        assert report.schema == RUN_REPORT_SCHEMA
        assert report.metrics["total_bytes"] > 0
        assert report.directions  # per-iteration matrix present

    def test_report_stdout_render(self, capsys):
        rc = main(["report", "--scale", "10", "--mesh", "2x2", "--roots", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tracked metrics" in out
        assert "direction matrix" in out

    def test_report_prometheus_export(self, capsys, tmp_path):
        out = tmp_path / "run.json"
        prom = tmp_path / "metrics.prom"
        rc = self._write_report(out, prometheus=prom)
        assert rc == 0
        text = prom.read_text()
        assert "# TYPE repro_comm_bytes_total counter" in text
        assert text.endswith("\n")

    def test_report_smoke_matches_helper(self, capsys, tmp_path):
        from repro.obs.report import bfs_smoke_report

        out = tmp_path / "smoke.json"
        rc = main(["report", "--smoke", "--out", str(out)])
        assert rc == 0
        from repro.obs.metrics import MetricsRegistry

        expected = bfs_smoke_report(metrics=MetricsRegistry())
        import json

        assert json.loads(out.read_text()) == expected.to_dict()

    def test_compare_identical_exits_zero(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert self._write_report(a) == 0
        assert self._write_report(b) == 0
        rc = main(["compare", str(a), str(b), "--max-regress", "5%"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_compare_regression_exits_nonzero(self, capsys, tmp_path):
        import json

        a, b = tmp_path / "a.json", tmp_path / "bad.json"
        assert self._write_report(a) == 0
        doc = json.loads(a.read_text())
        doc["metrics"]["total_seconds"] *= 1.25
        b.write_text(json.dumps(doc))
        rc = main(["compare", str(a), str(b), "--max-regress", "5%"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSED" in out
        assert "total_seconds" in out

    def test_compare_bad_artifact_exits_two(self, capsys, tmp_path):
        bogus = tmp_path / "nope.json"
        bogus.write_text('{"schema": "something.else/9"}')
        rc = main(["compare", str(bogus), str(bogus)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_compare_bad_threshold_exits_two(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        assert self._write_report(a) == 0
        rc = main(["compare", str(a), str(a), "--max-regress", "nope"])
        assert rc == 2
        rc = main(["compare", str(a), str(a), "--max-regress=-3%"])
        assert rc == 2


class TestMutate:
    def test_stream_passes_equivalence(self, capsys):
        rc = main([
            "mutate", "--scale", "9", "--mesh", "2x2",
            "--updates", "mixed:batches=3,size=16",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "equivalence vs rebuild: PASS" in out
        assert "repair cost" in out

    def test_batch_size_overrides_spec(self, capsys):
        rc = main([
            "mutate", "--scale", "9", "--mesh", "2x2",
            "--updates", "insert:batches=2,size=64", "--batch-size", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "|        4 |" in out  # inserted column shows 4 per batch

    def test_malformed_spec_exits_two_with_usage(self):
        with pytest.raises(SystemExit) as exc:
            main(["mutate", "--updates", "upsert:size=4"])
        assert exc.value.code == 2

    def test_missing_spec_exits_two(self, capsys):
        rc = main(["mutate", "--scale", "9", "--mesh", "2x2"])
        assert rc == 2
        assert "usage" in capsys.readouterr().err

    def test_bad_batch_size_exits_two(self, capsys):
        rc = main([
            "mutate", "--scale", "9", "--mesh", "2x2",
            "--updates", "insert", "--batch-size", "0",
        ])
        assert rc == 2

    def test_smoke_gate(self, capsys):
        rc = main(["mutate", "--smoke"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "dynamic gate: PASS" in out
        assert "patched" in out
