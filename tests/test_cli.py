"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_mesh_parsing(self):
        args = build_parser().parse_args(["bfs", "--mesh", "4x8"])
        assert args.mesh == (4, 8)

    def test_bad_mesh_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bfs", "--mesh", "4by8"])

    def test_zero_mesh_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bfs", "--mesh", "0x8"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_bfs(self, capsys):
        rc = main(["bfs", "--scale", "10", "--mesh", "2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sim GTEPS" in out
        assert "per-iteration directions" in out

    def test_bfs_explicit_root(self, capsys):
        rc = main(["bfs", "--scale", "10", "--mesh", "2x2", "--root", "5"])
        assert rc == 0

    def test_graph500(self, capsys):
        rc = main([
            "graph500", "--scale", "10", "--mesh", "2x2", "--roots", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "harmonic_mean_TEPS" in out
        assert "validation: PASSED" in out

    def test_graph500_no_validate(self, capsys):
        rc = main([
            "graph500", "--scale", "10", "--mesh", "2x2", "--roots", "2",
            "--no-validate",
        ])
        assert rc == 0

    def test_sweep(self, capsys):
        rc = main(["sweep", "--points", "9:2x2,10:2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "weak scaling" in out
        assert "100%" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--scale", "10", "--mesh", "2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1.5D (ours)" in out
        assert "2D" in out

    def test_ocs(self, capsys):
        rc = main(["ocs", "--mib", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "6 CGs" in out
        assert "utilization" in out

    def test_bfs_trace_export(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        rc = main([
            "bfs", "--scale", "10", "--mesh", "2x2", "--trace", str(out_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace:" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["generator"] == "repro.obs"

    def test_bfs_flame_summary(self, capsys):
        rc = main(["bfs", "--scale", "10", "--mesh", "2x2", "--flame"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "iteration" in out and "share" in out

    def test_graph500_trace_export(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "g5.json"
        rc = main([
            "graph500", "--scale", "10", "--mesh", "2x2", "--roots", "2",
            "--trace", str(out_path),
        ])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert {"construction", "root", "iteration"} <= names

    def test_threshold_flags(self, capsys):
        rc = main([
            "bfs", "--scale", "10", "--mesh", "2x2",
            "--e-threshold", "64", "--h-threshold", "8",
        ])
        assert rc == 0

    def test_sssp_delta_stepping(self, capsys):
        rc = main(["sssp", "--scale", "10", "--mesh", "2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "buckets" in out and "relaxations" in out

    def test_sssp_bellman_ford(self, capsys):
        rc = main([
            "sssp", "--scale", "10", "--mesh", "2x2",
            "--algorithm", "bellman-ford",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Bellman-Ford rounds" in out

    def test_sssp_explicit_delta(self, capsys):
        rc = main(["sssp", "--scale", "9", "--mesh", "2x2", "--delta", "0.25"])
        assert rc == 0
        assert "delta = 0.25" in capsys.readouterr().out
