"""Tests for incremental result patching (:mod:`repro.dynamic.patch`).

Every patched or recomputed result must be bit-identical to a fresh
traversal of the repaired graph — modes only describe how much work the
repair took, never what the answer is.
"""

import numpy as np
import pytest

from repro.core.config import BFSConfig
from repro.core.engine import DistributedBFS
from repro.dynamic.patch import (
    levels_from_parent,
    patch_bfs_result,
    patch_sssp_result,
)
from repro.dynamic.repair import IncrementalGraph
from repro.dynamic.updates import UpdateBatch
from repro.runtime.mesh import ProcessMesh

CONFIG = BFSConfig(e_threshold=8, h_threshold=4)


def _unit_weights(s, d):
    return np.ones(np.asarray(s, dtype=np.int64).shape, dtype=np.float64)


def _batch(ins=(), dels=()):
    pairs = list(ins) + list(dels)
    return UpdateBatch(
        src=np.array([p[0] for p in pairs], dtype=np.int64),
        dst=np.array([p[1] for p in pairs], dtype=np.int64),
        op=np.array([1] * len(ins) + [-1] * len(dels), dtype=np.int8),
    )


def _path_edges(n):
    return np.arange(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)


def _incremental(src, dst, n):
    return IncrementalGraph(
        src, dst, n, ProcessMesh(2, 2),
        e_threshold=CONFIG.e_threshold, h_threshold=CONFIG.h_threshold,
    )


def _engine(part):
    return DistributedBFS(part, config=CONFIG)


class TestLevelsFromParent:
    def test_path_levels(self):
        parent = np.array([0, 0, 1, 2, 3])
        assert levels_from_parent(parent, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_is_minus_one(self):
        parent = np.array([0, 0, -1, -1])
        assert levels_from_parent(parent, 0).tolist() == [0, 1, -1, -1]

    def test_forest_of_other_root_ignored(self):
        # Vertices parented in a different tree never gain a level.
        parent = np.array([0, 0, 3, 3])
        assert levels_from_parent(parent, 0).tolist() == [0, 1, -1, -1]


class TestBfsPatch:
    def test_deep_insert_resumes_mid_traversal(self):
        n = 20
        inc = _incremental(*_path_edges(n), n)
        old = _engine(inc.graph()).run(0)
        report = inc.apply_batch(_batch(ins=[(10, 19)]))
        engine = _engine(inc.graph())
        outcome = patch_bfs_result(old, engine, report.delta)
        assert outcome.mode == "patched"
        assert outcome.resumed_from is not None
        fresh = _engine(inc.rebuild_reference()).run(0)
        assert np.array_equal(outcome.result.parent, fresh.parent)

    def test_non_tree_delete_is_unchanged(self):
        # Triangle at the root: BFS(0) parents 1 and 2 to 0, so {1, 2}
        # is a non-tree edge and removing it changes nothing.
        src = np.array([0, 0, 1, 2, 3])
        dst = np.array([1, 2, 2, 3, 4])
        inc = _incremental(src, dst, 5)
        old = _engine(inc.graph()).run(0)
        assert old.parent[1] == 0 and old.parent[2] == 0
        report = inc.apply_batch(_batch(dels=[(1, 2)]))
        engine = _engine(inc.graph())
        outcome = patch_bfs_result(old, engine, report.delta)
        assert outcome.mode == "unchanged"
        assert outcome.result is old
        fresh = _engine(inc.rebuild_reference()).run(0)
        assert np.array_equal(outcome.result.parent, fresh.parent)

    def test_tree_delete_recomputes(self):
        n = 12
        inc = _incremental(*_path_edges(n), n)
        old = _engine(inc.graph()).run(0)
        report = inc.apply_batch(_batch(dels=[(5, 6)]))
        engine = _engine(inc.graph())
        outcome = patch_bfs_result(old, engine, report.delta)
        assert outcome.mode == "recomputed"
        fresh = _engine(inc.rebuild_reference()).run(0)
        assert np.array_equal(outcome.result.parent, fresh.parent)
        # The far half of the severed path is unreachable now.
        assert outcome.result.parent[6] == -1

    def test_insert_at_root_recomputes(self):
        # A chord landing at level <= 1 leaves no prefix to keep.
        n = 12
        inc = _incremental(*_path_edges(n), n)
        old = _engine(inc.graph()).run(0)
        report = inc.apply_batch(_batch(ins=[(0, 11)]))
        engine = _engine(inc.graph())
        outcome = patch_bfs_result(old, engine, report.delta)
        assert outcome.mode == "recomputed"
        fresh = _engine(inc.rebuild_reference()).run(0)
        assert np.array_equal(outcome.result.parent, fresh.parent)


class TestSsspPatch:
    def test_improving_insert_patches(self):
        n = 20
        inc = _incremental(*_path_edges(n), n)
        engine = _engine(inc.graph())
        from repro.dynamic.patch import _fresh_sssp

        old = _fresh_sssp(engine, 0, _unit_weights)
        report = inc.apply_batch(_batch(ins=[(2, 17)]))
        engine = _engine(inc.graph())
        outcome = patch_sssp_result(
            old, engine, report.delta, weight_of=_unit_weights
        )
        assert outcome.mode == "patched"
        fresh = _fresh_sssp(
            _engine(inc.rebuild_reference()), 0, _unit_weights
        )
        assert np.array_equal(outcome.result.distance, fresh.distance)
        assert outcome.result.distance[17] == 3.0

    def test_non_improving_insert_is_unchanged(self):
        # 1 and 2 are equidistant from 0; a unit-weight edge between
        # them cannot improve either side.
        src = np.array([0, 0, 1, 2])
        dst = np.array([1, 2, 3, 4])
        inc = _incremental(src, dst, 5)
        engine = _engine(inc.graph())
        from repro.dynamic.patch import _fresh_sssp

        old = _fresh_sssp(engine, 0, _unit_weights)
        report = inc.apply_batch(_batch(ins=[(1, 2)]))
        engine = _engine(inc.graph())
        outcome = patch_sssp_result(
            old, engine, report.delta, weight_of=_unit_weights
        )
        assert outcome.mode == "unchanged"
        assert outcome.result is old

    def test_tree_delete_recomputes(self):
        n = 12
        inc = _incremental(*_path_edges(n), n)
        engine = _engine(inc.graph())
        from repro.dynamic.patch import _fresh_sssp

        old = _fresh_sssp(engine, 0, _unit_weights)
        report = inc.apply_batch(_batch(dels=[(5, 6)]))
        engine = _engine(inc.graph())
        outcome = patch_sssp_result(
            old, engine, report.delta, weight_of=_unit_weights
        )
        assert outcome.mode == "recomputed"
        fresh = _fresh_sssp(
            _engine(inc.rebuild_reference()), 0, _unit_weights
        )
        assert np.array_equal(outcome.result.distance, fresh.distance)
        assert not np.isfinite(outcome.result.distance[6])


class TestPatchedChain:
    def test_results_chain_across_batches(self):
        """Patched results stay exact when each batch patches the
        previous batch's (already patched) result."""
        n = 32
        inc = _incremental(*_path_edges(n), n)
        res = _engine(inc.graph()).run(0)
        for pair in [(20, 31), (16, 27), (8, 30)]:
            report = inc.apply_batch(_batch(ins=[pair]))
            engine = _engine(inc.graph())
            res = patch_bfs_result(res, engine, report.delta).result
            fresh = _engine(inc.rebuild_reference()).run(0)
            assert np.array_equal(res.parent, fresh.parent)
