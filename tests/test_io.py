"""Tests for graph I/O."""

import numpy as np
import pytest

from repro.graphs.io import (
    load_edges_npz,
    load_edges_text,
    save_edges_npz,
    save_edges_text,
)

from helpers import random_edge_list


class TestNpzRoundtrip:
    def test_roundtrip(self, tmp_path):
        src, dst = random_edge_list(50, 200, seed=1)
        p = save_edges_npz(tmp_path / "g.npz", src, dst, 50, metadata={"scale": 6})
        s, d, n, meta = load_edges_npz(p)
        assert np.array_equal(s, src) and np.array_equal(d, dst)
        assert n == 50
        assert meta == {"scale": "6"}

    def test_no_metadata(self, tmp_path):
        src, dst = random_edge_list(10, 20)
        p = save_edges_npz(tmp_path / "g.npz", src, dst, 10)
        _, _, _, meta = load_edges_npz(p)
        assert meta == {}

    def test_creates_parent_dirs(self, tmp_path):
        src, dst = random_edge_list(10, 5)
        p = save_edges_npz(tmp_path / "a" / "b" / "g.npz", src, dst, 10)
        assert p.exists()

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mismatch"):
            save_edges_npz(tmp_path / "g.npz", np.array([1]), np.array([1, 2]), 5)

    def test_out_of_range_detected_on_load(self, tmp_path):
        p = save_edges_npz(tmp_path / "g.npz", np.array([7]), np.array([1]), 4)
        with pytest.raises(ValueError, match="out of range"):
            load_edges_npz(p)


class TestTextRoundtrip:
    def test_roundtrip(self, tmp_path):
        src, dst = random_edge_list(30, 100, seed=2)
        p = save_edges_text(tmp_path / "g.txt", src, dst, comment="test graph")
        s, d, n = load_edges_text(p)
        assert np.array_equal(s, src) and np.array_equal(d, dst)
        assert n == max(src.max(), dst.max()) + 1

    def test_comments_ignored(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# a SNAP-style header\n# another\n0 1\n1 2\n")
        s, d, n = load_edges_text(p)
        assert s.tolist() == [0, 1]
        assert d.tolist() == [1, 2]
        assert n == 3

    def test_explicit_vertex_count(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        _, _, n = load_edges_text(p, num_vertices=10)
        assert n == 10

    def test_empty_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# nothing\n")
        s, d, n = load_edges_text(p)
        assert s.size == 0 and n == 0

    def test_single_column_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0\n1\n")
        with pytest.raises(ValueError, match="two columns"):
            load_edges_text(p)

    def test_pipeline_integration(self, tmp_path):
        """A loaded text graph flows through partition + BFS end to end."""
        from repro.core import BFSConfig, DistributedBFS, partition_graph
        from repro.graph500.validate import validate_bfs_result
        from repro.graphs.csr import build_csr, symmetrize_edges
        from repro.runtime.mesh import ProcessMesh

        src, dst = random_edge_list(64, 400, seed=3)
        p = save_edges_text(tmp_path / "g.txt", src, dst)
        s, d, n = load_edges_text(p, num_vertices=64)
        mesh = ProcessMesh(2, 2)
        part = partition_graph(s, d, n, mesh, e_threshold=32, h_threshold=8)
        engine = DistributedBFS(
            part, config=BFSConfig(e_threshold=32, h_threshold=8)
        )
        res = engine.run(0)
        g = build_csr(*symmetrize_edges(s, d), n)
        validate_bfs_result(g, 0, res.parent)
