"""Tests for the reference BFS implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph500.reference import (
    DirectionTrace,
    bfs_levels_from_parents,
    direction_optimizing_bfs,
    serial_bfs,
)
from repro.graph500.rmat import generate_edges
from repro.graphs.csr import build_csr, symmetrize_edges

from helpers import path_graph, random_graph, star_graph


def nx_levels(graph, root):
    """Independent level computation via networkx."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.arcs()
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    lengths = nx.single_source_shortest_path_length(g, root)
    out = np.full(graph.num_vertices, -1, dtype=np.int64)
    for v, depth in lengths.items():
        out[v] = depth
    return out


class TestSerialBFS:
    def test_path(self):
        g = path_graph(5)
        parent = serial_bfs(g, 0)
        assert parent.tolist() == [0, 0, 1, 2, 3]

    def test_star_from_hub(self):
        g = star_graph(6)
        parent = serial_bfs(g, 0)
        assert parent[0] == 0
        assert np.all(parent[1:] == 0)

    def test_star_from_leaf(self):
        g = star_graph(6)
        parent = serial_bfs(g, 3)
        assert parent[3] == 3
        assert parent[0] == 3
        level = bfs_levels_from_parents(g, 3, parent)
        assert level[0] == 1
        assert level[1] == 2

    def test_disconnected(self):
        src, dst = symmetrize_edges(np.array([0]), np.array([1]))
        g = build_csr(src, dst, 4)
        parent = serial_bfs(g, 0)
        assert parent[2] == -1 and parent[3] == -1

    def test_isolated_root(self):
        g = build_csr(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 3)
        parent = serial_bfs(g, 1)
        assert parent.tolist() == [-1, 1, -1]

    def test_root_out_of_range(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            serial_bfs(g, 3)

    def test_matches_networkx_levels(self):
        g = random_graph(60, 150, seed=4)
        parent = serial_bfs(g, 0)
        level = bfs_levels_from_parents(g, 0, parent)
        assert np.array_equal(level, nx_levels(g, 0))


class TestDirectionOptimizingBFS:
    def test_levels_match_serial(self):
        for seed in range(5):
            g = random_graph(80, 400, seed=seed)
            p_serial = serial_bfs(g, 0)
            p_dir = direction_optimizing_bfs(g, 0)
            la = bfs_levels_from_parents(g, 0, p_serial)
            lb = bfs_levels_from_parents(g, 0, p_dir)
            assert np.array_equal(la, lb)

    def test_switches_direction_on_dense_graph(self):
        src, dst = generate_edges(10, seed=1)
        a_src, a_dst = symmetrize_edges(src, dst)
        g = build_csr(a_src, a_dst, 1 << 10)
        root = int(np.flatnonzero(g.degrees > 0)[0])
        trace = DirectionTrace()
        direction_optimizing_bfs(g, root, trace=trace)
        assert "bottom-up" in trace.directions
        assert trace.directions[0] == "top-down"

    def test_trace_lengths_consistent(self):
        g = random_graph(50, 200, seed=1)
        trace = DirectionTrace()
        direction_optimizing_bfs(g, 0, trace=trace)
        assert trace.num_iterations == len(trace.frontier_sizes)
        assert trace.num_iterations == len(trace.edges_examined)

    def test_bottom_up_early_exit_examines_fewer_edges(self):
        # On a dense R-MAT graph, total examined edges must be well under
        # the full arc count times iterations thanks to early exit.
        src, dst = generate_edges(9, seed=2)
        a_src, a_dst = symmetrize_edges(src, dst)
        g = build_csr(a_src, a_dst, 1 << 9)
        root = int(np.argmax(g.degrees))
        trace = DirectionTrace()
        direction_optimizing_bfs(g, root, trace=trace)
        bu_iters = [
            e
            for d, e in zip(trace.directions, trace.edges_examined)
            if d == "bottom-up"
        ]
        assert bu_iters, "expected at least one bottom-up iteration"
        assert all(e < g.num_arcs for e in bu_iters)

    def test_pure_topdown_when_alpha_tiny(self):
        # Switch condition is frontier_arcs > unexplored_arcs / alpha, so a
        # tiny alpha makes the threshold unreachably large: never switch.
        g = random_graph(60, 300, seed=2)
        trace = DirectionTrace()
        direction_optimizing_bfs(g, 0, alpha=1e-18, trace=trace)
        assert set(trace.directions) == {"top-down"}


class TestLevelsFromParents:
    def test_simple(self):
        g = path_graph(4)
        parent = np.array([0, 0, 1, 2])
        level = bfs_levels_from_parents(g, 0, parent)
        assert level.tolist() == [0, 1, 2, 3]

    def test_rejects_bad_root(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="root"):
            bfs_levels_from_parents(g, 0, np.array([1, 0, 1]))

    def test_rejects_cycle(self):
        g = path_graph(4)
        parent = np.array([0, 2, 1, 2])  # 1 <-> 2 cycle
        with pytest.raises(ValueError, match="cycle"):
            bfs_levels_from_parents(g, 0, parent)

    def test_unreachable_marked(self):
        g = path_graph(3)
        parent = np.array([0, 0, -1])
        level = bfs_levels_from_parents(g, 0, parent)
        assert level.tolist() == [0, 1, -1]


@given(seed=st.integers(0, 10_000), n=st.integers(2, 60))
@settings(max_examples=40, deadline=None)
def test_property_serial_and_directional_levels_agree(seed, n):
    g = random_graph(n, 3 * n, seed=seed)
    root = seed % n
    pa = serial_bfs(g, root)
    pb = direction_optimizing_bfs(g, root)
    la = bfs_levels_from_parents(g, root, pa)
    lb = bfs_levels_from_parents(g, root, pb)
    assert np.array_equal(la, lb)
    # visited sets agree with reachability
    assert np.array_equal(pa >= 0, pb >= 0)
