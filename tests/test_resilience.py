"""Tests for the resilience subsystem: fault specs, checkpoints, recovery."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.experiments import build_setup
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.machine.costmodel import CollectiveKind
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    NULL_FAULTS,
    Checkpoint,
    CheckpointError,
    FaultInjector,
    FaultSpecError,
    LevelCheckpointer,
    RecoveryError,
    RecoveryPolicy,
    parse_fault_spec,
    run_with_recovery,
    validate_partial,
)


@pytest.fixture(scope="module")
def setup():
    return build_setup(10, 2, 2, seed=7)


@pytest.fixture(scope="module")
def part(setup):
    return partition_graph(
        setup.src, setup.dst, setup.num_vertices, setup.mesh,
        e_threshold=128, h_threshold=16,
    )


def make_engine(setup, part):
    return DistributedBFS(
        part, machine=setup.machine,
        config=BFSConfig(e_threshold=128, h_threshold=16),
    )


@pytest.fixture(scope="module")
def golden(setup, part):
    """The fault-free reference run every recovery test compares against."""
    return make_engine(setup, part).run(setup.root)


class TestFaultSpec:
    def test_parses_multi_clause(self):
        plan = parse_fault_spec(
            "crash:rank=3,iter=2; drop:phase=L2L,count=2,retries=2"
        )
        assert len(plan) == 2
        crash, drop = plan.faults
        assert (crash.kind, crash.rank, crash.iteration) == ("crash", 3, 2)
        assert (drop.kind, drop.phase, drop.count, drop.retries) == (
            "drop", "L2L", 2, 2,
        )

    def test_iteration_window(self):
        (f,) = parse_fault_spec("straggler:rank=1,factor=2,iter=3-5").faults
        assert f.window() == (3, 5)
        (g,) = parse_fault_spec("straggler:rank=1,factor=2,iter=3").faults
        assert g.window() == (3, 3)

    def test_wildcard_phase(self):
        (f,) = parse_fault_spec("drop:phase=*").faults
        assert f.phase is None

    def test_probability_clause(self):
        (f,) = parse_fault_spec("corrupt:phase=L2L,p=0.25").faults
        assert f.probability == 0.25

    @pytest.mark.parametrize("bad", [
        "",
        ";;",
        "explode:rank=1",
        "crash:rank=1",          # crash needs iter=
        "crash:iter=1",          # crash needs rank=
        "crash:rank=1,iter=x",
        "drop:bogus=1",
        "drop:count",            # missing =value
        "straggler:rank=0,factor=0.5",
        "drop:p=1.5",
        "drop:count=0",
        "drop:retries=0",
        "crash:rank=-1,iter=0",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_validate_rejects_out_of_range_rank(self):
        plan = parse_fault_spec("crash:rank=9,iter=0")
        with pytest.raises(FaultSpecError, match="only 4 ranks"):
            plan.validate(4)
        plan.validate(16)  # in range: no raise


class TestFaultInjector:
    def test_crash_fires_once(self):
        from repro.resilience import RankCrashError

        inj = FaultInjector("crash:rank=1,iter=2")
        inj.begin_iteration(0)
        inj.begin_iteration(1)
        with pytest.raises(RankCrashError) as exc:
            inj.begin_iteration(2)
        assert exc.value.rank == 1 and exc.value.iteration == 2
        assert inj.dead_ranks == {1}
        # One-shot: the recovered attempt re-enters iteration 2 safely.
        inj.begin_iteration(2)
        inj.begin_iteration(3)

    def test_crash_catches_up_past_trigger(self):
        """A resume that skips the trigger iteration still crashes."""
        from repro.resilience import RankCrashError

        inj = FaultInjector("crash:rank=0,iter=2")
        with pytest.raises(RankCrashError):
            inj.begin_iteration(5)

    def test_drop_budget_consumed(self):
        inj = FaultInjector("drop:phase=L2L,count=1,retries=3")
        out = inj.collective("L2L", CollectiveKind.ALLTOALLV, 4)
        assert out is not None and out.retries == 3
        assert inj.collective("L2L", CollectiveKind.ALLTOALLV, 4) is None
        assert inj.retries_total == 3

    def test_phase_filter(self):
        inj = FaultInjector("drop:phase=L2L,count=1")
        assert inj.collective("EH2EH", CollectiveKind.ALLTOALLV, 4) is None
        assert inj.collective("L2L", CollectiveKind.ALLTOALLV, 4) is not None

    def test_straggler_scoped_to_group(self):
        inj = FaultInjector("straggler:rank=3,factor=4")
        assert inj.collective(
            "t", CollectiveKind.ALLGATHER, 2, group=np.array([0, 1])
        ) is None
        out = inj.collective(
            "t", CollectiveKind.ALLGATHER, 2, group=np.array([2, 3])
        )
        assert out is not None and out.straggle_factor == 4.0

    def test_straggler_skips_idle_rank_kernels(self):
        inj = FaultInjector("straggler:rank=1,factor=4")
        assert inj.compute_factor("t", per_node_items=[5, 0, 5, 5]) == 1.0
        assert inj.compute_factor("t", per_node_items=[5, 9, 5, 5]) == 4.0

    def test_probabilistic_fault_is_seeded(self):
        counts = []
        for _ in range(2):
            inj = FaultInjector(
                "drop:phase=L2L,p=0.5", rng=np.random.default_rng(42)
            )
            fired = sum(
                inj.collective("L2L", CollectiveKind.ALLTOALLV, 4) is not None
                for _ in range(32)
            )
            counts.append(fired)
        assert counts[0] == counts[1] > 0

    def test_corruption_round_trip_delivers_pristine(self):
        inj = FaultInjector("corrupt:phase=L2L,count=1")
        payload = np.arange(64, dtype=np.int64)
        out = inj.collective("L2L", CollectiveKind.ALLTOALLV, 4)
        assert out is not None and out.corrupted
        delivered = inj.verify_delivery("L2L", payload)
        assert np.array_equal(delivered, np.arange(64))
        assert inj.corruptions_detected == 1
        # No pending corruption: payload passes through untouched.
        assert inj.verify_delivery("L2L", payload) is payload

    def test_metrics_counters(self):
        registry = MetricsRegistry()
        inj = FaultInjector(
            "drop:phase=L2L,count=1,retries=2", metrics=registry
        )
        inj.collective("L2L", CollectiveKind.ALLTOALLV, 4)
        assert registry.counter("faults_injected", kind="drop").value == 1
        assert registry.counter("retries", phase="L2L").value == 2

    def test_null_injector_is_inert(self):
        assert NULL_FAULTS.enabled is False
        assert NULL_FAULTS.collective("t", CollectiveKind.BARRIER, 4) is None
        assert NULL_FAULTS.compute_factor("t") == 1.0
        payload = np.arange(3)
        assert NULL_FAULTS.verify_delivery("t", payload) is payload


class TestCheckpoint:
    def _snap(self, n=32, iteration=3):
        rng = np.random.default_rng(0)
        parent = rng.integers(-1, n, size=n).astype(np.int64)
        visited = parent >= 0
        active = rng.random(n) < 0.3
        return Checkpoint.capture(
            root=0, iteration=iteration, parent=parent, visited=visited,
            active=active,
        )

    def test_capture_verifies_and_sizes(self):
        snap = self._snap(n=100)
        snap.verify()
        assert snap.nbytes == 8 * 100 + 2 * 13  # parents + 2 packed bitmaps

    def test_capture_deep_copies(self):
        parent = np.full(8, -1, dtype=np.int64)
        snap = Checkpoint.capture(
            root=0, iteration=0, parent=parent,
            visited=np.zeros(8, bool), active=np.zeros(8, bool),
        )
        parent[3] = 7
        assert snap.parent[3] == -1
        snap.verify()

    def test_tampering_breaks_fingerprint(self):
        snap = self._snap()
        snap.parent[0] = 31  # mutate behind the frozen dataclass's back
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            snap.verify()

    def test_npz_round_trip(self, tmp_path):
        from repro.core.metrics import IterationRecord

        rng = np.random.default_rng(1)
        parent = rng.integers(-1, 16, size=16).astype(np.int64)
        snap = Checkpoint.capture(
            root=2, iteration=1, parent=parent, visited=parent >= 0,
            active=np.zeros(16, bool),
            records=(IterationRecord(index=0, frontier_size=1),),
        )
        path = snap.save_npz(tmp_path / "ckpt.npz")
        loaded = Checkpoint.load(path)
        assert loaded.fingerprint == snap.fingerprint
        assert np.array_equal(loaded.parent, snap.parent)
        assert np.array_equal(loaded.visited, snap.visited)
        assert loaded.records[0].frontier_size == 1

    def test_load_garbage_raises(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            Checkpoint.load(bogus)

    def test_cadence(self):
        ck = LevelCheckpointer(every=2)
        assert [ck.due(i) for i in range(6)] == [
            False, True, False, True, False, True,
        ]
        assert not any(LevelCheckpointer(every=0).due(i) for i in range(6))

    def test_keep_evicts_oldest(self, setup, part):
        engine = make_engine(setup, part)
        ck = LevelCheckpointer(every=1, mesh=setup.mesh, keep=2)
        engine.run(setup.root, checkpointer=ck)
        assert len(ck.snapshots) == 2
        its = [s.iteration for s in ck.snapshots]
        assert its == sorted(its) and ck.latest().iteration == max(its)

    def test_save_charges_checkpoint_phase(self, setup, part):
        engine = make_engine(setup, part)
        ck = LevelCheckpointer(every=1, mesh=setup.mesh)
        res = engine.run(setup.root, checkpointer=ck)
        events = [e for e in res.ledger.comm_events if e.phase == "checkpoint"]
        assert len(events) == res.num_iterations
        assert all(e.kind is CollectiveKind.ALLGATHER for e in events)
        assert all(e.total_bytes == ck.latest().nbytes for e in events)


class TestResume:
    def test_checkpointing_never_changes_the_traversal(self, setup, part, golden):
        engine = make_engine(setup, part)
        res = engine.run(
            setup.root, checkpointer=LevelCheckpointer(every=1, mesh=setup.mesh)
        )
        assert np.array_equal(res.parent, golden.parent)
        # ...but its cost is real and charged.
        assert res.total_seconds > golden.total_seconds

    def test_resume_completes_the_traversal(self, setup, part, golden):
        engine = make_engine(setup, part)
        ck = LevelCheckpointer(every=2, mesh=setup.mesh, keep=8)
        engine.run(setup.root, checkpointer=ck)
        snap = ck.snapshots[0].verify()
        res = engine.run(setup.root, resume=snap, checkpointer=ck)
        assert np.array_equal(res.parent, golden.parent)
        assert res.iterations[snap.iteration].index == snap.iteration
        assert res.metrics is golden.metrics  # both NULL_METRICS

    def test_resume_charges_recovery_phase(self, setup, part):
        engine = make_engine(setup, part)
        ck = LevelCheckpointer(every=2, mesh=setup.mesh)
        engine.run(setup.root, checkpointer=ck)
        res = engine.run(setup.root, resume=ck.latest(), checkpointer=ck)
        phases = {e.phase for e in res.ledger.comm_events}
        assert "recovery" in phases

    def test_resume_rejects_wrong_root(self, setup, part):
        engine = make_engine(setup, part)
        ck = LevelCheckpointer(every=1, mesh=setup.mesh)
        engine.run(setup.root, checkpointer=ck)
        other = (setup.root + 1) % setup.num_vertices
        with pytest.raises(ValueError, match="resume snapshot"):
            engine.run(other, resume=ck.latest())


class TestRecovery:
    def test_crash_recovers_identically(self, setup, part, golden):
        """The acceptance scenario: crash at iteration 2, cadence 1."""
        from repro.graph500.validate import validate_bfs_result

        engine = make_engine(setup, part)
        out = run_with_recovery(
            engine,
            setup.root,
            faults=FaultInjector("crash:rank=3,iter=2"),
            checkpointer=LevelCheckpointer(every=1, mesh=setup.mesh),
        )
        assert out.crashes == 1 and out.restarts == 1
        assert out.resumed_from == [1]  # last level committed before death
        assert not out.degraded
        assert np.array_equal(out.result.parent, golden.parent)
        graph = build_csr(
            *symmetrize_edges(setup.src, setup.dst), setup.num_vertices
        )
        validate_bfs_result(graph, setup.root, out.result.parent)
        # The aborted attempt's cost is folded into the final accounting.
        assert out.wasted_seconds > 0
        assert out.result.total_seconds > golden.total_seconds + out.wasted_seconds

    def test_crash_without_checkpoint_restarts_from_scratch(
        self, setup, part, golden
    ):
        engine = make_engine(setup, part)
        out = run_with_recovery(
            engine, setup.root, faults=FaultInjector("crash:rank=0,iter=1")
        )
        assert out.resumed_from == [-1]
        assert np.array_equal(out.result.parent, golden.parent)

    def test_restart_budget_exhausted(self, setup, part):
        engine = make_engine(setup, part)
        with pytest.raises(RecoveryError, match="budget"):
            run_with_recovery(
                engine,
                setup.root,
                faults=FaultInjector("crash:rank=1,iter=1"),
                policy=RecoveryPolicy(max_restarts=0),
            )

    def test_recovery_metrics(self, setup, part):
        registry = MetricsRegistry()
        engine = make_engine(setup, part)
        run_with_recovery(
            engine,
            setup.root,
            faults=FaultInjector("crash:rank=2,iter=2"),
            checkpointer=LevelCheckpointer(every=1, mesh=setup.mesh),
            metrics=registry,
        )
        assert registry.counter("rank_crashes").value == 1
        assert registry.counter("recoveries", mode="restart").value == 1
        assert registry.counter("recovery_time").value > 0

    def test_degrade_excises_dead_rank(self, setup, part, golden):
        engine = make_engine(setup, part)
        out = run_with_recovery(
            engine,
            setup.root,
            faults=FaultInjector("crash:rank=2,iter=2"),
            checkpointer=LevelCheckpointer(every=1, mesh=setup.mesh),
            policy=RecoveryPolicy(mode="degrade"),
        )
        assert out.degraded and out.excised.size > 0
        # Excised vertices are L-class and owned by the dead rank.
        lo, hi = setup.mesh.vertex_range(2, setup.num_vertices)
        assert ((out.excised >= lo) & (out.excised < hi)).all()
        assert part.class_masks()["L"][out.excised].all()
        graph = build_csr(
            *symmetrize_edges(setup.src, setup.dst), setup.num_vertices
        )
        cov = validate_partial(
            graph, setup.root, out.result.parent, out.excised
        )
        assert cov.lost == 0
        assert 0.0 < cov.coverage <= 1.0
        assert out.result.num_visited <= golden.num_visited

    def test_degrade_cannot_excise_root(self):
        """All-L path graph: the dead rank owns the root -> unrecoverable."""
        from repro.machine.network import MachineSpec
        from repro.runtime.mesh import ProcessMesh

        n = 64
        src = np.arange(n - 1, dtype=np.int64)
        dst = src + 1
        machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
        mesh = ProcessMesh(2, 2, machine=machine)
        lpart = partition_graph(
            src, dst, n, mesh, e_threshold=1 << 20, h_threshold=1 << 20
        )
        engine = DistributedBFS(
            lpart, machine=machine,
            config=BFSConfig(e_threshold=1 << 20, h_threshold=1 << 20),
        )
        with pytest.raises(RecoveryError, match="search key"):
            run_with_recovery(
                engine, 0,
                faults=FaultInjector("crash:rank=0,iter=1"),
                policy=RecoveryPolicy(mode="degrade"),
            )

    def test_validate_partial_rejects_silent_loss(self):
        """An unreached vertex with a live reached neighbour must fail."""
        src = np.array([0, 1, 2], dtype=np.int64)
        dst = np.array([1, 2, 3], dtype=np.int64)
        graph = build_csr(*symmetrize_edges(src, dst), 4)
        parent = np.array([0, 0, -1, -1], dtype=np.int64)  # 2 silently lost
        with pytest.raises(AssertionError, match="never visited"):
            validate_partial(graph, 0, parent, np.array([], dtype=np.int64))
        # Explained by excision: passes and reports coverage.
        cov = validate_partial(graph, 0, parent, np.array([2], dtype=np.int64))
        assert cov.excised == 1 and cov.lost == 0


class TestZeroOverhead:
    def test_unfaulted_smoke_matches_committed_baseline(self):
        """Resilience hooks off == bit-identical to the pinned baseline."""
        from repro.obs.report import bfs_smoke_report

        baseline_path = (
            Path(__file__).parent.parent
            / "benchmarks" / "results" / "BENCH_bfs_smoke.json"
        )
        baseline = json.loads(baseline_path.read_text())
        fresh = bfs_smoke_report(metrics=MetricsRegistry())
        assert fresh.metrics == baseline["metrics"]
        assert fresh.fingerprint == baseline["fingerprint"]


class TestDriverDeterminism:
    """Satellite: one seeded rng makes faulty runs bit-reproducible."""

    FAULTS = "crash:rank=1,iter=2;drop:phase=L2L,count=1,retries=1"

    def _run(self, faults=None):
        from repro.graph500.driver import run_graph500

        return run_graph500(
            10, 2, 2, seed=7, num_roots=2, e_threshold=128, h_threshold=16,
            faults=faults, checkpoint_every=1 if faults else 0,
        )

    def test_identical_seeds_identical_faulty_runs(self):
        a = self._run(self.FAULTS)
        b = self._run(self.FAULTS)
        assert np.array_equal(a.roots, b.roots)
        assert np.array_equal(a.bfs_times, b.bfs_times)
        assert a.resilience == b.resilience
        for ra, rb in zip(a.results, b.results):
            assert np.array_equal(ra.parent, rb.parent)

    def test_faulty_run_samples_golden_roots(self):
        """Injector construction must not perturb root sampling."""
        golden = self._run()
        faulty = self._run(self.FAULTS)
        assert golden.resilience is None
        assert faulty.resilience is not None
        assert faulty.resilience["crashes"] == 1
        assert np.array_equal(golden.roots, faulty.roots)
        assert faulty.validated
        for rg, rf in zip(golden.results, faulty.results):
            assert np.array_equal(rg.parent, rf.parent)
