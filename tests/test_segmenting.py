"""Tests for CG-aware core subgraph segmenting."""

import numpy as np
import pytest

from repro.core.partition import partition_graph
from repro.core.segmenting import plan_segmenting
from repro.graph500.rmat import generate_edges
from repro.machine.chip import ChipSpec
from repro.machine.ldm import LDMLayout
from repro.runtime.mesh import ProcessMesh


def make_part(scale=10, rows=2, cols=2, e_thr=128, h_thr=16):
    src, dst = generate_edges(scale, seed=1)
    mesh = ProcessMesh(rows, cols)
    return partition_graph(
        src, dst, 1 << scale, mesh, e_threshold=e_thr, h_threshold=h_thr
    )


class TestPlan:
    def test_six_segments_by_default(self):
        plan = plan_segmenting(make_part())
        assert plan.num_segments == 6

    def test_segment_bits_cover_column(self):
        part = make_part()
        plan = plan_segmenting(part)
        assert plan.segment_bits * plan.num_segments >= plan.max_column_eh
        assert plan.max_column_eh == int(part.col_eh_counts.max())

    def test_small_graph_feasible(self):
        assert plan_segmenting(make_part()).feasible

    def test_infeasible_when_ldm_tiny(self):
        layout = LDMLayout(num_cpes=2, ldm_budget_bytes=1, line_bytes=2)
        part = make_part()
        plan = plan_segmenting(part, layout=layout)
        assert not plan.feasible

    def test_schedule_is_latin_square(self):
        """No two CGs ever process the same source interval (§4.3)."""
        plan = plan_segmenting(make_part())
        for step in plan.schedule:
            assert sorted(step) == list(range(plan.num_segments))
        # and each CG sees every interval exactly once across steps
        for g in range(plan.num_segments):
            seen = [plan.schedule[s][g] for s in range(plan.num_segments)]
            assert sorted(seen) == list(range(plan.num_segments))

    def test_custom_chip_segment_count(self):
        chip = ChipSpec(num_core_groups=4)
        plan = plan_segmenting(make_part(), chip=chip)
        assert plan.num_segments == 4

    def test_segment_bytes(self):
        plan = plan_segmenting(make_part())
        assert plan.segment_bytes == -(-plan.segment_bits // 8)

    def test_paper_scale_column_fits(self):
        """Paper: <=100M column E+H bits -> ~2MB per-CG segments fit the
        64-CPE LDM budget."""
        layout = LDMLayout(num_cpes=64, ldm_budget_bytes=96 * 1024)
        # simulate the paper's bound directly
        segment_bits = -(-100_000_000 // 6)
        assert layout.fits(segment_bits)
