"""Tests for the Graph500 R-MAT generator."""

import numpy as np
import pytest

from repro.graph500.rmat import generate_edges, rmat_edges, scramble_vertices
from repro.graph500.spec import Graph500Problem
from repro.graphs.stats import degrees_from_edges


class TestRmatEdges:
    def test_counts_and_range(self):
        src, dst = rmat_edges(10, 5000, seed=1)
        assert src.size == dst.size == 5000
        assert src.min() >= 0 and src.max() < 1024
        assert dst.min() >= 0 and dst.max() < 1024

    def test_deterministic_with_seed(self):
        a = rmat_edges(8, 1000, seed=42)
        b = rmat_edges(8, 1000, seed=42)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = rmat_edges(8, 1000, seed=1)
        b = rmat_edges(8, 1000, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_chunking_matches_single_shot(self):
        # Same rng sequence means chunked generation equals one-shot when
        # chunk boundaries align with whole draws per level: verify just
        # statistical equivalence (same marginal) instead of bit equality.
        src_a, _ = rmat_edges(10, 4000, seed=7, chunk_size=1000)
        src_b, _ = rmat_edges(10, 4000, seed=7, chunk_size=4000)
        # both valid R-MAT streams over the same support
        assert src_a.max() < 1024 and src_b.max() < 1024

    def test_zero_edges(self):
        src, dst = rmat_edges(5, 0, seed=0)
        assert src.size == 0 and dst.size == 0

    def test_skewness(self):
        """R-MAT with Graph500 parameters must be heavily skewed."""
        scale = 12
        src, dst = rmat_edges(scale, 16 << scale, seed=3)
        deg = degrees_from_edges(src, dst, 1 << scale)
        # Max degree should dwarf the mean degree (~32).
        assert deg.max() > 20 * deg.mean()

    def test_uniform_probabilities_not_skewed(self):
        scale = 12
        src, dst = rmat_edges(scale, 16 << scale, a=0.25, b=0.25, c=0.25, seed=3)
        deg = degrees_from_edges(src, dst, 1 << scale)
        assert deg.max() < 5 * deg.mean()

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError, match="invalid quadrant"):
            rmat_edges(5, 10, a=0.8, b=0.3, c=0.1, seed=0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            rmat_edges(0, 10, seed=0)

    def test_rng_and_seed_exclusive(self):
        with pytest.raises(ValueError, match="either rng or seed"):
            rmat_edges(5, 10, rng=np.random.default_rng(0), seed=1)

    def test_quadrant_marginals(self):
        """First-bit marginals must match the quadrant probabilities."""
        a, b, c = 0.57, 0.19, 0.19
        src, dst = rmat_edges(1, 200_000, a=a, b=b, c=c, seed=5)
        # With scale=1 the vertex IDs are exactly the quadrant bits.
        p_src1 = np.mean(src == 1)
        p_dst1 = np.mean(dst == 1)
        assert p_src1 == pytest.approx(1 - (a + b), abs=0.01)
        assert p_dst1 == pytest.approx(b + (1 - a - b - c), abs=0.01)


class TestScramble:
    def test_is_permutation(self):
        src = np.arange(100) % 10
        dst = (np.arange(100) * 3) % 10
        s, d = scramble_vertices(src, dst, 10, seed=1)
        # Degrees are permuted, not changed as a multiset.
        deg_before = degrees_from_edges(src, dst, 10)
        deg_after = degrees_from_edges(s, d, 10)
        assert sorted(deg_before.tolist()) == sorted(deg_after.tolist())

    def test_preserves_structure(self):
        # Scrambling must preserve adjacency up to relabeling: edge
        # multiplicities of endpoint pairs are preserved.
        src = np.array([0, 0, 1])
        dst = np.array([1, 1, 2])
        s, d = scramble_vertices(src, dst, 3, seed=9)
        # the doubled edge stays doubled
        pairs = sorted(zip(np.minimum(s, d).tolist(), np.maximum(s, d).tolist()))
        multiplicities = sorted(pairs.count(p) for p in set(pairs))
        assert multiplicities == [1, 2]


class TestGenerateEdges:
    def test_spec_counts(self):
        src, dst = generate_edges(10, seed=2)
        assert src.size == 16 * 1024

    def test_deterministic(self):
        a = generate_edges(8, seed=5)
        b = generate_edges(8, seed=5)
        assert np.array_equal(a[0], b[0])

    def test_scramble_changes_labels(self):
        plain = generate_edges(8, seed=5, scramble=False)
        mixed = generate_edges(8, seed=5, scramble=True)
        assert not np.array_equal(plain[0], mixed[0])


class TestProblem:
    def test_counts(self):
        p = Graph500Problem(scale=20)
        assert p.num_vertices == 1 << 20
        assert p.num_edges == 16 << 20

    def test_gteps(self):
        p = Graph500Problem(scale=30)
        assert p.gteps(1.0) == pytest.approx(p.num_edges / 1e9)

    def test_gteps_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Graph500Problem(scale=10).gteps(0.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Graph500Problem(scale=0)
