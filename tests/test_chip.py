"""Tests for the SW26010-Pro chip model."""

import pytest

from repro.machine.chip import SW26010_PRO, ChipSpec


class TestChipSpec:
    def test_defaults_match_paper(self):
        assert SW26010_PRO.num_core_groups == 6
        assert SW26010_PRO.cpes_per_cg == 64
        assert SW26010_PRO.total_cpes == 384
        assert SW26010_PRO.ldm_bytes == 256 * 1024
        assert SW26010_PRO.dma_peak_bytes_per_s == pytest.approx(249.0e9)
        assert SW26010_PRO.memory_bytes == 96 * 1024**3

    def test_dma_share_per_cg(self):
        assert SW26010_PRO.dma_bytes_per_s_per_cg == pytest.approx(249.0e9 / 6)

    def test_dma_stream_time_scales_with_cgs(self):
        one = SW26010_PRO.dma_stream_time(1e9, num_cgs=1)
        six = SW26010_PRO.dma_stream_time(1e9, num_cgs=6)
        assert one == pytest.approx(6 * six)

    def test_dma_stream_time_default_whole_chip(self):
        assert SW26010_PRO.dma_stream_time(249.0e9) == pytest.approx(1.0)

    def test_dma_invalid_cg_count(self):
        with pytest.raises(ValueError):
            SW26010_PRO.dma_stream_time(1.0, num_cgs=7)
        with pytest.raises(ValueError):
            SW26010_PRO.dma_stream_time(1.0, num_cgs=0)

    def test_gld_time(self):
        t = SW26010_PRO.gld_random_access_time(1000)
        assert t == pytest.approx(1000 * SW26010_PRO.gld_latency_ns * 1e-9)

    def test_rma_batch_time_has_latency_floor(self):
        assert SW26010_PRO.rma_batch_time(0) == pytest.approx(
            SW26010_PRO.rma_latency_ns * 1e-9
        )
        assert SW26010_PRO.rma_batch_time(512) > SW26010_PRO.rma_batch_time(0)

    def test_cpe_message_ns(self):
        spec = ChipSpec(cpe_message_cycles=9.0, cpe_clock_hz=3.0e9)
        assert spec.cpe_message_ns == pytest.approx(3.0)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ChipSpec(num_core_groups=0)
        with pytest.raises(ValueError):
            ChipSpec(dma_peak_bytes_per_s=0.0)
