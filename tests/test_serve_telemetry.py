"""Request-scoped tracing and the live telemetry plane in serve/.

Trace-id propagation and retrievable per-request timelines, the
reconciliation between a timeline's ``total_seconds`` and the
``serve_latency_seconds{stage="total"}`` histogram, the bounded latency
reservoir behind percentile stats, the HTTP endpoint surface
(``/metrics`` byte-equal to the offline exporter), and the end-to-end
``run_serving_session`` telemetry mode.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges
from repro.machine.network import MachineSpec
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    to_prometheus_text,
)
from repro.obs.slo import SLOSpec
from repro.obs.tracer import Tracer
from repro.runtime.mesh import ProcessMesh
from repro.serve import TelemetryServer, TraversalService
from repro.serve.msbfs import MultiSourceBFS
from repro.serve.service import LatencyReservoir
from repro.serve.workload import (
    http_get,
    make_workload_roots,
    run_serving_session,
)


def build_engines(scale=9, rows=2, cols=2, e_thr=128, h_thr=16, seed=7,
                  tracer=None, metrics=None):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=e_thr, h_threshold=h_thr
    )
    config = BFSConfig(e_threshold=e_thr, h_threshold=h_thr)
    sequential = DistributedBFS(part, machine=machine, config=config)
    extra = {}
    if tracer is not None:
        extra["tracer"] = tracer
    if metrics is not None:
        extra["metrics"] = metrics
    batched = MultiSourceBFS(part, machine=machine, config=config, **extra)
    return sequential, batched


@pytest.fixture(scope="module")
def engines():
    return build_engines()


def run_async(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# the latency reservoir (satellite: bounded ServeStats.total_latencies)
# ----------------------------------------------------------------------


class TestLatencyReservoir:
    def test_bounded_under_sustained_traffic(self):
        res = LatencyReservoir(capacity=64)
        for i in range(10_000):
            res.append(float(i))
        assert len(res) == 64
        assert np.asarray(res).shape == (64,)

    def test_exact_below_capacity(self):
        res = LatencyReservoir(capacity=16)
        for v in (3.0, 1.0, 2.0):
            res.append(v)
        assert sorted(res) == [1.0, 2.0, 3.0]

    def test_percentiles_drift_bounded_at_100k(self):
        # ISSUE acceptance: 100k appends through the default-capacity
        # reservoir keep p50/p99 close to the exact stream percentiles.
        rng = np.random.default_rng(42)
        stream = rng.lognormal(mean=-4.0, sigma=1.0, size=100_000)
        res = LatencyReservoir()
        for v in stream:
            res.append(float(v))
        assert len(res) == res.capacity
        sample = np.asarray(res)
        for q in (50.0, 99.0):
            exact = float(np.percentile(stream, q))
            estimate = float(np.percentile(sample, q))
            assert estimate == pytest.approx(exact, rel=0.25), q

    def test_deterministic_given_seed(self):
        def fill():
            res = LatencyReservoir(capacity=8)
            for i in range(1000):
                res.append(float(i))
            return list(res)

        assert fill() == fill()

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)


# ----------------------------------------------------------------------
# trace ids and per-request timelines
# ----------------------------------------------------------------------


class TestRequestTracing:
    def test_trace_ids_and_timeline_reconciliation(self, engines):
        _, batched = engines
        metrics = MetricsRegistry()
        roots = [int(r) for r in
                 np.flatnonzero(batched.part.degrees > 0)[:6]]

        async def main():
            async with TraversalService(
                batched, batch_window=0.0, metrics=metrics
            ) as svc:
                responses = [await svc.submit(r) for r in roots]
                timelines = [
                    svc.request_timeline(resp.trace_id)
                    for resp in responses
                ]
                return responses, timelines

        responses, timelines = run_async(main())
        ids = [r.trace_id for r in responses]
        assert all(ids), "every response carries a trace id"
        assert len(set(ids)) == len(ids), "trace ids are unique"
        assert ids[0] == "req-000001"

        hist = None
        for labels, inst in metrics.samples("serve_latency_seconds"):
            if labels.get("stage") == "total":
                hist = inst
        assert hist is not None and hist.count == len(roots)
        # ISSUE acceptance: the retrievable timeline totals are the very
        # floats observed into the stage="total" histogram.
        assert sum(t.total_seconds for t in timelines) == pytest.approx(
            hist.sum, rel=1e-12
        )
        for resp, timeline in zip(responses, timelines):
            assert timeline.trace_id == resp.trace_id
            assert timeline.status == "completed"
            assert timeline.total_seconds == pytest.approx(
                resp.total_seconds
            )
            assert timeline.total_seconds >= (
                timeline.traversal_seconds
            ) >= 0.0

    def test_cache_hit_timeline(self, engines):
        _, batched = engines
        root = int(np.flatnonzero(batched.part.degrees > 0)[0])

        async def main():
            async with TraversalService(batched, batch_window=0.0) as svc:
                first = await svc.submit(root)
                second = await svc.submit(root)
                return first, second, svc.request_timeline(second.trace_id)

        first, second, timeline = run_async(main())
        assert second.cached and second.trace_id != first.trace_id
        assert timeline.status == "cached"
        assert timeline.traversal_seconds == 0.0

    def test_timeline_ring_evicts_oldest(self, engines):
        _, batched = engines
        roots = [int(r) for r in
                 np.flatnonzero(batched.part.degrees > 0)[:6]]

        async def main():
            async with TraversalService(
                batched, batch_window=0.0, timeline_capacity=2
            ) as svc:
                responses = [await svc.submit(r) for r in roots]
                kept = [
                    svc.request_timeline(r.trace_id) is not None
                    for r in responses
                ]
                return kept

        kept = run_async(main())
        assert kept.count(True) == 2
        assert kept[-2:] == [True, True]

    def test_unknown_trace_id(self, engines):
        _, batched = engines

        async def main():
            async with TraversalService(batched) as svc:
                return svc.request_timeline("req-999999")

        assert run_async(main()) is None

    def test_trace_id_lands_in_scheduler_spans(self, engines):
        tracer = Tracer()
        _, batched = build_engines(tracer=tracer)
        root = int(np.flatnonzero(batched.part.degrees > 0)[0])

        async def main():
            async with TraversalService(
                batched, batch_window=0.0, tracer=tracer
            ) as svc:
                return await svc.submit(root)

        response = run_async(main())
        spans = [sp for sp in tracer.spans if sp.name == "msbfs"]
        assert spans
        assert response.trace_id in spans[-1].attrs.get("trace_id", "")


# ----------------------------------------------------------------------
# telemetry off is bit-identical (NULL fast paths)
# ----------------------------------------------------------------------


class TestDisabledTelemetryIdentity:
    def test_parents_and_sim_costs_identical(self, engines):
        sequential, _ = engines
        roots = [int(r) for r in
                 np.flatnonzero(sequential.part.degrees > 0)[:4]]

        def session(**extra):
            _, batched = build_engines(**extra)

            async def main():
                async with TraversalService(
                    batched, batch_window=0.0,
                    **({"metrics": extra["metrics"]}
                       if "metrics" in extra else {}),
                ) as svc:
                    return [await svc.submit(r) for r in roots]

            return run_async(main())

        bare = session()
        metered = session(tracer=Tracer(), metrics=MetricsRegistry())
        for a, b in zip(bare, metered):
            assert np.array_equal(a.parent, b.parent)
            assert a.batch_lanes == b.batch_lanes


# ----------------------------------------------------------------------
# the HTTP endpoint
# ----------------------------------------------------------------------


class TestTelemetryServer:
    def _serve(self, engines, handler, **service_kwargs):
        _, batched = engines

        async def main():
            metrics = service_kwargs.pop("metrics", MetricsRegistry())
            async with TraversalService(
                batched, batch_window=0.0, metrics=metrics,
                **service_kwargs,
            ) as svc:
                async with TelemetryServer(svc, metrics) as server:
                    return await handler(svc, server, metrics)

        return run_async(main())

    def test_metrics_byte_equal_to_offline_export(self, engines):
        async def handler(svc, server, metrics):
            root = int(np.flatnonzero(svc.engine.part.degrees > 0)[0])
            await svc.submit(root)
            status, headers, body = await http_get(
                "127.0.0.1", server.port, "/metrics"
            )
            return status, headers, body, to_prometheus_text(metrics)

        status, headers, body, offline = self._serve(engines, handler)
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        # ISSUE acceptance: scraped body == offline exporter, byte for
        # byte (no mutations between submit and scrape).
        assert body == offline.encode("utf-8")
        assert b"serve_latency_seconds_bucket" in body

    def test_healthz_and_slo_and_timeline(self, engines):
        async def handler(svc, server, metrics):
            status, _, body = await http_get(
                "127.0.0.1", server.port, "/healthz"
            )
            health = json.loads(body)
            s2, _, b2 = await http_get("127.0.0.1", server.port, "/slo")
            s3, _, b3 = await http_get(
                "127.0.0.1", server.port, "/timeline"
            )
            return status, health, s2, json.loads(b2), s3, json.loads(b3)

        status, health, s2, slo, s3, timeline = self._serve(engines, handler)
        assert status == 200 and health["status"] == "ok"
        assert health["pending"] == 0
        # No monitor/sampler attached in this minimal server.
        assert s2 == 200 and slo == {"status": "disabled"}
        assert s3 == 200 and timeline == {"status": "disabled"}

    def test_trace_endpoint_and_404(self, engines):
        async def handler(svc, server, metrics):
            root = int(np.flatnonzero(svc.engine.part.degrees > 0)[0])
            resp = await svc.submit(root)
            ok, _, body = await http_get(
                "127.0.0.1", server.port, f"/trace/{resp.trace_id}"
            )
            missing, _, _ = await http_get(
                "127.0.0.1", server.port, "/trace/req-999999"
            )
            nopath, _, _ = await http_get(
                "127.0.0.1", server.port, "/nope"
            )
            return resp, ok, json.loads(body), missing, nopath

        resp, ok, doc, missing, nopath = self._serve(engines, handler)
        assert ok == 200
        assert doc["trace_id"] == resp.trace_id
        assert doc["total_seconds"] == pytest.approx(resp.total_seconds)
        assert missing == 404
        assert nopath == 404

    def test_non_get_rejected(self, engines):
        async def handler(svc, server, metrics):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = self._serve(engines, handler)
        assert b"405" in raw.split(b"\r\n", 1)[0]


# ----------------------------------------------------------------------
# run_serving_session with the live plane
# ----------------------------------------------------------------------


class TestServingSessionTelemetry:
    def test_back_compat_two_tuple(self, engines):
        _, batched = engines
        roots = make_workload_roots(
            batched.part.degrees, 8, seed=3, hot_fraction=0.5
        )
        out = run_serving_session(batched, roots, clients=2)
        assert len(out) == 2

    def test_telemetry_three_tuple(self, engines):
        _, batched = engines
        metrics = MetricsRegistry()
        roots = make_workload_roots(
            batched.part.degrees, 16, seed=3, hot_fraction=0.5
        )
        report, service, telem = run_serving_session(
            batched, roots, clients=2, metrics=metrics,
            telemetry={
                "port": 0,
                "interval": 0.02,
                "slos": [SLOSpec("total", 0.25, 0.99)],
            },
        )
        assert report.served == 16
        assert telem.port > 0
        assert telem.samples >= 1
        assert telem.scrapes.get("/metrics", 0) >= 1
        assert telem.scrapes.get("/healthz", 0) >= 1
        assert telem.slo is not None
        assert telem.slo["slos"][0]["name"] == "total<0.25s@99%"
        # The captured /metrics body parses as exposition text.
        assert b"serve_requests" in telem.last_metrics_body

    def test_telemetry_requires_real_registry(self, engines):
        _, batched = engines
        roots = make_workload_roots(batched.part.degrees, 4, seed=3)
        with pytest.raises(ValueError):
            run_serving_session(
                batched, roots, telemetry={"port": 0}
            )
