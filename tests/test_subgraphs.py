"""Tests for SubgraphComponent push/pull primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subgraphs import SubgraphComponent


def make_component(arcs, num_ranks=4, name="test"):
    src = np.array([a[0] for a in arcs], dtype=np.int64)
    dst = np.array([a[1] for a in arcs], dtype=np.int64)
    rank = np.array([a[2] for a in arcs], dtype=np.int64)
    return SubgraphComponent(name, src, dst, rank, num_ranks)


class TestConstruction:
    def test_empty(self):
        comp = make_component([])
        assert comp.num_arcs == 0
        assert comp.num_groups == 0
        assert comp.arcs_per_rank.tolist() == [0, 0, 0, 0]

    def test_arcs_roundtrip(self):
        arcs = [(0, 1, 0), (0, 2, 1), (3, 1, 2), (3, 1, 2)]
        comp = make_component(arcs)
        s, d, r = comp.arcs()
        assert sorted(zip(s.tolist(), d.tolist(), r.tolist())) == sorted(arcs)

    def test_arcs_per_rank(self):
        comp = make_component([(0, 1, 0), (1, 2, 0), (2, 3, 3)])
        assert comp.arcs_per_rank.tolist() == [2, 0, 0, 1]

    def test_groups_by_rank_and_dst(self):
        # same dst on two ranks -> two groups
        comp = make_component([(0, 5, 0), (1, 5, 1), (2, 5, 1)])
        assert comp.num_groups == 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal shape"):
            SubgraphComponent(
                "x", np.array([0]), np.array([1, 2]), np.array([0]), 4
            )

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError, match="rank out of range"):
            make_component([(0, 1, 9)])


class TestPush:
    def test_selects_frontier_arcs_only(self):
        comp = make_component([(0, 1, 0), (0, 2, 1), (5, 3, 2)], num_ranks=4)
        active = np.zeros(8, dtype=bool)
        active[0] = True
        sel = comp.push_select(active)
        assert sel.num_arcs == 2
        assert set(sel.dst.tolist()) == {1, 2}

    def test_empty_frontier(self):
        comp = make_component([(0, 1, 0)])
        sel = comp.push_select(np.zeros(4, dtype=bool))
        assert sel.num_arcs == 0

    def test_per_rank_counts(self):
        comp = make_component([(0, 1, 0), (0, 2, 1), (0, 3, 1)])
        active = np.zeros(4, dtype=bool)
        active[0] = True
        sel = comp.push_select(active)
        assert sel.per_rank(4).tolist() == [1, 2, 0, 0]

    def test_duplicate_arcs_selected_twice(self):
        comp = make_component([(0, 1, 0), (0, 1, 0)])
        active = np.zeros(4, dtype=bool)
        active[0] = True
        assert comp.push_select(active).num_arcs == 2


class TestPull:
    def test_basic_hit(self):
        comp = make_component([(1, 5, 0), (2, 6, 0)], num_ranks=2)
        candidate = np.ones(8, dtype=bool)
        active = np.zeros(8, dtype=bool)
        active[1] = True
        scan = comp.pull_scan(candidate, active)
        assert scan.hit_dst.tolist() == [5]
        assert scan.hit_src.tolist() == [1]

    def test_candidate_filter(self):
        comp = make_component([(1, 5, 0)], num_ranks=2)
        candidate = np.zeros(8, dtype=bool)  # 5 not a candidate
        active = np.ones(8, dtype=bool)
        scan = comp.pull_scan(candidate, active)
        assert scan.num_hits == 0
        assert scan.scanned_arcs == 0

    def test_early_exit_counts(self):
        # dst 5 has 4 incoming arcs on rank 0; the 2nd source is active.
        comp = make_component(
            [(1, 5, 0), (2, 5, 0), (3, 5, 0), (4, 5, 0)], num_ranks=1
        )
        candidate = np.ones(8, dtype=bool)
        active = np.zeros(8, dtype=bool)
        active[2] = True
        scan = comp.pull_scan(candidate, active)
        # arcs are scanned in (dst-group) order: sources sorted 1,2,3,4 -> 2 scanned
        assert scan.scanned_arcs == 2
        assert scan.hit_src.tolist() == [2]

    def test_no_hit_scans_whole_group(self):
        comp = make_component([(1, 5, 0), (2, 5, 0)], num_ranks=1)
        scan = comp.pull_scan(np.ones(8, bool), np.zeros(8, bool))
        assert scan.num_hits == 0
        assert scan.scanned_arcs == 2

    def test_cross_rank_winner_is_lowest_rank(self):
        comp = make_component([(1, 5, 1), (2, 5, 0)], num_ranks=2)
        active = np.zeros(8, dtype=bool)
        active[1] = active[2] = True
        scan = comp.pull_scan(np.ones(8, bool), active)
        assert scan.num_hits == 1
        assert scan.hit_src.tolist() == [2]  # rank 0's hit wins
        assert scan.hit_rank.tolist() == [0]

    def test_scanned_per_rank(self):
        comp = make_component(
            [(1, 5, 0), (2, 5, 0), (1, 6, 1), (2, 6, 1), (3, 6, 1)], num_ranks=2
        )
        active = np.zeros(8, dtype=bool)
        active[2] = True
        scan = comp.pull_scan(np.ones(8, bool), active)
        assert scan.scanned_per_rank.tolist() == [2, 2]

    def test_empty_component(self):
        comp = make_component([])
        scan = comp.pull_scan(np.ones(4, bool), np.ones(4, bool))
        assert scan.num_hits == 0


@given(
    seed=st.integers(0, 500),
    n=st.integers(2, 30),
    m=st.integers(0, 100),
    ranks=st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_property_push_pull_equivalence(seed, n, m, ranks):
    """Push from frontier and pull into unvisited discover the same set."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    rank = rng.integers(0, ranks, size=m)
    comp = SubgraphComponent("t", src, dst, rank, ranks)
    active = rng.random(n) < 0.3
    visited = active.copy()  # frontier is visited

    sel = comp.push_select(active)
    push_found = set(sel.dst[~visited[sel.dst]].tolist())
    scan = comp.pull_scan(~visited, active)
    pull_found = set(scan.hit_dst.tolist())
    assert push_found == pull_found
    # pull parents are always active sources with a real arc
    for d, s in zip(scan.hit_dst.tolist(), scan.hit_src.tolist()):
        assert active[s]
        assert any((a == s and b == d) for a, b in zip(src.tolist(), dst.tolist()))
