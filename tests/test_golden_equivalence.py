"""Golden-record equivalence of every engine on the shared scheduler.

``tests/golden/engine_golden.json`` was captured from the pre-refactor
engines (each with its own private run loop).  These tests re-run every
engine — the 1.5D ``DistributedBFS`` in its three config variants, the
1D/1D-delegated/2D baselines, and the SPMD ``ReplayBFS`` — through the
shared ``LevelSyncScheduler``/``ComponentKernel`` layer and assert the
observable behaviour is reproduced **bit-for-bit**: per-iteration
directions, scanned-arc counts, message counts, frontier sizes, and the
ledger's total seconds/bytes and event counts.

Floats round-trip exactly through JSON ``repr``, so ``==`` on the
decoded structures is a bit-level comparison.  If a PR intentionally
changes modeled behaviour, regenerate with::

    PYTHONPATH=src:tests python tests/golden/generate.py

and review the golden diff as the behaviour change.
"""

import json
from pathlib import Path

import pytest

from golden.generate import capture

GOLDEN_PATH = Path(__file__).parent / "golden" / "engine_golden.json"

ENGINE_KEYS = (
    "engine_default",
    "engine_whole_iteration",
    "engine_eager_reduction",
    "baseline_1d",
    "baseline_1d_delegated",
    "baseline_2d",
    "replay",
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    # Round-trip through JSON so float repr and int/float identity match
    # exactly what the golden file stores.
    return json.loads(json.dumps(capture()))


def test_golden_metadata_matches(golden, current):
    for key in ("scale", "seed", "e_threshold", "h_threshold", "root"):
        assert current[key] == golden[key]


@pytest.mark.parametrize("key", ENGINE_KEYS)
def test_engine_matches_golden_bit_for_bit(golden, current, key):
    assert current[key] == golden[key]
