"""Tests for the Graph500 validator, including failure injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph500.reference import serial_bfs
from repro.graph500.rmat import generate_edges
from repro.graph500.validate import ValidationError, validate_bfs_result
from repro.graphs.csr import build_csr, symmetrize_edges

from helpers import path_graph, random_graph, star_graph


def make_valid(g, root):
    parent = serial_bfs(g, root)
    return parent


class TestAcceptsValid:
    def test_path(self):
        g = path_graph(6)
        level = validate_bfs_result(g, 0, make_valid(g, 0))
        assert level.tolist() == [0, 1, 2, 3, 4, 5]

    def test_star(self):
        g = star_graph(8)
        validate_bfs_result(g, 0, make_valid(g, 0))

    def test_random_graphs_many_roots(self):
        for seed in range(4):
            g = random_graph(50, 180, seed=seed)
            for root in (0, 7, 23):
                validate_bfs_result(g, root, make_valid(g, root))

    def test_rmat_graph(self):
        src, dst = generate_edges(9, seed=1)
        a_src, a_dst = symmetrize_edges(src, dst)
        g = build_csr(a_src, a_dst, 1 << 9)
        root = int(np.flatnonzero(g.degrees > 0)[0])
        validate_bfs_result(g, root, make_valid(g, root), edge_src=src, edge_dst=dst)

    def test_disconnected_graph(self):
        src, dst = symmetrize_edges(np.array([0, 2]), np.array([1, 3]))
        g = build_csr(src, dst, 4)
        parent = serial_bfs(g, 0)
        level = validate_bfs_result(g, 0, parent)
        assert level[2] == -1 and level[3] == -1


class TestRejectsCorruptions:
    """Failure injection: every spec rule must actually fire."""

    def test_root_not_own_parent(self):
        g = path_graph(4)
        parent = make_valid(g, 0)
        parent[0] = 1
        with pytest.raises(ValidationError, match="root"):
            validate_bfs_result(g, 0, parent)

    def test_fabricated_tree_edge(self):
        g = path_graph(5)
        parent = make_valid(g, 0)
        parent[4] = 0  # 0-4 is not an edge
        with pytest.raises(ValidationError, match="not present"):
            validate_bfs_result(g, 0, parent)

    def test_level_skip(self):
        # star: make a leaf claim another leaf as parent -> both level
        # check or tree-edge check must fire.
        g = star_graph(5)
        parent = make_valid(g, 0)
        parent[2] = 1
        with pytest.raises(ValidationError):
            validate_bfs_result(g, 0, parent)

    def test_unvisited_reachable_vertex(self):
        g = path_graph(4)
        parent = make_valid(g, 0)
        parent[3] = -1
        with pytest.raises(ValidationError, match="visited and unvisited"):
            validate_bfs_result(g, 0, parent)

    def test_visited_unreachable_vertex(self):
        src, dst = symmetrize_edges(np.array([0, 2]), np.array([1, 3]))
        g = build_csr(src, dst, 4)
        parent = serial_bfs(g, 0)
        parent[2] = 3
        parent[3] = 2  # cycle in the far component
        with pytest.raises(ValidationError):
            validate_bfs_result(g, 0, parent)

    def test_parent_cycle(self):
        g = random_graph(10, 40, seed=0)
        parent = make_valid(g, 0)
        # create a 2-cycle among non-root vertices that are adjacent
        src, dst = g.arcs()
        for u, v in zip(src.tolist(), dst.tolist()):
            if u != 0 and v != 0 and u != v:
                parent[u], parent[v] = v, u
                break
        with pytest.raises(ValidationError):
            validate_bfs_result(g, 0, parent)

    def test_out_of_range_parent(self):
        g = path_graph(3)
        parent = make_valid(g, 0)
        parent[2] = 99
        with pytest.raises(ValidationError, match="out-of-range"):
            validate_bfs_result(g, 0, parent)

    def test_wrong_shape(self):
        g = path_graph(3)
        with pytest.raises(ValidationError, match="shape"):
            validate_bfs_result(g, 0, np.array([0, 0]))

    def test_wrong_level_structure(self):
        # Connect two branches of a path incorrectly: parent pointing two
        # levels up is impossible in a path, use a cycle graph instead.
        src = np.array([0, 1, 2, 3, 4, 5])
        dst = np.array([1, 2, 3, 4, 5, 0])
        a_src, a_dst = symmetrize_edges(src, dst)
        g = build_csr(a_src, a_dst, 6)
        parent = make_valid(g, 0)
        # Force vertex 3 (true level 3) to claim parent 2 while also
        # corrupting vertex 2's parent to hang off the other side.
        parent[2] = 3
        parent[3] = 4
        with pytest.raises(ValidationError):
            validate_bfs_result(g, 0, parent)


@given(seed=st.integers(0, 5000), n=st.integers(2, 40))
@settings(max_examples=30, deadline=None)
def test_property_serial_bfs_always_validates(seed, n):
    g = random_graph(n, 2 * n, seed=seed)
    root = seed % n
    parent = serial_bfs(g, root)
    validate_bfs_result(g, root, parent)
