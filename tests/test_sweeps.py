"""Tests for the sweep drivers (oversubscription, strong scaling)."""

import pytest

from repro.analysis.sweeps import run_oversubscription_sweep, run_strong_scaling


class TestOversubscriptionSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_oversubscription_sweep(
            scale=11, rows=2, cols=2, factors=(1.0, 8.0)
        )

    def test_rows_complete(self, rows):
        methods = {r["method"] for r in rows}
        assert methods == {"1D", "1D+delegates", "2D", "1.5D (ours)"}
        assert len(rows) == 8

    def test_seconds_grow_with_oversubscription(self, rows):
        for method in ("1D", "1.5D (ours)"):
            t1 = next(
                r["seconds"] for r in rows
                if r["method"] == method and r["oversubscription"] == 1.0
            )
            t8 = next(
                r["seconds"] for r in rows
                if r["method"] == method and r["oversubscription"] == 8.0
            )
            assert t8 >= t1

    def test_inter_bytes_factor_independent(self, rows):
        """The traffic a method sends across supernodes is decided by the
        algorithm, not by the network's speed."""
        for method in ("1D", "2D", "1.5D (ours)"):
            vols = [
                r["inter_bytes"] for r in rows if r["method"] == method
            ]
            assert vols[0] == pytest.approx(vols[1])


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_strong_scaling(scale=12, meshes=((2, 2), (4, 4), (8, 8)))

    def test_speedup_monotone(self, rows):
        speeds = [r["speedup_vs_smallest"] for r in rows]
        assert speeds[0] == 1.0
        assert all(b >= a * 0.9 for a, b in zip(speeds, speeds[1:]))

    def test_efficiency_decays(self, rows):
        """Fixed work split over more nodes: efficiency can only drop."""
        effs = [r["efficiency"] for r in rows]
        assert effs[0] == 1.0
        assert effs[-1] <= 1.0

    def test_gteps_consistent(self, rows):
        for r in rows:
            assert r["gteps"] == pytest.approx(
                (16 << 12) / r["seconds"] / 1e9, rel=1e-9
            )
