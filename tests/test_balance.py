"""Tests for edge-aware vertex-cut load balancing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import edge_aware_cuts, vertex_cut_imbalance


class TestEdgeAwareCuts:
    def test_uniform_degrees_equal_chunks(self):
        cuts = edge_aware_cuts(np.full(8, 10), 4)
        assert cuts.tolist() == [0, 2, 4, 6, 8]

    def test_skewed_degrees_small_chunks_near_hub(self):
        degrees = np.array([1000, 1, 1, 1, 1, 1, 1, 1])
        cuts = edge_aware_cuts(degrees, 4)
        # the hub occupies its own chunk
        assert cuts[1] == 1

    def test_monotone_and_bounded(self):
        rng = np.random.default_rng(0)
        degrees = rng.integers(1, 100, size=50)
        cuts = edge_aware_cuts(degrees, 8)
        assert cuts[0] == 0 and cuts[-1] == 50
        assert np.all(np.diff(cuts) >= 0)

    def test_empty_frontier(self):
        cuts = edge_aware_cuts(np.array([], dtype=np.int64), 4)
        assert cuts.tolist() == [0, 0, 0, 0, 0]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            edge_aware_cuts(np.array([1]), 0)


class TestVertexCutImbalance:
    def test_uniform_is_balanced_either_way(self):
        degrees = np.full(384 * 4, 16)
        assert vertex_cut_imbalance(degrees, 384, edge_aware=False) == pytest.approx(
            1.0
        )
        assert vertex_cut_imbalance(degrees, 384, edge_aware=True) == pytest.approx(
            1.0, rel=0.01
        )

    def test_skew_hurts_naive_cut_only(self):
        """Paper §5: clustered frontier hubs wreck the vertex-count cut.

        A vertex-cut cannot split one vertex's adjacency, so the hubs are
        many-but-moderate (the paper's scenario: "a tremendous amount of E
        and H vertices visited by only a small fraction").
        """
        rng = np.random.default_rng(1)
        degrees = rng.integers(1, 4, size=2000)
        degrees[:40] = 5000
        naive = vertex_cut_imbalance(degrees, 64, edge_aware=False)
        aware = vertex_cut_imbalance(degrees, 64, edge_aware=True)
        assert naive > 10
        assert aware < 2.5
        assert aware < naive

    def test_single_worker_trivially_balanced(self):
        assert vertex_cut_imbalance(np.array([5, 1]), 1, edge_aware=False) == 1.0

    def test_empty_frontier(self):
        assert vertex_cut_imbalance(np.array([], np.int64), 64, edge_aware=True) == 1.0

    def test_zero_degrees(self):
        assert vertex_cut_imbalance(np.zeros(5, np.int64), 4, edge_aware=False) == 1.0

    def test_fewer_vertices_than_workers(self):
        # 2 frontier vertices on 64 workers: mean uses active workers.
        v = vertex_cut_imbalance(np.array([10, 10]), 64, edge_aware=True)
        assert v == pytest.approx(1.0)

    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=100),
        st.integers(2, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_edge_aware_chunk_bound(self, degs, workers):
        """The GraphIt guarantee: each edge-aware chunk carries at most
        total/workers + one vertex's degree."""
        degrees = np.array(degs, dtype=np.int64)
        total = int(degrees.sum())
        if total == 0:
            assert vertex_cut_imbalance(degrees, workers, edge_aware=True) == 1.0
            return
        cuts = edge_aware_cuts(degrees, workers)
        prefix = np.concatenate(([0], np.cumsum(degrees)))
        loads = prefix[cuts[1:]] - prefix[cuts[:-1]]
        assert int(loads.max()) <= total / workers + int(degrees.max()) + 1e-9
        assert int(loads.sum()) == total  # cuts partition the frontier
