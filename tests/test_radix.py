"""Tests for the radix sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sort.radix import radix_argsort, radix_sort


class TestRadixSort:
    def test_simple(self):
        assert radix_sort(np.array([3, 1, 2])).tolist() == [1, 2, 3]

    def test_empty(self):
        assert radix_sort(np.array([], dtype=np.int64)).size == 0
        assert radix_argsort(np.array([], dtype=np.int64)).size == 0

    def test_single(self):
        assert radix_sort(np.array([42])).tolist() == [42]

    def test_duplicates(self):
        arr = np.array([5, 3, 5, 1, 3, 5])
        assert radix_sort(arr).tolist() == sorted(arr.tolist())

    def test_large_keys_multi_pass(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 2**40, size=5000)
        assert np.array_equal(radix_sort(arr), np.sort(arr))

    def test_matches_numpy_many_seeds(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            arr = rng.integers(0, 10_000, size=2000)
            assert np.array_equal(radix_sort(arr), np.sort(arr))

    def test_stability(self):
        keys = np.array([1, 0, 1, 0, 1])
        order = radix_argsort(keys)
        # zeros in original order, then ones in original order
        assert order.tolist() == [1, 3, 0, 2, 4]

    def test_argsort_matches_numpy_stable(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 16, size=500)
        assert np.array_equal(radix_argsort(keys), np.argsort(keys, kind="stable"))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            radix_sort(np.array([1, -1]))

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="integer"):
            radix_argsort(np.array([1.5, 2.5]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            radix_argsort(np.zeros((2, 2), dtype=np.int64))

    def test_max_key_bound_respected(self):
        arr = np.array([3, 1, 200])
        assert np.array_equal(radix_sort(arr, max_key=255), np.sort(arr))
        with pytest.raises(ValueError, match="max_key"):
            radix_sort(arr, max_key=100)

    @given(st.lists(st.integers(0, 2**50), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_numpy(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(radix_sort(arr), np.sort(arr))
