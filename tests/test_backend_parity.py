"""Shared-memory backend == simulated backend, bit for bit.

The :class:`~repro.runtime.backends.shmem.SharedMemoryBackend` computes
kernel bodies in real worker processes but commits through the same
kernel code as the simulated loop, so every observable — parents,
per-iteration records, ledger float totals — must match the in-process
run exactly.  These tests pin that equivalence over the full golden
matrix (all seven engine configurations, the seven program goldens, a
64-lane batched wave), over hypothesis-random graphs, and in the
degenerate one-worker pool; plus the failure-path contracts (dead
workers raise, ``close()`` never leaks ``/dev/shm`` segments).
"""

from __future__ import annotations

import glob
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden.generate import E_THR, H_THR, build_system, run_record
from repro.baselines import DelegatedOneDimBFS, OneDimBFS, TwoDimBFS
from repro.core import (
    connected_components,
    delta_stepping_sssp,
    generate_weights,
    pagerank,
    partition_graph,
    sssp,
    triangle_count,
)
from repro.core.config import BFSConfig
from repro.core.engine import DistributedBFS
from repro.machine.network import MachineSpec
from repro.runtime.backends import (
    BackendWorkerError,
    SharedMemoryBackend,
    SimulatedBackend,
    create_backend,
)
from repro.runtime.backends.shmem import SEGMENT_PREFIX
from repro.runtime.mesh import ProcessMesh
from repro.runtime.replay import ReplayBFS
from repro.serve.msbfs import MultiSourceBFS


def _canon(record) -> str:
    """JSON round-trip so float comparison is repr-exact, like the goldens."""
    return json.dumps(record, sort_keys=True)


@pytest.fixture(scope="module")
def system():
    return build_system()


@pytest.fixture(scope="module")
def shmem():
    backend = SharedMemoryBackend(workers=2)
    yield backend
    backend.close()


class TestGoldenConfigParity:
    """The seven golden engine configurations, sim vs shmem."""

    def test_engine_configs(self, system, shmem):
        src, dst, n, mesh, machine, part, root = system
        for cfg in (
            BFSConfig(e_threshold=E_THR, h_threshold=H_THR),
            BFSConfig(
                e_threshold=E_THR, h_threshold=H_THR,
                sub_iteration_direction=False,
            ),
            BFSConfig(
                e_threshold=E_THR, h_threshold=H_THR,
                delayed_reduction=False,
            ),
        ):
            sim = DistributedBFS(part, machine=machine, config=cfg)
            par = DistributedBFS(
                part, machine=machine, config=cfg, backend=shmem
            )
            assert _canon(run_record(sim.run(root))) == _canon(
                run_record(par.run(root))
            )

    def test_baselines(self, system, shmem):
        src, dst, n, mesh, machine, part, root = system
        for cls in (OneDimBFS, DelegatedOneDimBFS, TwoDimBFS):
            sim = cls(src, dst, n, mesh, machine=machine)
            par = cls(src, dst, n, mesh, machine=machine, backend=shmem)
            assert _canon(run_record(sim.run(root))) == _canon(
                run_record(par.run(root))
            )

    def test_replay_engine(self, system, shmem):
        # Replay kernels expose no body split; the backend must fall
        # back to inline execution and still match exactly.
        src, dst, n, mesh, machine, part, root = system
        sim = ReplayBFS(part, machine=machine).run(root)
        par = ReplayBFS(part, machine=machine, backend=shmem).run(root)
        assert np.array_equal(sim.parent, par.parent)
        assert sim.ledger.total_seconds == par.ledger.total_seconds
        assert sim.messages_sent == par.messages_sent


class TestProgramParity:
    """The seven program-golden runs, sim vs shmem."""

    def test_bellman_ford_variants(self, system, shmem):
        src, dst, n, mesh, machine, part, root = system
        weights = generate_weights(src.size, seed=8)
        runs = (
            dict(),
            dict(weights=weights, edge_src=src, edge_dst=dst),
        )
        for kwargs in runs:
            for r in (root, 3):
                a = sssp(part, r, machine=machine, **kwargs)
                b = sssp(part, r, machine=machine, backend=shmem, **kwargs)
                assert np.array_equal(a.distance, b.distance)
                assert np.array_equal(a.parent, b.parent)
                assert a.relaxations == b.relaxations
                assert a.ledger.total_seconds == b.ledger.total_seconds

    def test_delta_stepping_variants(self, system, shmem):
        src, dst, n, mesh, machine, part, root = system
        weights = generate_weights(src.size, seed=8)
        for kwargs in (dict(), dict(delta=0.1)):
            a = delta_stepping_sssp(
                part, root, weights, src, dst, machine=machine, **kwargs
            )
            b = delta_stepping_sssp(
                part, root, weights, src, dst, machine=machine,
                backend=shmem, **kwargs
            )
            assert np.array_equal(a.distance, b.distance)
            assert np.array_equal(a.parent, b.parent)
            assert a.num_phases == b.num_phases
            assert a.ledger.total_seconds == b.ledger.total_seconds

    def test_cc_and_triangles(self, system, shmem):
        src, dst, n, mesh, machine, part, root = system
        a = connected_components(part, machine=machine)
        b = connected_components(part, machine=machine, backend=shmem)
        assert np.array_equal(a.state["labels"], b.state["labels"])
        assert a.ledger.total_seconds == b.ledger.total_seconds
        a = triangle_count(part, machine=machine)
        b = triangle_count(part, machine=machine, backend=shmem)
        assert np.array_equal(a.state["triangles"], b.state["triangles"])
        assert (
            a.info["total_triangles"] == b.info["total_triangles"]
        )

    def test_pagerank_variants(self, system, shmem):
        src, dst, n, mesh, machine, part, root = system
        for kwargs in (
            dict(tol=1e-10, max_iterations=50),
            dict(tol=0.0, max_iterations=5),
        ):
            a = pagerank(part, machine=machine, **kwargs)
            b = pagerank(part, machine=machine, backend=shmem, **kwargs)
            assert np.array_equal(a.ranks, b.ranks)
            assert a.num_iterations == b.num_iterations
            assert a.ledger.total_seconds == b.ledger.total_seconds


class TestBatchParity:
    def test_msbfs_64_lane_batch(self, system, shmem):
        src, dst, n, mesh, machine, part, root = system
        rng = np.random.default_rng(3)
        roots = [int(r) for r in rng.choice(n, size=64, replace=False)]
        sim = MultiSourceBFS(part, machine=machine).run_batch(roots)
        par = MultiSourceBFS(
            part, machine=machine, backend=shmem
        ).run_batch(roots)
        assert np.array_equal(sim.parent, par.parent)
        assert sim.ledger.total_seconds == par.ledger.total_seconds
        assert sim.ledger.total_bytes == par.ledger.total_bytes


class TestRandomGraphParity:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs(self, seed, shmem):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(32, 256))
        m = int(rng.integers(n, 4 * n))
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
        mesh = ProcessMesh(2, 2, machine=machine)
        part = partition_graph(
            src, dst, n, mesh, e_threshold=8, h_threshold=4
        )
        root = int(np.argmax(part.degrees))
        sim = DistributedBFS(part, machine=machine)
        par = DistributedBFS(part, machine=machine, backend=shmem)
        assert _canon(run_record(sim.run(root))) == _canon(
            run_record(par.run(root))
        )


class TestBackendLifecycle:
    def test_workers_one_degenerate_pool(self, system):
        src, dst, n, mesh, machine, part, root = system
        with SharedMemoryBackend(workers=1) as backend:
            sim = DistributedBFS(part, machine=machine)
            par = DistributedBFS(part, machine=machine, backend=backend)
            assert _canon(run_record(sim.run(root))) == _canon(
                run_record(par.run(root))
            )
            assert len(backend._procs) == 1

    def test_create_backend_registry(self):
        assert isinstance(create_backend("simulated"), SimulatedBackend)
        shm = create_backend("shmem", workers=3)
        try:
            assert isinstance(shm, SharedMemoryBackend)
            assert shm.workers == 3
        finally:
            shm.close()
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("cuda")
        with pytest.raises(ValueError, match="workers"):
            SharedMemoryBackend(workers=0)

    def test_describe_feeds_fingerprint(self):
        backend = SharedMemoryBackend(workers=4)
        try:
            assert backend.describe() == {"backend": "shmem", "workers": 4}
        finally:
            backend.close()
        assert SimulatedBackend().describe() == {
            "backend": "simulated",
            "workers": 1,
        }

    def test_dead_workers_raise_and_close_never_leaks(self, system):
        src, dst, n, mesh, machine, part, root = system
        backend = SharedMemoryBackend(workers=2)
        engine = DistributedBFS(part, machine=machine, backend=backend)
        engine.run(root)
        names = [t.shm.name for t in backend._tables.values()]
        names += [b.shm.name for b in backend._masks.values()]
        assert names, "mounting must have created shared segments"
        for path in names:
            assert glob.glob(f"/dev/shm/{path}")
        for proc in backend._procs:
            proc.terminate()
            proc.join(timeout=5)
        with pytest.raises(BackendWorkerError, match="died"):
            engine.run(root)
        backend.close()
        for path in names:
            assert not glob.glob(f"/dev/shm/{path}")
        backend.close()  # idempotent

    def test_no_prefixed_segments_leak(self, system):
        # Whatever earlier tests did, a closed backend leaves nothing
        # carrying the recognizable prefix behind.
        src, dst, n, mesh, machine, part, root = system
        before = set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*"))
        with SharedMemoryBackend(workers=2) as backend:
            DistributedBFS(part, machine=machine, backend=backend).run(root)
        after = set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*"))
        assert after <= before
