"""Multi-source (batched) BFS: bit-identity, amortization, recovery.

The serving contract under test: every lane of a batch is bit-identical
to a sequential :class:`DistributedBFS` run of the same root under the
same config, while the batch as a whole charges strictly less simulated
traffic than the sequential runs combined.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.core.kernels.base import ComponentKernel
from repro.core.lanes import (
    MAX_LANES,
    LaneState,
    all_lanes_mask,
    iter_lanes,
    lane_bit,
    lane_population,
)
from repro.graph500.driver import run_graph500, sample_roots
from repro.graph500.reference import bfs_levels_from_parents, serial_bfs
from repro.graph500.rmat import generate_edges
from repro.graph500.validate import validate_bfs_result
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.machine.network import MachineSpec
from repro.resilience.faults import FaultInjector
from repro.resilience.recovery import RecoveryError, RecoveryPolicy
from repro.runtime.mesh import ProcessMesh
from repro.serve.msbfs import (
    MAX_BATCH_ROOTS,
    MultiSourceBFS,
    run_batch_with_recovery,
)

from helpers import random_edge_list

GOLDEN = dict(scale=10, rows=2, cols=2, seed=7, e_thr=128, h_thr=16)


def build_pair(
    scale=10, rows=2, cols=2, e_thr=128, h_thr=16, seed=7, **cfg_kwargs
):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=e_thr, h_threshold=h_thr
    )
    config = BFSConfig(e_threshold=e_thr, h_threshold=h_thr, **cfg_kwargs)
    sequential = DistributedBFS(part, machine=machine, config=config)
    batched = MultiSourceBFS(part, machine=machine, config=config)
    graph = build_csr(*symmetrize_edges(src, dst), n)
    return sequential, batched, graph, src, dst


@pytest.fixture(scope="module")
def golden():
    """One full 64-root batch vs 64 sequential runs on the golden
    config, shared by every bit-identity assertion in this module."""
    sequential, batched, graph, src, dst = build_pair(
        GOLDEN["scale"], GOLDEN["rows"], GOLDEN["cols"],
        GOLDEN["e_thr"], GOLDEN["h_thr"], GOLDEN["seed"],
    )
    roots = sample_roots(
        batched.part.degrees, MAX_BATCH_ROOTS,
        rng=np.random.default_rng(GOLDEN["seed"]),
    )
    seq = [sequential.run(int(r)) for r in roots]
    batch = batched.run_batch(roots)
    return dict(
        batched=batched, sequential=sequential, graph=graph,
        src=src, dst=dst, roots=roots, seq=seq, batch=batch,
    )


class TestLanePrimitives:
    def test_lane_bit_and_mask(self):
        assert lane_bit(0) == np.uint64(1)
        assert lane_bit(63) == np.uint64(1) << np.uint64(63)
        assert all_lanes_mask(64) == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert all_lanes_mask(1) == np.uint64(1)

    def test_iter_lanes(self):
        mask = lane_bit(0) | lane_bit(5) | lane_bit(63)
        assert list(iter_lanes(mask)) == [0, 5, 63]
        assert list(iter_lanes(np.uint64(0))) == []

    def test_lane_population_matches_per_lane_counts(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2**63, size=100, dtype=np.uint64)
        pop = lane_population(bits, 64)
        for lane in range(64):
            expect = int(np.count_nonzero(bits & lane_bit(lane)))
            assert pop[lane] == expect

    def test_lane_state_validates_roots(self):
        with pytest.raises(ValueError):
            LaneState(np.array([], dtype=np.int64), 16)
        with pytest.raises(ValueError):
            LaneState(np.arange(65), 100)
        with pytest.raises(ValueError):
            LaneState(np.array([1, 1]), 16)  # duplicates
        with pytest.raises(ValueError):
            LaneState(np.array([16]), 16)  # out of range


class TestBitIdentity:
    def test_all_64_lanes_match_sequential_parents(self, golden):
        batch, seq = golden["batch"], golden["seq"]
        for lane in range(MAX_BATCH_ROOTS):
            assert np.array_equal(
                batch.lane_parent(lane), seq[lane].parent
            ), f"lane {lane} (root {golden['roots'][lane]}) diverged"

    def test_lane_records_match_sequential_iterations(self, golden):
        batch, seq = golden["batch"], golden["seq"]
        for lane in range(MAX_BATCH_ROOTS):
            lane_recs = batch.lane_records(lane)
            seq_recs = seq[lane].iterations
            assert len(lane_recs) == len(seq_recs)
            for got, want in zip(lane_recs, seq_recs):
                assert got.frontier_size == want.frontier_size
                assert got.directions == want.directions

    def test_wave_count_is_max_lane_depth(self, golden):
        batch = golden["batch"]
        depths = [batch.lane_depth(l) for l in range(batch.num_lanes)]
        assert batch.num_waves == max(depths)

    def test_every_lane_passes_graph500_validation(self, golden):
        batch = golden["batch"]
        for lane in (0, 17, 42, 63):
            root = int(golden["roots"][lane])
            validate_bfs_result(
                golden["graph"], root, batch.lane_parent(lane),
                edge_src=golden["src"], edge_dst=golden["dst"],
            )

    def test_lane_levels_match_serial_reference(self, golden):
        graph = golden["graph"]
        batch = golden["batch"]
        for lane in (0, 31, 63):
            root = int(golden["roots"][lane])
            ref = bfs_levels_from_parents(graph, root, serial_bfs(graph, root))
            got = bfs_levels_from_parents(
                graph, root, batch.lane_parent(lane)
            )
            assert np.array_equal(ref, got)

    def test_batch_of_one_matches_sequential(self, golden):
        root = golden["roots"][:1]
        batch = golden["batched"].run_batch(root)
        assert np.array_equal(
            batch.lane_parent(0), golden["seq"][0].parent
        )

    def test_isolated_root_lane(self):
        # A lane whose root has no edges terminates at wave 1 without
        # perturbing the other lanes.
        sequential, batched, graph, *_ = build_pair(scale=9)
        isolated = np.flatnonzero(graph.degrees == 0)
        connected = np.flatnonzero(graph.degrees > 0)
        assert isolated.size, "SCALE-9 R-MAT should have isolated vertices"
        roots = np.array(
            [int(connected[0]), int(isolated[0]), int(connected[1])]
        )
        batch = batched.run_batch(roots)
        lone = batch.lane_parent(1)
        assert lone[isolated[0]] == isolated[0]
        assert np.count_nonzero(lone >= 0) == 1
        # One wave (the root itself), like a sequential isolated run.
        assert batch.lane_depth(1) == 1
        seq_isolated = sequential.run(int(isolated[0]))
        assert np.array_equal(lone, seq_isolated.parent)
        assert batch.lane_depth(1) == seq_isolated.num_iterations
        for lane in (0, 2):
            assert np.array_equal(
                batch.lane_parent(lane),
                sequential.run(int(roots[lane])).parent,
            )

    @pytest.mark.parametrize(
        "cfg",
        [
            dict(sub_iteration_direction=False),
            dict(delayed_reduction=True),
            dict(local_pull_threshold=0.01),
            dict(cross_pull_bias=8.0),
        ],
        ids=["whole-iteration", "delayed-reduction", "pull-happy", "biased"],
    )
    def test_config_sweep_bit_identity(self, cfg):
        sequential, batched, *_ = build_pair(scale=9, **cfg)
        roots = sample_roots(
            batched.part.degrees, 16, rng=np.random.default_rng(3)
        )
        batch = batched.run_batch(roots)
        for lane, root in enumerate(roots):
            assert np.array_equal(
                batch.lane_parent(lane), sequential.run(int(root)).parent
            ), f"lane {lane} diverged under {cfg}"

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**20), n_lanes=st.integers(2, 12))
    def test_property_random_graphs_match_reference(self, seed, n_lanes):
        # Seeded sweep over random graphs: every lane's depths equal the
        # serial reference's and its parents equal the sequential engine's.
        src, dst = random_edge_list(256, 1024, seed=seed)
        machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
        mesh = ProcessMesh(2, 2, machine=machine)
        part = partition_graph(
            src, dst, 256, mesh, e_threshold=64, h_threshold=8
        )
        config = BFSConfig(e_threshold=64, h_threshold=8)
        sequential = DistributedBFS(part, machine=machine, config=config)
        batched = MultiSourceBFS(part, machine=machine, config=config)
        graph = build_csr(*symmetrize_edges(src, dst), 256)
        rng = np.random.default_rng(seed)
        roots = rng.choice(256, size=n_lanes, replace=False)
        batch = batched.run_batch(roots)
        for lane, root in enumerate(roots):
            root = int(root)
            assert np.array_equal(
                batch.lane_parent(lane), sequential.run(root).parent
            )
            ref_levels = bfs_levels_from_parents(
                graph, root, serial_bfs(graph, root)
            )
            got_levels = bfs_levels_from_parents(
                graph, root, batch.lane_parent(lane)
            )
            assert np.array_equal(ref_levels, got_levels)


class TestAmortization:
    def test_batch_traffic_strictly_less_than_sequential_sum(self, golden):
        batch, seq = golden["batch"], golden["seq"]
        seq_bytes = sum(r.ledger.total_bytes for r in seq)
        seq_seconds = sum(r.total_seconds for r in seq)
        assert batch.ledger.total_bytes < seq_bytes
        assert batch.total_seconds < seq_seconds

    def test_amortized_cost_at_least_4x_below_single_root(self, golden):
        batch, seq = golden["batch"], golden["seq"]
        seq_per_query = sum(r.total_seconds for r in seq) / len(seq)
        assert seq_per_query / batch.amortized_seconds >= 4.0

    def test_per_root_ledger_attached_exactly_once(self, golden):
        batch = golden["batch"]
        views = [
            batch.per_root_result(lane, share_ledger=(lane == 0))
            for lane in range(batch.num_lanes)
        ]
        total = sum(v.ledger.total_bytes for v in views)
        assert total == batch.ledger.total_bytes
        assert views[1].ledger.total_bytes == 0
        # Amortized per-root times sum back to the batch total.
        assert sum(v.total_seconds for v in views) == pytest.approx(
            batch.total_seconds
        )


class TestBatchValidationErrors:
    def test_duplicate_roots_rejected(self, golden):
        roots = golden["roots"]
        with pytest.raises(ValueError):
            golden["batched"].run_batch(np.array([roots[0], roots[0]]))

    def test_oversized_batch_rejected(self, golden):
        with pytest.raises(ValueError):
            golden["batched"].run_batch(np.arange(MAX_BATCH_ROOTS + 1))

    def test_kernel_without_lane_support_detected(self):
        class Plain(ComponentKernel):
            name = "x"

            @property
            def num_arcs(self):
                return 1

            def execute(self, direction, state, ledger, record):
                return []

        class Laned(Plain):
            def execute_lanes(self, direction, group_lanes, lanes, ledger,
                              record):
                return []

        assert not Plain().supports_lanes
        assert Laned().supports_lanes
        with pytest.raises(NotImplementedError):
            Plain().execute_lanes("push", np.uint64(1), None, None, None)


class TestBatchRecovery:
    def test_crash_replay_matches_unfaulted_batch(self, golden):
        batched = golden["batched"]
        roots = golden["roots"][:8]
        clean = batched.run_batch(roots)
        injector = FaultInjector(
            "crash:rank=1,iter=2", rng=np.random.default_rng(0)
        )
        recovered = run_batch_with_recovery(
            batched, roots, faults=injector, policy=RecoveryPolicy()
        )
        assert recovered.crashes == 1
        assert recovered.wasted_seconds > 0
        for lane in range(roots.size):
            assert np.array_equal(
                recovered.result.lane_parent(lane), clean.lane_parent(lane)
            )
        # The wasted attempt's cost is merged into the final ledger.
        assert recovered.result.total_seconds > clean.total_seconds

    def test_restart_budget_exhaustion_raises(self, golden):
        injector = FaultInjector(
            "crash:rank=0,iter=1", rng=np.random.default_rng(0)
        )
        with pytest.raises(RecoveryError):
            run_batch_with_recovery(
                golden["batched"], golden["roots"][:4], faults=injector,
                policy=RecoveryPolicy(max_restarts=0),
            )

    def test_degrade_mode_rejected(self, golden):
        with pytest.raises(RecoveryError):
            run_batch_with_recovery(
                golden["batched"], golden["roots"][:4],
                policy=RecoveryPolicy(mode="degrade"),
            )


class TestDriverBatchRoots:
    CFG = dict(seed=7, num_roots=6, e_threshold=128, h_threshold=16)

    def test_roots_identical_across_modes(self):
        plain = run_graph500(8, 2, 2, **self.CFG)
        batched = run_graph500(8, 2, 2, batch_roots=True, **self.CFG)
        faulty = run_graph500(
            8, 2, 2, faults="crash:rank=1,iter=2", **self.CFG
        )
        faulty_batched = run_graph500(
            8, 2, 2, faults="crash:rank=1,iter=2", batch_roots=True,
            **self.CFG,
        )
        for other in (batched, faulty, faulty_batched):
            assert np.array_equal(plain.roots, other.roots)
        assert plain.validated and batched.validated
        assert faulty.validated and faulty_batched.validated

    def test_batched_parents_bit_identical_to_sequential(self):
        plain = run_graph500(8, 2, 2, **self.CFG)
        batched = run_graph500(8, 2, 2, batch_roots=True, **self.CFG)
        for a, b in zip(plain.results, batched.results):
            assert np.array_equal(a.parent, b.parent)

    def test_batched_crash_accounting(self):
        rep = run_graph500(
            8, 2, 2, faults="crash:rank=1,iter=2", batch_roots=True,
            **self.CFG,
        )
        assert rep.resilience["crashes"] == 1
        assert rep.resilience["restarts"] == 1
        assert rep.resilience["wasted_seconds"] > 0

    def test_batched_amortized_times_sum_to_batch_total(self):
        batched = run_graph500(8, 2, 2, batch_roots=True, **self.CFG)
        # One batch: every root reports the same amortized share.
        assert np.allclose(batched.bfs_times, batched.bfs_times[0])

    def test_checkpointing_incompatible(self):
        with pytest.raises(ValueError):
            run_graph500(
                8, 2, 2, batch_roots=True, checkpoint_every=1, **self.CFG
            )

    def test_degrade_recovery_incompatible(self):
        with pytest.raises(ValueError):
            run_graph500(
                8, 2, 2, batch_roots=True, recovery_mode="degrade",
                **self.CFG,
            )

    def test_sample_roots_consumes_exactly_one_draw(self):
        # The post-sampling generator state must not depend on the
        # candidate count or the number of roots requested, or fault
        # draws sequenced after sampling would shift between graphs.
        r1, r2 = np.random.default_rng(5), np.random.default_rng(5)
        sample_roots(np.ones(100, dtype=np.int64), 4, rng=r1)
        sample_roots(np.ones(100_000, dtype=np.int64), 64, rng=r2)
        assert r1.integers(0, 2**62) == r2.integers(0, 2**62)

    def test_sample_roots_skips_zero_degree(self):
        degrees = np.array([0, 3, 0, 1, 0, 2, 0, 0], dtype=np.int64)
        roots = sample_roots(degrees, 3, rng=np.random.default_rng(0))
        assert np.all(degrees[roots] > 0)
        assert np.unique(roots).size == roots.size
