"""Tests for ASCII reporting and breakdown assembly."""

import numpy as np
import pytest

from repro.analysis.breakdown import ablation_breakdown, normalize_shares, stack_series
from repro.analysis.reporting import (
    ascii_bar_chart,
    ascii_table,
    format_seconds,
    write_csv,
)


class TestFormatSeconds:
    def test_units(self):
        assert format_seconds(2.5) == "2.5 s"
        assert format_seconds(0.0025) == "2.5 ms"
        assert format_seconds(2.5e-6) == "2.5 us"
        assert format_seconds(2.5e-9) == "2.5 ns"

    def test_exact_zero_is_seconds(self):
        # 0.0 used to fall through every unit and render as "0 ns".
        assert format_seconds(0.0) == "0 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)


class TestAsciiTable:
    def test_renders_aligned(self):
        out = ascii_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "333" in out

    def test_title(self):
        out = ascii_table(["x"], [[1]], title="Table 1")
        assert out.startswith("Table 1")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])


class TestAsciiBarChart:
    def test_linear(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 2.0])
        lines = out.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_log_scale_spans_decades(self):
        out = ascii_bar_chart(
            ["mpe", "cg1", "cg6"], [0.04, 12.5, 58.6], log=True, unit=" GB/s"
        )
        assert "58.6 GB/s" in out
        lines = out.splitlines()
        assert lines[0].count("#") < lines[1].count("#") < lines[2].count("#")

    def test_empty(self):
        assert "(empty)" in ascii_bar_chart([], [])

    def test_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [-1.0])


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        p = write_csv(tmp_path / "x" / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        text = p.read_text().strip().splitlines()
        assert text[0] == "a,b"
        assert text[2] == "3,4"


class TestBreakdowns:
    def test_normalize(self):
        out = normalize_shares({"a": 1.0, "b": 3.0})
        assert out["a"] == pytest.approx(0.25)
        assert sum(out.values()) == pytest.approx(1.0)

    def test_normalize_zero_total(self):
        assert normalize_shares({"a": 0.0}) == {"a": 0.0}

    def test_stack_series_orders_by_total(self):
        xs, cats, series = stack_series(
            [(1, {"a": 1.0, "b": 9.0}), (2, {"b": 1.0})]
        )
        assert xs == [1, 2]
        assert cats[0] == "b"
        assert series["a"] == [pytest.approx(0.1), 0.0]

    def test_stack_series_absolute(self):
        _, _, series = stack_series([(1, {"a": 2.0})], normalize=False)
        assert series["a"] == [2.0]

    def test_ablation_breakdown_canonical_order(self):
        labels, cats, series = ablation_breakdown(
            [
                ("Baseline", {"EH2EH push": 1.0, "other": 0.5}),
                ("+ Seg", {"EH2EH pull": 0.2, "other": 0.5}),
            ]
        )
        assert labels == ["Baseline", "+ Seg"]
        assert cats.index("EH2EH pull") < cats.index("EH2EH push")
        assert series["EH2EH push"] == [1.0, 0.0]
