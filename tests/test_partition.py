"""Tests for the 3-level degree-aware 1.5D partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import PartitionedGraph, VertexClass, partition_graph
from repro.core.subgraphs import COMPONENT_ORDER
from repro.graph500.rmat import generate_edges
from repro.graphs.csr import symmetrize_edges
from repro.runtime.mesh import ProcessMesh

from helpers import random_edge_list


def small_partition(scale=10, rows=2, cols=2, e_thr=128, h_thr=16, seed=1):
    src, dst = generate_edges(scale, seed=seed)
    mesh = ProcessMesh(rows, cols)
    return (
        partition_graph(src, dst, 1 << scale, mesh, e_threshold=e_thr, h_threshold=h_thr),
        src,
        dst,
    )


class TestClassification:
    def test_three_classes_by_threshold(self):
        part, _, _ = small_partition()
        deg = part.degrees
        assert np.all(deg[part.vclass == VertexClass.E] >= 128)
        h_mask = part.vclass == VertexClass.H
        assert np.all((deg[h_mask] >= 16) & (deg[h_mask] < 128))
        assert np.all(deg[part.vclass == VertexClass.L] < 16)

    def test_e_ids_sorted_by_degree_desc(self):
        part, _, _ = small_partition()
        d = part.degrees[part.e_ids]
        assert np.all(np.diff(d) <= 0)

    def test_class_sizes_consistent(self):
        part, _, _ = small_partition()
        sizes = part.class_sizes()
        assert sizes["E"] + sizes["H"] + sizes["L"] == part.num_vertices
        assert sizes["EH"] == sizes["E"] + sizes["H"]
        assert part.num_e == sizes["E"]
        assert part.num_l == sizes["L"]

    def test_invalid_thresholds(self):
        src, dst = random_edge_list(16, 32, seed=0)
        mesh = ProcessMesh(2, 2)
        with pytest.raises(ValueError, match="e_threshold"):
            partition_graph(src, dst, 16, mesh, e_threshold=4, h_threshold=8)

    def test_equal_thresholds_mean_no_h(self):
        part_no_h, _, _ = small_partition(e_thr=64, h_thr=64)
        assert part_no_h.num_h == 0
        # degenerates toward 1D-with-heavy-delegates: no H2L/L2H arcs
        assert part_no_h.components["H2L"].num_arcs == 0
        assert part_no_h.components["L2H"].num_arcs == 0

    def test_threshold_one_means_no_l(self):
        part, _, _ = small_partition(e_thr=128, h_thr=1)
        # every non-isolated vertex is E or H -> 2D-like degenerate form
        deg = part.degrees
        assert np.all(part.vclass[deg > 0] >= VertexClass.H)
        for name in ("E2L", "L2E", "H2L", "L2H", "L2L"):
            assert part.components[name].num_arcs == 0


class TestArcCover:
    def test_components_cover_all_arcs_exactly_once(self):
        part, src, dst = small_partition()
        a_src, a_dst = symmetrize_edges(src, dst)
        total = sum(c.num_arcs for c in part.components.values())
        assert total == a_src.size

    def test_component_class_membership(self):
        part, _, _ = small_partition()
        vc = part.vclass
        expect = {
            "EH2EH": (VertexClass.H, VertexClass.H, VertexClass.E, VertexClass.E),
            "E2L": (VertexClass.E, VertexClass.E, VertexClass.L, VertexClass.L),
            "L2E": (VertexClass.L, VertexClass.L, VertexClass.E, VertexClass.E),
            "H2L": (VertexClass.H, VertexClass.H, VertexClass.L, VertexClass.L),
            "L2H": (VertexClass.L, VertexClass.L, VertexClass.H, VertexClass.H),
            "L2L": (VertexClass.L, VertexClass.L, VertexClass.L, VertexClass.L),
        }
        for name, (smin, smax2, dmin, dmax2) in expect.items():
            comp = part.components[name]
            if comp.num_arcs == 0:
                continue
            s, d, _ = comp.arcs()
            if name == "EH2EH":
                assert np.all(vc[s] >= VertexClass.H)
                assert np.all(vc[d] >= VertexClass.H)
            else:
                assert np.all(vc[s] == smin)
                assert np.all(vc[d] == dmin)

    def test_multiset_of_arcs_preserved(self):
        part, src, dst = small_partition(scale=8)
        a_src, a_dst = symmetrize_edges(src, dst)
        orig = sorted(zip(a_src.tolist(), a_dst.tolist()))
        got = []
        for comp in part.components.values():
            s, d, _ = comp.arcs()
            got.extend(zip(s.tolist(), d.tolist()))
        assert sorted(got) == orig


class TestPlacement:
    def test_eh2eh_2d_placement(self):
        """H endpoints pin arcs to their delegate column/row; E endpoints
        (delegated globally) are dealt freely."""
        part, _, _ = small_partition()
        mesh = part.mesh
        comp = part.components["EH2EH"]
        s, d, r = comp.arcs()
        vc = part.vclass
        h_src = vc[s] == VertexClass.H
        h_dst = vc[d] == VertexClass.H
        assert np.all(mesh.col_of(r[h_src]) == part.eh_col[s[h_src]])
        assert np.all(mesh.row_of(r[h_dst]) == part.eh_row[d[h_dst]])

    def test_e2l_at_l_owner(self):
        part, _, _ = small_partition()
        comp = part.components["E2L"]
        if comp.num_arcs:
            _, d, r = comp.arcs()
            assert np.all(r == part.mesh.owner_of(d, part.num_vertices))

    def test_l2e_l2h_l2l_at_source_owner(self):
        part, _, _ = small_partition()
        for name in ("L2E", "L2H", "L2L"):
            comp = part.components[name]
            if comp.num_arcs:
                s, _, r = comp.arcs()
                assert np.all(r == part.mesh.owner_of(s, part.num_vertices))

    def test_h2l_at_intersection(self):
        """H2L arcs sit in H's column and L's row, so messages stay
        intra-row (§4.1)."""
        part, _, _ = small_partition()
        mesh = part.mesh
        comp = part.components["H2L"]
        if comp.num_arcs:
            s, d, r = comp.arcs()
            o_d = mesh.owner_of(d, part.num_vertices)
            assert np.all(mesh.col_of(r) == part.eh_col[s])
            assert np.all(mesh.row_of(r) == mesh.row_of(o_d))

    def test_delegate_counts(self):
        part, _, _ = small_partition()
        assert int(part.col_eh_counts.sum()) == part.num_eh
        assert int(part.row_eh_counts.sum()) == part.num_eh
        assert int(part.l_per_rank.sum()) == part.num_l

    def test_eh_space_deal_is_balanced(self):
        """The cyclic EH deal keeps per-column delegate counts within 1."""
        part, _, _ = small_partition()
        assert part.col_eh_counts.max() - part.col_eh_counts.min() <= 1
        # heaviest vertices land on distinct columns
        top = part.e_ids[: part.mesh.cols]
        if top.size == part.mesh.cols:
            assert len(set(part.eh_col[top].tolist())) == part.mesh.cols

    def test_eh_coordinates_only_for_eh(self):
        part, _, _ = small_partition()
        l_mask = part.vclass == VertexClass.L
        assert np.all(part.eh_col[l_mask] == -1)
        eh_mask = part.vclass >= VertexClass.H
        assert np.all(part.eh_col[eh_mask] >= 0)
        assert np.all(part.eh_row[eh_mask] >= 0)


class TestLoadBalance:
    def test_fig13_spread_is_small(self):
        """Per-rank edge counts of each component are well balanced."""
        part, _, _ = small_partition(scale=14, rows=4, cols=4, e_thr=512, h_thr=32)
        for name, loads in part.component_load_vectors().items():
            if loads.sum() == 0:
                continue
            spread = (loads.max() - loads.min()) / loads.mean()
            assert spread < 0.65, f"{name} spread {spread:.2f}"

    def test_core_fraction_above_half(self):
        """Graph500 graphs concentrate most edges among E/H (paper: >60%
        in EH2EH alone at production thresholds)."""
        part, _, _ = small_partition(scale=14, e_thr=512, h_thr=32)
        assert part.core_fraction() > 0.5


@given(
    seed=st.integers(0, 1000),
    n_exp=st.integers(4, 8),
    rows=st.integers(1, 3),
    cols=st.integers(1, 3),
    h_thr=st.integers(1, 8),
    e_extra=st.integers(0, 8),
)
@settings(max_examples=40, deadline=None)
def test_property_partition_is_exact_cover(seed, n_exp, rows, cols, h_thr, e_extra):
    n = 1 << n_exp
    src, dst = random_edge_list(n, 4 * n, seed=seed)
    mesh = ProcessMesh(rows, cols)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=h_thr + e_extra, h_threshold=h_thr
    )
    a_src, a_dst = symmetrize_edges(src, dst)
    assert part.total_arcs == a_src.size
    # every arc's rank is within the mesh
    for comp in part.components.values():
        if comp.num_arcs:
            _, _, r = comp.arcs()
            assert r.min() >= 0 and r.max() < mesh.num_ranks
