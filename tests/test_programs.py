"""The vertex-program layer: one scheduler, every algorithm.

Four contracts are pinned here:

1. **Golden bit-for-bit** — the re-mounted programs reproduce the
   pre-refactor bespoke loops' exact outputs
   (``tests/golden/programs_golden.json``).
2. **External exactness** — CC/TC/SSSP agree with scipy's independent
   implementations on the same graph.
3. **Engine-feature inheritance** — programs emit the documented
   spans/metrics, checkpoint and recover from injected crashes, and are
   servable through ``TraversalService``.
4. **The documentation runs** — the ``docs/programs.md`` tutorial block
   executes verbatim, and the CLI error contract holds end to end.
"""

import asyncio
import json
import re
from pathlib import Path

import numpy as np
import pytest

from golden.generate_programs import capture
from repro.cli import main
from repro.core import (
    DistributedBFS,
    connected_components,
    generate_weights,
    partition_graph,
    triangle_count,
)
from repro.core.subgraphs import COMPONENT_ORDER
from repro.core.programs import (
    PROGRAM_REGISTRY,
    ConnectedComponentsProgram,
    ProgramSpec,
    available_programs,
    build_program,
    register_program,
)
from repro.graph500.rmat import generate_edges
from repro.graphs.csr import symmetrize_edges
from repro.machine.network import MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.resilience import (
    CheckpointError,
    FaultInjector,
    LevelCheckpointer,
    ProgramCheckpoint,
    RecoveryError,
    RecoveryPolicy,
    run_program_with_recovery,
)
from repro.runtime.mesh import ProcessMesh

REPO = Path(__file__).parent.parent
GOLDEN = Path(__file__).parent / "golden" / "programs_golden.json"


def build_system(scale=9, rows=2, cols=2, seed=7):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=128, h_threshold=16
    )
    return src, dst, part, machine, mesh


@pytest.fixture(scope="module")
def system():
    return build_system()


def scipy_adjacency(src, dst, n):
    """Binarized symmetric self-loop-free adjacency — the same graph the
    components store (symmetrized multigraph, duplicates collapsed)."""
    import scipy.sparse as sp

    s, d = symmetrize_edges(src, dst)
    keep = s != d
    adj = sp.csr_matrix(
        (np.ones(keep.sum(), dtype=np.int64), (s[keep], d[keep])),
        shape=(n, n),
    )
    adj.sum_duplicates()
    adj.data = np.minimum(adj.data, 1)
    return adj


# ----------------------------------------------------------------------
# 1. golden bit-for-bit
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def current():
    # json round-trip so float repr / list types compare like the file.
    return json.loads(json.dumps(capture()))


class TestGolden:
    def test_metadata_matches(self, golden, current):
        for key in ("scale", "seed", "e_threshold", "h_threshold",
                    "weights_seed", "hub"):
            assert golden[key] == current[key]

    @pytest.mark.parametrize("key", [
        "bellman_ford_unit", "bellman_ford_hub", "bellman_ford_r3",
        "delta_default_hub", "delta_fixed_r3",
        "pagerank", "pagerank_capped",
    ])
    def test_program_matches_golden_bit_for_bit(self, golden, current, key):
        assert current[key] == golden[key], (
            f"{key} diverged from the pre-refactor record — this is a "
            "behaviour change; only regenerate the golden if intentional"
        )


# ----------------------------------------------------------------------
# 2. external exactness (scipy cross-checks)
# ----------------------------------------------------------------------


class TestExactness:
    def test_cc_matches_scipy_partition(self, system):
        from scipy.sparse import csgraph

        src, dst, part, machine, _ = system
        res = connected_components(part, machine=machine)
        labels = res.state["labels"]
        adj = scipy_adjacency(src, dst, part.num_vertices)
        n_comp, sp_labels = csgraph.connected_components(adj, directed=False)
        assert res.info["num_components"] == n_comp
        # Identical partition, and each label is its component's min ID.
        for c in range(n_comp):
            members = np.flatnonzero(sp_labels == c)
            assert np.all(labels[members] == members.min())

    def test_triangles_match_scipy(self, system):
        src, dst, part, machine, _ = system
        res = triangle_count(part, machine=machine)
        adj = scipy_adjacency(src, dst, part.num_vertices)
        expected = int((adj @ adj).multiply(adj).sum()) // 6
        assert res.info["total_triangles"] == expected
        assert int(res.state["triangles"].sum()) == 3 * expected

    def test_unit_sssp_matches_scipy_dijkstra(self, system):
        from scipy.sparse import csgraph

        src, dst, part, machine, _ = system
        hub = int(np.argmax(part.degrees))
        engine = DistributedBFS(part, machine=machine)
        res = engine.run_program(build_program("sssp", part, root=hub))
        adj = scipy_adjacency(src, dst, part.num_vertices)
        ref = csgraph.dijkstra(adj, directed=False, indices=hub,
                               unweighted=True)
        assert np.array_equal(res.state["distance"], ref)

    def test_cc_push_pull_equivalence(self, system):
        _, _, part, machine, _ = system
        engine = DistributedBFS(part, machine=machine)
        by_direction = {}
        for direction in ("push", "pull"):
            prog = ConnectedComponentsProgram()
            prog.forced_direction = direction
            by_direction[direction] = engine.run_program(prog)
        assert np.array_equal(
            by_direction["push"].state["labels"],
            by_direction["pull"].state["labels"],
        )
        # ... but the priced traffic differs: direction is a cost choice,
        # not a semantics choice.
        assert by_direction["push"].converged
        assert by_direction["pull"].converged

    def test_pagerank_is_a_distribution(self, system):
        _, _, part, machine, _ = system
        engine = DistributedBFS(part, machine=machine)
        res = engine.run_program(build_program("pagerank", part))
        ranks = res.state["ranks"]
        assert res.converged
        assert np.all(ranks > 0)
        assert abs(ranks.sum() - 1.0) < 1e-9


# ----------------------------------------------------------------------
# 3a. observability inheritance
# ----------------------------------------------------------------------


class TestObservability:
    def test_program_span_tree_and_metric_families(self, system):
        _, _, part, machine, _ = system
        tracer = Tracer()
        registry = MetricsRegistry()
        engine = DistributedBFS(
            part, machine=machine, tracer=tracer, metrics=registry
        )
        res = engine.run_program(ConnectedComponentsProgram())

        # Root span is `program` (not `bfs`), labeled with the name.
        programs = tracer.find(name="program")
        assert len(programs) == 1
        assert programs[0].attrs["program"] == "cc"
        iterations = tracer.find(category="iteration")
        assert len(iterations) == res.num_iterations
        assert all(sp.parent == programs[0].sid for sp in iterations)
        components = tracer.find(category="component")
        assert components, "no component spans recorded"
        assert {sp.name for sp in components} <= set(COMPONENT_ORDER)
        iteration_sids = {sp.sid for sp in iterations}
        assert all(sp.parent in iteration_sids for sp in components)

        # program_* families, labeled by program name.
        assert registry.counter_total("program_runs", program="cc") == 1
        assert registry.counter_total(
            "program_iterations", program="cc"
        ) == res.num_iterations
        assert registry.counter_total("program_updates", program="cc") > 0
        assert registry.counter_total("program_resumes") == 0
        # The shared families flow too, and bytes reconcile across layers.
        assert registry.counter_total("edges_scanned") > 0
        assert tracer.counter_total("bytes") == res.ledger.total_bytes

    def test_report_from_program_tracks_info_scalars(self, system):
        from repro.obs.report import RUN_REPORT_SCHEMA, report_from_program

        _, _, part, machine, _ = system
        res = connected_components(part, machine=machine)
        report = report_from_program(res)
        assert report.schema == RUN_REPORT_SCHEMA
        assert report.metrics["iterations"] == res.num_iterations
        assert report.metrics["info.num_components"] == (
            res.info["num_components"]
        )
        assert report.metrics["total_bytes"] == res.ledger.total_bytes


# ----------------------------------------------------------------------
# 3b. checkpointing and crash recovery
# ----------------------------------------------------------------------


def delta_program(system, root):
    src, dst, part, _, _ = system
    w = generate_weights(src.size, seed=8)
    return build_program(
        "sssp-delta", part, root=root, weights=w, edge_src=src, edge_dst=dst
    )


class TestCheckpointRecovery:
    def test_checkpoint_fingerprint_and_npz_roundtrip(self, system, tmp_path):
        _, _, part, machine, mesh = system
        hub = int(np.argmax(part.degrees))
        ckpt = LevelCheckpointer(every=3, mesh=mesh)
        engine = DistributedBFS(part, machine=machine)
        engine.run_program(delta_program(system, hub), checkpointer=ckpt)

        snap = ckpt.latest()
        assert isinstance(snap, ProgramCheckpoint)
        assert snap.program == "sssp-delta"
        assert snap.verify() is snap
        assert snap.nbytes > 0

        loaded = ProgramCheckpoint.load(
            snap.save_npz(tmp_path / "snap.npz")
        )
        assert loaded.fingerprint == snap.fingerprint
        assert loaded.iteration == snap.iteration
        assert np.array_equal(loaded.active, snap.active)
        for key, arr in snap.state.items():
            assert np.array_equal(loaded.state[key], arr)

        # Tampered state must be rejected, not silently restored.
        snap.state["distance"][0] += 1.0
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            snap.verify()

    def test_crash_recovery_matches_fault_free_run(self, system):
        _, _, part, machine, mesh = system
        hub = int(np.argmax(part.degrees))
        reference = DistributedBFS(part, machine=machine).run_program(
            delta_program(system, hub)
        )
        assert reference.num_iterations > 8, "crash site must be mid-run"

        engine = DistributedBFS(part, machine=machine)
        recovered = run_program_with_recovery(
            engine,
            delta_program(system, hub),
            faults=FaultInjector(
                "crash:rank=1,iter=8", rng=np.random.default_rng(0)
            ),
            checkpointer=LevelCheckpointer(every=3, mesh=mesh),
            policy=RecoveryPolicy(max_restarts=2),
        )
        assert recovered.crashes == 1 and recovered.restarts == 1
        assert recovered.resumed_from and recovered.resumed_from[0] >= 0
        result = recovered.result
        assert np.array_equal(
            result.state["distance"], reference.state["distance"]
        )
        assert np.array_equal(
            result.state["parent"], reference.state["parent"]
        )
        assert result.info == reference.info
        # The recovered ledger includes the wasted attempt: strictly
        # more expensive than the clean run, never cheaper.
        assert result.total_seconds > reference.total_seconds

    def test_degrade_mode_rejected_for_programs(self, system):
        _, _, part, machine, _ = system
        engine = DistributedBFS(part, machine=machine)
        with pytest.raises(RecoveryError, match="restart"):
            run_program_with_recovery(
                engine,
                ConnectedComponentsProgram(),
                policy=RecoveryPolicy(mode="degrade"),
            )

    def test_restart_budget_exhaustion(self, system):
        _, _, part, machine, _ = system
        engine = DistributedBFS(part, machine=machine)
        with pytest.raises(RecoveryError, match="budget"):
            run_program_with_recovery(
                engine,
                ConnectedComponentsProgram(),
                faults=FaultInjector("crash:rank=0,iter=0; crash:rank=1,iter=0"),
                policy=RecoveryPolicy(max_restarts=1),
            )


# ----------------------------------------------------------------------
# 3c. serving
# ----------------------------------------------------------------------


def run_async(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def serving_engine(system):
    from repro.serve.msbfs import MultiSourceBFS

    _, _, part, machine, _ = system
    return MultiSourceBFS(part, machine=machine)


class TestServicePrograms:
    def test_pagerank_served_and_cached(self, system, serving_engine):
        from repro.serve import TraversalService

        registry = MetricsRegistry()

        async def main_():
            async with TraversalService(
                serving_engine, batch_window=0.0, metrics=registry
            ) as svc:
                first = await svc.submit(program="pagerank")
                second = await svc.submit(program="pagerank")
                return svc, first, second

        svc, first, second = run_async(main_())
        assert first.program == "pagerank" and not first.cached
        assert first.converged and first.info["delta"] < 1e-6
        assert second.cached
        assert np.array_equal(first.state["ranks"], second.state["ranks"])
        assert svc.stats.program_runs == 1
        assert registry.counter_total(
            "serve_programs", program="pagerank", outcome="completed"
        ) == 1
        assert registry.counter_total(
            "serve_programs", program="pagerank", outcome="cached"
        ) == 1

    def test_cc_served_matches_direct_run(self, system, serving_engine):
        from repro.serve import TraversalService

        _, _, part, machine, _ = system
        direct = connected_components(part, machine=machine)

        async def main_():
            async with TraversalService(
                serving_engine, batch_window=0.0
            ) as svc:
                return await svc.submit(program="cc")

        response = run_async(main_())
        assert np.array_equal(
            response.state["labels"], direct.state["labels"]
        )
        assert response.info == direct.info

    def test_root_contract_per_program(self, serving_engine):
        from repro.serve import TraversalService

        async def main_():
            async with TraversalService(
                serving_engine, batch_window=0.0
            ) as svc:
                with pytest.raises(ValueError, match="requires a root"):
                    await svc.submit(program="sssp")
                with pytest.raises(ValueError, match="does not take a root"):
                    await svc.submit(3, program="pagerank")
                with pytest.raises(ValueError, match="unknown program"):
                    await svc.submit(3, program="nope")
                with pytest.raises(ValueError, match="root 1000000"):
                    await svc.submit(1_000_000, program="sssp")
                # And a well-formed rooted query works (unit weights).
                return await svc.submit(3, program="sssp")

        response = run_async(main_())
        assert response.root == 3
        assert response.state["distance"][3] == 0.0


# ----------------------------------------------------------------------
# registry contract
# ----------------------------------------------------------------------


class TestRegistry:
    def test_available_programs(self):
        assert available_programs() == (
            "bfs", "cc", "pagerank", "sssp", "sssp-delta", "triangles"
        )

    def test_unknown_name_lists_alternatives(self, system):
        _, _, part, _, _ = system
        with pytest.raises(ValueError, match="unknown program 'nope'"):
            build_program("nope", part)

    def test_bfs_is_native_only(self, system):
        _, _, part, _, _ = system
        assert PROGRAM_REGISTRY["bfs"].native_bfs
        with pytest.raises(ValueError, match="natively"):
            build_program("bfs", part, root=0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_program(
                ProgramSpec(name="cc", factory=lambda part: None,
                            description="dup")
            )


# ----------------------------------------------------------------------
# 4a. the tutorial in docs/programs.md runs verbatim
# ----------------------------------------------------------------------


class TestTutorial:
    def test_docs_tutorial_block_executes(self, capsys):
        text = (REPO / "docs" / "programs.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) == 1, (
            "docs/programs.md must keep exactly one ```python block — "
            "the executable tutorial"
        )
        namespace = {"__name__": "programs_md_tutorial"}
        exec(compile(blocks[0], "docs/programs.md", "exec"), namespace)
        result = namespace["result"]
        assert result.converged
        assert namespace["MinLabel"].name == "minlabel"
        assert "components" in capsys.readouterr().out


# ----------------------------------------------------------------------
# 4b. CLI contract
# ----------------------------------------------------------------------


class TestAlgoCli:
    """In-process happy paths; real-interpreter error surfaces."""

    def _run(self, *argv):
        import subprocess
        import sys as _sys

        return subprocess.run(
            [_sys.executable, "-m", "repro", "algo", *argv],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_list_renders_registry(self, capsys):
        assert main(["algo", "--list"]) == 0
        out = capsys.readouterr().out
        for name in available_programs():
            assert name in out

    def test_run_program_with_report(self, capsys, tmp_path):
        from repro.obs.report import RunReport

        out = tmp_path / "pr.json"
        rc = main(["algo", "pagerank", "--scale", "8", "--mesh", "2x2",
                   "--report", str(out)])
        assert rc == 0
        assert "pagerank" in capsys.readouterr().out
        report = RunReport.load(out)
        assert report.metrics["iterations"] > 0

    def test_unknown_program_exits_two_with_usage(self):
        proc = self._run("badname", "--scale", "8")
        assert proc.returncode == 2
        assert "error:" in proc.stderr
        assert "usage" in proc.stderr
        assert "badname" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_missing_program_exits_two_with_usage(self):
        proc = self._run("--scale", "8")
        assert proc.returncode == 2
        assert "usage" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_malformed_damping_exits_two(self):
        proc = self._run("pagerank", "--scale", "8", "--damping", "1.5")
        assert proc.returncode == 2
        assert "usage:" in proc.stderr
        assert "damping" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_malformed_delta_exits_two(self):
        proc = self._run("sssp-delta", "--scale", "8", "--delta", "nope")
        assert proc.returncode == 2
        assert "usage:" in proc.stderr
        assert "expected a number" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_negative_delta_exits_two(self):
        proc = self._run("sssp-delta", "--scale", "8", "--delta", "-0.5")
        assert proc.returncode == 2
        assert "usage:" in proc.stderr
        assert "must be positive" in proc.stderr
