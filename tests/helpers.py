"""Shared test utilities: small random graphs and reference comparisons."""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph, build_csr, symmetrize_edges


def random_edge_list(
    n: int, m: int, seed: int = 0, *, allow_self_loops: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform random undirected edge list on n vertices (may duplicate)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    if not allow_self_loops:
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % n
    return src, dst


def random_graph(n: int, m: int, seed: int = 0) -> CSRGraph:
    """Symmetrized CSR of a uniform random edge list."""
    src, dst = random_edge_list(n, m, seed)
    a_src, a_dst = symmetrize_edges(src, dst)
    return build_csr(a_src, a_dst, n)


def path_graph(n: int) -> CSRGraph:
    """0 - 1 - 2 - ... - (n-1)."""
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    a_src, a_dst = symmetrize_edges(src, dst)
    return build_csr(a_src, a_dst, n)


def star_graph(n: int) -> CSRGraph:
    """Hub 0 connected to 1..n-1."""
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    a_src, a_dst = symmetrize_edges(src, dst)
    return build_csr(a_src, a_dst, n)


def levels_agree(level_a: np.ndarray, level_b: np.ndarray) -> bool:
    """BFS trees are non-unique, but levels are; compare via levels."""
    return bool(np.array_equal(level_a, level_b))
