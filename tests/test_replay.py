"""Tests for the rank-explicit SPMD replay engine.

The replay is an independent implementation of the 1.5D BFS where ranks
only touch their own state and all sharing goes through the simulated
communicator.  Agreement with the serial reference and the analytic
engine is the distributed-semantics proof of the placement rules.
"""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges
from repro.graph500.reference import bfs_levels_from_parents, serial_bfs
from repro.graph500.validate import validate_bfs_result
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.machine.costmodel import CollectiveKind
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh
from repro.runtime.replay import ReplayBFS

from helpers import random_edge_list


def build(scale=9, rows=2, cols=2, seed=1, e_thr=64, h_thr=8):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(src, dst, n, mesh, e_threshold=e_thr, h_threshold=h_thr)
    graph = build_csr(*symmetrize_edges(src, dst), n)
    return part, graph, machine


class TestReplayCorrectness:
    def test_levels_match_reference(self):
        part, graph, machine = build()
        replay = ReplayBFS(part, machine=machine)
        root = int(np.argmax(graph.degrees))
        res = replay.run(root)
        validate_bfs_result(graph, root, res.parent)
        ref = bfs_levels_from_parents(graph, root, serial_bfs(graph, root))
        got = bfs_levels_from_parents(graph, root, res.parent)
        assert np.array_equal(ref, got)

    def test_matches_main_engine(self):
        part, graph, machine = build(scale=10)
        root = int(np.argmax(graph.degrees))
        replay_res = ReplayBFS(part, machine=machine).run(root)
        engine = DistributedBFS(
            part, machine=machine, config=BFSConfig(e_threshold=64, h_threshold=8)
        )
        engine_res = engine.run(root)
        la = bfs_levels_from_parents(graph, root, replay_res.parent)
        lb = bfs_levels_from_parents(graph, root, engine_res.parent)
        assert np.array_equal(la, lb)
        assert np.array_equal(replay_res.parent >= 0, engine_res.parent >= 0)

    def test_multiple_roots_and_meshes(self):
        for rows, cols in ((1, 1), (1, 4), (4, 1), (2, 3)):
            part, graph, machine = build(scale=9, rows=rows, cols=cols)
            replay = ReplayBFS(part, machine=machine)
            rng = np.random.default_rng(0)
            roots = rng.choice(np.flatnonzero(graph.degrees > 0), 2, replace=False)
            for root in roots:
                res = replay.run(int(root))
                validate_bfs_result(graph, int(root), res.parent)

    def test_random_graphs(self):
        for seed in range(3):
            n = 128
            src, dst = random_edge_list(n, 600, seed=seed)
            mesh = ProcessMesh(2, 2)
            part = partition_graph(src, dst, n, mesh, e_threshold=32, h_threshold=6)
            graph = build_csr(*symmetrize_edges(src, dst), n)
            res = ReplayBFS(part).run(seed % n)
            validate_bfs_result(graph, seed % n, res.parent)

    def test_isolated_root(self):
        part, graph, machine = build()
        isolated = np.flatnonzero(graph.degrees == 0)
        if isolated.size == 0:
            pytest.skip("no isolated vertex at this scale/seed")
        res = ReplayBFS(part, machine=machine).run(int(isolated[0]))
        assert int(np.count_nonzero(res.parent >= 0)) == 1

    def test_root_out_of_range(self):
        part, _, machine = build()
        with pytest.raises(ValueError, match="root"):
            ReplayBFS(part, machine=machine).run(-1)


class TestReplayMessaging:
    def test_h2l_messages_stay_intra_row(self):
        """The replay asserts internally that H2L never leaves its row;
        a run completing proves the placement claim."""
        part, graph, machine = build(scale=10, rows=4, cols=4)
        res = ReplayBFS(part, machine=machine).run(int(np.argmax(graph.degrees)))
        assert res.messages_sent >= 0  # run completed without assertion

    def test_communicator_volumes_recorded(self):
        part, graph, machine = build(scale=10)
        res = ReplayBFS(part, machine=machine).run(int(np.argmax(graph.degrees)))
        kinds = set(res.ledger.comm_seconds_by_kind())
        if part.components["L2L"].num_arcs or part.components["H2L"].num_arcs:
            assert CollectiveKind.ALLTOALLV in kinds
        assert CollectiveKind.ALLREDUCE in kinds  # delegate syncs

    def test_message_count_matches_engine_push_arcs(self):
        """Replay message count equals the frontier arcs of the remote
        components in an all-push engine run."""
        part, graph, machine = build(scale=9)
        root = int(np.argmax(graph.degrees))
        replay_res = ReplayBFS(part, machine=machine).run(root)
        engine = DistributedBFS(
            part,
            machine=machine,
            config=BFSConfig(
                e_threshold=64,
                h_threshold=8,
                # force pure push so both implementations do the same work
                sub_iteration_direction=False,
                whole_iteration_alpha=1e-18,
            ),
        )
        engine_res = engine.run(root)
        engine_msgs = sum(sum(r.messages.values()) for r in engine_res.iterations)
        assert replay_res.messages_sent == engine_msgs
