"""Tests for the traffic ledger."""

import numpy as np
import pytest

from repro.machine.costmodel import CollectiveKind, CostModel
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger


@pytest.fixture
def ledger():
    return TrafficLedger(CostModel(MachineSpec(num_nodes=64)))


class TestChargeCollective:
    def test_returns_positive_seconds(self, ledger):
        t = ledger.charge_collective("EH2EH", CollectiveKind.ALLGATHER, 8, 1e6, 0)
        assert t > 0
        assert ledger.comm_seconds == pytest.approx(t)

    def test_events_recorded(self, ledger):
        ledger.charge_collective("L2L", CollectiveKind.ALLTOALLV, 64, 1e3, 1e3)
        ledger.charge_collective("L2L", CollectiveKind.ALLTOALLV, 64, 1e3, 1e3)
        assert len(ledger.comm_events) == 2
        assert ledger.comm_events[0].phase == "L2L"

    def test_total_bytes_default(self, ledger):
        ledger.charge_collective("x", CollectiveKind.P2P, 2, 100.0, 50.0)
        assert ledger.total_bytes == pytest.approx(150.0)

    def test_total_bytes_override(self, ledger):
        ledger.charge_collective("x", CollectiveKind.P2P, 2, 100.0, 0.0, total_bytes=999.0)
        assert ledger.total_bytes == pytest.approx(999.0)


class TestChargeCompute:
    def test_records_max_and_total(self, ledger):
        ledger.charge_compute("EH2EH", "pull", [10, 30, 20], 0.5)
        ev = ledger.compute_events[0]
        assert ev.max_items == 30
        assert ev.total_items == 60
        assert ev.seconds == 0.5

    def test_imbalance_zero_when_balanced(self, ledger):
        ledger.charge_compute("x", "k", [5, 5, 5], 1.0)
        assert ledger.imbalance_seconds == pytest.approx(0.0)

    def test_imbalance_positive_when_skewed(self, ledger):
        ledger.charge_compute("x", "k", [0, 0, 30], 1.0)
        assert ledger.compute_events[0].imbalance_seconds == pytest.approx(2 / 3)

    def test_empty_items(self, ledger):
        ledger.charge_compute("x", "k", [], 0.0)
        assert ledger.compute_events[0].max_items == 0


class TestQueries:
    def test_seconds_by_phase_combines_comm_and_compute(self, ledger):
        ledger.charge_collective("A", CollectiveKind.BARRIER, 4)
        ledger.charge_compute("A", "k", [1], 2.0)
        ledger.charge_compute("B", "k", [1], 3.0)
        by_phase = ledger.seconds_by_phase()
        assert by_phase["A"] > 2.0
        assert by_phase["B"] == pytest.approx(3.0)

    def test_comm_seconds_by_kind(self, ledger):
        ledger.charge_collective("A", CollectiveKind.ALLGATHER, 8, 1e6, 0)
        ledger.charge_collective("B", CollectiveKind.ALLGATHER, 8, 1e6, 0)
        ledger.charge_collective("A", CollectiveKind.ALLTOALLV, 8, 1e6, 0)
        by_kind = ledger.comm_seconds_by_kind()
        assert set(by_kind) == {CollectiveKind.ALLGATHER, CollectiveKind.ALLTOALLV}

    def test_total_seconds(self, ledger):
        ledger.charge_collective("A", CollectiveKind.BARRIER, 4)
        ledger.charge_compute("A", "k", [1], 2.0)
        assert ledger.total_seconds == pytest.approx(
            ledger.comm_seconds + ledger.compute_seconds
        )

    def test_merge(self, ledger):
        other = TrafficLedger(ledger.cost_model)
        other.charge_compute("A", "k", [1], 1.0)
        ledger.merge(other)
        assert len(ledger.compute_events) == 1

    def test_reset(self, ledger):
        ledger.charge_compute("A", "k", [1], 1.0)
        ledger.reset()
        assert ledger.total_seconds == 0.0

    def test_bytes_by_kind(self, ledger):
        ledger.charge_collective("A", CollectiveKind.ALLTOALLV, 4, 10.0, 5.0)
        assert ledger.bytes_by_kind()[CollectiveKind.ALLTOALLV] == pytest.approx(15.0)
