"""Serving under churn: partial cache invalidation and live ingestion.

The cache tests exercise the touched-vertex digest machinery directly;
the service tests run edge-update batches through
:meth:`TraversalService.ingest_updates` on a two-component graph, where
an update confined to one component must evict only that component's
cached trees and carry the other component's across the generation.
"""

import asyncio

import numpy as np
import pytest

from repro.core.config import BFSConfig
from repro.dynamic.repair import IncrementalGraph
from repro.dynamic.updates import UpdateBatch
from repro.machine.network import MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.runtime.mesh import ProcessMesh
from repro.serve.cache import ResultCache, fingerprint_graph, touched_digest
from repro.serve.msbfs import MultiSourceBFS
from repro.serve.service import TraversalService


def run_async(coro):
    return asyncio.run(coro)


def _insert_batch(pairs):
    return UpdateBatch(
        src=np.array([p[0] for p in pairs], dtype=np.int64),
        dst=np.array([p[1] for p in pairs], dtype=np.int64),
        op=np.ones(len(pairs), dtype=np.int8),
    )


def two_rings(half=32):
    """Two disjoint rings: component A on [0, half), B on [half, 2*half)."""
    i = np.arange(half, dtype=np.int64)
    lo = np.concatenate([i, i + half])
    hi = np.concatenate([(i + 1) % half, (i + 1) % half + half])
    return lo, hi, 2 * half


# ----------------------------------------------------------------------
# digest + cache
# ----------------------------------------------------------------------


class TestTouchedDigest:
    def test_shared_vertex_always_intersects(self):
        a = touched_digest(np.array([3, 9, 100]))
        b = touched_digest(np.array([100, 2000]))
        assert np.any(a & b)

    def test_empty_set_never_intersects(self):
        a = touched_digest(np.arange(1000))
        assert not np.any(a & touched_digest(np.array([], dtype=np.int64)))

    def test_deterministic(self):
        v = np.array([5, 17, 23])
        assert np.array_equal(touched_digest(v), touched_digest(v[::-1]))


class TestPartialInvalidation:
    def _parent(self, tree):
        parent = np.full(16, -1, dtype=np.int64)
        parent[list(tree)] = 0
        return parent

    def test_invalidate_roots_drops_only_those(self):
        metrics = MetricsRegistry()
        cache = ResultCache(metrics=metrics)
        for root in (1, 2, 3):
            cache.put("fp", root, self._parent([root]))
        dropped = cache.invalidate("fp", roots=[2, 9])
        assert dropped == 1
        assert cache.get("fp", 1) is not None
        assert cache.get("fp", 2) is None
        assert cache.get("fp", 3) is not None
        assert cache.stats.partial_invalidations == 1
        assert metrics.counter_total("serve_cache_partial_invalidations") == 1

    def test_invalidate_generation_still_works(self):
        cache = ResultCache()
        cache.put("old", 1, self._parent([1]))
        cache.put("old", 2, self._parent([2]))
        cache.put("new", 1, self._parent([1]))
        assert cache.invalidate("old") == 2
        assert cache.get("new", 1) is not None
        assert cache.stats.partial_invalidations == 0

    def test_invalidate_all_rejects_roots(self):
        with pytest.raises(ValueError):
            ResultCache().invalidate(roots=[1])

    def test_apply_delta_evicts_touched_rekeys_rest(self):
        metrics = MetricsRegistry()
        cache = ResultCache(metrics=metrics)
        cache.put("old", 0, self._parent([0, 1, 2]))
        cache.put("old", 8, self._parent([8, 9]))
        evicted, rekeyed = cache.apply_delta(
            "old", "new", touched=np.array([1])
        )
        assert (evicted, rekeyed) == (1, 1)
        # The untouched tree answers under the new fingerprint only.
        assert cache.get("new", 8) is not None
        assert cache.get("old", 8) is None
        assert cache.get("new", 0) is None
        assert cache.stats.rekeyed == 1
        assert metrics.counter_total("serve_cache_partial_invalidations") == 1

    def test_apply_delta_explicit_touched_on_put(self):
        cache = ResultCache()
        cache.put("old", 3, self._parent([3]), touched=np.array([3, 7]))
        evicted, rekeyed = cache.apply_delta(
            "old", "new", touched=np.array([7])
        )
        assert (evicted, rekeyed) == (1, 0)


# ----------------------------------------------------------------------
# service ingestion
# ----------------------------------------------------------------------


@pytest.fixture()
def dynamic_service():
    lo, hi, n = two_rings()
    machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
    mesh = ProcessMesh(2, 2, machine=machine)
    inc = IncrementalGraph(
        lo, hi, n, mesh, e_threshold=8, h_threshold=4, machine=machine
    )
    config = BFSConfig(e_threshold=8, h_threshold=4)
    engine = MultiSourceBFS(inc.graph(), machine=machine, config=config)
    service = TraversalService(engine, dynamic=inc, batch_window=0.0)
    return service, inc, machine, config


class TestIngestion:
    def test_ingest_requires_dynamic_graph(self, dynamic_service):
        service, inc, machine, config = dynamic_service
        static = TraversalService(service.engine)

        async def main():
            async with static:
                await static.ingest_updates([])

        with pytest.raises(RuntimeError, match="dynamic"):
            run_async(main())

    def test_update_in_one_component_keeps_the_others_cache(
        self, dynamic_service
    ):
        service, inc, machine, config = dynamic_service
        # (33, 50) lives in component B; digest-checked not to collide
        # with component A's 32-vertex tree.
        batch = _insert_batch([(33, 50)])

        async def main():
            async with service as svc:
                a = await svc.submit(0)    # component A
                b = await svc.submit(40)   # component B
                report = await svc.ingest_updates([batch])
                a2 = await svc.submit(0)
                b2 = await svc.submit(40)
                return a, b, report, a2, b2

        a, b, report, a2, b2 = run_async(main())
        assert not a.cached and not b.cached
        assert report.num_batches == 1
        assert report.cache_rekeyed == 1  # component A's tree survived
        assert report.cache_evicted == 1  # component B's tree was stale
        assert a2.cached
        assert not b2.cached
        # The patched answer is the rebuilt graph's answer.
        fresh = MultiSourceBFS(
            inc.rebuild_reference(), machine=machine, config=config
        ).run_batch(np.array([40], dtype=np.int64))
        assert np.array_equal(b2.parent, fresh.lane_parent(0))
        assert b2.parent[50] == 33 or b2.parent[50] >= 0

    def test_fingerprint_tracks_repaired_graph(self, dynamic_service):
        service, inc, machine, config = dynamic_service
        batch = _insert_batch([(35, 60)])

        async def main():
            async with service as svc:
                before = svc.graph_fingerprint
                report = await svc.ingest_updates([batch])
                return before, report, svc.graph_fingerprint

        before, report, after = run_async(main())
        assert report.old_fingerprint == before
        assert report.new_fingerprint == after
        assert before != after
        assert after == fingerprint_graph(inc.graph())

    def test_ingest_counts_metrics(self):
        lo, hi, n = two_rings()
        machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
        mesh = ProcessMesh(2, 2, machine=machine)
        metrics = MetricsRegistry()
        inc = IncrementalGraph(
            lo, hi, n, mesh, e_threshold=8, h_threshold=4,
            machine=machine, metrics=metrics,
        )
        config = BFSConfig(e_threshold=8, h_threshold=4)
        engine = MultiSourceBFS(inc.graph(), machine=machine, config=config)
        service = TraversalService(
            engine, dynamic=inc, batch_window=0.0, metrics=metrics
        )

        async def main():
            async with service as svc:
                await svc.ingest_updates(
                    [_insert_batch([(34, 62)]), _insert_batch([(36, 58)])]
                )

        run_async(main())
        assert metrics.counter_total("serve_ingest_batches") == 2
        assert metrics.counter_total("serve_ingest_updates") == 2
        assert metrics.counter_total("dynamic_batches") == 2
