"""Tests for the auxiliary graph generators."""

import numpy as np
import pytest

from repro.graphs.generators import (
    erdos_renyi_edges,
    power_law_edges,
    ring_lattice_edges,
    star_forest_edges,
)
from repro.graphs.stats import degrees_from_edges


class TestErdosRenyi:
    def test_shape_and_range(self):
        src, dst = erdos_renyi_edges(100, 500, seed=1)
        assert src.size == dst.size == 500
        assert src.max() < 100 and src.min() >= 0

    def test_deterministic(self):
        a = erdos_renyi_edges(50, 100, seed=7)
        b = erdos_renyi_edges(50, 100, seed=7)
        assert np.array_equal(a[0], b[0])

    def test_homogeneous_degrees(self):
        src, dst = erdos_renyi_edges(1000, 16_000, seed=1)
        deg = degrees_from_edges(src, dst, 1000)
        assert deg.max() < 3 * deg.mean()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            erdos_renyi_edges(0, 5)


class TestPowerLaw:
    def test_heavy_tail(self):
        src, dst = power_law_edges(5000, 80_000, exponent=2.0, seed=1)
        deg = degrees_from_edges(src, dst, 5000)
        assert deg.max() > 30 * max(deg.mean(), 1)

    def test_exponent_validated(self):
        with pytest.raises(ValueError):
            power_law_edges(100, 100, exponent=0.5)

    def test_permutation_decorrelates_ids(self):
        """Vertex 0 is not automatically the hub."""
        hubs = set()
        for seed in range(5):
            src, dst = power_law_edges(1000, 20_000, seed=seed)
            deg = degrees_from_edges(src, dst, 1000)
            hubs.add(int(np.argmax(deg)))
        assert len(hubs) > 1


class TestStarForest:
    def test_every_edge_touches_a_hub(self):
        src, dst = star_forest_edges(100, 3, seed=1)
        assert np.all(src < 3)
        assert np.all(dst >= 3)
        assert src.size == 97

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            star_forest_edges(10, 10)


class TestRingLattice:
    def test_degrees_uniform(self):
        src, dst = ring_lattice_edges(64, neighbors=2)
        deg = degrees_from_edges(src, dst, 64)
        assert np.all(deg == 4)

    def test_high_diameter_bfs(self):
        """BFS on the ring needs ~n/2 iterations — the many-iteration
        regime the direction heuristics must survive."""
        from repro.core import BFSConfig, DistributedBFS, partition_graph
        from repro.graph500.reference import bfs_levels_from_parents, serial_bfs
        from repro.graphs.csr import build_csr, symmetrize_edges
        from repro.runtime.mesh import ProcessMesh

        n = 64
        src, dst = ring_lattice_edges(n)
        mesh = ProcessMesh(2, 2)
        part = partition_graph(src, dst, n, mesh, e_threshold=8, h_threshold=4)
        engine = DistributedBFS(part, config=BFSConfig(e_threshold=8, h_threshold=4))
        res = engine.run(0)
        # frontiers exist for depths 0..n/2 (the last one discovers
        # nothing new): n/2 + 1 iterations.
        assert res.num_iterations == n // 2 + 1
        g = build_csr(*symmetrize_edges(src, dst), n)
        assert np.array_equal(
            bfs_levels_from_parents(g, 0, res.parent),
            bfs_levels_from_parents(g, 0, serial_bfs(g, 0)),
        )

    def test_bounds(self):
        with pytest.raises(ValueError):
            ring_lattice_edges(2)
        with pytest.raises(ValueError):
            ring_lattice_edges(10, neighbors=5)


class TestEnginesAcrossRegimes:
    """The 1.5D engine stays correct on every degree regime (§8 claim)."""

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: erdos_renyi_edges(256, 2000, seed=1),
            lambda: power_law_edges(256, 4000, seed=1),
            lambda: star_forest_edges(256, 4, seed=1),
            lambda: ring_lattice_edges(256, neighbors=2),
        ],
        ids=["erdos-renyi", "power-law", "star-forest", "ring"],
    )
    def test_bfs_valid(self, maker):
        from repro.core import BFSConfig, DistributedBFS, partition_graph
        from repro.graph500.validate import validate_bfs_result
        from repro.graphs.csr import build_csr, symmetrize_edges
        from repro.runtime.mesh import ProcessMesh

        src, dst = maker()
        n = 256
        mesh = ProcessMesh(2, 2)
        part = partition_graph(src, dst, n, mesh, e_threshold=64, h_threshold=8)
        engine = DistributedBFS(part, config=BFSConfig(e_threshold=64, h_threshold=8))
        g = build_csr(*symmetrize_edges(src, dst), n)
        root = int(np.argmax(g.degrees))
        res = engine.run(root)
        validate_bfs_result(g, root, res.parent)
