"""Integration and property tests for the 1.5D BFS engine.

The contract: for any graph, mesh, thresholds, and optimization toggles,
the engine's parent array passes Graph500 validation and its levels equal
the serial reference's.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges
from repro.graph500.reference import bfs_levels_from_parents, serial_bfs
from repro.graph500.validate import validate_bfs_result
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh

from helpers import random_edge_list


def build_setup(scale=11, rows=2, cols=2, e_thr=128, h_thr=16, seed=1, **cfg_kwargs):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(src, dst, n, mesh, e_threshold=e_thr, h_threshold=h_thr)
    config = BFSConfig(e_threshold=e_thr, h_threshold=h_thr, **cfg_kwargs)
    engine = DistributedBFS(part, machine=machine, config=config)
    graph = build_csr(*symmetrize_edges(src, dst), n)
    return engine, graph, src, dst


def assert_correct(engine, graph, root, src=None, dst=None):
    res = engine.run(root)
    validate_bfs_result(graph, root, res.parent, edge_src=src, edge_dst=dst)
    ref = serial_bfs(graph, root)
    la = bfs_levels_from_parents(graph, root, ref)
    lb = bfs_levels_from_parents(graph, root, res.parent)
    assert np.array_equal(la, lb), "levels differ from serial reference"
    return res


class TestCorrectness:
    def test_rmat_graph_multiple_roots(self):
        engine, graph, src, dst = build_setup()
        rng = np.random.default_rng(0)
        candidates = np.flatnonzero(graph.degrees > 0)
        for root in rng.choice(candidates, size=4, replace=False):
            assert_correct(engine, graph, int(root), src, dst)

    def test_isolated_root(self):
        engine, graph, _, _ = build_setup()
        isolated = np.flatnonzero(graph.degrees == 0)
        if isolated.size:
            res = engine.run(int(isolated[0]))
            assert res.num_visited == 1

    def test_hub_root(self):
        engine, graph, src, dst = build_setup()
        assert_correct(engine, graph, int(np.argmax(graph.degrees)), src, dst)

    def test_all_ablation_configs_correct(self):
        graph = None
        for kwargs in (
            dict(sub_iteration_direction=False),
            dict(segmenting=False),
            dict(delayed_reduction=False),
            dict(edge_aware_balance=False),
            dict(
                sub_iteration_direction=False,
                segmenting=False,
                delayed_reduction=False,
                edge_aware_balance=False,
            ),
        ):
            engine, graph, src, dst = build_setup(**kwargs)
            assert_correct(engine, graph, 0 if graph.degrees[0] else int(np.argmax(graph.degrees)), src, dst)

    def test_single_rank_mesh(self):
        engine, graph, src, dst = build_setup(rows=1, cols=1)
        assert_correct(engine, graph, int(np.argmax(graph.degrees)), src, dst)

    def test_tall_and_wide_meshes(self):
        for rows, cols in ((4, 1), (1, 4), (4, 2)):
            engine, graph, src, dst = build_setup(rows=rows, cols=cols)
            assert_correct(engine, graph, int(np.argmax(graph.degrees)), src, dst)

    def test_no_h_class(self):
        engine, graph, src, dst = build_setup(e_thr=64, h_thr=64)
        assert_correct(engine, graph, int(np.argmax(graph.degrees)), src, dst)

    def test_no_l_class(self):
        engine, graph, src, dst = build_setup(e_thr=64, h_thr=1)
        assert_correct(engine, graph, int(np.argmax(graph.degrees)), src, dst)

    def test_root_out_of_range(self):
        engine, _, _, _ = build_setup()
        with pytest.raises(ValueError, match="root"):
            engine.run(1 << 11)


class TestModeledBehaviour:
    def test_time_positive_and_finite(self):
        engine, graph, _, _ = build_setup()
        res = engine.run(int(np.argmax(graph.degrees)))
        assert 0 < res.total_seconds < 60

    def test_direction_optimization_engages(self):
        engine, graph, _, _ = build_setup()
        res = engine.run(int(np.argmax(graph.degrees)))
        dirs = res.directions_of("EH2EH")
        assert "pull" in dirs and "push" in dirs

    def test_eh2eh_pulls_before_l2l(self):
        """Hub classes activate earlier, so EH2EH flips to pull in an
        earlier iteration than L2L (the point of §4.2)."""
        engine, graph, _, _ = build_setup(scale=12, e_thr=256, h_thr=32)
        res = engine.run(int(np.argmax(graph.degrees)))
        eh = res.directions_of("EH2EH")
        l2l = res.directions_of("L2L")
        first_pull = lambda ds: next((i for i, d in enumerate(ds) if d == "pull"), 99)
        assert first_pull(eh) <= first_pull(l2l)

    def test_segmenting_speeds_up_run(self):
        base = build_setup(segmenting=False)[0]
        fast = build_setup(segmenting=True)[0]
        root = 0
        t_base = base.run(root).total_seconds
        t_fast = fast.run(root).total_seconds
        assert t_fast <= t_base

    def test_sub_iteration_avoids_dragging_l_into_pull(self):
        """§4.2: sub-iteration direction starts bottom-up on the EH core
        "without dragging the mostly unvisited L vertices into the
        bottom-up procedure" — so with a low-degree root, L2L's first pull
        comes no earlier than whole-iteration's, and the time spent
        pulling the non-core components shrinks."""
        engine_sub, graph, _, _ = build_setup(
            scale=14, rows=4, cols=4, e_thr=512, h_thr=32,
            sub_iteration_direction=True,
        )
        engine_whole, _, _, _ = build_setup(
            scale=14, rows=4, cols=4, e_thr=512, h_thr=32,
            sub_iteration_direction=False,
        )
        root = int(np.flatnonzero(graph.degrees == 1)[0])
        res_sub = engine_sub.run(root)
        res_whole = engine_whole.run(root)

        def first_pull(ds):
            return next((i for i, d in enumerate(ds) if d == "pull"), 10**9)

        assert first_pull(res_sub.directions_of("L2L")) >= first_pull(
            res_whole.directions_of("L2L")
        )
        assert (
            res_sub.time_by_direction()["others pull"]
            <= res_whole.time_by_direction()["others pull"]
        )

    def test_delayed_reduction_cheaper(self):
        delayed = build_setup(delayed_reduction=True)[0]
        eager = build_setup(delayed_reduction=False)[0]
        root = 0
        assert delayed.run(root).total_seconds <= eager.run(root).total_seconds

    def test_ledger_phases_cover_components(self):
        engine, graph, _, _ = build_setup()
        res = engine.run(int(np.argmax(graph.degrees)))
        phases = set(res.time_by_phase())
        assert "EH2EH" in phases
        assert "reduce" in phases or engine.part.num_eh == 0

    def test_activation_trace_shape(self):
        """Fig. 5 shape: E reaches its activation peak no later than L."""
        engine, graph, _, _ = build_setup(scale=13, e_thr=256, h_thr=32)
        res = engine.run(int(np.argmax(graph.degrees)))
        trace = res.activation_trace(engine.part.class_sizes())
        peak = lambda xs: int(np.argmax(xs)) if xs else 0
        assert peak(trace["E"]) <= peak(trace["L"])

    def test_messages_recorded_for_remote_components(self):
        engine, graph, _, _ = build_setup()
        res = engine.run(int(np.argmax(graph.degrees)))
        total_msgs = sum(sum(r.messages.values()) for r in res.iterations)
        assert total_msgs > 0

    def test_gteps_uses_problem_edges(self):
        from repro.graph500.spec import Graph500Problem

        engine, graph, _, _ = build_setup()
        res = engine.run(0)
        p = Graph500Problem(scale=11)
        assert res.simulated_gteps(p) == pytest.approx(
            p.num_edges / res.total_seconds / 1e9
        )

    def test_traced_run_emits_span_per_executed_subiteration(self):
        """A traced run records exactly one component span per executed
        sub-iteration (skipped empty components get none), nested under
        its iteration span, and the modeled result is unchanged."""
        from repro.obs import Tracer

        engine, graph, _, _ = build_setup()
        tracer = Tracer()
        traced = DistributedBFS(
            engine.part, machine=engine.machine, config=engine.config,
            tracer=tracer,
        )
        root = int(np.argmax(graph.degrees))
        res = traced.run(root)
        assert np.array_equal(res.parent, engine.run(root).parent)

        by_sid = {sp.sid: sp for sp in tracer.spans}
        component_spans = tracer.find(category="component")
        executed = sum(
            1 for rec in res.iterations
            for d in rec.directions.values() if d != "-"
        )
        assert len(component_spans) == executed
        per_iteration = {}
        for sp in component_spans:
            assert by_sid[sp.parent].category == "iteration"
            per_iteration.setdefault(sp.attrs["iteration"], []).append(sp.name)
        for rec in res.iterations:
            ran = [n for n, d in rec.directions.items() if d != "-"]
            assert per_iteration.get(rec.index, []) == ran


@given(
    seed=st.integers(0, 300),
    n_exp=st.integers(4, 7),
    rows=st.integers(1, 3),
    cols=st.integers(1, 3),
    h_thr=st.integers(2, 10),
    e_extra=st.integers(0, 20),
    sub_iter=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_property_engine_matches_reference(
    seed, n_exp, rows, cols, h_thr, e_extra, sub_iter
):
    n = 1 << n_exp
    src, dst = random_edge_list(n, 3 * n, seed=seed)
    mesh = ProcessMesh(rows, cols)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=h_thr + e_extra, h_threshold=h_thr
    )
    config = BFSConfig(
        e_threshold=h_thr + e_extra,
        h_threshold=h_thr,
        sub_iteration_direction=sub_iter,
    )
    engine = DistributedBFS(part, config=config)
    graph = build_csr(*symmetrize_edges(src, dst), n)
    root = seed % n
    res = engine.run(root)
    validate_bfs_result(graph, root, res.parent)
    ref_levels = bfs_levels_from_parents(graph, root, serial_bfs(graph, root))
    got_levels = bfs_levels_from_parents(graph, root, res.parent)
    assert np.array_equal(ref_levels, got_levels)
