"""Unit tests for the component-kernel layer.

Covers the registry contract, the scheduler's loop semantics (skip of
empty components, §4.2 freshness of commits between sub-iterations,
direction resolution, hook ordering), and the 1.5D kernel set mounting.
"""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.core.kernels import (
    FIFTEEND_KERNELS,
    ComponentKernel,
    KernelRegistry,
    LevelSyncScheduler,
    SchedulerHost,
)
from repro.core.kernels.base import EMPTY_ACTIVATION
from repro.core.subgraphs import COMPONENT_ORDER
from repro.graph500.rmat import generate_edges
from repro.machine.costmodel import CostModel
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh


class TestKernelRegistry:
    def test_register_sets_name_and_resolves(self):
        reg = KernelRegistry()

        @reg.register("X2Y")
        class XKernel(ComponentKernel):
            @property
            def num_arcs(self):
                return 0

            def execute(self, direction, active, visited, ledger, record):
                return EMPTY_ACTIVATION

        assert XKernel.name == "X2Y"
        assert "X2Y" in reg
        assert reg["X2Y"] is XKernel
        assert reg.names() == ("X2Y",)

    def test_duplicate_registration_rejected(self):
        reg = KernelRegistry()

        @reg.register("A")
        class One(ComponentKernel):
            @property
            def num_arcs(self):
                return 0

            def execute(self, direction, active, visited, ledger, record):
                return EMPTY_ACTIVATION

        with pytest.raises(ValueError, match="already registered"):

            @reg.register("A")
            class Two(ComponentKernel):
                @property
                def num_arcs(self):
                    return 0

                def execute(self, direction, active, visited, ledger, record):
                    return EMPTY_ACTIVATION

    def test_fifteend_registry_covers_all_components(self):
        assert set(FIFTEEND_KERNELS.names()) == set(COMPONENT_ORDER)


class _FakeKernel(ComponentKernel):
    """Activates a fixed set of vertices whenever its trigger is active."""

    def __init__(self, name, trigger, activates, arcs=1):
        self.name = name
        self.trigger = trigger
        self.activates = activates
        self.arcs = arcs
        self.seen_visited: list[np.ndarray] = []
        self.directions: list[str] = []

    @property
    def num_arcs(self):
        return self.arcs

    def execute(self, direction, active, visited, ledger, record):
        self.seen_visited.append(visited.copy())
        self.directions.append(direction)
        if not active[self.trigger]:
            return EMPTY_ACTIVATION
        newly = np.array(
            [v for v in self.activates if not visited[v]], dtype=np.int64
        )
        return newly, np.full(newly.size, self.trigger, dtype=np.int64)


class _FakeHost(SchedulerHost):
    def __init__(self, n=8, direction="push"):
        self.num_vertices = n
        self.num_input_edges = n
        self.config = BFSConfig(max_iterations=50)
        self.cost = CostModel(MachineSpec(num_nodes=1))
        self.direction = direction
        self.calls: list[str] = []

    def begin_iteration(self, ledger, active, visited):
        self.calls.append("begin")

    def iteration_direction(self, active, visited):
        return self.direction

    def end_iteration(self, ledger, record, active, visited, parent, next_active):
        self.calls.append("end_iteration")

    def end_run(self, ledger, tracer, parent):
        self.calls.append("end_run")


class TestLevelSyncScheduler:
    def test_root_out_of_range_rejected(self):
        host = _FakeHost()
        sched = LevelSyncScheduler(host, {})
        with pytest.raises(ValueError, match="out of range"):
            sched.run(99)

    def test_empty_component_skipped_with_dash(self):
        host = _FakeHost()
        kernels = {
            "full": _FakeKernel("full", trigger=0, activates=[1]),
            "empty": _FakeKernel("empty", trigger=0, activates=[2], arcs=0),
        }
        result = LevelSyncScheduler(host, kernels).run(0)
        first = result.iterations[0]
        assert first.directions["empty"] == "-"
        assert first.directions["full"] == "push"
        assert kernels["empty"].seen_visited == []  # never executed

    def test_commits_are_visible_to_later_subiterations(self):
        # Kernel A activates vertex 1; kernel B must observe it as
        # visited within the SAME iteration (the §4.2 freshness rule).
        host = _FakeHost()
        kernels = {
            "A": _FakeKernel("A", trigger=0, activates=[1]),
            "B": _FakeKernel("B", trigger=0, activates=[2]),
        }
        LevelSyncScheduler(host, kernels).run(0)
        assert kernels["B"].seen_visited[0][1]
        assert not kernels["A"].seen_visited[0][1]

    def test_parent_first_writer_and_levels(self):
        host = _FakeHost()
        kernels = {
            "A": _FakeKernel("A", trigger=0, activates=[1, 2]),
            "B": _FakeKernel("B", trigger=1, activates=[3]),
        }
        result = LevelSyncScheduler(host, kernels).run(0)
        assert result.parent[0] == 0
        assert result.parent[1] == 0
        assert result.parent[3] == 1
        assert result.num_iterations == 3  # frontier {0}, {1,2}, {3}

    def test_hook_order_per_iteration(self):
        host = _FakeHost()
        kernels = {"A": _FakeKernel("A", trigger=0, activates=[])}
        LevelSyncScheduler(host, kernels).run(0)
        assert host.calls == ["begin", "end_iteration", "end_run"]

    def test_component_direction_used_when_global_none(self):
        host = _FakeHost(direction=None)
        host.component_direction = lambda name, active, visited: "pull"
        kernels = {"A": _FakeKernel("A", trigger=0, activates=[])}
        result = LevelSyncScheduler(host, kernels).run(0)
        assert kernels["A"].directions == ["pull"]
        assert result.iterations[0].directions["A"] == "pull"


class TestFifteenDMounting:
    @pytest.fixture(scope="class")
    def engine(self):
        src, dst = generate_edges(8, seed=3)
        machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
        mesh = ProcessMesh(2, 2, machine=machine)
        part = partition_graph(
            src, dst, 256, mesh, e_threshold=64, h_threshold=8
        )
        return DistributedBFS(
            part,
            machine=machine,
            config=BFSConfig(e_threshold=64, h_threshold=8),
        )

    def test_engine_mounts_kernels_densest_first(self, engine):
        assert tuple(engine.kernels) == COMPONENT_ORDER

    def test_kernel_arcs_cover_partition(self, engine):
        total = sum(k.num_arcs for k in engine.kernels.values())
        assert total == engine.part.total_arcs

    def test_engine_runs_through_shared_scheduler(self, engine):
        assert isinstance(engine.scheduler, LevelSyncScheduler)
        root = int(np.argmax(engine.part.degrees))
        result = engine.run(root)
        assert result.parent[root] == root
        assert result.total_seconds > 0
