"""Tests for the in-place preprocessing pipeline (paper §5)."""

import numpy as np
import pytest

from repro.core.preprocessing import (
    estimate_construction_seconds,
    preprocess,
)
from repro.core.partition import partition_graph
from repro.graph500.rmat import generate_edges
from repro.machine.costmodel import CollectiveKind
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh


def setup(scale=10, rows=2, cols=2, seed=1):
    src, dst = generate_edges(scale, seed=seed)
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    return src, dst, 1 << scale, mesh, machine


class TestPreprocess:
    def test_partition_matches_direct_construction(self):
        src, dst, n, mesh, machine = setup()
        part, report = preprocess(
            src, dst, n, mesh, e_threshold=128, h_threshold=16, machine=machine
        )
        direct = partition_graph(src, dst, n, mesh, e_threshold=128, h_threshold=16)
        for name in part.components:
            assert part.components[name].num_arcs == direct.components[name].num_arcs
            assert np.array_equal(
                part.components[name].arcs_per_rank,
                direct.components[name].arcs_per_rank,
            )

    def test_sorted_runs_realize_the_partition(self):
        """The global sort's output is exactly the arcs, grouped by rank."""
        src, dst, n, mesh, machine = setup(scale=9)
        part, report = preprocess(
            src, dst, n, mesh, e_threshold=64, h_threshold=8, machine=machine
        )
        merged = np.concatenate(report.sorted_runs)
        assert merged.size == part.total_arcs
        assert np.all(np.diff(merged) >= 0)  # globally sorted
        # decoding the rank digit of each key reproduces per-rank loads
        ranks = merged // (n * n)
        per_rank = np.bincount(ranks, minlength=mesh.num_ranks)
        total_loads = sum(
            c.arcs_per_rank for c in part.components.values()
        )
        assert np.array_equal(per_rank, total_loads)

    def test_ledger_charges_construction_phases(self):
        src, dst, n, mesh, machine = setup()
        _, report = preprocess(
            src, dst, n, mesh, e_threshold=128, h_threshold=16, machine=machine
        )
        kinds = set(report.ledger.comm_seconds_by_kind())
        assert CollectiveKind.ALLTOALLV in kinds
        assert CollectiveKind.REDUCE_SCATTER in kinds
        kernels = {e.kernel for e in report.ledger.compute_events}
        assert {"degree_count", "local_radix_sort", "build_components"} <= kernels
        assert report.construction_seconds > 0

    def test_exchange_bytes_accounted(self):
        src, dst, n, mesh, machine = setup()
        _, report = preprocess(
            src, dst, n, mesh, e_threshold=128, h_threshold=16, machine=machine
        )
        # every arc weighs 16 bytes; self-sends excluded, so bounded above
        assert 0 < report.exchange_bytes <= report.num_arcs * 16

    def test_single_rank_no_exchange_cost(self):
        src, dst, n, _, _ = setup()
        mesh = ProcessMesh(1, 1)
        _, report = preprocess(src, dst, n, mesh, e_threshold=128, h_threshold=16)
        # one rank: the sort happens locally; alltoallv carries 0 bytes
        a2a = [
            e for e in report.ledger.comm_events
            if e.kind is CollectiveKind.ALLTOALLV
        ]
        assert all(e.total_bytes == 0 for e in a2a)

    def test_key_overflow_guard(self):
        src = np.array([0], dtype=np.int64)
        dst = np.array([1], dtype=np.int64)
        mesh = ProcessMesh(1, 2)
        with pytest.raises(ValueError, match="overflow"):
            preprocess(src, dst, 1 << 31, mesh, e_threshold=2, h_threshold=1)


class TestEstimate:
    def test_estimate_positive_and_comparable(self):
        src, dst, n, mesh, machine = setup(scale=11)
        part, report = preprocess(
            src, dst, n, mesh, e_threshold=128, h_threshold=16, machine=machine
        )
        est = estimate_construction_seconds(part, machine)
        assert est > 0
        # closed form within an order of magnitude of the executed pipeline
        assert est < 20 * report.construction_seconds
        assert report.construction_seconds < 20 * est
