"""Tests for the metrics registry, exporters, and RunReport artifacts.

The parity class is the load-bearing one: for every golden engine
configuration (the three 1.5D variants, the three baselines, and the
replay engine — the same seven ``tests/test_golden_equivalence.py``
pins), the registry's counter totals must equal the ledger's totals and
the tracer's span-counter totals exactly.  The registry, the span tree,
and the ledger are three views of the same charges; any drift between
them means a choke point stopped feeding one of the sinks.
"""

import json
import math

import numpy as np
import pytest

from golden.generate import E_THR, H_THR, build_system

from repro.baselines import DelegatedOneDimBFS, OneDimBFS, TwoDimBFS
from repro.core import BFSConfig, DistributedBFS
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    RankVector,
    exponential_buckets,
    registry_to_json,
    to_prometheus_text,
)
from repro.obs.report import (
    HIGHER_BETTER,
    RUN_REPORT_SCHEMA,
    MetricDelta,
    RunReport,
    compare_reports,
    config_fingerprint,
    parse_threshold,
    render_compare,
    report_from_bfs,
    report_from_graph500,
)
from repro.obs.tracer import Tracer
from repro.runtime.replay import ReplayBFS


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_exponential_buckets(self):
        b = exponential_buckets(1.0, 2.0, 4)
        assert b == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)

    def test_histogram_buckets_and_digest(self):
        h = Histogram((1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        # 0.5 -> <=1, 5 -> <=10, 50 -> <=100, 500 -> overflow
        assert list(h.bucket_counts) == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == 555.5
        assert h.min == 0.5 and h.max == 500.0
        s = h.summary()
        assert s["count"] == 4 and s["mean"] == pytest.approx(138.875)

    def test_histogram_observe_many_matches_loop(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.1, 1e6, size=500)
        a, b = Histogram(), Histogram()
        a.observe_many(values)
        for v in values:
            b.observe(v)
        assert list(a.bucket_counts) == list(b.bucket_counts)
        assert a.count == b.count and a.sum == pytest.approx(b.sum)

    def test_histogram_percentile_is_bucket_upper_bound(self):
        h = Histogram((1.0, 2.0, 4.0))
        h.observe_many(np.array([0.5, 1.5, 1.5, 3.0]))
        assert h.percentile(0.5) == 2.0
        # The top quantile is clamped to the exact observed max.
        assert h.percentile(1.0) == 3.0
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_histogram_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))

    def test_rank_vector_accumulates_and_grows(self):
        v = RankVector()
        v.add(np.array([1.0, 2.0]))
        v.add(np.array([1.0, 1.0, 5.0]))
        assert list(v.values) == [2.0, 3.0, 5.0]
        s = v.summary()
        assert s["ranks"] == 3 and s["sum"] == 10.0
        assert s["spread"] == pytest.approx((5.0 - 2.0) / (10.0 / 3))
        assert s["max_over_avg"] == pytest.approx(5.0 / (10.0 / 3) - 1.0)

    def test_rank_vector_to_histogram(self):
        v = RankVector()
        v.add(np.array([1.0, 3.0, 1000.0]))
        h = v.to_histogram()
        assert h.count == 3 and h.max == 1000.0

    def test_empty_digests(self):
        assert Histogram().summary()["count"] == 0
        assert RankVector().summary()["ranks"] == 0


class TestRegistry:
    def test_get_or_create_by_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("x", phase="E2L")
        b = reg.counter("x", phase="E2L")
        c = reg.counter("x", phase="L2L")
        assert a is b and a is not c
        a.inc(2)
        c.inc(3)
        assert reg.counter_total("x") == 5.0
        assert reg.counter_total("x", phase="E2L") == 2.0
        assert reg.labels_of("x", "phase") == {"E2L", "L2L"}

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_families_and_samples(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        assert reg.families() == {"g": "gauge", "h": "histogram"}
        assert reg.samples("missing") == []
        [(labels, inst)] = reg.samples("h")
        assert labels == {} and inst.count == 1

    def test_null_registry_is_inert(self):
        null = NullMetricsRegistry()
        null.counter("x", phase="p").inc(5)
        null.histogram("h").observe(1)
        null.vector("v").add(np.ones(3))
        null.gauge("g").set(2)
        assert null.families() == {}
        assert null.counter_total("x") == 0.0
        assert null.samples("x") == []
        assert NULL_METRICS.enabled is False


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("bytes", kind="alltoallv").inc(100)
        reg.gauge("depth").set(7)
        h = reg.histogram("sizes", buckets=(1.0, 10.0))
        h.observe_many(np.array([0.5, 5.0, 50.0]))
        reg.vector("rank_work", phase="E2L").add(np.array([1.0, 2.0]))
        return reg

    def test_prometheus_text_format(self):
        text = to_prometheus_text(self._registry())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE repro_bytes_total counter" in lines
        assert 'repro_bytes_total{kind="alltoallv"} 100' in lines
        assert "repro_depth 7" in lines
        # Histogram buckets are cumulative and end at +Inf == count.
        assert 'repro_sizes_bucket{le="1"} 1' in lines
        assert 'repro_sizes_bucket{le="10"} 2' in lines
        assert 'repro_sizes_bucket{le="+Inf"} 3' in lines
        assert "repro_sizes_count 3" in lines
        # Vectors emit one gauge sample per rank.
        assert 'repro_rank_work{phase="E2L",rank="0"} 1' in lines
        assert 'repro_rank_work{phase="E2L",rank="1"} 2' in lines

    def test_json_export(self):
        doc = registry_to_json(self._registry())
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["families"]["bytes"]["type"] == "counter"
        hist = doc["families"]["sizes"]["samples"][0]
        assert hist["count"] == 3 and hist["overflow"] == 1
        json.dumps(doc)  # must be serializable as-is


# ----------------------------------------------------------------------
# parity on every golden engine configuration
# ----------------------------------------------------------------------


def _engine_builders():
    """name -> callable(system, tracer, registry) -> result-with-ledger."""

    def mk_15d(cfg):
        def build(system, tracer, registry):
            _, _, _, _, machine, part, root = system
            engine = DistributedBFS(
                part, machine=machine, config=cfg,
                tracer=tracer, metrics=registry,
            )
            return engine.run(root)

        return build

    def mk_baseline(cls):
        def build(system, tracer, registry):
            src, dst, n, mesh, machine, _, root = system
            engine = cls(
                src, dst, n, mesh, machine=machine,
                tracer=tracer, metrics=registry,
            )
            return engine.run(root)

        return build

    def mk_replay(system, tracer, registry):
        _, _, _, _, machine, part, root = system
        return ReplayBFS(
            part, machine=machine, tracer=tracer, metrics=registry
        ).run(root)

    base = dict(e_threshold=E_THR, h_threshold=H_THR)
    return {
        "engine_default": mk_15d(BFSConfig(**base)),
        "engine_whole_iteration": mk_15d(
            BFSConfig(**base, sub_iteration_direction=False)
        ),
        "engine_eager_reduction": mk_15d(
            BFSConfig(**base, delayed_reduction=False)
        ),
        "baseline_1d": mk_baseline(OneDimBFS),
        "baseline_1d_delegated": mk_baseline(DelegatedOneDimBFS),
        "baseline_2d": mk_baseline(TwoDimBFS),
        "replay": mk_replay,
    }


ENGINES = _engine_builders()


@pytest.fixture(scope="module")
def system():
    return build_system()


class TestParityAcrossEngines:
    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_registry_equals_ledger_and_spans(self, system, name):
        tracer, registry = Tracer(), MetricsRegistry()
        res = ENGINES[name](system, tracer, registry)
        ledger = res.ledger
        # Three views of the same charges agree exactly.
        assert registry.counter_total("comm_bytes") == ledger.total_bytes
        assert tracer.counter_total("bytes") == ledger.total_bytes
        assert registry.counter_total("comm_seconds") == pytest.approx(
            ledger.comm_seconds, rel=1e-12
        )
        assert registry.counter_total("compute_seconds") == pytest.approx(
            ledger.compute_seconds, rel=1e-12
        )
        assert (
            registry.counter_total("comm_seconds")
            + registry.counter_total("compute_seconds")
        ) == pytest.approx(ledger.total_seconds, rel=1e-12)
        assert registry.counter_total("imbalance_seconds") == pytest.approx(
            ledger.imbalance_seconds, rel=1e-12
        )
        assert registry.counter_total("comm_events") == len(ledger.comm_events)
        assert registry.counter_total("compute_events") == len(
            ledger.compute_events
        )

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_scheduler_counters_match_spans(self, system, name):
        tracer, registry = Tracer(), MetricsRegistry()
        ENGINES[name](system, tracer, registry)
        # The scheduler feeds edges/messages/activated both as span
        # counters and as labeled metric counters.
        for family, span_key in (
            ("edges_scanned", "edges"),
            ("messages", "messages"),
            ("activated", "activated"),
        ):
            assert registry.counter_total(family) == tracer.counter_total(
                span_key
            ), f"{name}: {family}"
        assert registry.counter_total("bfs_runs") == 1
        n_iter = registry.counter_total("iterations")
        assert n_iter == len(tracer.find(category="iteration"))
        [(_, frontier_hist)] = registry.samples("frontier_size")
        assert frontier_hist.count == n_iter

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_per_phase_seconds_match(self, system, name):
        registry = MetricsRegistry()
        res = ENGINES[name](system, None, registry)
        for phase, secs in res.ledger.seconds_by_phase().items():
            got = registry.counter_total(
                "comm_seconds", phase=phase
            ) + registry.counter_total("compute_seconds", phase=phase)
            assert got == pytest.approx(secs, rel=1e-12), f"{name}:{phase}"

    def test_rank_vectors_cover_all_compute_items(self, system):
        registry = MetricsRegistry()
        res = ENGINES["engine_default"](system, None, registry)
        total_vec = sum(
            float(vec.values.sum())
            for _, vec in registry.samples("rank_items")
        )
        total_items = sum(
            e.total_items for e in res.ledger.compute_events
        )
        assert total_vec == float(total_items)

    def test_comm_rank_bytes_present(self, system):
        # Only the replay engine routes through SimCommunicator, the
        # layer that feeds the per-rank byte instruments.
        registry = MetricsRegistry()
        res = ENGINES["replay"](system, None, registry)
        assert registry.samples("rank_bytes")
        assert registry.samples("rank_byte_load")
        total_vec = sum(
            float(vec.values.sum())
            for _, vec in registry.samples("rank_bytes")
        )
        assert total_vec <= res.ledger.total_bytes

    def test_unmetered_run_bit_identical(self, system):
        """NULL_METRICS must leave every result bit unchanged."""
        plain = ENGINES["engine_default"](system, None, None)
        metered = ENGINES["engine_default"](system, None, MetricsRegistry())
        assert np.array_equal(plain.parent, metered.parent)
        assert repr(plain.total_seconds) == repr(metered.total_seconds)
        assert repr(plain.ledger.total_bytes) == repr(
            metered.ledger.total_bytes
        )
        assert [r.directions for r in plain.iterations] == [
            r.directions for r in metered.iterations
        ]
        assert plain.metrics is NULL_METRICS


# ----------------------------------------------------------------------
# RunReport artifacts and the compare gate
# ----------------------------------------------------------------------


class TestRunReport:
    @pytest.fixture(scope="class")
    def bfs_report(self):
        system = build_system()
        registry = MetricsRegistry()
        cfg = BFSConfig(e_threshold=E_THR, h_threshold=H_THR)
        res = ENGINES["engine_default"](system, None, registry)
        return report_from_bfs(
            res, config=cfg, context={"scale": 10, "mesh": "2x2"}
        ), res

    def test_metrics_mirror_ledger(self, bfs_report):
        report, res = bfs_report
        assert report.schema == RUN_REPORT_SCHEMA
        assert report.metrics["total_seconds"] == res.total_seconds
        assert report.metrics["total_bytes"] == res.ledger.total_bytes
        assert report.metrics["gteps"] == res.simulated_gteps()
        assert report.metrics["iterations"] == res.num_iterations
        for phase, secs in res.ledger.seconds_by_phase().items():
            assert report.metrics[f"seconds.{phase}"] == secs
        assert len(report.directions) == res.num_iterations
        assert report.summaries  # metered run embeds digests

    def test_save_load_roundtrip(self, bfs_report, tmp_path):
        report, _ = bfs_report
        path = report.save(tmp_path / "r.json")
        again = RunReport.load(path)
        assert again.to_dict() == report.to_dict()

    def test_load_rejects_foreign_schema(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"schema": "not.a.report/1", "name": "x"}')
        with pytest.raises(ValueError, match="not a RunReport"):
            RunReport.load(bogus)

    def test_fingerprint_key_order_invariant(self):
        a = config_fingerprint({"b": 1, "a": {"y": 2, "x": 3}})
        b = config_fingerprint({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b and len(a) == 64

    def test_render_mentions_metrics_and_directions(self, bfs_report):
        report, _ = bfs_report
        text = report.render()
        assert "tracked metrics" in text
        assert "direction matrix" in text
        assert "EH2EH" in text

    def test_report_from_graph500(self):
        from repro.graph500.driver import run_graph500

        registry = MetricsRegistry()
        g500 = run_graph500(
            10, 2, 2, seed=7, num_roots=2,
            e_threshold=E_THR, h_threshold=H_THR, metrics=registry,
        )
        report = report_from_graph500(g500, context={"seed": 7})
        assert report.metrics["harmonic_mean_teps"] > 0
        assert report.metrics["iterations"] > 0
        assert report.context["num_roots"] == 2
        assert report.breakdowns["seconds_by_phase"]
        assert report.summaries


class TestCompareGate:
    def _report(self, **metrics):
        base = {"gteps": 10.0, "total_seconds": 1.0, "total_bytes": 100.0}
        base.update(metrics)
        return RunReport(
            name="t", fingerprint="f", context={}, metrics=base
        )

    def test_identical_reports_pass(self):
        a, b = self._report(), self._report()
        deltas = compare_reports(a, b, 0.05)
        assert deltas and not any(d.regressed for d in deltas)
        assert "PASS" in render_compare(deltas)

    def test_lower_better_regression(self):
        deltas = compare_reports(
            self._report(), self._report(total_seconds=1.2), 0.05
        )
        bad = {d.name for d in deltas if d.regressed}
        assert bad == {"total_seconds"}

    def test_higher_better_regression(self):
        deltas = compare_reports(
            self._report(), self._report(gteps=8.0), 0.05
        )
        bad = {d.name for d in deltas if d.regressed}
        assert bad == {"gteps"}
        assert "gteps" in HIGHER_BETTER

    def test_improvement_not_flagged(self):
        deltas = compare_reports(
            self._report(),
            self._report(gteps=20.0, total_seconds=0.5),
            0.05,
        )
        assert not any(d.regressed for d in deltas)
        improved = {d.name for d in deltas if d.improved}
        assert {"gteps", "total_seconds"} <= improved

    def test_within_threshold_passes(self):
        deltas = compare_reports(
            self._report(), self._report(total_seconds=1.04), 0.05
        )
        assert not any(d.regressed for d in deltas)

    def test_only_common_metrics_compared(self):
        a = self._report(old_only=1.0)
        b = self._report(new_only=99.0)
        names = {d.name for d in compare_reports(a, b, 0.05)}
        assert "old_only" not in names and "new_only" not in names

    def test_zero_baseline(self):
        deltas = compare_reports(
            self._report(extra=0.0), self._report(extra=1.0), 0.05
        )
        [d] = [d for d in deltas if d.name == "extra"]
        assert d.rel == math.inf and d.regressed
        assert "+inf" in render_compare(deltas)

    def test_parse_threshold(self):
        assert parse_threshold("5%") == 0.05
        assert parse_threshold("0.05") == 0.05
        assert parse_threshold(" 12.5% ") == 0.125
        with pytest.raises(ValueError):
            parse_threshold("-1%")
        with pytest.raises(ValueError):
            parse_threshold("nope")

    def test_delta_improved_property(self):
        d = MetricDelta("x", 1.0, 0.9, -0.1, False, False)
        assert d.improved
        d = MetricDelta("gteps", 1.0, 0.9, -0.1, True, True)
        assert not d.improved
