"""Tests for the per-iteration timeline diagnostics."""

import numpy as np
import pytest

from repro.analysis.timeline import iteration_component_seconds, render_timeline
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh


@pytest.fixture(scope="module")
def result():
    scale = 11
    src, dst = generate_edges(scale, seed=1)
    machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
    mesh = ProcessMesh(2, 2, machine=machine)
    part = partition_graph(src, dst, 1 << scale, mesh, e_threshold=128, h_threshold=16)
    engine = DistributedBFS(
        part, machine=machine, config=BFSConfig(e_threshold=128, h_threshold=16)
    )
    return engine.run(int(np.argmax(part.degrees)))


class TestIterationSeconds:
    def test_rows_match_iterations(self, result):
        rows = iteration_component_seconds(result)
        assert len(rows) == result.num_iterations

    def test_total_conserved(self, result):
        """Apportioning must conserve the run's total time exactly."""
        rows = iteration_component_seconds(result)
        total = sum(sum(r.values()) for r in rows)
        assert total == pytest.approx(result.total_seconds, rel=1e-9)

    def test_phase_totals_conserved(self, result):
        rows = iteration_component_seconds(result)
        by_phase_timeline = {}
        for row in rows:
            for k, v in row.items():
                by_phase_timeline[k] = by_phase_timeline.get(k, 0.0) + v
        for phase, seconds in result.time_by_phase().items():
            assert by_phase_timeline.get(phase, 0.0) == pytest.approx(
                seconds, rel=1e-9
            )

    def test_no_negative_cells(self, result):
        for row in iteration_component_seconds(result):
            assert all(v >= 0 for v in row.values())

    def test_empty_run(self):
        from repro.core.metrics import BFSRunResult
        from repro.machine.costmodel import CostModel
        from repro.runtime.ledger import TrafficLedger

        empty = BFSRunResult(
            root=0,
            parent=np.array([0]),
            iterations=[],
            ledger=TrafficLedger(CostModel(MachineSpec())),
            total_seconds=0.0,
            num_input_edges=0,
        )
        assert iteration_component_seconds(empty) == []


class TestRender:
    def test_render_shape(self, result):
        text = render_timeline(result)
        lines = text.splitlines()
        assert len(lines) == result.num_iterations + 2  # header + rule
        assert "EH2EH" in lines[0]
        assert "iteration total" in lines[0]

    def test_directions_present(self, result):
        text = render_timeline(result)
        assert "push" in text.lower()
        assert "pull" in text.lower()

    def test_cli_flag(self, capsys):
        from repro.cli import main

        rc = main(["bfs", "--scale", "10", "--mesh", "2x2", "--timeline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "iteration total" in out
