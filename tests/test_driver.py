"""Tests for the official Graph500 benchmark driver."""

import numpy as np
import pytest

from repro.graph500.driver import (
    Graph500Report,
    Graph500Stats,
    harmonic_mean_stats,
    run_graph500,
    sample_roots,
)


class TestSampleRoots:
    def test_only_connected_vertices(self):
        degrees = np.array([0, 3, 0, 1, 5])
        rng = np.random.default_rng(0)
        roots = sample_roots(degrees, 3, rng=rng)
        assert set(roots.tolist()) <= {1, 3, 4}
        assert roots.size == 3

    def test_no_replacement(self):
        degrees = np.array([1, 1, 1])
        rng = np.random.default_rng(0)
        roots = sample_roots(degrees, 64, rng=rng)
        assert sorted(roots.tolist()) == [0, 1, 2]

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="non-isolated"):
            sample_roots(np.zeros(4, dtype=np.int64), 8, rng=np.random.default_rng(0))


class TestStats:
    def test_quartiles(self):
        s = Graph500Stats.of(np.arange(1.0, 6.0))
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.median == 3.0
        assert s.mean == 3.0

    def test_single_sample(self):
        s = Graph500Stats.of(np.array([2.0]))
        assert s.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Graph500Stats.of(np.array([]))

    def test_harmonic_mean(self):
        hm, err = harmonic_mean_stats(np.array([1.0, 2.0, 4.0]))
        assert hm == pytest.approx(3.0 / (1.0 + 0.5 + 0.25))
        assert err >= 0

    def test_harmonic_mean_constant(self):
        hm, err = harmonic_mean_stats(np.full(8, 7.0))
        assert hm == pytest.approx(7.0)
        assert err == pytest.approx(0.0)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean_stats(np.array([1.0, 0.0]))


class TestRunGraph500:
    @pytest.fixture(scope="class")
    def report(self):
        return run_graph500(11, 2, 2, seed=1, num_roots=6)

    def test_report_fields(self, report):
        assert report.problem.scale == 11
        assert report.num_nodes == 4
        assert report.roots.size == 6
        assert report.bfs_times.size == 6
        assert report.construction_seconds > 0

    def test_all_roots_validated(self, report):
        assert report.validated

    def test_teps_consistent(self, report):
        expect = report.problem.num_edges / report.bfs_times
        assert np.allclose(report.teps, expect)

    def test_render_block(self, report):
        block = report.render()
        for key in (
            "SCALE: 11",
            "edgefactor: 16",
            "NBFS: 6",
            "construction_time:",
            "harmonic_mean_TEPS:",
            "validation: PASSED",
        ):
            assert key in block

    def test_mean_gteps_positive(self, report):
        assert report.mean_gteps > 0

    def test_deterministic(self):
        a = run_graph500(10, 2, 2, seed=3, num_roots=3, validate=False)
        b = run_graph500(10, 2, 2, seed=3, num_roots=3, validate=False)
        assert np.array_equal(a.roots, b.roots)
        assert np.allclose(a.bfs_times, b.bfs_times)

    def test_construction_override(self):
        rep = run_graph500(
            10, 2, 2, seed=1, num_roots=2, validate=False,
            construction_seconds=123.0,
        )
        assert rep.construction_seconds == 123.0

    def test_config_overrides_respected(self):
        rep = run_graph500(
            10, 2, 2, seed=1, num_roots=2, validate=False,
            config_overrides=dict(segmenting=False),
        )
        assert rep.mean_gteps > 0
