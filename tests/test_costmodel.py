"""Tests for the cost model: collective timing + chip-derived kernel rates.

The kernel-rate tests pin the model to the paper's measured anchors
(Fig. 14 throughputs, §6.4's 9x segmenting speedup) with tolerances — this
is the calibration contract every other experiment relies on.
"""

import pytest

from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec


class TestCollectiveTime:
    def setup_method(self):
        self.model = CostModel(MachineSpec(num_nodes=1024))

    def test_barrier_is_latency_only(self):
        t = self.model.collective_time(CollectiveKind.BARRIER, 64)
        assert t == self.model.machine.collective_latency(64)

    def test_bandwidth_term_scales_with_bytes(self):
        t1 = self.model.collective_time(CollectiveKind.ALLGATHER, 64, 1e6, 0)
        t2 = self.model.collective_time(CollectiveKind.ALLGATHER, 64, 2e6, 0)
        assert t2 > t1

    def test_inter_supernode_bytes_cost_more(self):
        intra = self.model.collective_time(CollectiveKind.ALLTOALLV, 64, 1e7, 0)
        inter = self.model.collective_time(CollectiveKind.ALLTOALLV, 64, 0, 1e7)
        assert inter > 5 * intra  # 8x oversubscription minus latency floor

    def test_alltoallv_latency_scales_with_participants(self):
        small = self.model.collective_time(CollectiveKind.ALLTOALLV, 16)
        large = self.model.collective_time(CollectiveKind.ALLTOALLV, 1024)
        assert large > small

    def test_allreduce_doubles_bandwidth_term(self):
        rs = self.model.collective_time(CollectiveKind.REDUCE_SCATTER, 64, 1e9, 0)
        ar = self.model.collective_time(CollectiveKind.ALLREDUCE, 64, 1e9, 0)
        lat = self.model.machine.collective_latency(64)
        assert (ar - lat) == pytest.approx(2 * (rs - lat))

    def test_participants_validated(self):
        with pytest.raises(ValueError):
            self.model.collective_time(CollectiveKind.BARRIER, 0)


class TestKernelRateCalibration:
    """Pin the model to the paper's measured anchors."""

    def setup_method(self):
        self.rates = NodeKernelRates()

    def test_fig14_mpe_throughput(self):
        gbps = self.rates.mpe_rate() * 8 / 1e9
        assert gbps == pytest.approx(0.0406, rel=0.05)

    def test_fig14_one_cg_throughput(self):
        gbps = self.rates.message_throughput_bytes_per_s(1) / 1e9
        assert gbps == pytest.approx(12.5, rel=0.15)

    def test_fig14_six_cg_throughput(self):
        gbps = self.rates.message_throughput_bytes_per_s(6) / 1e9
        assert gbps == pytest.approx(58.6, rel=0.15)

    def test_fig14_bandwidth_utilization_under_50pct(self):
        # one read + one write per message over the 249 GB/s peak
        util = self.rates.message_throughput_bytes_per_s(6) * 2 / 249e9
        assert 0.40 < util < 0.50

    def test_fig14_speedup_vs_mpe(self):
        speedup = self.rates.message_throughput_bytes_per_s(6) / (
            self.rates.mpe_rate() * 8
        )
        assert 1000 < speedup < 2000  # paper: 1443x

    def test_six_cgs_less_efficient_per_cg_than_one(self):
        per_cg_6 = self.rates.message_throughput_bytes_per_s(6) / 6
        per_cg_1 = self.rates.message_throughput_bytes_per_s(1)
        assert per_cg_6 < per_cg_1  # cross-CG atomics cost something

    def test_segmenting_speedup_near_9x(self):
        assert self.rates.segmenting_speedup() == pytest.approx(9.0, rel=0.15)

    def test_pull_rate_dispatch(self):
        assert self.rates.pull_rate(True) == self.rates.pull_rate_segmented()
        assert self.rates.pull_rate(False) == self.rates.pull_rate_unsegmented()


class TestKernelTime:
    def setup_method(self):
        self.rates = NodeKernelRates()

    def test_zero_items_is_free(self):
        assert self.rates.kernel_time(0, 1e9) == 0.0

    def test_small_kernels_take_cheaper_engine(self):
        # Below the spawn threshold the runtime picks the faster of the
        # MPE and spawning the CPE clusters.
        mpe_time = 100 / self.rates.mpe_rate()
        cpe_time = self.rates.cpe_spawn_latency_s + 100 / 1e12
        assert self.rates.kernel_time(100, 1e12) == pytest.approx(
            min(mpe_time, cpe_time)
        )
        # with a slow CPE rate, the MPE path wins outright
        assert self.rates.kernel_time(100, 1.0) == pytest.approx(mpe_time)

    def test_large_kernels_use_cpes(self):
        items = 10_000_000
        t = self.rates.kernel_time(items, self.rates.pull_rate_segmented())
        mpe_t = items / self.rates.mpe_rate()
        assert t < mpe_t / 100

    def test_spawn_latency_floor(self):
        t = self.rates.kernel_time(self.rates.cpe_spawn_threshold, 1e30)
        assert t >= self.rates.cpe_spawn_latency_s

    def test_message_rate_consistent_with_throughput(self):
        assert self.rates.message_rate(6) == pytest.approx(
            self.rates.message_throughput_bytes_per_s(6) / 8
        )
