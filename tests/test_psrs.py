"""Tests for Parallel Sorting by Regular Sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sort.psrs import psrs_sort


def check_global_sort(chunks, parts):
    """Concatenated parts are globally sorted and a permutation of input."""
    flat_in = np.sort(np.concatenate([np.asarray(c) for c in chunks])) if chunks else np.array([])
    flat_out = np.concatenate(parts) if parts else np.array([])
    assert np.array_equal(np.sort(flat_out), flat_in)
    assert np.array_equal(flat_out, np.sort(flat_out)), "concatenation must be globally sorted"


class TestPSRS:
    def test_two_ranks(self):
        chunks = [np.array([5, 1, 9]), np.array([2, 8, 3])]
        parts = psrs_sort(chunks)
        check_global_sort(chunks, parts)
        assert len(parts) == 2

    def test_single_rank(self):
        parts = psrs_sort([np.array([3, 1, 2])])
        assert parts[0].tolist() == [1, 2, 3]

    def test_empty_input(self):
        assert psrs_sort([]) == []

    def test_empty_ranks(self):
        chunks = [np.array([], dtype=np.int64), np.array([4, 1]), np.array([], dtype=np.int64)]
        parts = psrs_sort(chunks)
        check_global_sort(chunks, parts)

    def test_all_empty(self):
        chunks = [np.array([], dtype=np.int64)] * 3
        parts = psrs_sort(chunks)
        assert all(p.size == 0 for p in parts)

    def test_uniform_random(self):
        rng = np.random.default_rng(0)
        chunks = [rng.integers(0, 10**6, size=rng.integers(0, 3000)) for _ in range(8)]
        parts = psrs_sort(chunks)
        check_global_sort(chunks, parts)

    def test_skewed_duplicates(self):
        rng = np.random.default_rng(1)
        chunks = [rng.integers(0, 4, size=1000) for _ in range(6)]
        parts = psrs_sort(chunks)
        check_global_sort(chunks, parts)

    def test_balance_on_uniform_data(self):
        """Regular sampling keeps partitions within ~2x of average."""
        rng = np.random.default_rng(2)
        p = 8
        chunks = [rng.integers(0, 10**9, size=5000) for _ in range(p)]
        parts = psrs_sort(chunks)
        sizes = np.array([x.size for x in parts])
        assert sizes.max() <= 2 * sizes.mean()

    def test_exchange_callback_accounts_all_bytes(self):
        rng = np.random.default_rng(3)
        chunks = [rng.integers(0, 100, size=500, dtype=np.int64) for _ in range(4)]
        seen = {}

        def on_exchange(matrix):
            seen["matrix"] = matrix.copy()

        psrs_sort(chunks, on_exchange=on_exchange)
        matrix = seen["matrix"]
        assert matrix.shape == (4, 4)
        assert matrix.sum() == sum(c.nbytes for c in chunks)

    def test_custom_local_sort_used(self):
        calls = []

        def spy_sort(arr):
            calls.append(arr.size)
            return np.sort(arr)

        psrs_sort([np.array([2, 1]), np.array([4, 3])], local_sort=spy_sort)
        assert len(calls) == 2

    def test_rejects_2d_chunks(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            psrs_sort([np.zeros((2, 2))])

    @given(
        st.lists(
            st.lists(st.integers(0, 1000), max_size=80),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_global_sort(self, data):
        chunks = [np.array(c, dtype=np.int64) for c in data]
        parts = psrs_sort(chunks)
        check_global_sort(chunks, parts)
        assert len(parts) == len(chunks)
