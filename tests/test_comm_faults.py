"""SimCommunicator collectives over subset groups under injected faults.

The injector consumes faults at the ledger's charging choke point, so the
functional communicator inherits drop/straggler/corruption behaviour with
no code of its own; these tests pin the contract: ledger charges match
retry counts exactly, stragglers only inflate the groups they sit in, and
corrupted payloads are detected and re-delivered pristine.
"""

import numpy as np
import pytest

from repro.machine.costmodel import CollectiveKind
from repro.machine.network import MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultInjector, RetryBackoff
from repro.runtime.comm import SimCommunicator
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh


def make_comm(rows=2, cols=2, faults=None, metrics=None):
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    from repro.machine.costmodel import CostModel

    ledger = TrafficLedger(
        CostModel(machine),
        metrics=metrics if metrics is not None else MetricsRegistry(),
    )
    if faults is not None:
        ledger.faults = faults
    return SimCommunicator(mesh, ledger), mesh, ledger


def row_allgather(comm, mesh, row=0):
    ranks = mesh.row_ranks(row)
    return comm.allgather(
        "EH2EH", ranks, {int(r): np.arange(16) for r in ranks}
    )


class TestDropRetryCharges:
    def test_event_count_is_baseline_plus_two_per_retry(self):
        """Each retry adds one wasted full-cost event + one backoff wait."""
        base_comm, base_mesh, base_ledger = make_comm()
        row_allgather(base_comm, base_mesh)
        baseline_events = len(base_ledger.comm_events)

        inj = FaultInjector("drop:phase=EH2EH,count=1,retries=3")
        comm, mesh, ledger = make_comm(faults=inj)
        out = row_allgather(comm, mesh)
        assert out.size == 32  # payload still fully delivered
        assert len(ledger.comm_events) == baseline_events + 2 * 3
        assert inj.retries_total == 3

    def test_wasted_attempts_charge_full_cost(self):
        inj = FaultInjector("drop:phase=EH2EH,count=1,retries=2")
        comm, mesh, ledger = make_comm(faults=inj)
        row_allgather(comm, mesh)
        gathers = [
            e for e in ledger.comm_events
            if e.kind is CollectiveKind.ALLGATHER
        ]
        assert len(gathers) == 3  # 2 wasted + 1 successful
        assert len({e.seconds for e in gathers}) == 1  # identical pricing
        assert len({e.total_bytes for e in gathers}) == 1

    def test_backoff_waits_match_schedule(self):
        backoff = RetryBackoff(base_seconds=1e-4, growth=2.0)
        inj = FaultInjector(
            "drop:phase=EH2EH,count=1,retries=3", backoff=backoff
        )
        comm, mesh, ledger = make_comm(faults=inj)
        row_allgather(comm, mesh)
        waits = [
            e.seconds for e in ledger.comm_events
            if e.kind is CollectiveKind.BARRIER and e.participants == 1
        ]
        assert waits == [backoff.seconds(a) for a in range(3)]

    def test_drop_on_alltoallv_subgroup(self):
        inj = FaultInjector("drop:phase=L2L,count=2,retries=2")
        comm, mesh, ledger = make_comm(2, 4)
        ledger.faults = inj
        row = mesh.row_ranks(1)
        for _ in range(3):  # budget of 2: third exchange is clean
            recv = comm.alltoallv(
                "L2L", row, {int(row[0]): {int(row[3]): np.array([1, 2])}}
            )
            assert recv[int(row[3])].tolist() == [1, 2]
        a2a = [
            e for e in ledger.comm_events
            if e.kind is CollectiveKind.ALLTOALLV
        ]
        assert len(a2a) == 3 + 2 * 2  # 3 real + (2 faults x 2 retries) wasted
        assert inj.retries_total == 4

    def test_retry_counter_matches_ledger_metrics(self):
        registry = MetricsRegistry()
        inj = FaultInjector(
            "drop:phase=EH2EH,count=2,retries=2", metrics=registry
        )
        comm, mesh, ledger = make_comm(faults=inj, metrics=registry)
        row_allgather(comm, mesh, row=0)
        row_allgather(comm, mesh, row=1)
        assert registry.counter_total("retries") == inj.retries_total == 4
        # Every commit — wasted attempts and backoff waits included — is a
        # first-class comm_event in the registry.
        assert registry.counter_total("comm_events") == len(ledger.comm_events)
        assert registry.counter_total("comm_seconds") == pytest.approx(
            ledger.comm_seconds
        )


class TestStragglerScoping:
    def test_straggler_inflates_only_its_row(self):
        # Rank 3 sits in row 1 of a 2x2 mesh.
        clean_comm, clean_mesh, clean_ledger = make_comm()
        row_allgather(clean_comm, clean_mesh, row=0)
        row_allgather(clean_comm, clean_mesh, row=1)
        clean = [e.seconds for e in clean_ledger.comm_events]

        inj = FaultInjector("straggler:rank=3,factor=4,phase=EH2EH")
        comm, mesh, ledger = make_comm(faults=inj)
        row_allgather(comm, mesh, row=0)
        row_allgather(comm, mesh, row=1)
        seconds = [e.seconds for e in ledger.comm_events]
        assert seconds[0] == clean[0]  # row 0: rank 3 not a participant
        assert seconds[1] == pytest.approx(4.0 * clean[1])  # row 1: inflated

    def test_straggler_counted_once(self):
        inj = FaultInjector("straggler:rank=3,factor=4,phase=EH2EH")
        comm, mesh, _ = make_comm(faults=inj)
        row_allgather(comm, mesh, row=1)
        row_allgather(comm, mesh, row=1)
        assert inj.faults_fired == 1  # one fault, many inflated events

    def test_column_group_scoping(self):
        inj = FaultInjector("straggler:rank=2,factor=3")
        comm, mesh, ledger = make_comm(faults=inj)
        for col in (0, 1):  # rank 2 lives in column 0 of the 2x2 mesh
            ranks = mesh.col_ranks(col)
            comm.allreduce_or(
                "H", ranks,
                {int(r): np.zeros(64, bool) for r in ranks},
            )
        ev = ledger.comm_events
        assert ev[0].seconds == pytest.approx(3.0 * ev[1].seconds)


class TestCorruptionDelivery:
    def test_allreduce_detects_and_redelivers(self):
        bitmaps = {
            0: np.array([True, False, False, False]),
            1: np.array([False, True, False, False]),
            2: np.array([False, False, True, False]),
            3: np.array([False, False, False, False]),
        }
        clean_comm, _, _ = make_comm()
        expected = clean_comm.allreduce_or("H", np.arange(4), bitmaps)

        inj = FaultInjector("corrupt:phase=H,count=1,retries=1")
        comm, _, ledger = make_comm(faults=inj)
        out = comm.allreduce_or("H", np.arange(4), bitmaps)
        assert np.array_equal(out, expected)  # pristine after round-trip
        assert inj.corruptions_detected == 1
        assert inj.retries_total == 1  # the retransmission was also priced
        waits = [e for e in ledger.comm_events if e.participants == 1]
        assert len(waits) == 1

    def test_reduce_scatter_slices_survive_corruption(self):
        inj = FaultInjector("corrupt:phase=P,count=1")
        comm, _, _ = make_comm(faults=inj)
        full = np.zeros(8, bool)
        bitmaps = {i: full.copy() for i in range(4)}
        bitmaps[1][3] = True
        out = comm.reduce_scatter_or(
            "P", np.arange(4), bitmaps, splits=np.array([0, 2, 4, 6, 8])
        )
        assert out[1].tolist() == [False, True]
        assert inj.corruptions_detected == 1

    def test_corruption_metrics(self):
        registry = MetricsRegistry()
        inj = FaultInjector("corrupt:phase=L2L,count=1", metrics=registry)
        comm, _, _ = make_comm(faults=inj, metrics=registry)
        comm.alltoallv(
            "L2L", np.arange(4), {0: {1: np.arange(32)}}
        )
        assert registry.counter_total("corruptions_detected") == 1
        assert registry.counter_total("faults_injected", kind="corrupt") == 1
