"""Tests for sub-iteration direction heuristics."""

import numpy as np
import pytest

from repro.core.config import BFSConfig
from repro.core.direction import (
    ClassState,
    choose_component_direction,
    choose_whole_iteration_direction,
)


def make_ratios(**kwargs):
    """ratios dict: class -> (active_ratio, unvisited_ratio)."""
    base = {"E": (0.0, 1.0), "H": (0.0, 1.0), "L": (0.0, 1.0), "EH": (0.0, 1.0)}
    base.update(kwargs)
    return base


class TestComponentDirection:
    def setup_method(self):
        self.cfg = BFSConfig(local_pull_threshold=0.05)

    def test_node_local_push_when_sparse(self):
        ratios = make_ratios(EH=(0.01, 0.9))
        assert choose_component_direction("EH2EH", ratios, self.cfg) == "push"

    def test_node_local_pull_when_dense(self):
        ratios = make_ratios(EH=(0.3, 0.5))
        assert choose_component_direction("EH2EH", ratios, self.cfg) == "pull"

    def test_node_local_ignores_destination(self):
        # dst nearly all visited but src sparse -> still push
        ratios = make_ratios(E=(0.01, 0.0), L=(0.0, 0.01))
        assert choose_component_direction("E2L", ratios, self.cfg) == "push"

    def test_cross_node_pull_when_few_unvisited(self):
        ratios = make_ratios(H=(0.5, 0.0), L=(0.5, 0.1))
        assert choose_component_direction("H2L", ratios, self.cfg) == "pull"

    def test_cross_node_push_when_many_unvisited(self):
        ratios = make_ratios(L=(0.05, 0.9))
        assert choose_component_direction("L2L", ratios, self.cfg) == "push"

    def test_l2h_pulls_after_dense_eh_subiteration(self):
        """Paper §4.2: once EH2EH activated nearly all H, L2H flips to
        pull because unvisited-H is tiny."""
        ratios = make_ratios(L=(0.2, 0.7), H=(0.9, 0.02))
        assert choose_component_direction("L2H", ratios, self.cfg) == "pull"

    def test_classes_used_per_component(self):
        # L2E is node-local with source class L
        cfg = BFSConfig(local_pull_threshold=0.5)
        ratios = make_ratios(L=(0.6, 0.5), E=(0.0, 1.0))
        assert choose_component_direction("L2E", ratios, cfg) == "pull"
        ratios = make_ratios(L=(0.4, 0.5))
        assert choose_component_direction("L2E", ratios, cfg) == "push"


class TestClassState:
    def test_measures_ratios(self):
        masks = {
            "E": np.array([True, False, False, False]),
            "L": np.array([False, True, True, True]),
        }
        state = ClassState(masks)
        active = np.array([True, True, False, False])
        visited = np.array([True, True, False, False])
        ratios = state.measure(active, visited)
        assert ratios["E"] == (1.0, 0.0)
        assert ratios["L"] == (pytest.approx(1 / 3), pytest.approx(2 / 3))

    def test_empty_class(self):
        state = ClassState({"E": np.zeros(4, dtype=bool)})
        ratios = state.measure(np.ones(4, bool), np.ones(4, bool))
        assert ratios["E"] == (0.0, 0.0)


class TestWholeIterationDirection:
    def test_push_when_frontier_small(self):
        degrees = np.full(100, 10, dtype=np.int64)
        active = np.zeros(100, bool)
        active[0] = True
        visited = active.copy()
        cfg = BFSConfig()
        assert (
            choose_whole_iteration_direction(active, visited, degrees, cfg) == "push"
        )

    def test_pull_when_frontier_arcs_dominate(self):
        degrees = np.ones(100, dtype=np.int64)
        degrees[:50] = 100
        active = np.zeros(100, bool)
        active[:50] = True
        visited = active.copy()
        cfg = BFSConfig()
        assert (
            choose_whole_iteration_direction(active, visited, degrees, cfg) == "pull"
        )

    def test_push_when_everything_visited(self):
        degrees = np.full(10, 5, dtype=np.int64)
        active = np.ones(10, bool)
        visited = np.ones(10, bool)
        cfg = BFSConfig()
        assert (
            choose_whole_iteration_direction(active, visited, degrees, cfg) == "push"
        )
