"""Tests for the simulated communicator."""

import numpy as np
import pytest

from repro.machine.costmodel import CollectiveKind, CostModel
from repro.machine.network import MachineSpec
from repro.runtime.comm import SimCommunicator
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh
from repro.sort.psrs import psrs_sort


def make_comm(rows=2, cols=2, nodes_per_supernode=2):
    machine = MachineSpec(
        num_nodes=rows * cols, nodes_per_supernode=nodes_per_supernode
    )
    mesh = ProcessMesh(rows, cols, machine=machine)
    ledger = TrafficLedger(CostModel(machine))
    return SimCommunicator(mesh, ledger), mesh, ledger


class TestAlltoallv:
    def test_delivery_and_ordering(self):
        comm, mesh, _ = make_comm()
        group = np.arange(4)
        send = {
            0: {1: np.array([10]), 2: np.array([20])},
            1: {2: np.array([21, 22])},
            3: {2: np.array([23])},
        }
        recv = comm.alltoallv("t", group, send)
        # rank 2 receives source-rank-ordered concatenation
        assert recv[2].tolist() == [20, 21, 22, 23]
        assert recv[1].tolist() == [10]
        assert recv[0].size == 0 and recv[3].size == 0

    def test_self_send_delivered_but_free(self):
        comm, _, ledger = make_comm()
        recv = comm.alltoallv("t", np.arange(4), {0: {0: np.array([5])}})
        assert recv[0].tolist() == [5]
        assert ledger.comm_events[0].total_bytes == 0.0

    def test_ledger_volume_split(self):
        # 2x2 mesh, supernode size 2: ranks {0,1} and {2,3}.
        comm, _, ledger = make_comm()
        send = {0: {1: np.zeros(10, np.int64), 2: np.zeros(10, np.int64)}}
        comm.alltoallv("t", np.arange(4), send)
        ev = ledger.comm_events[0]
        assert ev.max_bytes_intra == pytest.approx(80.0)
        assert ev.max_bytes_inter == pytest.approx(80.0)

    def test_rejects_send_outside_group(self):
        comm, _, _ = make_comm()
        with pytest.raises(ValueError, match="outside the group"):
            comm.alltoallv("t", np.array([0, 1]), {0: {2: np.array([1])}})

    def test_subgroup_exchange(self):
        comm, mesh, _ = make_comm(2, 4, nodes_per_supernode=4)
        row = mesh.row_ranks(1)  # ranks 4..7
        recv = comm.alltoallv("t", row, {4: {7: np.array([1, 2])}})
        assert recv[7].tolist() == [1, 2]


class TestAllgather:
    def test_concatenates_rank_ordered(self):
        comm, _, _ = make_comm()
        out = comm.allgather(
            "t", np.arange(4), {i: np.array([i * 10]) for i in range(4)}
        )
        assert out.tolist() == [0, 10, 20, 30]

    def test_missing_contribution_is_empty(self):
        comm, _, _ = make_comm()
        out = comm.allgather("t", np.arange(4), {1: np.array([7])})
        assert out.tolist() == [7]

    def test_charges_allgather_kind(self):
        comm, _, ledger = make_comm()
        comm.allgather("t", np.arange(4), {0: np.arange(100)})
        assert ledger.comm_events[0].kind is CollectiveKind.ALLGATHER

    def test_skewed_contribution_charges_ring_critical_path(self):
        # One rank holds everything: its 800-byte block traverses p-1
        # ring hops, so the per-link charge is 800 * 3, not the 800 bytes
        # each rank ends up receiving.
        comm, _, ledger = make_comm()
        comm.allgather("t", np.arange(4), {0: np.arange(100)})
        ev = ledger.comm_events[0]
        assert ev.max_bytes_intra + ev.max_bytes_inter == pytest.approx(
            800.0 * 3
        )

    def test_balanced_contributions_charge_received_volume(self):
        # Equal 200-byte contributions: the received volume (800 bytes)
        # dominates max_contrib * (p-1) = 600, so the charge is the
        # gathered size — the pre-fix behaviour for the balanced case.
        comm, _, ledger = make_comm()
        comm.allgather(
            "t", np.arange(4), {i: np.arange(25) for i in range(4)}
        )
        ev = ledger.comm_events[0]
        assert ev.max_bytes_intra + ev.max_bytes_inter == pytest.approx(800.0)
        assert ev.total_bytes == pytest.approx(800.0 * 4)


class TestAllreduceOr:
    def test_or_semantics(self):
        comm, _, _ = make_comm()
        bitmaps = {
            0: np.array([True, False, False]),
            1: np.array([False, True, False]),
            2: np.array([False, False, False]),
            3: np.array([True, False, False]),
        }
        out = comm.allreduce_or("t", np.arange(4), bitmaps)
        assert out.tolist() == [True, True, False]

    def test_shape_mismatch_rejected(self):
        comm, _, _ = make_comm()
        with pytest.raises(ValueError, match="shape"):
            comm.allreduce_or(
                "t",
                np.array([0, 1]),
                {0: np.zeros(3, bool), 1: np.zeros(4, bool)},
            )

    def test_needs_contribution(self):
        comm, _, _ = make_comm()
        with pytest.raises(ValueError, match="at least one"):
            comm.allreduce_or("t", np.array([0]), {})

    def test_wire_bytes_are_packed_bits(self):
        comm, _, ledger = make_comm(1, 2, nodes_per_supernode=1)
        comm.allreduce_or(
            "t", np.array([0, 1]), {0: np.zeros(800, bool), 1: np.zeros(800, bool)}
        )
        ev = ledger.comm_events[0]
        assert ev.max_bytes_intra + ev.max_bytes_inter == pytest.approx(100.0)


class TestReduceScatterOr:
    def test_scatter_slices(self):
        comm, _, _ = make_comm()
        group = np.arange(4)
        full = np.zeros(8, bool)
        bitmaps = {i: full.copy() for i in range(4)}
        bitmaps[1][3] = True
        bitmaps[2][6] = True
        out = comm.reduce_scatter_or(
            "t", group, bitmaps, splits=np.array([0, 2, 4, 6, 8])
        )
        assert out[0].tolist() == [False, False]
        assert out[1].tolist() == [False, True]
        assert out[3].tolist() == [True, False]

    def test_splits_validated(self):
        comm, _, _ = make_comm()
        with pytest.raises(ValueError, match="splits"):
            comm.reduce_scatter_or(
                "t",
                np.array([0, 1]),
                {0: np.zeros(4, bool), 1: np.zeros(4, bool)},
                splits=np.array([0, 4]),
            )

    def test_charges_reduce_scatter_kind(self):
        comm, _, ledger = make_comm()
        comm.reduce_scatter_or(
            "t",
            np.arange(4),
            {i: np.zeros(4, bool) for i in range(4)},
            splits=np.array([0, 1, 2, 3, 4]),
        )
        assert ledger.comm_events[0].kind is CollectiveKind.REDUCE_SCATTER


class TestBarrier:
    def test_latency_only(self):
        comm, _, ledger = make_comm()
        comm.barrier("t", np.arange(4))
        ev = ledger.comm_events[0]
        assert ev.kind is CollectiveKind.BARRIER
        assert ev.total_bytes == 0.0


class TestIntegrationPSRSOverComm:
    """PSRS exchange volumes flow into the ledger (preprocessing phase)."""

    def test_psrs_exchange_charged(self):
        comm, mesh, ledger = make_comm(2, 2)
        rng = np.random.default_rng(0)
        chunks = [rng.integers(0, 1000, size=200) for _ in range(4)]

        def on_exchange(matrix):
            send = {
                i: {j: np.zeros(int(matrix[i, j]) // 8, dtype=np.int64) for j in range(4)}
                for i in range(4)
            }
            comm.alltoallv("preprocess", np.arange(4), send)

        parts = psrs_sort(chunks, on_exchange=on_exchange)
        flat = np.concatenate(parts)
        assert np.array_equal(flat, np.sort(np.concatenate(chunks)))
        assert ledger.total_bytes > 0
