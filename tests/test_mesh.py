"""Tests for the process mesh."""

import numpy as np
import pytest

from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh


class TestMeshShape:
    def test_rank_coords_roundtrip(self):
        mesh = ProcessMesh(4, 8)
        for r in range(4):
            for c in range(8):
                rank = mesh.rank_of(r, c)
                row, col = mesh.coords(rank)
                assert (int(row), int(col)) == (r, c)

    def test_row_major(self):
        mesh = ProcessMesh(2, 3)
        assert mesh.rank_of(1, 0) == 3

    def test_row_and_col_ranks(self):
        mesh = ProcessMesh(3, 4)
        assert mesh.row_ranks(1).tolist() == [4, 5, 6, 7]
        assert mesh.col_ranks(2).tolist() == [2, 6, 10]

    def test_bad_coords(self):
        mesh = ProcessMesh(2, 2)
        with pytest.raises(ValueError):
            mesh.rank_of(2, 0)
        with pytest.raises(ValueError):
            mesh.coords(4)
        with pytest.raises(ValueError):
            mesh.row_ranks(5)
        with pytest.raises(ValueError):
            mesh.col_ranks(-1)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ProcessMesh(0, 4)

    def test_machine_too_small(self):
        with pytest.raises(ValueError, match="nodes"):
            ProcessMesh(10, 10, machine=MachineSpec(num_nodes=50))


class TestOwnership:
    def test_block_distribution(self):
        mesh = ProcessMesh(2, 2)  # 4 ranks
        owners = mesh.owner_of(np.arange(8), 8)
        assert owners.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven_blocks(self):
        mesh = ProcessMesh(1, 3)
        # 7 vertices, block size 3: [0,3), [3,6), [6,7)
        assert mesh.vertex_range(0, 7) == (0, 3)
        assert mesh.vertex_range(2, 7) == (6, 7)
        assert mesh.owner_of(6, 7) == 2

    def test_every_vertex_owned_exactly_once(self):
        mesh = ProcessMesh(3, 5)
        n = 101
        owners = mesh.owner_of(np.arange(n), n)
        for rank in range(mesh.num_ranks):
            lo, hi = mesh.vertex_range(rank, n)
            assert np.all(owners[lo:hi] == rank)

    def test_vertex_out_of_range(self):
        mesh = ProcessMesh(2, 2)
        with pytest.raises(ValueError):
            mesh.owner_of(8, 8)


class TestSupernodeMapping:
    def test_rows_map_to_supernodes(self):
        # 16x16 mesh on a 256-node machine with 16-node supernodes:
        # each row is exactly one supernode.
        machine = MachineSpec(num_nodes=256, nodes_per_supernode=16)
        mesh = ProcessMesh(16, 16, machine=machine)
        for row in range(16):
            assert mesh.row_is_intra_supernode(row)

    def test_columns_cross_supernodes(self):
        machine = MachineSpec(num_nodes=256, nodes_per_supernode=16)
        mesh = ProcessMesh(16, 16, machine=machine)
        sn = mesh.supernode_of_rank(mesh.col_ranks(0))
        assert len(set(sn.tolist())) == 16

    def test_no_machine_means_one_supernode(self):
        mesh = ProcessMesh(4, 4)
        sn = mesh.supernode_of_rank(np.arange(16))
        assert np.all(sn == 0)

    def test_split_intra_inter(self):
        machine = MachineSpec(num_nodes=8, nodes_per_supernode=4)
        mesh = ProcessMesh(2, 4, machine=machine)
        bytes_to = np.array([100.0, 10, 10, 10, 5, 5, 5, 5])
        intra, inter = mesh.split_intra_inter(0, bytes_to)
        assert intra == 30.0  # ranks 1-3, self excluded
        assert inter == 20.0  # ranks 4-7

    def test_split_shape_validated(self):
        mesh = ProcessMesh(2, 2)
        with pytest.raises(ValueError):
            mesh.split_intra_inter(0, np.zeros(3))
