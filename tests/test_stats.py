"""Tests for repro.graphs.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.stats import (
    degree_histogram,
    degree_peaks,
    degrees_from_edges,
    gini_coefficient,
)


class TestDegreesFromEdges:
    def test_simple(self):
        src = np.array([0, 0, 1])
        dst = np.array([1, 2, 2])
        deg = degrees_from_edges(src, dst, 4)
        assert deg.tolist() == [2, 2, 2, 0]

    def test_self_loops_excluded_by_default(self):
        deg = degrees_from_edges(np.array([1]), np.array([1]), 2)
        assert deg.tolist() == [0, 0]

    def test_self_loops_counted_on_request(self):
        deg = degrees_from_edges(
            np.array([1]), np.array([1]), 2, count_self_loops=True
        )
        assert deg.tolist() == [0, 2]

    def test_duplicates_counted(self):
        deg = degrees_from_edges(np.array([0, 0]), np.array([1, 1]), 2)
        assert deg.tolist() == [2, 2]


class TestDegreeHistogram:
    def test_basic(self):
        values, counts = degree_histogram(np.array([1, 1, 2, 5, 0]))
        assert values.tolist() == [1, 2, 5]
        assert counts.tolist() == [2, 1, 1]

    def test_empty(self):
        values, counts = degree_histogram(np.array([0, 0]))
        assert values.size == 0 and counts.size == 0

    def test_counts_sum_to_nonzero_vertices(self):
        rng = np.random.default_rng(0)
        deg = rng.integers(0, 50, size=1000)
        _, counts = degree_histogram(deg)
        assert counts.sum() == np.count_nonzero(deg)


class TestDegreePeaks:
    def test_single_mode(self):
        deg = np.full(1000, 16)
        peaks = degree_peaks(deg)
        assert peaks.size >= 1
        # peak should be within a factor ~2 of the true mode
        assert np.any((peaks >= 8) & (peaks <= 32))

    def test_two_well_separated_modes(self):
        deg = np.concatenate([np.full(1000, 4), np.full(50, 4096)])
        peaks = degree_peaks(deg)
        assert np.any(peaks <= 16)
        assert np.any(peaks >= 1024)

    def test_empty_degrees(self):
        assert degree_peaks(np.array([0, 0, 0])).size == 0


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_is_near_one(self):
        v = np.zeros(100)
        v[0] = 1.0
        assert gini_coefficient(v) > 0.95

    def test_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([1.0, -1.0]))

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, values):
        g = gini_coefficient(np.array(values))
        assert -1e-9 <= g <= 1.0

    def test_scale_invariant(self):
        v = np.array([1.0, 2.0, 3.0, 10.0])
        assert gini_coefficient(v) == pytest.approx(gini_coefficient(v * 100))
