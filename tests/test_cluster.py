"""The multi-tenant cluster plane: tenants, router, service, failover.

MS-BFS and single-graph serving correctness live in test_msbfs.py /
test_serve.py; here we test the sharded layer on top — the tenant spec
grammar and service classes, the deficit-round-robin router as a pure
data structure, per-tenant admission and typed shedding, replica
failover with bit-identical re-routing, weighted fairness under a hot
tenant, per-tenant SLO monitors, streaming-ingest isolation, and the
multi-tenant telemetry views.
"""

import asyncio
import math

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    ClusterService,
    QueueFull,
    ReplicaDown,
    TenantSpec,
    build_registry,
    parse_tenant_spec,
)
from repro.cluster.tenants import SLO_CLASSES
from repro.dynamic.updates import UpdateBatch
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOMonitor, SLOSpec
from repro.resilience.faults import FaultInjector
from repro.serve.service import (
    LATENCY_BUCKETS,
    Overloaded,
    ServeStats,
    TraversalError,
)
from repro.serve.workload import (
    WorkloadReport,
    http_get,
    make_diurnal_workload,
)


def run_async(coro):
    return asyncio.run(coro)


def specs(n=2, scale=8, quota=None):
    classes = list(SLO_CLASSES)
    return [
        TenantSpec(
            tenant_id=f"t{i}", scale=scale, rows=2, cols=2, seed=7 + i,
            slo_class=classes[i % len(classes)], quota=quota,
        )
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# tenant specs and the CLI grammar
# ----------------------------------------------------------------------


class TestTenantSpec:
    def test_class_defaults_resolve(self):
        spec = TenantSpec(tenant_id="a", slo_class="gold")
        assert spec.resolved_weight == 4
        assert spec.resolved_quota == 96
        assert spec.resolved_slos[0].threshold_seconds == 0.25

    def test_overrides_win_over_class(self):
        spec = TenantSpec(tenant_id="a", slo_class="bronze", weight=9, quota=5)
        assert spec.resolved_weight == 9
        assert spec.resolved_quota == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(tenant_id=""),
            dict(tenant_id="a", slo_class="platinum"),
            dict(tenant_id="a", weight=0),
            dict(tenant_id="a", quota=0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantSpec(**kwargs)

    def test_parse_count_form_cycles_classes(self):
        parsed = parse_tenant_spec("4", seed=10)
        assert [s.tenant_id for s in parsed] == ["t0", "t1", "t2", "t3"]
        assert [s.slo_class for s in parsed] == [
            "gold", "silver", "bronze", "gold",
        ]
        # Distinct seeds -> distinct resident graphs.
        assert len({s.seed for s in parsed}) == 4

    def test_parse_name_class_form(self):
        parsed = parse_tenant_spec("search:gold,feed,batch:bronze")
        assert [s.tenant_id for s in parsed] == ["search", "feed", "batch"]
        assert [s.slo_class for s in parsed] == ["gold", "silver", "bronze"]

    @pytest.mark.parametrize(
        "bad", ["", "0", "-1", "a:platinum", "a:gold,a:gold", "a,,b", ":gold"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_tenant_spec(bad)


# ----------------------------------------------------------------------
# the router: deterministic deficit round-robin
# ----------------------------------------------------------------------


class TestClusterRouter:
    def _router(self, batch_size=4):
        # (tenant_id, quota, weight): gold-ish 4x weight vs 1x.
        return ClusterRouter(
            [("gold", 100, 4), ("bronze", 100, 1)], batch_size=batch_size
        )

    def test_quota_exhaustion_raises_queue_full(self):
        router = ClusterRouter([("a", 2, 1)], batch_size=4)
        router.push("a", "r1")
        router.push("a", "r2")
        with pytest.raises(QueueFull) as err:
            router.push("a", "r3")
        assert err.value.tenant_id == "a"
        assert err.value.depth == 2
        assert err.value.quota == 2

    def test_batches_never_mix_tenants(self):
        router = self._router(batch_size=4)
        for i in range(6):
            router.push("gold", f"g{i}")
            router.push("bronze", f"b{i}")
        while (picked := router.next_batch()) is not None:
            tenant_id, batch = picked
            prefix = tenant_id[0]
            assert all(r.startswith(prefix) for r in batch)

    def test_weighted_service_over_a_ring_cycle(self):
        # Both tenants backlogged: weight-4 gold must receive 4 full
        # batches for every bronze batch, consecutively.
        router = self._router(batch_size=4)
        for i in range(40):
            router.push("gold", f"g{i}")
            router.push("bronze", f"b{i}")
        order = []
        for _ in range(10):
            tenant_id, batch = router.next_batch()
            assert len(batch) == 4
            order.append(tenant_id)
        assert order == [
            "gold", "gold", "gold", "gold", "bronze",
            "gold", "gold", "gold", "gold", "bronze",
        ]

    def test_idle_tenant_cannot_bank_credit(self):
        router = self._router(batch_size=4)
        # Gold sits idle while bronze is served many times...
        for i in range(32):
            router.push("bronze", f"b{i}")
        for _ in range(8):
            assert router.next_batch()[0] == "bronze"
        # ...then bursts: it still gets exactly its quantum (4 batches)
        # before bronze runs again, not quantum x missed turns.
        for i in range(64):
            router.push("gold", f"G{i}")
            router.push("bronze", f"B{i}")
        order = [router.next_batch()[0] for _ in range(5)]
        assert order == ["gold"] * 4 + ["bronze"]

    def test_emptied_queue_resets_deficit(self):
        router = self._router(batch_size=4)
        router.push("gold", "g0")
        tenant_id, batch = router.next_batch()
        assert (tenant_id, batch) == ("gold", ["g0"])
        assert router.snapshot()["gold"]["deficit"] == 0

    def test_push_front_preserves_order_and_ignores_quota(self):
        router = ClusterRouter([("a", 2, 1)], batch_size=4)
        router.push("a", "tail")
        # Failover re-queue of 3 in-flight requests on a quota-2 queue:
        # admitted work must not be shed by the re-route.
        router.push_front("a", ["x", "y", "z"])
        _, batch = router.next_batch()
        assert batch == ["x", "y", "z", "tail"]

    def test_pop_extra_does_not_charge_deficit(self):
        router = self._router(batch_size=4)
        for i in range(8):
            router.push("gold", f"g{i}")
        _, batch = router.next_batch()
        before = router.snapshot()["gold"]["deficit"]
        extra = router.pop_extra("gold", 2)
        assert extra == ["g4", "g5"]
        assert router.snapshot()["gold"]["deficit"] == before

    def test_drain_yields_everything(self):
        router = self._router()
        router.push("gold", "g0")
        router.push("bronze", "b0")
        assert sorted(router.drain()) == [("bronze", "b0"), ("gold", "g0")]
        assert router.pending == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ClusterRouter([], batch_size=4)
        with pytest.raises(ValueError):
            ClusterRouter([("a", 1, 1)], batch_size=0)
        with pytest.raises(ValueError):
            ClusterRouter([("a", 1, 1), ("a", 1, 1)])


# ----------------------------------------------------------------------
# the cluster service
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def registry_pair():
    """Two SCALE-8 tenants (distinct seeds) shared by read-only tests."""
    return build_registry(specs(2))


class TestClusterService:
    def test_submit_serves_each_tenants_own_graph(self, registry_pair):
        async def scenario():
            async with ClusterService(
                registry_pair, replicas=2, batch_window=0.0
            ) as cluster:
                return (
                    await cluster.submit("t0", 3),
                    await cluster.submit("t1", 3),
                )

        r0, r1 = run_async(scenario())
        assert r0.tenant == "t0" and r1.tenant == "t1"
        assert r0.trace_id and r1.trace_id and r0.trace_id != r1.trace_id
        for tid, resp in (("t0", r0), ("t1", r1)):
            want = registry_pair[tid].sequential.run(3).parent
            np.testing.assert_array_equal(resp.parent, want)
        # Distinct seeds -> distinct graphs -> distinct parent trees.
        assert not np.array_equal(r0.parent, r1.parent)

    def test_quota_exhaustion_sheds_typed_and_attributed(self):
        registry = build_registry(specs(1, quota=4))
        registry["t0"].cache = None  # every submit must queue

        async def scenario():
            async with ClusterService(
                registry, replicas=1, batch_window=0.05
            ) as cluster:
                tasks = [
                    asyncio.create_task(cluster.submit("t0", r % 8))
                    for r in range(12)
                ]
                results = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
                return results, cluster.stats.shed

        results, shed = run_async(scenario())
        sheds = [r for r in results if isinstance(r, Overloaded)]
        served = [r for r in results if not isinstance(r, Exception)]
        assert len(sheds) == 8 and len(served) == 4
        for exc in sheds:
            assert exc.tenant == "t0"
            assert exc.trace_id.startswith("req-")
            assert "t0" in str(exc) and exc.trace_id in str(exc)
        assert shed == 8

    def test_injected_crash_fails_over_bit_identical(self, registry_pair):
        # A deterministic mid-batch rank crash on whichever replica runs
        # the first batch: it must go down, its batch must re-route to
        # the survivor, and every parent must match a sequential run.
        faults = FaultInjector(
            "crash:rank=1,iter=1", rng=np.random.default_rng(0)
        )
        metrics = MetricsRegistry()
        roots = list(range(8))

        async def scenario():
            async with ClusterService(
                registry_pair, replicas=2, batch_window=0.0,
                faults=faults, metrics=metrics,
            ) as cluster:
                results = await asyncio.gather(
                    *(cluster.submit("t0", r) for r in roots)
                )
                return results, cluster.live_replicas, cluster.stats.replays

        results, live, replays = run_async(scenario())
        assert len(live) == 1 and replays >= 1
        for root, resp in zip(roots, results):
            want = registry_pair["t0"].sequential.run(root).parent
            np.testing.assert_array_equal(resp.parent, want)
        assert metrics.counter_total("cluster_failovers") == 1
        assert metrics.counter_total("cluster_batch_replays", tenant="t0") >= 1

    def test_kill_replica_mid_stream_is_transparent(self, registry_pair):
        async def scenario():
            async with ClusterService(
                registry_pair, replicas=2, batch_window=0.001
            ) as cluster:
                tasks = [
                    asyncio.create_task(cluster.submit("t1", 100 + r))
                    for r in range(8)
                ]
                await asyncio.sleep(0)
                cluster.kill_replica("r0")
                results = await asyncio.gather(*tasks)
                return results, cluster.live_replicas

        results, live = run_async(scenario())
        assert live == ["r1"]
        for r, resp in enumerate(results):
            want = registry_pair["t1"].sequential.run(100 + r).parent
            np.testing.assert_array_equal(resp.parent, want)

    def test_no_live_replica_raises_typed_replica_down(self):
        registry = build_registry(specs(1))
        registry["t0"].cache = None

        async def scenario():
            async with ClusterService(
                registry, replicas=1, batch_window=0.0
            ) as cluster:
                cluster.kill_replica("r0")
                while cluster.live_replicas:
                    await asyncio.sleep(0.005)
                with pytest.raises(ReplicaDown) as err:
                    await cluster.submit("t0", 5)
                return err.value

        exc = run_async(scenario())
        assert exc.tenant == "t0"
        assert exc.replicas == 1
        assert "t0" in str(exc)

    def test_kill_unknown_replica_is_a_key_error(self, registry_pair):
        async def scenario():
            async with ClusterService(registry_pair, replicas=1) as cluster:
                with pytest.raises(KeyError):
                    cluster.kill_replica("r99")

        run_async(scenario())

    def test_submit_validates_tenant_and_root(self, registry_pair):
        async def scenario():
            async with ClusterService(registry_pair, replicas=1) as cluster:
                with pytest.raises(KeyError):
                    await cluster.submit("nope", 0)
                with pytest.raises(ValueError):
                    await cluster.submit("t0", 1 << 20)

        run_async(scenario())

    def test_constructor_validation(self, registry_pair):
        with pytest.raises(ValueError):
            ClusterService(registry_pair, replicas=0)
        with pytest.raises(ValueError):
            ClusterService(registry_pair, batch_size=0)
        with pytest.raises(ValueError):
            ClusterService(registry_pair, batch_window=-1.0)


# ----------------------------------------------------------------------
# weighted fairness under a hot tenant
# ----------------------------------------------------------------------


class TestFairness:
    def test_hot_tenant_cannot_push_cold_p99_past_solo(self):
        # The cold tenant's exact sub-stream runs twice: once alone
        # (solo baseline), once while the hot tenant offers ~10x load.
        # DRR must keep the contended p99 within 1.5x solo + 50 ms.
        registry = build_registry(specs(2))
        workload = make_diurnal_workload(
            registry.degrees_map(), 200, seed=11, duration_seconds=0.3,
            popularity={"t0": 10.0, "t1": 1.0},
            hot_fraction=0.5, hot_set_size=8,
        )
        counts = workload.per_tenant_counts()
        assert counts["t0"] > 5 * counts["t1"]

        from repro.cluster import run_cluster_session

        solo_report, _ = run_cluster_session(
            build_registry(specs(2)), workload.for_tenant("t1"),
            replicas=2, max_shed_retries=10_000,
        )
        fair_report, _ = run_cluster_session(
            registry, workload, replicas=2, max_shed_retries=10_000,
        )
        assert fair_report.accounted == workload.num_queries
        solo_p99 = solo_report.latency_percentile(99)
        cold_p99 = fair_report.per_tenant()["t1"].latency_percentile(99)
        assert cold_p99 <= 1.5 * solo_p99 + 0.05


# ----------------------------------------------------------------------
# per-tenant SLO monitors
# ----------------------------------------------------------------------


class TestPerTenantSLO:
    def test_match_filter_isolates_tenants(self):
        # Two monitors over the SAME latency family, narrowed by tenant
        # label: only the tenant with slow requests may burn.
        metrics = MetricsRegistry()
        clock = lambda: 0.0  # noqa: E731
        spec = (SLOSpec(stage="total", threshold_seconds=0.1, objective=0.9),)
        fast = metrics.histogram(
            "cluster_latency_seconds", buckets=LATENCY_BUCKETS,
            tenant="fast", stage="total",
        )
        slow = metrics.histogram(
            "cluster_latency_seconds", buckets=LATENCY_BUCKETS,
            tenant="slow", stage="total",
        )
        monitors = {
            tid: SLOMonitor(
                metrics, spec, metric="cluster_latency_seconds",
                match={"tenant": tid}, clock=clock,
            )
            for tid in ("fast", "slow")
        }
        # Burn is a windowed delta: take the zero baseline first, then
        # feed 50 requests per tenant and re-evaluate.
        for monitor in monitors.values():
            monitor.observe()
        for _ in range(50):
            fast.observe(0.001)
            slow.observe(5.0)
        assert monitors["fast"].evaluate()["status"] == "ok"
        assert monitors["slow"].evaluate()["status"] == "page"

    def test_cluster_slo_status_keyed_by_tenant(self, registry_pair):
        async def scenario():
            async with ClusterService(
                registry_pair, replicas=1, metrics=MetricsRegistry()
            ) as cluster:
                await cluster.submit("t0", 1)
                return cluster.slo_status()

        status = run_async(scenario())
        assert set(status) == {"t0", "t1"}
        for doc in status.values():
            assert doc["status"] in ("ok", "warn", "page")
            assert doc["slos"]


# ----------------------------------------------------------------------
# streaming-ingest isolation
# ----------------------------------------------------------------------


class TestIngestIsolation:
    def test_ingest_moves_only_the_target_tenant(self):
        registry = build_registry(specs(2, scale=7), dynamic=True)
        before = {t.tenant_id: t.fingerprint for t in registry}
        batch = UpdateBatch(
            src=np.array([1, 2, 3], dtype=np.int64),
            dst=np.array([100, 101, 102], dtype=np.int64),
            op=np.ones(3, dtype=np.int8),
        )

        async def scenario():
            async with ClusterService(registry, replicas=1) as cluster:
                report = await cluster.ingest_updates("t0", [batch])
                resp = await cluster.submit("t0", 1)
                return report, resp

        report, resp = run_async(scenario())
        assert report.tenant == "t0"
        assert report.num_updates == 3
        assert report.old_fingerprint == before["t0"]
        assert report.new_fingerprint == registry["t0"].fingerprint
        assert registry["t0"].fingerprint != before["t0"]
        # The other tenant's generation never moved.
        assert registry["t1"].fingerprint == before["t1"]
        # Post-ingest serving matches a sequential run on the repaired
        # graph (swap_graph rebuilt both engines together).
        want = registry["t0"].sequential.run(1).parent
        np.testing.assert_array_equal(resp.parent, want)

    def test_ingest_requires_dynamic_tenant(self, registry_pair):
        async def scenario():
            async with ClusterService(registry_pair, replicas=1) as cluster:
                with pytest.raises(RuntimeError, match="dynamic"):
                    await cluster.ingest_updates("t0", [])

        run_async(scenario())


# ----------------------------------------------------------------------
# multi-tenant telemetry views
# ----------------------------------------------------------------------


class TestClusterTelemetry:
    def test_tenants_and_per_tenant_slo_routes(self, registry_pair):
        import json

        from repro.serve.telemetry import TelemetryServer

        metrics = MetricsRegistry()

        async def scenario():
            async with ClusterService(
                registry_pair, replicas=2, metrics=metrics
            ) as cluster:
                await cluster.submit("t0", 2)
                server = TelemetryServer(
                    cluster, metrics, port=0, cluster=cluster
                )
                async with server:
                    gets = {}
                    for path in (
                        "/tenants", "/slo", "/slo/t0", "/slo/nope",
                    ):
                        gets[path] = await http_get(
                            "127.0.0.1", server.port, path
                        )
                    return gets

        gets = run_async(scenario())
        status, _, body = gets["/tenants"]
        assert status == 200
        doc = json.loads(body)
        assert set(doc["tenants"]) == {"t0", "t1"}
        assert doc["tenants"]["t0"]["requests"] >= 1
        assert set(doc["replicas"]) == {"r0", "r1"}
        status, _, body = gets["/slo"]
        assert status == 200
        assert set(json.loads(body)) == {"t0", "t1"}
        status, _, body = gets["/slo/t0"]
        assert status == 200
        assert json.loads(body)["status"] in ("ok", "warn", "page")
        assert gets["/slo/nope"][0] == 404

    def test_tenant_routes_404_on_single_graph_service(self, registry_pair):
        from repro.serve.telemetry import TelemetryServer

        metrics = MetricsRegistry()

        async def scenario():
            # No cluster= : the single-graph telemetry surface.
            async with ClusterService(
                registry_pair, replicas=1, metrics=metrics
            ) as cluster:
                server = TelemetryServer(cluster, metrics, port=0)
                async with server:
                    return (
                        await http_get("127.0.0.1", server.port, "/tenants"),
                        await http_get("127.0.0.1", server.port, "/slo/t0"),
                    )

        tenants, slo = run_async(scenario())
        assert tenants[0] == 404 and slo[0] == 404


# ----------------------------------------------------------------------
# empty-reservoir percentiles (satellite: nan, not crash or fake zero)
# ----------------------------------------------------------------------


class TestEmptyPercentiles:
    def test_serve_stats_empty_reservoir_is_nan(self):
        stats = ServeStats()
        assert math.isnan(stats.latency_percentile(99))
        assert math.isnan(stats.p50_seconds)
        assert math.isnan(stats.p99_seconds)

    def test_workload_report_empty_is_nan(self):
        report = WorkloadReport()
        assert math.isnan(report.latency_percentile(99))

    def test_workload_report_all_shed_is_nan(self):
        from repro.serve.workload import QueryOutcome

        report = WorkloadReport(
            outcomes=[QueryOutcome(root=1, shed=True, error="shed")]
        )
        assert math.isnan(report.latency_percentile(50))


# ----------------------------------------------------------------------
# typed-error attribution (satellite: tenant + trace on the exception)
# ----------------------------------------------------------------------


class TestErrorAttribution:
    def test_overloaded_carries_tenant_and_trace(self):
        exc = Overloaded(9, 8, tenant="acme", trace_id="req-000042")
        assert exc.tenant == "acme"
        assert exc.trace_id == "req-000042"
        assert "acme" in str(exc) and "req-000042" in str(exc)
        assert exc.queue_depth == 9 and exc.limit == 8

    def test_traversal_error_carries_tenant_and_trace(self):
        exc = TraversalError("boom", tenant="acme", trace_id="req-000007")
        assert exc.tenant == "acme"
        assert exc.trace_id == "req-000007"
        assert "acme" in str(exc) and "req-000007" in str(exc)

    def test_single_graph_defaults_stay_empty(self):
        exc = Overloaded(3, 2)
        assert exc.tenant == "" and exc.trace_id == ""
        assert "[" not in str(exc)
