"""The serving layer: cache, admission-controlled service, workload.

MS-BFS correctness lives in test_msbfs.py; here we test everything
around it — eviction policy, bounded-queue shedding, batching windows,
crash replay, latency accounting, and the closed-loop workload the CI
smoke drives.
"""

import asyncio

import numpy as np
import pytest

from repro.cli import main
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.machine.network import MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import report_from_serve
from repro.resilience.faults import FaultInjector
from repro.runtime.mesh import ProcessMesh
from repro.serve import (
    Overloaded,
    ResultCache,
    TraversalError,
    TraversalService,
    fingerprint_graph,
)
from repro.serve.bench import amortization_sweep, build_serving_pair
from repro.serve.msbfs import MultiSourceBFS
from repro.serve.workload import (
    make_workload_roots,
    run_serving_session,
    run_workload,
)


def build_engines(scale=9, rows=2, cols=2, e_thr=128, h_thr=16, seed=7):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=e_thr, h_threshold=h_thr
    )
    config = BFSConfig(e_threshold=e_thr, h_threshold=h_thr)
    sequential = DistributedBFS(part, machine=machine, config=config)
    batched = MultiSourceBFS(part, machine=machine, config=config)
    graph = build_csr(*symmetrize_edges(src, dst), n)
    return sequential, batched, graph


@pytest.fixture(scope="module")
def engines():
    return build_engines()


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestResultCache:
    def _parent(self, tag):
        return np.arange(tag, tag + 4, dtype=np.int64)

    def test_hit_miss_counters(self):
        metrics = MetricsRegistry()
        cache = ResultCache(capacity=4, metrics=metrics)
        assert cache.get("fp", 1) is None
        cache.put("fp", 1, self._parent(0))
        assert np.array_equal(cache.get("fp", 1), self._parent(0))
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert metrics.counter_total("serve_cache_hits") == 1
        assert metrics.counter_total("serve_cache_misses") == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("fp", 1, self._parent(1))
        cache.put("fp", 2, self._parent(2))
        cache.get("fp", 1)  # 1 is now most-recently-used
        cache.put("fp", 3, self._parent(3))  # evicts 2
        assert cache.get("fp", 2) is None
        assert cache.get("fp", 1) is not None
        assert cache.stats.evicted_lru == 1

    def test_ttl_expiry_lazy(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("fp", 1, self._parent(1))
        clock.now = 9.9
        assert cache.get("fp", 1) is not None
        clock.now = 20.0
        assert cache.get("fp", 1) is None
        assert cache.stats.evicted_ttl == 1
        assert len(cache) == 0

    def test_invalidate_generation(self):
        cache = ResultCache(capacity=8)
        cache.put("old", 1, self._parent(1))
        cache.put("old", 2, self._parent(2))
        cache.put("new", 1, self._parent(3))
        assert cache.invalidate("old") == 2
        assert cache.get("old", 1) is None
        assert cache.get("new", 1) is not None
        assert cache.stats.evicted_invalidation == 2
        assert cache.invalidate() == 1  # drop everything

    def test_cached_arrays_are_readonly(self):
        cache = ResultCache()
        cache.put("fp", 1, self._parent(1))
        got = cache.get("fp", 1)
        with pytest.raises(ValueError):
            got[0] = 99

    def test_fingerprint_distinguishes_graphs(self, engines):
        _, batched, _ = engines
        fp1 = fingerprint_graph(batched.part)
        assert fp1 == fingerprint_graph(batched.part)
        _, other, _ = build_engines(seed=8)
        assert fp1 != fingerprint_graph(other.part)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0)


# ----------------------------------------------------------------------
# service
# ----------------------------------------------------------------------


def run_async(coro):
    return asyncio.run(coro)


class TestTraversalService:
    def test_single_query_matches_sequential(self, engines):
        sequential, batched, _ = engines
        root = int(np.flatnonzero(batched.part.degrees > 0)[0])

        async def main():
            async with TraversalService(batched, batch_window=0.0) as svc:
                return await svc.submit(root)

        response = run_async(main())
        assert not response.cached
        assert np.array_equal(response.parent, sequential.run(root).parent)
        assert response.total_seconds >= 0
        assert response.batch_lanes == 1

    def test_batch_flush_on_size(self, engines):
        _, batched, _ = engines
        roots = np.flatnonzero(batched.part.degrees > 0)[:8]

        async def main():
            # A generous window: the flush must come from reaching
            # batch_size, not the deadline.
            svc = TraversalService(
                batched, batch_size=8, batch_window=30.0, cache=None
            )
            async with svc:
                out = await asyncio.gather(
                    *(svc.submit(int(r)) for r in roots)
                )
            return svc, out

        svc, out = run_async(main())
        assert svc.stats.batches == 1
        assert all(r.batch_lanes == 8 for r in out)

    def test_batch_flush_on_window_deadline(self, engines):
        _, batched, _ = engines
        root = int(np.flatnonzero(batched.part.degrees > 0)[0])

        async def main():
            svc = TraversalService(
                batched, batch_size=64, batch_window=0.01, cache=None
            )
            async with svc:
                return svc, await svc.submit(root)

        svc, response = run_async(main())
        assert svc.stats.batches == 1
        assert response.batch_lanes == 1
        assert response.batch_wait >= 0.0

    def test_duplicate_roots_share_a_lane(self, engines):
        _, batched, _ = engines
        root = int(np.flatnonzero(batched.part.degrees > 0)[0])

        async def main():
            svc = TraversalService(
                batched, batch_size=4, batch_window=0.05, cache=None
            )
            async with svc:
                return svc, await asyncio.gather(
                    *(svc.submit(root) for _ in range(4))
                )

        svc, out = run_async(main())
        assert svc.stats.batches == 1
        assert svc.stats.batched_lanes == 1  # four requests, one lane
        assert all(np.array_equal(r.parent, out[0].parent) for r in out)

    def test_overloaded_is_typed_and_queue_stays_bounded(self, engines):
        _, batched, _ = engines
        roots = np.flatnonzero(batched.part.degrees > 0)

        async def main():
            svc = TraversalService(
                batched, queue_depth=4, batch_size=4, batch_window=0.001,
                cache=None,
            )
            async with svc:
                # All twelve submit() coroutines reach the admission
                # check before the flush loop can drain: only four fit.
                tasks = [
                    asyncio.ensure_future(svc.submit(int(r)))
                    for r in roots[:12]
                ]
                done = await asyncio.gather(*tasks, return_exceptions=True)
            return svc, done

        svc, done = run_async(main())
        shed = [e for e in done if isinstance(e, Overloaded)]
        served = [r for r in done if not isinstance(r, Exception)]
        assert len(shed) > 0
        assert all(e.limit == 4 for e in shed)
        assert svc.stats.shed == len(shed)
        assert len(served) + len(shed) == 12
        assert not any(
            isinstance(e, Exception) and not isinstance(e, Overloaded)
            for e in done
        )

    def test_cache_hit_path(self, engines):
        _, batched, _ = engines
        root = int(np.flatnonzero(batched.part.degrees > 0)[0])

        async def main():
            async with TraversalService(batched, batch_window=0.0) as svc:
                first = await svc.submit(root)
                second = await svc.submit(root)
            return svc, first, second

        svc, first, second = run_async(main())
        assert not first.cached and second.cached
        assert np.array_equal(first.parent, second.parent)
        assert svc.stats.cache_hits == 1
        assert svc.stats.batches == 1

    def test_crash_replay_transparent_to_client(self, engines):
        sequential, batched, _ = engines
        root = int(np.flatnonzero(batched.part.degrees > 0)[0])
        injector = FaultInjector(
            "crash:rank=1,iter=1", rng=np.random.default_rng(0)
        )

        async def main():
            svc = TraversalService(
                batched, batch_window=0.0, faults=injector, max_replays=2
            )
            async with svc:
                return svc, await svc.submit(root)

        svc, response = run_async(main())
        assert svc.stats.replays == 1
        assert svc.stats.failed == 0
        assert np.array_equal(response.parent, sequential.run(root).parent)

    def test_replay_budget_exhaustion_fails_only_that_batch(self, engines):
        _, batched, _ = engines
        roots = np.flatnonzero(batched.part.degrees > 0)
        # One crash per attempt: first batch exhausts its budget, the
        # follow-up query (a fresh batch) succeeds.
        injector = FaultInjector(
            "crash:rank=1,iter=1;crash:rank=0,iter=1",
            rng=np.random.default_rng(0),
        )

        async def main():
            svc = TraversalService(
                batched, batch_window=0.0, faults=injector, max_replays=1
            )
            async with svc:
                with pytest.raises(TraversalError):
                    await svc.submit(int(roots[0]))
                ok = await svc.submit(int(roots[1]))
            return svc, ok

        svc, ok = run_async(main())
        assert svc.stats.failed == 1
        assert svc.stats.completed == 1
        assert ok.parent is not None

    def test_latency_histograms_populated(self, engines):
        _, batched, _ = engines
        metrics = MetricsRegistry()
        roots = np.flatnonzero(batched.part.degrees > 0)[:4]

        async def main():
            svc = TraversalService(
                batched, batch_size=4, batch_window=0.05, metrics=metrics
            )
            async with svc:
                await asyncio.gather(*(svc.submit(int(r)) for r in roots))

        run_async(main())
        for stage in ("queue", "batch", "traversal", "total"):
            samples = list(
                metrics.samples("serve_latency_seconds")
            )
            labels = [lab for lab, _ in samples]
            assert {"stage": stage} in labels, f"missing stage={stage}"
        total = [
            inst for lab, inst in metrics.samples("serve_latency_seconds")
            if lab == {"stage": "total"}
        ][0]
        assert total.summary()["count"] == 4

    def test_reload_graph_invalidates_old_generation(self, engines):
        _, batched, _ = engines
        _, other, _ = build_engines(seed=8)
        root = int(np.flatnonzero(batched.part.degrees > 0)[0])
        root2 = int(np.flatnonzero(other.part.degrees > 0)[0])

        async def main():
            svc = TraversalService(batched, batch_window=0.0)
            async with svc:
                await svc.submit(root)
                old_fp = svc.graph_fingerprint
                svc.reload_graph(other)
                assert svc.graph_fingerprint != old_fp
                response = await svc.submit(root2)
            return svc, response

        svc, response = run_async(main())
        assert svc._cache.stats.evicted_invalidation >= 1
        assert not response.cached

    def test_submit_validates_inputs(self, engines):
        _, batched, _ = engines

        async def main():
            svc = TraversalService(batched)
            with pytest.raises(RuntimeError):
                await svc.submit(0)  # not started
            async with svc:
                with pytest.raises(ValueError):
                    await svc.submit(-1)
                with pytest.raises(ValueError):
                    await svc.submit(batched.num_vertices)

        run_async(main())

    def test_constructor_validation(self, engines):
        _, batched, _ = engines
        with pytest.raises(ValueError):
            TraversalService(batched, batch_size=0)
        with pytest.raises(ValueError):
            TraversalService(batched, batch_size=65)
        with pytest.raises(ValueError):
            TraversalService(batched, queue_depth=0)
        with pytest.raises(ValueError):
            TraversalService(batched, batch_window=-1.0)


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------


class TestWorkload:
    def test_root_stream_is_seed_deterministic(self, engines):
        _, batched, _ = engines
        degrees = batched.part.degrees
        a = make_workload_roots(degrees, 64, seed=3)
        b = make_workload_roots(degrees, 64, seed=3)
        c = make_workload_roots(degrees, 64, seed=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.all(degrees[a] > 0)

    def test_hot_fraction_produces_repeats(self, engines):
        _, batched, _ = engines
        roots = make_workload_roots(
            batched.part.degrees, 128, seed=1,
            hot_fraction=0.9, hot_set_size=4,
        )
        assert np.unique(roots).size < 64  # heavy repetition

    def test_closed_loop_zero_wrong_parents(self, engines):
        sequential, batched, _ = engines
        roots = make_workload_roots(
            batched.part.degrees, 96, seed=11,
            hot_fraction=0.5, hot_set_size=8,
        )
        expected = {
            int(r): sequential.run(int(r)).parent for r in np.unique(roots)
        }
        report, service = run_serving_session(
            batched, roots, clients=8, expected=expected,
            batch_size=16, batch_window=0.005,
        )
        assert report.served == report.num_queries
        assert report.failed == 0
        assert report.wrong_parents == 0
        assert report.validated == report.num_queries
        assert report.cache_hit_rate > 0  # repeats hit the cache
        # Admission accounting closes: everything admitted completed.
        assert service.stats.admitted == service.stats.completed

    def test_shedding_retries_eventually_serve_everything(self, engines):
        _, batched, _ = engines
        roots = make_workload_roots(batched.part.degrees, 48, seed=2)

        async def main():
            svc = TraversalService(
                batched, queue_depth=2, batch_size=4, batch_window=0.001,
                cache=None,
            )
            async with svc:
                return svc, await run_workload(
                    svc, roots, clients=16, shed_backoff=0.0005
                )

        svc, report = run_async(main())
        assert report.served == report.num_queries
        assert report.failed == 0
        assert svc.stats.shed > 0  # backpressure actually engaged
        assert report.shed_retries == svc.stats.shed

    def test_report_from_serve_metrics(self, engines):
        _, batched, _ = engines
        roots = make_workload_roots(
            batched.part.degrees, 32, seed=5, hot_fraction=0.5
        )
        report, service = run_serving_session(
            batched, roots, clients=8, batch_size=8,
            metrics=MetricsRegistry(),
        )
        run_report = report_from_serve(
            service, report, context=dict(scale=9)
        )
        m = run_report.metrics
        assert m["serve.requests"] == 32
        assert m["serve.completed"] + m["serve.cache_hits"] == 32
        assert m["serve.failed"] == 0
        assert m["serve.sim_seconds_per_query"] > 0
        assert 0 <= m["serve.cache_hit_rate"] <= 1
        assert any(
            key.startswith("serve_latency_seconds")
            for key in run_report.summaries
        )
        assert run_report.context["batch_size"] == 8

    def test_workload_argument_validation(self, engines):
        _, batched, _ = engines
        with pytest.raises(ValueError):
            make_workload_roots(batched.part.degrees, 0, seed=1)
        with pytest.raises(ValueError):
            make_workload_roots(
                batched.part.degrees, 4, seed=1, hot_fraction=1.5
            )
        with pytest.raises(ValueError):
            make_workload_roots(np.zeros(8, dtype=np.int64), 4, seed=1)


# ----------------------------------------------------------------------
# bench core + CLI
# ----------------------------------------------------------------------


class TestServeBench:
    def test_amortization_sweep_monotone_gain(self):
        sequential, batched = build_serving_pair(
            9, 2, 2, seed=7, e_threshold=128, h_threshold=16
        )
        roots = np.flatnonzero(batched.part.degrees > 0)[:16]
        points = amortization_sweep(
            sequential, batched, roots, batch_sizes=(1, 4, 16)
        )
        assert [p.batch_size for p in points] == [1, 4, 16]
        assert points[-1].amortization_factor > points[0].amortization_factor
        assert points[-1].amortization_factor > 2.0
        for p in points:
            assert p.amortized_seconds * p.batch_size == pytest.approx(
                p.batch_seconds
            )


class TestServeCLI:
    ARGS = ["--scale", "9", "--mesh", "2x2", "--seed", "7",
            "--e-threshold", "128", "--h-threshold", "16"]

    def test_serve_command_validates(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        rc = main([
            "serve", *self.ARGS, "--queries", "48", "--clients", "8",
            "--batch-size", "16", "--validate", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wrong parents" in out and "0/48 validated" in out
        assert out_path.exists()

    def test_serve_command_with_faults_replays(self, capsys):
        rc = main([
            "serve", *self.ARGS, "--queries", "24", "--clients", "8",
            "--batch-size", "8", "--faults", "crash:rank=1,iter=1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "batch replays" in out

    def test_bench_serve_command(self, capsys, tmp_path):
        json_path = tmp_path / "bench.json"
        rc = main([
            "bench-serve", *self.ARGS, "--queries", "32",
            "--batch-sizes", "1,8", "--queue-depths", "32",
            "--json", str(json_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "amortized simulated cost per query" in out
        assert json_path.exists()

    def test_graph500_batch_roots_flag(self, capsys):
        rc = main([
            "graph500", *self.ARGS, "--roots", "4", "--batch-roots",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validation: PASSED" in out
