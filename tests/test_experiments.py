"""Tests for the experiment drivers (small configurations)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    build_setup,
    run_15d,
    run_ablation,
    run_partition_comparison,
    run_scaling_sweep,
    run_threshold_grid,
    tuned_thresholds,
)


class TestSetup:
    def test_build_setup_shapes(self):
        s = build_setup(10, 2, 2, seed=3)
        assert s.num_vertices == 1024
        assert s.num_edges == 16 * 1024
        assert s.mesh.num_ranks == 4
        assert s.machine.work_scale > 1

    def test_supernode_rows(self):
        s = build_setup(10, 4, 4)
        assert s.mesh.row_is_intra_supernode(0)

    def test_root_kinds(self):
        hub = build_setup(10, 2, 2, root_kind="hub")
        rnd = build_setup(10, 2, 2, root_kind="random")
        degrees = np.bincount(
            np.concatenate([hub.src, hub.dst]), minlength=hub.num_vertices
        )
        assert degrees[hub.root] == degrees.max()
        assert degrees[rnd.root] > 0

    def test_tuned_thresholds_monotone(self):
        pairs = [tuned_thresholds(s) for s in (12, 14, 16, 18, 20)]
        assert all(e >= h for e, h in pairs)
        hs = [h for _, h in pairs]
        assert hs == sorted(hs)


class TestDrivers:
    def test_run_15d_valid(self):
        from repro.graph500.validate import validate_bfs_result
        from repro.graphs.csr import build_csr, symmetrize_edges

        s = build_setup(11, 2, 2)
        part, res = run_15d(s)
        g = build_csr(*symmetrize_edges(s.src, s.dst), s.num_vertices)
        validate_bfs_result(g, s.root, res.parent)

    def test_partition_comparison_rows(self):
        rows = run_partition_comparison(points=((10, 2, 2),))
        assert len(rows) == 4
        methods = {r["method"] for r in rows}
        assert methods == {"1D", "1D+delegates", "2D", "1.5D (ours)"}
        assert all(r["gteps"] > 0 for r in rows)
        ours = next(r for r in rows if r["method"] == "1.5D (ours)")
        vanilla = next(r for r in rows if r["method"] == "1D")
        assert ours["gteps"] > vanilla["gteps"]

    def test_scaling_sweep(self):
        pts = run_scaling_sweep(points=((10, 2, 2), (12, 4, 4)))
        assert [p.nodes for p in pts] == [4, 16]
        assert all(p.gteps > 0 for p in pts)
        # breakdown access works
        assert sum(pts[0].result.time_by_phase().values()) == pytest.approx(
            pts[0].seconds
        )

    def test_scaling_sweep_multi_root(self):
        pts = run_scaling_sweep(points=((10, 2, 2),), num_roots=3)
        assert pts[0].gteps > 0

    def test_threshold_grid_invalid_cells_zero(self):
        rows = run_threshold_grid(
            scale=10,
            rows=2,
            cols=2,
            e_thresholds=(64, 8),
            h_thresholds=(32, 4),
        )
        invalid = [r for r in rows if r["e"] < r["h"]]
        assert invalid and all(r["gteps"] == 0.0 for r in invalid)
        valid = [r for r in rows if r["e"] >= r["h"]]
        assert all(r["gteps"] > 0 for r in valid)

    def test_ablation_levels(self):
        out = run_ablation(scale=11, rows=2, cols=2)
        assert [label for label, _ in out] == ["Baseline", "+ Sub-Iter.", "+ Segment."]
        # segmenting shrinks EH2EH pull time (9x kernel rate)
        base = out[1][1]["EH2EH pull"]
        seg = out[2][1]["EH2EH pull"]
        assert seg <= base
