"""Tests for incremental partition repair (:mod:`repro.dynamic.repair`)."""

import numpy as np
import pytest

from repro.dynamic.gate import parts_bitwise_equal, run_equivalence_gate
from repro.dynamic.repair import IncrementalGraph
from repro.dynamic.updates import (
    UpdateBatch,
    UpdateSpec,
    apply_updates,
    generate_update_stream,
)
from repro.graph500.rmat import generate_edges
from repro.obs.metrics import MetricsRegistry
from repro.runtime.mesh import ProcessMesh

N = 2**8


def _batch(ins=(), dels=()):
    pairs = list(ins) + list(dels)
    src = np.array([p[0] for p in pairs], dtype=np.int64)
    dst = np.array([p[1] for p in pairs], dtype=np.int64)
    op = np.array([1] * len(ins) + [-1] * len(dels), dtype=np.int8)
    return UpdateBatch(src=src, dst=dst, op=op)


@pytest.fixture()
def inc():
    src, dst = generate_edges(8, seed=5)
    return IncrementalGraph(
        src, dst, N, ProcessMesh(2, 2),
        e_threshold=24, h_threshold=6, compact_every=2,
    )


class TestIncrementalEqualsRebuild:
    def test_every_batch_matches_rebuild(self, inc):
        lo, hi = inc.edges()
        spec = UpdateSpec(kind="mixed", batches=4, size=24)
        for batch in generate_update_stream(lo, hi, N, spec, seed=3):
            inc.apply_batch(batch)
            assert parts_bitwise_equal(inc.graph(), inc.rebuild_reference()) == []

    def test_live_edges_track_apply_updates(self, inc):
        lo, hi = inc.edges()
        spec = UpdateSpec(kind="mixed", batches=3, size=16)
        for batch in generate_update_stream(lo, hi, N, spec, seed=8):
            inc.apply_batch(batch)
            lo, hi = apply_updates(lo, hi, batch, N)
            got_lo, got_hi = inc.edges()
            assert np.array_equal(got_lo, lo)
            assert np.array_equal(got_hi, hi)

    def test_insert_then_delete_same_edge_round_trips(self, inc):
        before = parts_bitwise_equal(inc.graph(), inc.rebuild_reference())
        assert before == []
        ref_lo, ref_hi = inc.edges()
        # Pick a pair that is absent, insert it, then delete it again;
        # the second batch's drop must cancel the overlay's pending add.
        pair = (0, N - 1)
        lo, hi = inc.edges()
        assert not np.any((lo == pair[0]) & (hi == pair[1]))
        inc.apply_batch(_batch(ins=[pair]))
        inc.apply_batch(_batch(dels=[pair]))
        got_lo, got_hi = inc.edges()
        assert np.array_equal(got_lo, ref_lo)
        assert np.array_equal(got_hi, ref_hi)
        assert parts_bitwise_equal(inc.graph(), inc.rebuild_reference()) == []

    def test_noop_updates_change_nothing(self, inc):
        lo, hi = inc.edges()
        existing = (int(lo[0]), int(hi[0]))
        report = inc.apply_batch(
            _batch(ins=[existing], dels=[(0, N - 1)])
        )
        assert report.num_inserted_edges == 0
        assert report.num_deleted_edges == 0
        assert report.delta.is_empty


class TestCompactionCadence:
    def test_compacts_every_n_batches(self, inc):
        lo, hi = inc.edges()
        spec = UpdateSpec(kind="mixed", batches=4, size=8)
        flags = [
            inc.apply_batch(b).compacted
            for b in generate_update_stream(lo, hi, N, spec, seed=4)
        ]
        assert flags == [False, True, False, True]

    def test_graph_forces_pending_compaction(self, inc):
        inc.apply_batch(_batch(ins=[(1, N - 2)]))  # staged, not compacted
        part = inc.graph()
        assert parts_bitwise_equal(part, inc.rebuild_reference()) == []


class TestCostAndMetrics:
    def test_repair_charges_less_than_rebuild(self, inc):
        lo, hi = inc.edges()
        spec = UpdateSpec(kind="mixed", batches=4, size=8)
        stream = generate_update_stream(lo, hi, N, spec, seed=6)
        for batch in stream:
            inc.apply_batch(batch)
        inc.graph()
        assert inc.ledger.total_seconds < (
            inc.rebuild_cost_estimate() * len(stream)
        )

    def test_dynamic_metric_families(self):
        registry = MetricsRegistry()
        src, dst = generate_edges(8, seed=5)
        inc = IncrementalGraph(
            src, dst, N, ProcessMesh(2, 2),
            e_threshold=24, h_threshold=6, compact_every=1,
            metrics=registry,
        )
        lo, hi = inc.edges()
        spec = UpdateSpec(kind="mixed", batches=2, size=24)
        for batch in generate_update_stream(lo, hi, N, spec, seed=3):
            inc.apply_batch(batch)
        assert registry.counter_total("dynamic_batches") == 2
        assert registry.counter_total("dynamic_updates_applied") > 0
        assert registry.counter_total("dynamic_compactions") > 0


class TestEquivalenceGate:
    def test_gate_passes_on_small_matrix(self):
        report = run_equivalence_gate(
            scale=6, families=("rmat",), kinds=("insert", "delete"),
            batches=2, batch_size=16,
        )
        assert report.ok, report.summary()
        assert report.num_batches == 4

    def test_gate_patched_path_on_long_diameter_family(self):
        report = run_equivalence_gate(
            families=("ring",), scale=8, batches=3, batch_size=3,
        )
        assert report.ok, report.summary()
        assert report.mode_counts().get("patched", 0) > 0
