"""Regenerate the vertex-program golden record.

``programs_golden.json`` freezes the *output values* of the weighted
algorithms on a seeded SCALE-10 R-MAT graph: exact distance/parent
arrays for Bellman-Ford and delta-stepping SSSP (several roots, several
deltas), exact rank vectors for PageRank, plus the iteration / bucket /
phase / relaxation counters.  It was captured from the pre-vertex-
program implementations (the bespoke sweep loops that used to live in
``core/algorithms.py`` and ``core/delta_stepping.py``) and guards that
the re-mounted :mod:`repro.core.programs` implementations reproduce
them **bit-for-bit** through the shared scheduler.

Floats round-trip exactly through JSON ``repr`` (including
``Infinity``), so ``==`` on the decoded structures is a bit-level
comparison of every distance and rank.

Run from the repo root::

    PYTHONPATH=src:tests python tests/golden/generate_programs.py

Only regenerate when a PR *intentionally* changes algorithm outputs;
the diff of this file is then the reviewable behaviour change.
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.core import (
    delta_stepping_sssp,
    generate_weights,
    pagerank,
    partition_graph,
    sssp,
)
from repro.graph500.rmat import generate_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh

SCALE = 10
SEED = 7
E_THR = 128
H_THR = 16


def build_system():
    src, dst = generate_edges(SCALE, seed=SEED)
    n = 1 << SCALE
    machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
    mesh = ProcessMesh(2, 2, machine=machine)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=E_THR, h_threshold=H_THR
    )
    hub = int(np.argmax(part.degrees))
    weights = generate_weights(src.size, seed=SEED + 1)
    return src, dst, part, machine, hub, weights


def _sssp_record(res):
    return {
        "root": int(res.root),
        "distance": res.distance.tolist(),
        "parent": res.parent.tolist(),
        "num_iterations": int(res.num_iterations),
        "relaxations": int(res.relaxations),
    }


def _delta_record(res):
    return {
        "root": int(res.root),
        "distance": res.distance.tolist(),
        "parent": res.parent.tolist(),
        "delta": float(res.delta),
        "num_buckets": int(res.num_buckets),
        "num_phases": int(res.num_phases),
        "relaxations": int(res.relaxations),
    }


def _pagerank_record(res):
    return {
        "ranks": res.ranks.tolist(),
        "num_iterations": int(res.num_iterations),
        "converged": bool(res.converged),
    }


def capture():
    src, dst, part, machine, hub, weights = build_system()
    record = {
        "scale": SCALE,
        "seed": SEED,
        "e_threshold": E_THR,
        "h_threshold": H_THR,
        "weights_seed": SEED + 1,
        "hub": hub,
    }
    record["bellman_ford_unit"] = _sssp_record(
        sssp(part, hub, machine=machine)
    )
    for key, root in (("bellman_ford_hub", hub), ("bellman_ford_r3", 3)):
        record[key] = _sssp_record(
            sssp(
                part, root, weights,
                edge_src=src, edge_dst=dst, machine=machine,
            )
        )
    record["delta_default_hub"] = _delta_record(
        delta_stepping_sssp(part, hub, weights, src, dst, machine=machine)
    )
    record["delta_fixed_r3"] = _delta_record(
        delta_stepping_sssp(
            part, 3, weights, src, dst, delta=0.1, machine=machine
        )
    )
    record["pagerank"] = _pagerank_record(
        pagerank(part, tol=1e-10, max_iterations=200, machine=machine)
    )
    record["pagerank_capped"] = _pagerank_record(
        pagerank(part, tol=0.0, max_iterations=5, machine=machine)
    )
    return record


if __name__ == "__main__":
    out = Path(__file__).with_name("programs_golden.json")
    out.write_text(json.dumps(capture(), indent=1, sort_keys=True) + "\n")
    sys.stdout.write(f"wrote {out}\n")
