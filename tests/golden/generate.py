"""Regenerate the engine-equivalence golden record.

The golden record freezes the observable behaviour of every traversal
engine on a seeded SCALE-10 R-MAT graph: per-iteration directions,
scanned-arc counts, frontier sizes, and the ledger's total seconds and
bytes (exact float repr, compared bit-for-bit).  It was captured from
the pre-kernel-refactor engines and guards that the shared
``LevelSyncScheduler``/``ComponentKernel`` layer reproduces them
exactly.

Run from the repo root::

    PYTHONPATH=src:tests python tests/golden/generate.py

Only regenerate when a PR *intentionally* changes modeled behaviour;
the diff of this file is then the reviewable behaviour change.
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.baselines import DelegatedOneDimBFS, OneDimBFS, TwoDimBFS
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh
from repro.runtime.replay import ReplayBFS

SCALE = 10
SEED = 7
E_THR = 128
H_THR = 16


def build_system():
    src, dst = generate_edges(SCALE, seed=SEED)
    n = 1 << SCALE
    machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
    mesh = ProcessMesh(2, 2, machine=machine)
    part = partition_graph(
        src, dst, n, mesh, e_threshold=E_THR, h_threshold=H_THR
    )
    root = int(np.argmax(part.degrees))
    return src, dst, n, mesh, machine, part, root


def run_record(result):
    return {
        "root": result.root,
        "num_iterations": result.num_iterations,
        "num_visited": result.num_visited,
        "total_seconds": result.total_seconds,
        "total_bytes": result.ledger.total_bytes,
        "num_comm_events": len(result.ledger.comm_events),
        "num_compute_events": len(result.ledger.compute_events),
        "iterations": [
            {
                "frontier_size": rec.frontier_size,
                "directions": dict(rec.directions),
                "scanned_arcs": dict(rec.scanned_arcs),
                "messages": dict(rec.messages),
                "newly_activated": dict(rec.newly_activated),
            }
            for rec in result.iterations
        ],
    }


def capture():
    src, dst, n, mesh, machine, part, root = build_system()
    record = {
        "scale": SCALE,
        "seed": SEED,
        "e_threshold": E_THR,
        "h_threshold": H_THR,
        "root": root,
    }

    for name, cfg in (
        ("engine_default", BFSConfig(e_threshold=E_THR, h_threshold=H_THR)),
        (
            "engine_whole_iteration",
            BFSConfig(
                e_threshold=E_THR,
                h_threshold=H_THR,
                sub_iteration_direction=False,
            ),
        ),
        (
            "engine_eager_reduction",
            BFSConfig(
                e_threshold=E_THR, h_threshold=H_THR, delayed_reduction=False
            ),
        ),
    ):
        engine = DistributedBFS(part, machine=machine, config=cfg)
        record[name] = run_record(engine.run(root))

    for name, cls in (
        ("baseline_1d", OneDimBFS),
        ("baseline_1d_delegated", DelegatedOneDimBFS),
        ("baseline_2d", TwoDimBFS),
    ):
        engine = cls(src, dst, n, mesh, machine=machine)
        record[name] = run_record(engine.run(root))

    replay_res = ReplayBFS(part, machine=machine).run(root)
    record["replay"] = {
        "root": replay_res.root,
        "num_iterations": replay_res.num_iterations,
        "messages_sent": replay_res.messages_sent,
        "total_seconds": replay_res.ledger.total_seconds,
        "total_bytes": replay_res.ledger.total_bytes,
        "num_comm_events": len(replay_res.ledger.comm_events),
        "num_visited": int(np.count_nonzero(replay_res.parent >= 0)),
    }
    return record


if __name__ == "__main__":
    out = Path(__file__).with_name("engine_golden.json")
    out.write_text(json.dumps(capture(), indent=1, sort_keys=True) + "\n")
    sys.stdout.write(f"wrote {out}\n")
