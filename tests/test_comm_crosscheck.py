"""Cross-check: the engine's analytic charges equal routed volumes.

The 1.5D engine charges communication analytically (per-rank byte
vectors computed from the executed traversal).  These tests route the
*same* messages through the functional :class:`SimCommunicator` and
assert the ledger events agree — evidence that the analytic accounting
is exact, not an approximation.
"""

import numpy as np
import pytest

from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges
from repro.machine.costmodel import CollectiveKind, CostModel
from repro.machine.network import MachineSpec
from repro.runtime.comm import SimCommunicator
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh


@pytest.fixture(scope="module")
def system():
    scale = 11
    src, dst = generate_edges(scale, seed=1)
    machine = MachineSpec(num_nodes=16, nodes_per_supernode=4)
    mesh = ProcessMesh(4, 4, machine=machine)
    part = partition_graph(src, dst, 1 << scale, mesh, e_threshold=128, h_threshold=16)
    engine = DistributedBFS(
        part, machine=machine, config=BFSConfig(e_threshold=128, h_threshold=16)
    )
    return part, engine, mesh, machine


def route_messages(mesh, machine, sender_rank, dest_rank, payload_bytes=8):
    """Route one message per (sender, dest) pair through SimCommunicator."""
    ledger = TrafficLedger(CostModel(machine))
    comm = SimCommunicator(mesh, ledger)
    p = mesh.num_ranks
    send = {}
    for s, d in zip(sender_rank.tolist(), dest_rank.tolist()):
        send.setdefault(s, {}).setdefault(d, []).append(1)
    send_arrays = {
        s: {d: np.zeros(len(msgs), dtype=np.int64) for d, msgs in by_dest.items()}
        for s, by_dest in send.items()
    }
    comm.alltoallv("crosscheck", np.arange(p), send_arrays)
    return ledger.comm_events[0]


class TestRowMessagingVolumes:
    def test_h2l_push_charge_matches_routing(self, system):
        part, engine, mesh, machine = system
        comp = part.components["H2L"]
        if comp.num_arcs == 0:
            pytest.skip("no H2L arcs at these thresholds")
        # a frontier where every H vertex is active: worst-case messaging
        active = part.class_masks()["H"]
        sel = comp.push_select(active)
        assert sel.num_arcs > 0

        # analytic charge
        ledger = TrafficLedger(CostModel(machine))
        engine._charge_row_alltoallv(
            "H2L", np.bincount(sel.rank, minlength=mesh.num_ranks), ledger
        )
        analytic = ledger.comm_events[0]

        # routed volumes (messages really delivered to owner(dst))
        o_dst = mesh.owner_of(sel.dst, part.num_vertices)
        routed = route_messages(mesh, machine, sel.rank, o_dst)

        # H2L messages are intra-row by construction, so the routed event
        # must have zero inter-supernode bytes, like the analytic one.
        assert np.all(mesh.row_of(sel.rank) == mesh.row_of(o_dst))
        assert routed.max_bytes_inter == 0.0
        assert analytic.max_bytes_inter == 0.0
        # total bytes: analytic counts every message; routing drops
        # rank-local (sender == receiver) messages, as real MPI memcpy
        # would — so analytic >= routed, within the local share.
        assert analytic.total_bytes >= routed.total_bytes
        local = int(np.count_nonzero(sel.rank == o_dst))
        assert analytic.total_bytes - routed.total_bytes == pytest.approx(local * 8)

    def test_max_rank_volume_agrees(self, system):
        part, engine, mesh, machine = system
        comp = part.components["H2L"]
        if comp.num_arcs == 0:
            pytest.skip("no H2L arcs")
        active = part.class_masks()["H"]
        sel = comp.push_select(active)
        o_dst = mesh.owner_of(sel.dst, part.num_vertices)
        remote = sel.rank != o_dst
        routed = route_messages(mesh, machine, sel.rank[remote], o_dst[remote])
        # busiest sender's remote bytes, computed independently
        per_rank = np.zeros(mesh.num_ranks)
        np.add.at(per_rank, sel.rank[remote], 8.0)
        assert routed.max_bytes_intra + routed.max_bytes_inter == pytest.approx(
            per_rank.max()
        )


class TestL2LForwardingVolumes:
    def test_two_stage_conservation(self, system):
        """Stage-1 bytes equal stage-2 bytes (every message is forwarded
        exactly once), and both match the selected arc count."""
        part, engine, mesh, machine = system
        comp = part.components["L2L"]
        if comp.num_arcs == 0:
            pytest.skip("no L2L arcs")
        active = part.class_masks()["L"]
        sel = comp.push_select(active)
        ledger = TrafficLedger(CostModel(machine))
        o_dst = mesh.owner_of(sel.dst, part.num_vertices)
        engine._charge_l2l_alltoallv(sel.rank, o_dst, ledger)
        a2a = [e for e in ledger.comm_events if e.kind is CollectiveKind.ALLTOALLV]
        assert len(a2a) == 2
        assert a2a[0].total_bytes == pytest.approx(sel.num_arcs * 8)
        assert a2a[1].total_bytes == pytest.approx(sel.num_arcs * 8)

    def test_forwarding_rank_is_intersection(self, system):
        part, engine, mesh, machine = system
        comp = part.components["L2L"]
        if comp.num_arcs == 0:
            pytest.skip("no L2L arcs")
        active = part.class_masks()["L"]
        sel = comp.push_select(active)
        o_dst = mesh.owner_of(sel.dst, part.num_vertices)
        fwd = mesh.row_of(o_dst) * mesh.cols + mesh.col_of(sel.rank)
        # stage 1 is intra-column; stage 2 is intra-row
        assert np.all(mesh.col_of(fwd) == mesh.col_of(sel.rank))
        assert np.all(mesh.row_of(fwd) == mesh.row_of(o_dst))


class TestEndToEndVolumeSanity:
    def test_total_bytes_match_message_trace(self, system):
        """The run's recorded per-component message counts are consistent
        with the alltoallv bytes the ledger carries."""
        part, engine, mesh, machine = system
        res = engine.run(int(np.argmax(part.degrees)))
        msg_count = sum(sum(r.messages.values()) for r in res.iterations)
        a2a_bytes = sum(
            e.total_bytes
            for e in res.ledger.comm_events
            if e.kind is CollectiveKind.ALLTOALLV
        )
        # each message is 8 bytes; L2L messages traverse two stages and
        # pull queries add replies, so bytes lie between 1x and 2x.
        assert msg_count * 8 <= a2a_bytes <= 2 * msg_count * 8 + 1e-9
