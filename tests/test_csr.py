"""Unit and property tests for repro.graphs.csr."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import CSRGraph, build_csr, symmetrize_edges

from helpers import random_edge_list


class TestSymmetrize:
    def test_doubles_arcs(self):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 3])
        a_src, a_dst = symmetrize_edges(src, dst)
        assert a_src.size == 6
        pairs = set(zip(a_src.tolist(), a_dst.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_drops_self_loops_by_default(self):
        a_src, a_dst = symmetrize_edges(np.array([3, 1]), np.array([3, 2]))
        assert a_src.size == 2
        assert not np.any(a_src == a_dst)

    def test_keeps_self_loops_on_request(self):
        a_src, a_dst = symmetrize_edges(
            np.array([3]), np.array([3]), drop_self_loops=False
        )
        assert a_src.size == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            symmetrize_edges(np.array([0, 1]), np.array([1]))


class TestBuildCSR:
    def test_simple_triangle(self):
        src, dst = symmetrize_edges(np.array([0, 1, 2]), np.array([1, 2, 0]))
        g = build_csr(src, dst, 3)
        assert g.num_arcs == 6
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_degrees(self):
        src, dst = symmetrize_edges(np.array([0, 0, 0]), np.array([1, 2, 3]))
        g = build_csr(src, dst, 4)
        assert g.degrees.tolist() == [3, 1, 1, 1]

    def test_empty_graph(self):
        g = build_csr(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 5)
        assert g.num_arcs == 0
        assert g.neighbors(2).size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            build_csr(np.array([0]), np.array([7]), 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            build_csr(np.array([-1]), np.array([0]), 3)

    def test_sorted_neighbors(self):
        src = np.array([0, 0, 0, 0])
        dst = np.array([9, 3, 7, 1])
        g = build_csr(src, dst, 10, sort_neighbors=True)
        assert g.neighbors(0).tolist() == [1, 3, 7, 9]

    def test_duplicate_arcs_preserved(self):
        g = build_csr(np.array([0, 0]), np.array([1, 1]), 2)
        assert g.neighbors(0).tolist() == [1, 1]

    def test_arcs_roundtrip(self):
        src, dst = random_edge_list(20, 100, seed=3)
        g = build_csr(src, dst, 20)
        r_src, r_dst = g.arcs()
        orig = sorted(zip(src.tolist(), dst.tolist()))
        back = sorted(zip(r_src.tolist(), r_dst.tolist()))
        assert orig == back

    def test_reverse_transposes(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        g = build_csr(src, dst, 3)
        r = g.reverse()
        assert r.has_arc(1, 0) and r.has_arc(2, 1)
        assert not r.has_arc(0, 1)

    def test_has_arc(self):
        g = build_csr(np.array([0]), np.array([1]), 3)
        assert g.has_arc(0, 1)
        assert not g.has_arc(1, 0)

    def test_subgraph_arcs_filters_both_ends(self):
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 3, 0])
        g = build_csr(src, dst, 4)
        mask_a = np.array([True, True, False, False])
        mask_b = np.array([False, False, True, True])
        s, d = g.subgraph_arcs(mask_a, mask_b)
        assert list(zip(s.tolist(), d.tolist())) == [(1, 2)]

    def test_indptr_validation(self):
        with pytest.raises(ValueError):
            CSRGraph(
                num_vertices=2,
                indptr=np.array([0, 1], dtype=np.int64),
                indices=np.array([1], dtype=np.int64),
            )


@given(
    n=st.integers(min_value=1, max_value=40),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_csr_preserves_multiset_of_arcs(n, data):
    m = data.draw(st.integers(min_value=0, max_value=120))
    src = np.array(
        data.draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)),
        dtype=np.int64,
    )
    dst = np.array(
        data.draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)),
        dtype=np.int64,
    )
    g = build_csr(src, dst, n)
    # property: indptr is monotone and degrees sum to arc count
    assert np.all(np.diff(g.indptr) >= 0)
    assert int(g.degrees.sum()) == m
    r_src, r_dst = g.arcs()
    assert sorted(zip(r_src.tolist(), r_dst.tolist())) == sorted(
        zip(src.tolist(), dst.tolist())
    )
