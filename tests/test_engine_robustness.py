"""Robustness tests: engine reuse, determinism, degenerate inputs,
work-scale invariance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges, rmat_edges, scramble_vertices
from repro.graph500.reference import bfs_levels_from_parents, serial_bfs
from repro.graph500.validate import validate_bfs_result
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh


def build_engine(scale=10, rows=2, cols=2, seed=1, e_thr=128, h_thr=16, machine=None):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    if machine is None:
        machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(src, dst, n, mesh, e_threshold=e_thr, h_threshold=h_thr)
    engine = DistributedBFS(
        part, machine=machine, config=BFSConfig(e_threshold=e_thr, h_threshold=h_thr)
    )
    graph = build_csr(*symmetrize_edges(src, dst), n)
    return engine, graph


class TestEngineReuse:
    def test_repeated_runs_identical(self):
        engine, graph = build_engine()
        root = int(np.argmax(graph.degrees))
        a = engine.run(root)
        b = engine.run(root)
        assert np.array_equal(a.parent, b.parent)
        assert a.total_seconds == pytest.approx(b.total_seconds)

    def test_no_state_leak_between_roots(self):
        engine, graph = build_engine()
        roots = np.flatnonzero(graph.degrees > 0)[:3]
        baselines = {}
        for r in roots:
            baselines[int(r)] = engine.run(int(r)).parent.copy()
        # interleave in a different order: results must not change
        for r in reversed(roots):
            again = engine.run(int(r)).parent
            assert np.array_equal(again, baselines[int(r)])

    def test_partition_reusable_across_engines(self):
        engine, graph = build_engine()
        other = DistributedBFS(
            engine.part,
            machine=engine.machine,
            config=BFSConfig(e_threshold=128, h_threshold=16, segmenting=False),
        )
        root = int(np.argmax(graph.degrees))
        la = bfs_levels_from_parents(graph, root, engine.run(root).parent)
        lb = bfs_levels_from_parents(graph, root, other.run(root).parent)
        assert np.array_equal(la, lb)


class TestWorkScaleInvariance:
    def test_functional_output_independent_of_work_scale(self):
        m1 = MachineSpec(num_nodes=4, nodes_per_supernode=2)
        m2 = MachineSpec(num_nodes=4, nodes_per_supernode=2, work_scale=1e5)
        e1, graph = build_engine(machine=m1)
        e2, _ = build_engine(machine=m2)
        root = int(np.argmax(graph.degrees))
        r1, r2 = e1.run(root), e2.run(root)
        assert np.array_equal(r1.parent, r2.parent)
        # identical traversal trace
        assert [x.frontier_size for x in r1.iterations] == [
            x.frontier_size for x in r2.iterations
        ]

    def test_work_scale_shrinks_fixed_overheads(self):
        m1 = MachineSpec(num_nodes=4, nodes_per_supernode=2)
        m2 = MachineSpec(num_nodes=4, nodes_per_supernode=2, work_scale=1e6)
        e1, graph = build_engine(machine=m1)
        e2, _ = build_engine(machine=m2)
        root = int(np.argmax(graph.degrees))
        assert e2.run(root).total_seconds < e1.run(root).total_seconds

    def test_invalid_work_scale(self):
        with pytest.raises(ValueError, match="work_scale"):
            MachineSpec(work_scale=0.5)

    def test_scaled_for(self):
        m = MachineSpec(num_nodes=64).scaled_for(1e4)
        assert m.work_scale > 1e4
        with pytest.raises(ValueError):
            MachineSpec().scaled_for(0)


class TestDegenerateGraphs:
    def test_empty_graph(self):
        src = np.array([], dtype=np.int64)
        dst = np.array([], dtype=np.int64)
        mesh = ProcessMesh(2, 2)
        part = partition_graph(src, dst, 16, mesh, e_threshold=4, h_threshold=2)
        engine = DistributedBFS(part, config=BFSConfig(e_threshold=4, h_threshold=2))
        res = engine.run(0)
        assert res.num_visited == 1
        assert res.num_iterations <= 1

    def test_single_edge(self):
        src = np.array([0], dtype=np.int64)
        dst = np.array([1], dtype=np.int64)
        mesh = ProcessMesh(2, 2)
        part = partition_graph(src, dst, 8, mesh, e_threshold=4, h_threshold=2)
        engine = DistributedBFS(part, config=BFSConfig(e_threshold=4, h_threshold=2))
        res = engine.run(0)
        assert res.parent[1] == 0
        assert res.num_visited == 2

    def test_self_loops_only(self):
        src = np.array([3, 3, 3], dtype=np.int64)
        dst = np.array([3, 3, 3], dtype=np.int64)
        mesh = ProcessMesh(1, 2)
        part = partition_graph(src, dst, 8, mesh, e_threshold=4, h_threshold=2)
        engine = DistributedBFS(part, config=BFSConfig(e_threshold=4, h_threshold=2))
        res = engine.run(3)
        assert res.num_visited == 1

    def test_all_light_graph(self):
        """Thresholds above every degree: pure-L (1D-like) operation."""
        src, dst = generate_edges(9, seed=1)
        n = 1 << 9
        mesh = ProcessMesh(2, 2)
        part = partition_graph(
            src, dst, n, mesh, e_threshold=10**6, h_threshold=10**6
        )
        assert part.num_eh == 0
        engine = DistributedBFS(
            part, config=BFSConfig(e_threshold=10**6, h_threshold=10**6)
        )
        graph = build_csr(*symmetrize_edges(src, dst), n)
        root = int(np.argmax(graph.degrees))
        res = engine.run(root)
        validate_bfs_result(graph, root, res.parent)

    def test_mesh_bigger_than_vertices(self):
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([1, 2], dtype=np.int64)
        mesh = ProcessMesh(3, 3)
        part = partition_graph(src, dst, 3, mesh, e_threshold=4, h_threshold=2)
        engine = DistributedBFS(part, config=BFSConfig(e_threshold=4, h_threshold=2))
        res = engine.run(0)
        assert res.num_visited == 3

    def test_complete_graph(self):
        n = 12
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        src = np.array([p[0] for p in pairs], dtype=np.int64)
        dst = np.array([p[1] for p in pairs], dtype=np.int64)
        mesh = ProcessMesh(2, 2)
        part = partition_graph(src, dst, n, mesh, e_threshold=16, h_threshold=8)
        engine = DistributedBFS(part, config=BFSConfig(e_threshold=16, h_threshold=8))
        res = engine.run(5)
        graph = build_csr(*symmetrize_edges(src, dst), n)
        level = validate_bfs_result(graph, 5, res.parent)
        assert np.all(level[np.arange(n) != 5] == 1)


@given(
    seed=st.integers(0, 500),
    a=st.floats(0.3, 0.7),
    b=st.floats(0.05, 0.25),
)
@settings(max_examples=15, deadline=None)
def test_property_engine_correct_across_rmat_families(seed, a, b):
    """The engine stays exact for any R-MAT skew family, not just the
    Graph500 parameters."""
    c = b
    if a + 2 * b >= 0.999:
        return
    scale = 8
    n = 1 << scale
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges(scale, 8 * n, a=a, b=b, c=c, rng=rng)
    src, dst = scramble_vertices(src, dst, n, rng=rng)
    mesh = ProcessMesh(2, 2)
    part = partition_graph(src, dst, n, mesh, e_threshold=64, h_threshold=8)
    engine = DistributedBFS(part, config=BFSConfig(e_threshold=64, h_threshold=8))
    graph = build_csr(*symmetrize_edges(src, dst), n)
    root = int(np.argmax(graph.degrees))
    res = engine.run(root)
    validate_bfs_result(graph, root, res.parent)
    assert np.array_equal(
        bfs_levels_from_parents(graph, root, res.parent),
        bfs_levels_from_parents(graph, root, serial_bfs(graph, root)),
    )
