"""Rebuild determinism of :func:`repro.core.partition.partition_graph`.

Two guarantees back the dynamic subsystem's equivalence gate:

1. **Replay determinism** (both placements): partitioning the same edge
   list twice produces bit-identical placement and packed arrays.
2. **Order independence** (``placement="stable"`` only): permuting the
   edge list leaves every array bit-identical, because stable placement
   hashes arc *content* and the packed orders are value sorts.  The
   default cyclic placement deals arcs by position, so it cannot make
   this promise — which is exactly why the incremental path requires
   stable mode.
"""

import numpy as np
import pytest

from repro.core.partition import PLACEMENT_MODES, partition_graph
from repro.dynamic.gate import parts_bitwise_equal
from repro.dynamic.updates import canonical_edges
from repro.graph500.rmat import generate_edges
from repro.runtime.mesh import ProcessMesh

N = 2**9


@pytest.fixture(scope="module")
def edges():
    src, dst = generate_edges(9, seed=3)
    return canonical_edges(src, dst, N)


def _build(lo, hi, placement):
    return partition_graph(
        lo, hi, N, ProcessMesh(2, 2),
        e_threshold=32, h_threshold=8, placement=placement,
    )


@pytest.mark.parametrize("placement", PLACEMENT_MODES)
def test_same_edge_list_twice_is_bit_identical(edges, placement):
    lo, hi = edges
    a = _build(lo, hi, placement)
    b = _build(lo.copy(), hi.copy(), placement)
    assert parts_bitwise_equal(a, b) == []


def test_stable_placement_ignores_edge_order(edges):
    lo, hi = edges
    a = _build(lo, hi, "stable")
    perm = np.random.default_rng(11).permutation(lo.size)
    b = _build(lo[perm], hi[perm], "stable")
    assert parts_bitwise_equal(a, b) == []


def test_stable_placement_ignores_endpoint_orientation(edges):
    lo, hi = edges
    a = _build(lo, hi, "stable")
    # Flip every edge: {u, v} content is unchanged.
    b = _build(hi, lo, "stable")
    assert parts_bitwise_equal(a, b) == []


def test_placements_agree_on_vertex_metadata(edges):
    """Class assignment depends only on degrees, never on placement."""
    lo, hi = edges
    a = _build(lo, hi, "cyclic")
    b = _build(lo, hi, "stable")
    assert np.array_equal(a.degrees, b.degrees)
    assert np.array_equal(a.vclass, b.vclass)
    assert a.total_arcs == b.total_arcs


def test_unknown_placement_rejected(edges):
    lo, hi = edges
    with pytest.raises(ValueError, match="placement"):
        _build(lo, hi, "alphabetical")
