"""Tests for delta-stepping SSSP."""

import numpy as np
import pytest

from repro.core import delta_stepping_sssp, generate_weights, sssp, suggest_delta
from repro.core.partition import partition_graph
from repro.graph500.rmat import generate_edges
from repro.runtime.mesh import ProcessMesh

from helpers import random_edge_list


def make_part(scale=9, rows=2, cols=2, seed=1):
    src, dst = generate_edges(scale, seed=seed)
    mesh = ProcessMesh(rows, cols)
    part = partition_graph(src, dst, 1 << scale, mesh, e_threshold=64, h_threshold=8)
    return part, src, dst


def dijkstra_reference(n, src, dst, weights, root):
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u, v, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
        if u == v:
            continue
        if g.has_edge(u, v):
            g[u][v]["weight"] = min(g[u][v]["weight"], w)
        else:
            g.add_edge(u, v, weight=w)
    out = np.full(n, np.inf)
    for v, d in nx.single_source_dijkstra_path_length(g, root).items():
        out[v] = d
    return out


class TestCorrectness:
    def test_matches_dijkstra(self):
        part, src, dst = make_part()
        w = generate_weights(src.size, seed=4)
        root = 0
        res = delta_stepping_sssp(part, root, w, src, dst)
        expect = dijkstra_reference(part.num_vertices, src, dst, w, root)
        finite = np.isfinite(expect)
        assert np.array_equal(np.isfinite(res.distance), finite)
        assert np.allclose(res.distance[finite], expect[finite], atol=1e-9)

    def test_matches_bellman_ford_engine(self):
        part, src, dst = make_part(seed=2)
        w = generate_weights(src.size, seed=5)
        root = 7
        ds = delta_stepping_sssp(part, root, w, src, dst)
        bf = sssp(part, root, w, edge_src=src, edge_dst=dst)
        finite = np.isfinite(bf.distance)
        assert np.allclose(ds.distance[finite], bf.distance[finite], atol=1e-9)

    def test_various_deltas_agree(self):
        part, src, dst = make_part()
        w = generate_weights(src.size, seed=6)
        results = [
            delta_stepping_sssp(part, 3, w, src, dst, delta=d)
            for d in (0.01, 0.1, 1.0)
        ]
        for r in results[1:]:
            finite = np.isfinite(results[0].distance)
            assert np.allclose(
                r.distance[finite], results[0].distance[finite], atol=1e-9
            )

    def test_parents_form_shortest_path_tree(self):
        part, src, dst = make_part(seed=3)
        w = generate_weights(src.size, seed=7)
        res = delta_stepping_sssp(part, 1, w, src, dst)
        reached = np.isfinite(res.distance)
        v = np.flatnonzero(reached & (np.arange(part.num_vertices) != 1))
        assert np.all(res.parent[v] >= 0)
        assert np.all(res.distance[res.parent[v]] <= res.distance[v] + 1e-12)

    def test_unit_weights_equal_bfs_levels(self):
        from repro.graph500.reference import bfs_levels_from_parents, serial_bfs
        from repro.graphs.csr import build_csr, symmetrize_edges

        part, src, dst = make_part()
        w = np.ones(src.size)
        root = int(np.argmax(part.degrees))
        res = delta_stepping_sssp(part, root, w, src, dst, delta=0.5)
        g = build_csr(*symmetrize_edges(src, dst), part.num_vertices)
        levels = bfs_levels_from_parents(g, root, serial_bfs(g, root))
        reach = levels >= 0
        assert np.allclose(res.distance[reach], levels[reach])

    def test_random_graphs(self):
        for seed in range(3):
            n = 64
            src, dst = random_edge_list(n, 300, seed=seed)
            mesh = ProcessMesh(2, 2)
            part = partition_graph(src, dst, n, mesh, e_threshold=16, h_threshold=4)
            w = generate_weights(src.size, seed=seed + 10)
            res = delta_stepping_sssp(part, seed % n, w, src, dst)
            expect = dijkstra_reference(n, src, dst, w, seed % n)
            finite = np.isfinite(expect)
            assert np.allclose(res.distance[finite], expect[finite], atol=1e-9)


class TestBehaviour:
    def test_bucket_count_scales_inverse_delta(self):
        part, src, dst = make_part()
        w = generate_weights(src.size, seed=8)
        small = delta_stepping_sssp(part, 0, w, src, dst, delta=0.02)
        large = delta_stepping_sssp(part, 0, w, src, dst, delta=0.5)
        assert small.num_buckets > large.num_buckets

    def test_suggest_delta_positive(self):
        part, src, dst = make_part()
        w = generate_weights(src.size)
        d = suggest_delta(w, part.degrees)
        assert d > 0

    def test_ledger_charged(self):
        part, src, dst = make_part()
        w = generate_weights(src.size, seed=9)
        res = delta_stepping_sssp(part, 0, w, src, dst)
        assert res.total_seconds > 0
        assert res.relaxations > 0
        assert res.num_phases >= res.num_buckets

    def test_validation(self):
        part, src, dst = make_part()
        w = generate_weights(src.size)
        with pytest.raises(ValueError, match="root"):
            delta_stepping_sssp(part, -1, w, src, dst)
        with pytest.raises(ValueError, match="nonnegative"):
            delta_stepping_sssp(part, 0, -w, src, dst)
        with pytest.raises(ValueError, match="delta"):
            delta_stepping_sssp(part, 0, w, src, dst, delta=0.0)
        with pytest.raises(ValueError, match="align"):
            delta_stepping_sssp(part, 0, w[:-1], src, dst)
