"""Tests for the functional segmented-pull kernel simulator."""

import numpy as np
import pytest

from repro.machine.chip import SW26010_PRO, ChipSpec
from repro.machine.costmodel import NodeKernelRates
from repro.machine.pullsim import (
    simulate_segmented_pull,
    simulate_unsegmented_pull,
)


def make_workload(n_src=4096, n_dst=4096, m=50_000, active_frac=0.3, seed=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_src, size=m)
    dst = rng.integers(0, n_dst, size=m)
    candidate = rng.random(n_dst) < 0.5
    active = rng.random(n_src) < active_frac
    return src, dst, candidate, active


class TestFunctional:
    def test_both_kernels_find_same_hits(self):
        src, dst, cand, act = make_workload()
        seg = simulate_segmented_pull(src, dst, 0, 4096, cand, act)
        unseg = simulate_unsegmented_pull(src, dst, cand, act)
        assert np.array_equal(np.sort(seg.hit_dst), np.sort(unseg.hit_dst))
        assert seg.scanned_arcs == unseg.scanned_arcs

    def test_hits_are_correct(self):
        src, dst, cand, act = make_workload(m=5000)
        seg = simulate_segmented_pull(src, dst, 0, 4096, cand, act)
        # every hit: dst was candidate, src active, arc exists
        arcs = set(zip(src.tolist(), dst.tolist()))
        for d, s in zip(seg.hit_dst.tolist(), seg.hit_src.tolist()):
            assert cand[d] and act[s]
            assert (s, d) in arcs
        # completeness: every candidate dst with an active in-neighbor hit
        expect = {
            d for s, d in arcs if cand[d] and act[s]
        }
        assert set(seg.hit_dst.tolist()) == expect

    def test_early_exit_reduces_scans(self):
        # all sources active: exactly one scan per candidate destination
        # group (first arc hits).
        src, dst, cand, _ = make_workload(m=20_000)
        act = np.ones(4096, dtype=bool)
        seg = simulate_segmented_pull(src, dst, 0, 4096, cand, act)
        n_groups = np.unique(dst[cand[dst]]).size
        assert seg.scanned_arcs == n_groups

    def test_no_active_scans_everything(self):
        src, dst, cand, _ = make_workload(m=20_000)
        act = np.zeros(4096, dtype=bool)
        seg = simulate_segmented_pull(src, dst, 0, 4096, cand, act)
        assert seg.scanned_arcs == int(np.count_nonzero(cand[dst]))
        assert seg.hit_dst.size == 0

    def test_empty_arcs(self):
        e = np.array([], dtype=np.int64)
        seg = simulate_segmented_pull(e, e, 0, 100, np.ones(100, bool), np.ones(100, bool))
        assert seg.scanned_arcs == 0

    def test_out_of_range_dst_rejected(self):
        with pytest.raises(ValueError, match="destination range"):
            simulate_segmented_pull(
                np.array([0]), np.array([500]), 0, 100,
                np.ones(1000, bool), np.ones(1000, bool),
            )


class TestEventCounts:
    def test_rma_fraction_near_63_over_64(self):
        src, dst, cand, act = make_workload(m=100_000, active_frac=0.05)
        seg = simulate_segmented_pull(src, dst, 0, 4096, cand, act)
        total = seg.rma_lookups + seg.local_lookups
        assert total == seg.scanned_arcs
        assert seg.rma_lookups / total == pytest.approx(63 / 64, abs=0.02)

    def test_unsegmented_counts_gld(self):
        src, dst, cand, act = make_workload(m=30_000)
        unseg = simulate_unsegmented_pull(src, dst, cand, act)
        assert unseg.gld_lookups == unseg.scanned_arcs
        assert unseg.rma_lookups == 0


class TestModeledSpeedup:
    def test_event_driven_9x(self):
        """The 9x of §6.4 emerges from counted events."""
        src, dst, cand, act = make_workload(m=200_000, active_frac=0.02)
        seg = simulate_segmented_pull(src, dst, 0, 4096, cand, act)
        unseg = simulate_unsegmented_pull(src, dst, cand, act)
        speedup = unseg.modeled_seconds / seg.modeled_seconds
        assert speedup == pytest.approx(9.0, rel=0.2)

    def test_matches_closed_form_rates(self):
        rates = NodeKernelRates()
        src, dst, cand, act = make_workload(m=200_000, active_frac=0.02)
        seg = simulate_segmented_pull(src, dst, 0, 4096, cand, act)
        assert seg.arcs_per_second == pytest.approx(
            rates.pull_rate_segmented(), rel=0.1
        )
        unseg = simulate_unsegmented_pull(src, dst, cand, act)
        assert unseg.arcs_per_second == pytest.approx(
            rates.pull_rate_unsegmented(), rel=0.1
        )

    def test_chip_parameter_sensitivity(self):
        """Slower RMA shrinks the segmenting win, as expected."""
        src, dst, cand, act = make_workload(m=100_000, active_frac=0.02)
        slow_rma = ChipSpec(rma_pipelined_get_ns=150.0)
        seg_fast = simulate_segmented_pull(src, dst, 0, 4096, cand, act)
        seg_slow = simulate_segmented_pull(
            src, dst, 0, 4096, cand, act, chip=slow_rma
        )
        assert seg_slow.modeled_seconds > seg_fast.modeled_seconds
