"""The multi-tenant serve CLI surface, driven as real subprocesses.

Malformed ``--tenants`` / ``--replicas`` / ``--quota`` values must exit
2 with argparse usage on stderr (the contract CI scripts and operators
rely on), and the pinned ``--smoke`` gate must pass end to end —
including the replica-kill drill — in one short run.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        cwd=REPO,
    )


class TestMalformedFlagsExitTwo:
    @pytest.mark.parametrize(
        "flags",
        [
            ("--tenants", "0"),
            ("--tenants", "-3"),
            ("--tenants", "a:platinum"),
            ("--tenants", "a:gold,a:gold"),
            ("--tenants", ","),
            ("--tenants", "2", "--replicas", "0"),
            ("--tenants", "2", "--replicas", "two"),
            ("--tenants", "2", "--quota", "0"),
            ("--tenants", "2", "--quota", "-5"),
        ],
    )
    def test_malformed_value_exits_2_with_usage(self, flags):
        proc = run_cli("serve", *flags)
        assert proc.returncode == 2
        assert "usage" in proc.stderr.lower()
        # argparse names the offending option in its error line.
        assert flags[-2].lstrip("-").split()[0] in proc.stderr.replace(
            "--", ""
        ) or flags[-2] in proc.stderr


class TestClusterSmoke:
    def test_smoke_gate_passes(self):
        proc = run_cli(
            "serve", "--smoke", "--tenants", "3", "--replicas", "2",
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "cluster gate: PASS" in proc.stdout
        # The drill section confirms the replica kill actually fired.
        assert "replicas live: 1/2" in proc.stdout

    def test_named_tenants_json_out(self, tmp_path):
        out = tmp_path / "cluster.json"
        proc = run_cli(
            "serve", "--tenants", "web:gold,batch:bronze",
            "--scale", "8", "--queries", "40", "--duration", "0.2",
            "--seed", "5", "--validate", "--out", str(out),
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(out.read_text())
        assert set(doc["tenants"]) == {"web", "batch"}
        assert doc["report"]["accounted"] == 40
        assert doc["report"]["wrong_parents"] == 0
