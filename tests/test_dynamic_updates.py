"""Tests for the batched edge-update log (:mod:`repro.dynamic.updates`)."""

import numpy as np
import pytest

from repro.dynamic.updates import (
    UpdateBatch,
    UpdateSpec,
    UpdateSpecError,
    apply_updates,
    canonical_edges,
    generate_update_stream,
    parse_update_spec,
    weights_for_edges,
)


class TestSpecGrammar:
    def test_bare_kind(self):
        spec = parse_update_spec("insert")
        assert spec == UpdateSpec(kind="insert")

    def test_full_spec(self):
        spec = parse_update_spec("mixed:batches=8,size=32,frac=0.25")
        assert spec == UpdateSpec(kind="mixed", batches=8, size=32, frac=0.25)

    def test_whitespace_tolerated(self):
        spec = parse_update_spec("  delete : batches = 2 , size = 128 ")
        assert spec == UpdateSpec(kind="delete", batches=2, size=128)

    @pytest.mark.parametrize("bad", [
        "",
        "upsert",
        "insert:batches",
        "insert:batches=",
        "insert:=4",
        "insert:batches=four",
        "insert:frac=lots",
        "insert:rate=0.5",
        "insert:batches=0",
        "insert:size=-1",
        "mixed:frac=1.5",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(UpdateSpecError):
            parse_update_spec(bad)

    def test_spec_error_is_value_error(self):
        # The CLI maps it to exit 2 via argparse; callers can still
        # catch plain ValueError.
        assert issubclass(UpdateSpecError, ValueError)


class TestCanonicalEdges:
    def test_canonicalization(self):
        src = np.array([3, 1, 1, 2, 5])
        dst = np.array([0, 2, 2, 1, 5])  # dup {1,2} both ways, loop {5,5}
        lo, hi = canonical_edges(src, dst, 8)
        assert lo.tolist() == [0, 1]
        assert hi.tolist() == [3, 2]

    def test_apply_is_idempotent(self):
        lo = np.array([0, 2])
        hi = np.array([1, 3])
        batch = UpdateBatch(
            src=np.array([0, 4, 6]),
            dst=np.array([1, 5, 7]),  # {0,1} already present
            op=np.array([1, 1, -1], dtype=np.int8),  # delete {6,7}: absent
        )
        new_lo, new_hi = apply_updates(lo, hi, batch, 8)
        assert new_lo.tolist() == [0, 2, 4]
        assert new_hi.tolist() == [1, 3, 5]


class TestStreamGeneration:
    @pytest.fixture(scope="class")
    def base(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, size=200)
        dst = rng.integers(0, 64, size=200)
        return canonical_edges(src, dst, 64)

    def test_deterministic(self, base):
        lo, hi = base
        spec = UpdateSpec(kind="mixed", batches=3, size=16)
        a = generate_update_stream(lo, hi, 64, spec, seed=5)
        b = generate_update_stream(lo, hi, 64, spec, seed=5)
        assert len(a) == len(b) == 3
        for x, y in zip(a, b):
            assert np.array_equal(x.src, y.src)
            assert np.array_equal(x.dst, y.dst)
            assert np.array_equal(x.op, y.op)

    def test_seed_changes_stream(self, base):
        lo, hi = base
        spec = UpdateSpec(kind="insert", batches=1, size=16)
        a = generate_update_stream(lo, hi, 64, spec, seed=5)[0]
        b = generate_update_stream(lo, hi, 64, spec, seed=6)[0]
        assert not np.array_equal(a.src, b.src)

    def test_deletes_target_live_inserts_target_absent(self, base):
        lo, hi = base
        spec = UpdateSpec(kind="mixed", batches=4, size=12)
        live_lo, live_hi = lo, hi
        for batch in generate_update_stream(lo, hi, 64, spec, seed=9):
            live = set(zip(live_lo.tolist(), live_hi.tolist()))
            for s, d, op in zip(
                batch.src.tolist(), batch.dst.tolist(), batch.op.tolist()
            ):
                assert s < d
                if op > 0:
                    assert (s, d) not in live
                else:
                    assert (s, d) in live
            live_lo, live_hi = apply_updates(live_lo, live_hi, batch, 64)

    def test_mixed_frac_splits_batch(self, base):
        lo, hi = base
        spec = UpdateSpec(kind="mixed", batches=1, size=16, frac=0.25)
        batch = generate_update_stream(lo, hi, 64, spec, seed=2)[0]
        assert batch.num_inserts == 4
        assert batch.num_deletes == 12

    def test_delete_stream_drains_gracefully(self):
        # More deletions than edges: batches shrink, never go negative.
        lo = np.array([0, 1, 2])
        hi = np.array([1, 2, 3])
        spec = UpdateSpec(kind="delete", batches=3, size=2)
        stream = generate_update_stream(lo, hi, 8, spec, seed=1)
        assert [b.size for b in stream] == [2, 1, 0]


class TestWeights:
    def test_content_hashed_not_positional(self):
        src = np.array([4, 0, 9])
        dst = np.array([7, 3, 2])
        w = weights_for_edges(src, dst, 16)
        # Same edges, different order and orientation: same weights.
        w_perm = weights_for_edges(dst[::-1], src[::-1], 16)
        assert np.array_equal(np.sort(w), np.sort(w_perm))
        assert np.all((w >= 0.0) & (w < 1.0))

    def test_seed_changes_weights(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        assert not np.array_equal(
            weights_for_edges(src, dst, 4, seed=1),
            weights_for_edges(src, dst, 4, seed=2),
        )
