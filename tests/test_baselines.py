"""Tests for the baseline BFS engines (1D, 1D+delegates, 2D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DelegatedOneDimBFS, OneDimBFS, TwoDimBFS
from repro.graph500.rmat import generate_edges
from repro.graph500.reference import bfs_levels_from_parents, serial_bfs
from repro.graph500.validate import validate_bfs_result
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.machine.costmodel import CollectiveKind
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh

from helpers import random_edge_list

ALL_ENGINES = [OneDimBFS, DelegatedOneDimBFS, TwoDimBFS]


def setup(scale=11, rows=2, cols=2, seed=1):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    graph = build_csr(*symmetrize_edges(src, dst), n)
    return src, dst, n, mesh, machine, graph


class TestCorrectness:
    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_levels_match_reference(self, engine_cls):
        src, dst, n, mesh, machine, graph = setup()
        engine = engine_cls(src, dst, n, mesh, machine=machine)
        root = int(np.argmax(graph.degrees))
        res = engine.run(root)
        validate_bfs_result(graph, root, res.parent)
        ref = bfs_levels_from_parents(graph, root, serial_bfs(graph, root))
        got = bfs_levels_from_parents(graph, root, res.parent)
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_multiple_roots(self, engine_cls):
        src, dst, n, mesh, machine, graph = setup(scale=10)
        engine = engine_cls(src, dst, n, mesh, machine=machine)
        rng = np.random.default_rng(0)
        for root in rng.choice(np.flatnonzero(graph.degrees > 0), 3, replace=False):
            res = engine.run(int(root))
            validate_bfs_result(graph, int(root), res.parent)

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_root_out_of_range(self, engine_cls):
        src, dst, n, mesh, machine, _ = setup(scale=8)
        engine = engine_cls(src, dst, n, mesh, machine=machine)
        with pytest.raises(ValueError, match="root"):
            engine.run(n)

    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_single_rank(self, engine_cls):
        src, dst, n, _, _, graph = setup(scale=9)
        mesh = ProcessMesh(1, 1)
        engine = engine_cls(src, dst, n, mesh)
        res = engine.run(int(np.argmax(graph.degrees)))
        validate_bfs_result(graph, res.root, res.parent)


class TestSchemeProperties:
    def test_vanilla_1d_arcs_at_source_owner(self):
        src, dst, n, mesh, machine, _ = setup()
        engine = OneDimBFS(src, dst, n, mesh, machine=machine)
        s, _, r = engine.components["ALL"].arcs()
        assert np.all(r == mesh.owner_of(s, n))

    def test_delegated_component_split_covers_arcs(self):
        src, dst, n, mesh, machine, _ = setup()
        engine = DelegatedOneDimBFS(src, dst, n, mesh, machine=machine)
        total = sum(c.num_arcs for c in engine.components.values())
        a_src, _ = symmetrize_edges(src, dst)
        assert total == a_src.size
        assert engine.num_heavy > 0

    def test_delegated_heavy_threshold_override(self):
        src, dst, n, mesh, machine, _ = setup()
        engine = DelegatedOneDimBFS(
            src, dst, n, mesh, machine=machine, heavy_threshold=50
        )
        assert engine.heavy_threshold == 50
        assert np.all(engine.degrees[engine.heavy_mask] >= 50)

    def test_2d_placement(self):
        src, dst, n, mesh, machine, _ = setup()
        engine = TwoDimBFS(src, dst, n, mesh, machine=machine)
        s, d, r = engine.components["2D"].arcs()
        o_s = mesh.owner_of(s, n)
        o_d = mesh.owner_of(d, n)
        assert np.all(mesh.col_of(r) == mesh.col_of(o_s))
        assert np.all(mesh.row_of(r) == mesh.row_of(o_d))

    def test_2d_has_no_alltoallv(self):
        """2D needs no per-edge messages (paper §2.1.1)."""
        src, dst, n, mesh, machine, graph = setup()
        engine = TwoDimBFS(src, dst, n, mesh, machine=machine)
        res = engine.run(int(np.argmax(graph.degrees)))
        kinds = set(res.ledger.comm_seconds_by_kind())
        assert CollectiveKind.ALLTOALLV not in kinds

    def test_vanilla_1d_messages_per_frontier_arc(self):
        src, dst, n, mesh, machine, graph = setup()
        engine = OneDimBFS(src, dst, n, mesh, machine=machine)
        res = engine.run(int(np.argmax(graph.degrees)))
        assert CollectiveKind.ALLTOALLV in res.ledger.comm_seconds_by_kind()

    def test_delegates_message_less_than_vanilla(self):
        """Heavy delegation removes the heavy-endpoint messages."""
        src, dst, n, mesh, machine, graph = setup(scale=12)
        root = int(np.argmax(graph.degrees))
        vanilla = OneDimBFS(src, dst, n, mesh, machine=machine).run(root)
        delegated = DelegatedOneDimBFS(src, dst, n, mesh, machine=machine).run(root)
        bytes_v = vanilla.ledger.bytes_by_kind().get(CollectiveKind.ALLTOALLV, 0.0)
        bytes_d = delegated.ledger.bytes_by_kind().get(CollectiveKind.ALLTOALLV, 0.0)
        assert bytes_d < bytes_v

    def test_delegated_faster_than_vanilla(self):
        src, dst, n, mesh, machine, graph = setup(scale=12)
        root = int(np.argmax(graph.degrees))
        machine = machine.scaled_for(src.size / mesh.num_ranks)
        t_v = OneDimBFS(src, dst, n, mesh, machine=machine).run(root).total_seconds
        t_d = DelegatedOneDimBFS(src, dst, n, mesh, machine=machine).run(
            root
        ).total_seconds
        assert t_d < t_v

    def test_vanilla_1d_load_imbalance_visible(self):
        """Heavy vertices concentrate arcs on single ranks in 1D."""
        src, dst, n, mesh, machine, _ = setup(scale=12, rows=4, cols=4)
        engine = OneDimBFS(src, dst, n, mesh, machine=machine)
        loads = engine.components["ALL"].arcs_per_rank
        assert loads.max() > 1.5 * loads.mean()


@given(seed=st.integers(0, 200), n_exp=st.integers(4, 7))
@settings(max_examples=20, deadline=None)
def test_property_all_engines_agree(seed, n_exp):
    n = 1 << n_exp
    src, dst = random_edge_list(n, 3 * n, seed=seed)
    mesh = ProcessMesh(2, 2)
    graph = build_csr(*symmetrize_edges(src, dst), n)
    root = seed % n
    ref = bfs_levels_from_parents(graph, root, serial_bfs(graph, root))
    for cls in ALL_ENGINES:
        engine = cls(src, dst, n, mesh)
        res = engine.run(root)
        got = bfs_levels_from_parents(graph, root, res.parent)
        assert np.array_equal(ref, got), cls.scheme
