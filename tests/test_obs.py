"""Tests for the repro.obs tracing layer.

Contract: spans nest (both clocks monotone, parents contain children),
counters attach exactly once, the NullTracer is a perfect no-op leaving
engine results bit-identical, and the Chrome trace_event export is
schema-valid JSON whose events mirror the span tree.
"""

import csv
import json

import numpy as np
import pytest

from repro.analysis.timeline import (
    category_seconds_from_trace,
    iteration_component_seconds_from_trace,
    phase_seconds_from_trace,
    render_timeline,
)
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import generate_edges
from repro.machine.network import MachineSpec
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    render_flame,
    span_aggregates,
    to_chrome_trace,
    write_chrome_trace,
    write_span_csv,
)
from repro.runtime.mesh import ProcessMesh


def build_traced_run(scale=11, rows=2, cols=2, e_thr=128, h_thr=16, seed=1):
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(src, dst, n, mesh, e_threshold=e_thr, h_threshold=h_thr)
    config = BFSConfig(e_threshold=e_thr, h_threshold=h_thr)
    tracer = Tracer()
    engine = DistributedBFS(part, machine=machine, config=config, tracer=tracer)
    root = int(np.argmax(part.degrees))
    return engine.run(root), tracer, part, machine, config, root


class TestSpanNesting:
    def test_parent_child_structure(self):
        t = Tracer()
        with t.span("outer", category="a") as outer:
            with t.span("inner", category="b") as inner:
                t.charge("leaf", sim_seconds=1.0)
        assert outer.parent is None and outer.depth == 0
        assert inner.parent == outer.sid and inner.depth == 1
        leaf = t.find(name="leaf")[0]
        assert leaf.parent == inner.sid and leaf.depth == 2
        assert t.children_of(outer) == [inner]
        assert t.roots() == [outer]

    def test_sim_clock_advances_only_on_charge(self):
        t = Tracer()
        with t.span("s"):
            assert t.sim_now == 0.0
            t.charge("a", sim_seconds=2.0)
            assert t.sim_now == 2.0
            t.charge("b", sim_seconds=0.5)
        assert t.sim_now == 2.5
        sp = t.find(name="s")[0]
        assert sp.sim_start == 0.0 and sp.sim_end == 2.5
        assert sp.sim_seconds == 2.5

    def test_parents_contain_children_on_both_clocks(self):
        res, t, *_ = build_traced_run()
        by_sid = {sp.sid: sp for sp in t.spans}
        for sp in t.spans:
            assert sp.closed
            assert sp.sim_end >= sp.sim_start
            assert sp.wall_end >= sp.wall_start
            if sp.parent is not None:
                par = by_sid[sp.parent]
                assert par.sim_start <= sp.sim_start
                assert sp.sim_end <= par.sim_end

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            Tracer().charge("bad", sim_seconds=-1.0)

    def test_span_closes_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("s"):
                raise RuntimeError("boom")
        assert t.spans[0].closed
        assert t.current is None


class TestCounters:
    def test_counters_attach_to_innermost_span(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                t.add_counter("bytes", 10)
                t.add_counter("bytes", 5)
        assert inner.counters["bytes"] == 15.0
        assert "bytes" not in outer.counters
        assert t.counter_total("bytes") == 15.0

    def test_counter_total_sums_without_double_counting(self):
        t = Tracer()
        with t.span("a"):
            t.charge("x", sim_seconds=0.0, counters={"bytes": 3.0})
        t.charge("y", sim_seconds=0.0, counters={"bytes": 4.0})
        assert t.counter_total("bytes") == 7.0

    def test_add_counter_outside_spans_is_dropped(self):
        t = Tracer()
        t.add_counter("bytes", 99)
        assert t.counter_total("bytes") == 0.0


class TestNullTracer:
    def test_all_methods_noop(self):
        t = NullTracer()
        with t.span("anything", category="x", foo=1) as sp:
            sp.add_counter("bytes", 5)
            sp.attrs["x"] = 1  # silently discarded
            t.add_counter("bytes", 5)
            t.charge("leaf", sim_seconds=9.0, counters={"bytes": 1.0})
        assert t.sim_now == 0.0
        assert t.counter_total("bytes") == 0.0
        assert len(t.spans) == 0
        assert t.find(category="x") == []
        assert not t.enabled and not NULL_TRACER.enabled

    def test_engine_results_bit_identical_with_and_without_tracing(self):
        res, tracer, part, machine, config, root = build_traced_run()
        untraced = DistributedBFS(part, machine=machine, config=config)
        res0 = untraced.run(root)
        assert np.array_equal(res.parent, res0.parent)
        assert res.total_seconds == res0.total_seconds
        assert res.ledger.total_bytes == res0.ledger.total_bytes


class TestEngineIntegration:
    def test_byte_counters_equal_ledger_totals(self):
        res, tracer, *_ = build_traced_run()
        assert tracer.counter_total("bytes") == res.ledger.total_bytes

    def test_one_component_span_per_executed_subiteration(self):
        res, tracer, *_ = build_traced_run()
        executed = sum(
            1 for rec in res.iterations for d in rec.directions.values() if d != "-"
        )
        assert len(tracer.find(category="component")) == executed

    def test_component_spans_annotated_with_direction(self):
        res, tracer, *_ = build_traced_run()
        for sp in tracer.find(category="component"):
            assert sp.attrs["direction"] in ("push", "pull")
            rec = res.iterations[sp.attrs["iteration"]]
            assert rec.directions[sp.name] == sp.attrs["direction"]

    def test_iteration_spans_carry_frontier_sizes(self):
        res, tracer, *_ = build_traced_run()
        iters = tracer.find(category="iteration")
        assert len(iters) == len(res.iterations)
        for sp, rec in zip(iters, res.iterations):
            assert sp.attrs["index"] == rec.index
            assert sp.attrs["frontier"] == rec.frontier_size

    def test_trace_phase_totals_match_ledger(self):
        res, tracer, *_ = build_traced_run()
        from_trace = phase_seconds_from_trace(tracer)
        from_ledger = res.ledger.seconds_by_phase()
        assert set(from_trace) == set(from_ledger)
        for phase, seconds in from_ledger.items():
            assert from_trace[phase] == pytest.approx(seconds, rel=1e-12)

    def test_trace_category_totals_match_ledger(self):
        res, tracer, *_ = build_traced_run()
        from_trace = category_seconds_from_trace(tracer)
        from_ledger = res.time_by_category()
        assert set(from_trace) == set(from_ledger)
        for cat, seconds in from_ledger.items():
            assert from_trace[cat] == pytest.approx(seconds, rel=1e-9, abs=1e-18)

    def test_iteration_seconds_sum_to_run_total(self):
        res, tracer, *_ = build_traced_run()
        rows = iteration_component_seconds_from_trace(tracer)
        assert len(rows) == len(res.iterations)
        total = sum(sum(r.values()) for r in rows)
        assert total == pytest.approx(res.ledger.total_seconds, rel=1e-12)

    def test_render_timeline_uses_exact_trace(self):
        res, tracer, *_ = build_traced_run()
        exact = render_timeline(res, tracer=tracer)
        apportioned = render_timeline(res)
        # Same shape either way; the traced path must include every
        # iteration row.
        assert len(exact.splitlines()) == len(apportioned.splitlines())


class TestDriverIntegration:
    def test_graph500_flow_spans(self):
        from repro.graph500.driver import run_graph500

        tracer = Tracer()
        report = run_graph500(
            10, 2, 2, num_roots=2, validate=True, tracer=tracer
        )
        assert report.validated
        names = {sp.name for sp in tracer.spans}
        assert {"generate", "construction", "root", "validate",
                "harvest", "bfs"} <= names
        assert len(tracer.find(category="bfs_root")) == report.roots.size
        # kernel-1 charge pushes the simulated clock past construction.
        first_bfs = tracer.find(category="bfs")[0]
        assert first_bfs.sim_start >= report.construction_seconds

    def test_ocs_spans(self):
        from repro.sort.ocs import OCSConfig, simulate_ocs_rma

        rng = np.random.default_rng(0)
        values = rng.integers(0, 1 << 40, size=4096)
        tracer = Tracer()
        result = simulate_ocs_rma(
            values, values & 0xFF, 256,
            config=OCSConfig(num_cgs=6), tracer=tracer,
        )
        ocs = tracer.find(category="ocs")
        assert len(ocs) == 1
        assert ocs[0].sim_seconds == pytest.approx(result.modeled_seconds)
        leaf_names = {sp.name for sp in tracer.children_of(ocs[0])}
        assert {"dma_stream", "produce", "consume"} <= leaf_names
        assert tracer.counter_total("dma_bytes") == result.dma_bytes


class TestExporters:
    def test_chrome_trace_round_trips_through_json(self, tmp_path):
        res, tracer, *_ = build_traced_run()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, path)
        doc = json.loads(path.read_text())
        assert count == len(tracer.spans)
        assert doc["otherData"]["clock"] == "sim"
        events = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert len(events) == len(tracer.spans)
        for ev in events:
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert isinstance(ev["args"], dict)

    def test_chrome_trace_wall_clock(self):
        res, tracer, *_ = build_traced_run()
        doc = to_chrome_trace(tracer, clock="wall")
        assert doc["otherData"]["clock"] == "wall"
        assert all(
            ev["ts"] >= 0 for ev in doc["traceEvents"] if ev["ph"] == "X"
        )

    def test_chrome_trace_rejects_unknown_clock(self):
        with pytest.raises(ValueError, match="clock"):
            to_chrome_trace(Tracer(), clock="cpu")

    def test_flame_summary_lists_components(self):
        res, tracer, *_ = build_traced_run()
        text = render_flame(tracer)
        assert "bfs" in text and "iteration" in text and "EH2EH" in text
        assert "100.0%" in text

    def test_flame_empty_tracer(self):
        assert "no spans" in render_flame(Tracer())

    def test_span_csv(self, tmp_path):
        res, tracer, *_ = build_traced_run()
        path = tmp_path / "spans.csv"
        rows = write_span_csv(tracer, path)
        with open(path) as fh:
            parsed = list(csv.DictReader(fh))
        assert len(parsed) == rows
        assert "bytes" in parsed[0]
        total_bytes = sum(float(r["bytes"]) for r in parsed)
        assert total_bytes == pytest.approx(res.ledger.total_bytes)

    def test_span_aggregates_fold_repeats(self):
        res, tracer, *_ = build_traced_run()
        rows = span_aggregates(tracer)
        by_path = {r["path"]: r for r in rows}
        assert by_path["bfs/iteration"]["count"] == len(res.iterations)
