"""Property tests for the cost model and kernel simulators.

Monotonicity and conservation laws that must hold for *any* parameters —
the cheap sanity net under every modeled number in the harness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger
from repro.sort.ocs import OCSConfig, simulate_ocs_rma


class TestCostModelProperties:
    @given(
        participants=st.integers(1, 4096),
        bytes_intra=st.floats(0, 1e12),
        bytes_inter=st.floats(0, 1e12),
    )
    @settings(max_examples=60, deadline=None)
    def test_collective_time_nonnegative_and_monotone(
        self, participants, bytes_intra, bytes_inter
    ):
        model = CostModel(MachineSpec(num_nodes=4096))
        for kind in CollectiveKind:
            t = model.collective_time(kind, participants, bytes_intra, bytes_inter)
            assert t > 0
            if kind is not CollectiveKind.BARRIER:
                t2 = model.collective_time(
                    kind, participants, bytes_intra * 2 + 1, bytes_inter
                )
                assert t2 >= t

    @given(st.floats(1.0, 1e7))
    @settings(max_examples=40, deadline=None)
    def test_work_scale_never_increases_time(self, k):
        base = CostModel(MachineSpec(num_nodes=64))
        scaled = CostModel(MachineSpec(num_nodes=64, work_scale=k))
        t0 = base.collective_time(CollectiveKind.ALLTOALLV, 64, 1e6, 1e6)
        t1 = scaled.collective_time(CollectiveKind.ALLTOALLV, 64, 1e6, 1e6)
        assert t1 <= t0 + 1e-15

    @given(st.integers(0, 10**9), st.floats(1.0, 1e7))
    @settings(max_examples=60, deadline=None)
    def test_kernel_time_monotone_in_items(self, items, ws):
        rates = NodeKernelRates()
        t1 = rates.kernel_time(items, 1e9, ws)
        t2 = rates.kernel_time(items + 1000, 1e9, ws)
        assert t2 >= t1 >= 0

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_message_rate_monotone_in_cgs(self, cgs):
        rates = NodeKernelRates()
        if cgs < 6:
            assert rates.message_rate(cgs) <= rates.message_rate(cgs + 1)

    @given(st.integers(1, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_ldcache_between_gld_and_ldm(self, working_set):
        rates = NodeKernelRates()
        ldc = rates.pull_rate_ldcache(working_set)
        assert rates.pull_rate_unsegmented() * 0.99 <= ldc


class TestOCSProperties:
    @given(
        n=st.integers(0, 4000),
        num_buckets=st.integers(1, 64),
        cgs=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_bucketing_is_permutation_with_correct_keys(
        self, n, num_buckets, cgs, seed
    ):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**62, size=n)
        buckets = rng.integers(0, num_buckets, size=n)
        res = simulate_ocs_rma(
            values, buckets, num_buckets, config=OCSConfig(num_cgs=cgs)
        )
        assert sorted(res.values.tolist()) == sorted(values.tolist())
        assert res.offsets[-1] == n
        assert np.all(np.diff(res.offsets) >= 0)
        assert res.modeled_seconds > 0 or n == 0

    @given(st.integers(1, 5))
    @settings(max_examples=5, deadline=None)
    def test_throughput_improves_with_cgs(self, cgs):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**62, size=1 << 16)
        buckets = values & 0x3F
        a = simulate_ocs_rma(values, buckets, 64, config=OCSConfig(num_cgs=cgs))
        b = simulate_ocs_rma(values, buckets, 64, config=OCSConfig(num_cgs=cgs + 1))
        assert b.throughput_bytes_per_s > a.throughput_bytes_per_s * 0.95


class TestLedgerValidation:
    def test_negative_bytes_rejected(self):
        ledger = TrafficLedger(CostModel(MachineSpec()))
        with pytest.raises(ValueError, match="nonnegative"):
            ledger.charge_collective("x", CollectiveKind.P2P, 2, -1.0, 0.0)

    def test_negative_total_rejected(self):
        ledger = TrafficLedger(CostModel(MachineSpec()))
        with pytest.raises(ValueError, match="nonnegative"):
            ledger.charge_collective(
                "x", CollectiveKind.P2P, 2, 1.0, 0.0, total_bytes=-5.0
            )

    def test_negative_seconds_rejected(self):
        ledger = TrafficLedger(CostModel(MachineSpec()))
        with pytest.raises(ValueError, match="nonnegative"):
            ledger.charge_compute("x", "k", [1], -0.1)

    def test_negative_items_rejected(self):
        ledger = TrafficLedger(CostModel(MachineSpec()))
        with pytest.raises(ValueError, match="nonnegative"):
            ledger.charge_compute("x", "k", [-1], 0.1)


class TestEntryPoint:
    def test_module_main_importable(self):
        import repro.__main__  # noqa: F401

    def test_version_exposed(self):
        import repro

        assert repro.__version__
