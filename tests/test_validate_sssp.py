"""Tests for the SSSP optimality-certificate validator."""

import numpy as np
import pytest

from repro.core import delta_stepping_sssp, generate_weights
from repro.core.partition import partition_graph
from repro.graph500.rmat import generate_edges
from repro.graph500.validate import ValidationError
from repro.graph500.validate_sssp import validate_sssp_result
from repro.runtime.mesh import ProcessMesh


@pytest.fixture(scope="module")
def solved():
    scale = 9
    src, dst = generate_edges(scale, seed=1)
    n = 1 << scale
    mesh = ProcessMesh(2, 2)
    part = partition_graph(src, dst, n, mesh, e_threshold=64, h_threshold=8)
    w = generate_weights(src.size, seed=3)
    root = int(np.argmax(part.degrees))
    res = delta_stepping_sssp(part, root, w, src, dst)
    return n, src, dst, w, root, res


class TestAcceptsValid:
    def test_delta_stepping_output_validates(self, solved):
        n, src, dst, w, root, res = solved
        validate_sssp_result(n, src, dst, w, root, res.distance, res.parent)

    def test_bellman_ford_output_validates(self, solved):
        from repro.core import sssp

        n, src, dst, w, root, _ = solved
        mesh = ProcessMesh(2, 2)
        part = partition_graph(src, dst, n, mesh, e_threshold=64, h_threshold=8)
        res = sssp(part, root, w, edge_src=src, edge_dst=dst)
        validate_sssp_result(n, src, dst, w, root, res.distance, res.parent)

    def test_trivial_graph(self):
        src = np.array([0])
        dst = np.array([1])
        w = np.array([0.5])
        dist = np.array([0.0, 0.5, np.inf])
        parent = np.array([0, 0, -1])
        validate_sssp_result(3, src, dst, w, 0, dist, parent)


class TestRejectsCorruptions:
    def test_wrong_root_distance(self, solved):
        n, src, dst, w, root, res = solved
        d = res.distance.copy()
        d[root] = 1.0
        with pytest.raises(ValidationError, match="root distance"):
            validate_sssp_result(n, src, dst, w, root, d, res.parent)

    def test_relaxable_edge(self, solved):
        n, src, dst, w, root, res = solved
        d = res.distance.copy()
        # inflate one reached non-root vertex's distance
        v = int(np.flatnonzero(np.isfinite(d) & (np.arange(n) != root))[0])
        d[v] += 10.0
        with pytest.raises(ValidationError):
            validate_sssp_result(n, src, dst, w, root, d, res.parent)

    def test_fabricated_shorter_distance(self, solved):
        n, src, dst, w, root, res = solved
        d = res.distance.copy()
        reached = np.flatnonzero(np.isfinite(d) & (d > 0.2))
        v = int(reached[0])
        d[v] -= 0.1
        with pytest.raises(ValidationError):
            validate_sssp_result(n, src, dst, w, root, d, res.parent)

    def test_bogus_parent_edge(self, solved):
        n, src, dst, w, root, res = solved
        p = res.parent.copy()
        d = res.distance
        # point a vertex's parent at a non-neighbor with matching rule-2
        reached = np.flatnonzero(np.isfinite(d) & (np.arange(n) != root))
        v = int(reached[5])
        p[v] = root if p[v] != root else int(reached[0])
        with pytest.raises(ValidationError):
            validate_sssp_result(n, src, dst, w, root, d, p)

    def test_unreached_marked_reached(self, solved):
        n, src, dst, w, root, res = solved
        d = res.distance.copy()
        p = res.parent.copy()
        unreached = np.flatnonzero(~np.isfinite(d))
        if unreached.size == 0:
            pytest.skip("graph fully reachable from this root")
        v = int(unreached[0])
        d[v] = 1.0
        p[v] = root
        with pytest.raises(ValidationError):
            validate_sssp_result(n, src, dst, w, root, d, p)

    def test_zero_weight_cycle_component(self):
        """A self-consistent unreachable component must be caught by the
        forest check."""
        src = np.array([0, 2])
        dst = np.array([1, 3])
        w = np.array([1.0, 0.0])
        dist = np.array([0.0, 1.0, 5.0, 5.0])
        parent = np.array([0, 0, 3, 2])  # 2 <-> 3 cycle, zero-weight edge
        with pytest.raises(ValidationError, match="cycle"):
            validate_sssp_result(4, src, dst, w, 0, dist, parent)

    def test_negative_weights_rejected(self, solved):
        n, src, dst, w, root, res = solved
        with pytest.raises(ValidationError, match="nonnegative"):
            validate_sssp_result(n, src, dst, -w, root, res.distance, res.parent)

    def test_shape_mismatch(self, solved):
        n, src, dst, w, root, res = solved
        with pytest.raises(ValidationError, match="shape"):
            validate_sssp_result(n, src, dst, w, root, res.distance[:-1], res.parent)


class TestSSSPDriver:
    def test_run_graph500_sssp(self):
        from repro.graph500.driver import run_graph500_sssp

        report = run_graph500_sssp(10, 2, 2, seed=1, num_roots=3)
        assert report.validated
        assert report.roots.size == 3
        assert report.mean_gteps > 0
        assert "harmonic_mean_TEPS" in report.render()

    def test_bellman_ford_variant(self):
        from repro.graph500.driver import run_graph500_sssp

        report = run_graph500_sssp(
            9, 2, 2, seed=1, num_roots=2, algorithm="bellman-ford"
        )
        assert report.validated

    def test_unknown_algorithm(self):
        from repro.graph500.driver import run_graph500_sssp

        with pytest.raises(ValueError, match="algorithm"):
            run_graph500_sssp(9, 2, 2, algorithm="dijkstra")
