"""Tests for SSSP and PageRank on the 1.5D partitioning (paper §8)."""

import numpy as np
import pytest

from repro.core.algorithms import (
    PageRankResult,
    SSSPResult,
    generate_weights,
    pagerank,
    sssp,
)
from repro.core.partition import partition_graph
from repro.graph500.rmat import generate_edges
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.runtime.mesh import ProcessMesh

from helpers import random_edge_list


def make_part(scale=10, rows=2, cols=2, seed=1, e_thr=128, h_thr=16):
    src, dst = generate_edges(scale, seed=seed)
    mesh = ProcessMesh(rows, cols)
    part = partition_graph(
        src, dst, 1 << scale, mesh, e_threshold=e_thr, h_threshold=h_thr
    )
    return part, src, dst


def nx_shortest_paths(n, src, dst, weights, root):
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u, v, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
        if u == v:
            continue
        if g.has_edge(u, v):
            g[u][v]["weight"] = min(g[u][v]["weight"], w)
        else:
            g.add_edge(u, v, weight=w)
    import math

    out = np.full(n, np.inf)
    lengths = nx.single_source_dijkstra_path_length(g, root)
    for v, d in lengths.items():
        out[v] = d
    return out


class TestSSSP:
    def test_unit_weights_equal_bfs_depth(self):
        from repro.graph500.reference import bfs_levels_from_parents, serial_bfs

        part, src, dst = make_part()
        graph = build_csr(*symmetrize_edges(src, dst), part.num_vertices)
        root = int(np.argmax(graph.degrees))
        res = sssp(part, root)
        levels = bfs_levels_from_parents(graph, root, serial_bfs(graph, root))
        reach = levels >= 0
        assert np.allclose(res.distance[reach], levels[reach])
        assert np.all(np.isinf(res.distance[~reach]))

    def test_weighted_matches_dijkstra(self):
        part, src, dst = make_part(scale=9)
        w = generate_weights(src.size, seed=5)
        root = 0
        res = sssp(part, root, w, edge_src=src, edge_dst=dst)
        expect = nx_shortest_paths(part.num_vertices, src, dst, w, root)
        finite = np.isfinite(expect)
        assert np.allclose(res.distance[finite], expect[finite], atol=1e-9)
        assert np.array_equal(np.isfinite(res.distance), finite)

    def test_parents_consistent_with_distances(self):
        part, src, dst = make_part(scale=9, seed=3)
        w = generate_weights(src.size, seed=6)
        res = sssp(part, 1, w, edge_src=src, edge_dst=dst)
        reached = np.isfinite(res.distance)
        v = np.flatnonzero(reached & (np.arange(part.num_vertices) != 1))
        assert np.all(res.parent[v] >= 0)
        # parent distance strictly smaller
        assert np.all(res.distance[res.parent[v]] < res.distance[v] + 1e-12)

    def test_ledger_charged(self):
        part, _, _ = make_part()
        res = sssp(part, 0)
        assert res.total_seconds > 0
        assert res.relaxations > 0
        assert res.gteps(1000) > 0

    def test_invalid_root(self):
        part, _, _ = make_part()
        with pytest.raises(ValueError, match="root"):
            sssp(part, -1)

    def test_negative_weights_rejected(self):
        part, src, dst = make_part()
        with pytest.raises(ValueError, match="nonnegative"):
            sssp(part, 0, -np.ones(src.size), edge_src=src, edge_dst=dst)

    def test_weights_need_edges(self):
        part, src, _ = make_part()
        with pytest.raises(ValueError, match="edge_src"):
            sssp(part, 0, np.ones(src.size))


class TestPageRank:
    def test_matches_networkx(self):
        import networkx as nx

        part, src, dst = make_part(scale=9)
        res = pagerank(part, tol=1e-12)
        assert res.converged

        g = nx.MultiGraph()
        g.add_nodes_from(range(part.num_vertices))
        keep = src != dst
        g.add_edges_from(zip(src[keep].tolist(), dst[keep].tolist()))
        expect = nx.pagerank(nx.Graph(g) if False else g, alpha=0.85, tol=1e-12, max_iter=500)
        got = res.ranks
        want = np.array([expect[i] for i in range(part.num_vertices)])
        assert np.allclose(got, want, atol=1e-6)

    def test_ranks_are_distribution(self):
        part, _, _ = make_part(seed=4)
        res = pagerank(part)
        assert res.ranks.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(res.ranks > 0)

    def test_hubs_rank_higher(self):
        part, _, _ = make_part()
        res = pagerank(part)
        hub = int(np.argmax(part.degrees))
        leaf_candidates = np.flatnonzero(part.degrees == 1)
        if leaf_candidates.size:
            assert res.ranks[hub] > res.ranks[int(leaf_candidates[0])]

    def test_invalid_damping(self):
        part, _, _ = make_part()
        with pytest.raises(ValueError, match="damping"):
            pagerank(part, damping=1.5)

    def test_iteration_cap(self):
        part, _, _ = make_part()
        res = pagerank(part, tol=0.0, max_iterations=3)
        assert res.num_iterations == 3
        assert not res.converged

    def test_ledger_charged_per_iteration(self):
        part, _, _ = make_part()
        short = pagerank(part, tol=0.0, max_iterations=2)
        longer = pagerank(part, tol=0.0, max_iterations=6)
        assert longer.total_seconds > short.total_seconds
