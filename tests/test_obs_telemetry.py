"""The observability additions behind the live telemetry plane.

Worker-shipped wall spans (``record_external``), the deterministic
Chrome-trace track table, the ring-buffer sampler, the SLO burn-rate
monitor, the Prometheus exposition format, and the shmem backend's
per-worker telemetry — including the acceptance reconciliation between
per-worker chunk spans and the ``worker_busy_seconds`` counters.
"""

import json

import numpy as np
import pytest

from repro.obs.export import build_track_table, to_chrome_trace
from repro.obs.metrics import (
    NULL_METRICS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    to_prometheus_text,
)
from repro.obs.slo import (
    SLOMonitor,
    SLOSpec,
    parse_slo_spec,
)
from repro.obs.timeline import TelemetrySampler
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.service import LATENCY_BUCKETS


class FakeClock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ----------------------------------------------------------------------
# record_external: worker-shipped wall spans
# ----------------------------------------------------------------------


class TestRecordExternal:
    def test_wall_only_span(self):
        tracer = Tracer()
        sp = tracer.record_external(
            "chunk", wall_start=10.0, wall_end=10.5, worker=3, op="push",
            counters={"busy_seconds": 0.5},
        )
        assert sp.category == "worker"
        assert sp.wall_seconds == pytest.approx(0.5)
        assert sp.attrs["worker"] == 3
        assert sp.counters["busy_seconds"] == pytest.approx(0.5)
        # External work never advances the simulated clock.
        assert sp.sim_seconds == 0.0

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            Tracer().record_external("x", wall_start=2.0, wall_end=1.0)

    def test_null_tracer_noop(self):
        NULL_TRACER.record_external("x", wall_start=0.0, wall_end=1.0)
        assert len(NULL_TRACER.spans) == 0
        assert not NULL_TRACER.enabled


# ----------------------------------------------------------------------
# track table (satellite: no more hardcoded pid 0 / tid 0)
# ----------------------------------------------------------------------


class TestTrackTable:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("bfs", category="bfs"):
            pass
        tracer.record_external("chunk", wall_start=0.0, wall_end=1.0,
                               worker=1)
        tracer.record_external("chunk", wall_start=0.0, wall_end=1.0,
                               worker=0)
        with tracer.span("msbfs", category="msbfs", trace_id="req-000001"):
            pass
        return tracer

    def test_deterministic_and_grouped(self):
        tracer = self._spans()
        table = build_track_table(tracer.spans)
        # Same set of tracks -> same table, regardless of span order.
        assert table == build_track_table(list(reversed(tracer.spans)))
        assert table[("main", 0)][0] != table[("worker", 0)][0]
        # Workers sort numerically into tids on one pid.
        w0, w1 = table[("worker", 0)], table[("worker", 1)]
        assert w0[0] == w1[0] and w0[1] == 0 and w1[1] == 1
        assert ("request", "req-000001") in table

    def test_chrome_trace_tracks_and_metadata(self):
        tracer = self._spans()
        doc = to_chrome_trace(tracer, clock="wall")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["pid"], e.get("tid")): e["args"]["name"]
            for e in meta if e["name"] == "thread_name"
        }
        assert "worker 0" in names.values()
        assert "worker 1" in names.values()
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        pids = {e["name"]: (e["pid"], e["tid"]) for e in events}
        assert pids["chunk"][0] != pids["bfs"][0]
        assert "tracks" in doc["otherData"]


# ----------------------------------------------------------------------
# sampler
# ----------------------------------------------------------------------


class TestTelemetrySampler:
    def test_snapshot_contents_and_ring(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        reg.counter("serve_requests", outcome="cached").inc(3)
        reg.counter("serve_requests", outcome="completed").inc(9)
        reg.gauge("serve_queue_depth").set(5)
        reg.histogram("serve_batch_size").observe(4)
        reg.histogram("serve_batch_size").observe(8)
        sampler = TelemetrySampler(reg, capacity=2, clock=clock)
        snap = sampler.sample()
        assert snap["counters"]["serve_requests"] == 12.0
        assert snap["derived"]["queue_depth"] == 5.0
        assert snap["derived"]["cache_hit_rate"] == pytest.approx(0.25)
        assert snap["derived"]["batch_occupancy"] == pytest.approx(6.0)
        for _ in range(3):
            sampler.sample()
        assert len(sampler.samples) == 2  # ring capacity
        assert sampler.taken == 4
        assert sampler.to_dict()["taken"] == 4

    def test_worker_utilization_delta(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        busy = reg.counter("worker_busy_seconds", worker=0)
        sampler = TelemetrySampler(reg, clock=clock)
        sampler.sample()
        busy.inc(0.5)
        clock.advance(1.0)
        snap = sampler.sample()
        util = snap["derived"]["worker_utilization"]
        assert util["0"] == pytest.approx(0.5)
        assert snap["derived"]["worker_utilization_mean"] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetrySampler(MetricsRegistry(), capacity=0)
        with pytest.raises(ValueError):
            TelemetrySampler(MetricsRegistry(), interval=0.0)


# ----------------------------------------------------------------------
# SLO monitor
# ----------------------------------------------------------------------


def _observe_latency(reg, stage, seconds, n=1):
    hist = reg.histogram(
        "serve_latency_seconds", buckets=LATENCY_BUCKETS, stage=stage
    )
    for _ in range(n):
        hist.observe(seconds)


class TestSLOMonitor:
    def test_parse_round_trip(self):
        spec = parse_slo_spec("total:0.05:0.99:30")
        assert spec.stage == "total"
        assert spec.threshold_seconds == pytest.approx(0.05)
        assert spec.objective == pytest.approx(0.99)
        assert spec.window_seconds == pytest.approx(30.0)
        assert spec.name == "total<0.05s@99%"
        with pytest.raises(ValueError):
            parse_slo_spec("nonsense")
        with pytest.raises(ValueError):
            parse_slo_spec(":1:0.9")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SLOSpec("total", -1.0, 0.99)
        with pytest.raises(ValueError):
            SLOSpec("total", 0.1, 1.5)
        with pytest.raises(ValueError):
            SLOSpec("total", 0.1, 0.9, burn_warn=5.0, burn_page=1.0)

    def test_burn_rate_math_and_alerts(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        spec = SLOSpec("total", 0.1, 0.9, window_seconds=60.0,
                       burn_warn=1.0, burn_page=5.0)
        mon = SLOMonitor(reg, [spec], clock=clock)
        mon.observe()  # zero baseline
        # 8 good, 2 bad of 10 -> error rate 0.2, burn 2.0 -> warn
        _observe_latency(reg, "total", 0.001, n=8)
        _observe_latency(reg, "total", 5.0, n=2)
        clock.advance(1.0)
        doc = mon.evaluate()
        row = doc["slos"][0]
        assert row["observed"] == 10 and row["bad"] == 2
        assert row["error_rate"] == pytest.approx(0.2)
        assert row["burn_rate"] == pytest.approx(2.0)
        assert doc["status"] == "warn"
        assert len(mon.alerts) == 1 and mon.alerts[0].severity == "warn"
        # Same severity again: no duplicate alert.
        clock.advance(1.0)
        mon.evaluate()
        assert len(mon.alerts) == 1
        # Escalation to page fires once more.
        _observe_latency(reg, "total", 5.0, n=30)
        clock.advance(1.0)
        doc = mon.evaluate()
        assert doc["status"] == "page"
        assert [a.severity for a in mon.alerts] == ["warn", "page"]

    def test_quantization_is_conservative(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        # Threshold between two bucket bounds: good is counted at the
        # lower bound, never overstated.
        bounds = LATENCY_BUCKETS
        mid = (bounds[10] + bounds[11]) / 2
        spec = SLOSpec("total", mid, 0.5, window_seconds=60.0)
        mon = SLOMonitor(reg, [spec], clock=clock)
        mon.observe()
        # A latency in (bounds[10], mid) is truly good but lands in the
        # bucket whose upper bound exceeds the quantized threshold.
        _observe_latency(reg, "total", (bounds[10] + mid) / 2)
        clock.advance(1.0)
        row = mon.evaluate()["slos"][0]
        assert row["quantized_threshold_seconds"] == pytest.approx(bounds[10])
        assert row["bad"] == 1  # conservative: not credited as good

    def test_rolling_window_forgets(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        spec = SLOSpec("total", 0.1, 0.9, window_seconds=10.0)
        mon = SLOMonitor(reg, [spec], clock=clock)
        mon.observe()
        _observe_latency(reg, "total", 5.0, n=10)  # all bad
        clock.advance(1.0)
        assert mon.evaluate()["status"] != "ok"
        # A quiet window later the bad burst has aged out.
        for _ in range(12):
            clock.advance(1.0)
            mon.observe()
        doc = mon.evaluate()
        assert doc["slos"][0]["observed"] == 0
        assert doc["status"] == "ok"

    def test_requires_specs(self):
        with pytest.raises(ValueError):
            SLOMonitor(MetricsRegistry(), [])
        spec = SLOSpec("total", 0.1, 0.9)
        with pytest.raises(ValueError):
            SLOMonitor(MetricsRegistry(), [spec, spec])


# ----------------------------------------------------------------------
# Prometheus exposition (satellite: exposition-format tests)
# ----------------------------------------------------------------------


class TestPrometheusExposition:
    def test_content_type_pinned(self):
        assert PROMETHEUS_CONTENT_TYPE == (
            "text/plain; version=0.0.4; charset=utf-8"
        )

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("events", where='say "hi"\nback\\slash').inc()
        text = to_prometheus_text(reg)
        assert r'where="say \"hi\"\nback\\slash"' in text

    def test_histogram_inf_bucket_sum_count(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 99.0):
            hist.observe(v)
        text = to_prometheus_text(reg)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 99.55" in text
        assert "lat_count 3" in text

    def test_scalar_observe_matches_vectorized(self):
        a = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        b = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        values = [0.05, 0.1, 0.11, 1.0, 2.0, 10.0, 11.0]
        for v in values:
            a.observe(v)
        b.observe_many(np.asarray(values))
        assert np.array_equal(a.bucket_counts, b.bucket_counts)
        assert a.count == b.count
        assert a.sum == pytest.approx(b.sum)
        assert a.min == b.min and a.max == b.max


# ----------------------------------------------------------------------
# shmem worker telemetry: the acceptance reconciliation
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def traversal_system():
    from repro.core import partition_graph
    from repro.graph500.rmat import generate_edges
    from repro.machine.network import MachineSpec
    from repro.runtime.mesh import ProcessMesh

    src, dst = generate_edges(9, seed=7)
    machine = MachineSpec(num_nodes=4, nodes_per_supernode=2)
    mesh = ProcessMesh(2, 2, machine=machine)
    part = partition_graph(
        src, dst, 1 << 9, mesh, e_threshold=128, h_threshold=16
    )
    return part, machine


class TestWorkerTelemetry:
    def _run(self, part, machine, *, workers, tracer=None, metrics=None):
        from repro.core.engine import DistributedBFS
        from repro.runtime.backends import SharedMemoryBackend

        with SharedMemoryBackend(workers=workers) as backend:
            engine = DistributedBFS(
                part, machine=machine, backend=backend,
                **({"tracer": tracer} if tracer else {}),
                **({"metrics": metrics} if metrics else {}),
            )
            return engine.run(1)

    def test_one_track_per_worker_and_busy_reconciliation(
        self, traversal_system
    ):
        part, machine = traversal_system
        tracer, metrics = Tracer(), MetricsRegistry()
        self._run(part, machine, workers=4, tracer=tracer, metrics=metrics)

        chunk_spans = [sp for sp in tracer.spans if sp.name == "chunk"]
        assert chunk_spans, "workers recorded no chunk spans"
        workers_seen = sorted({sp.attrs["worker"] for sp in chunk_spans})
        # One Chrome-trace track per worker that did work.
        doc = to_chrome_trace(tracer, clock="wall")
        tracks = doc["otherData"]["tracks"]
        for wid in workers_seen:
            assert f"worker {wid}" in tracks.values()

        # ISSUE acceptance: per-worker chunk spans sum to the
        # worker_busy_seconds counter within 1% (identical floats by
        # construction, so this holds exactly).
        span_busy = {}
        for sp in chunk_spans:
            wid = sp.attrs["worker"]
            span_busy[wid] = (
                span_busy.get(wid, 0.0) + sp.counters["busy_seconds"]
            )
        for (labels, inst) in metrics.samples("worker_busy_seconds"):
            wid = labels["worker"]
            assert span_busy[int(wid)] == pytest.approx(
                inst.value, rel=0.01
            )
        # Tasks counted per worker/op.
        total_tasks = metrics.counter_total("worker_tasks")
        assert total_tasks == len(chunk_spans)
        # Skew histogram observed once per dispatch.
        skews = metrics.samples("worker_chunk_skew")
        assert skews and skews[0][1].count > 0

    def test_telemetry_does_not_change_results(self, traversal_system):
        part, machine = traversal_system
        bare = self._run(part, machine, workers=2)
        metered = self._run(
            part, machine, workers=2,
            tracer=Tracer(), metrics=MetricsRegistry(),
        )
        assert np.array_equal(bare.parent, metered.parent)
        assert bare.total_seconds == metered.total_seconds
        assert bare.ledger.total_bytes == metered.ledger.total_bytes

    def test_null_sinks_record_nothing(self, traversal_system):
        part, machine = traversal_system
        self._run(part, machine, workers=2)
        assert len(NULL_TRACER.spans) == 0
        assert not NULL_METRICS.enabled

    def test_worker_telemetry_metrics_helper(self, traversal_system):
        from repro.obs.report import worker_telemetry_metrics

        part, machine = traversal_system
        metrics = MetricsRegistry()
        self._run(part, machine, workers=2, metrics=metrics)
        telem = worker_telemetry_metrics(metrics)
        assert telem["worker.count"] >= 1
        assert telem["worker.busy_seconds_total"] > 0
        assert telem["worker.tasks_total"] > 0
        for key in telem:
            if key.startswith("worker.utilization."):
                assert 0.0 <= telem[key] <= 1.0
        assert telem.get("worker.chunk_skew_mean", 0.0) >= 1.0
        # Helper is empty for registries without worker telemetry.
        assert worker_telemetry_metrics(MetricsRegistry()) == {}
        assert worker_telemetry_metrics(NULL_METRICS) == {}


# ----------------------------------------------------------------------
# chrome trace JSON stays loadable end to end
# ----------------------------------------------------------------------


def test_trace_json_round_trip(tmp_path):
    from repro.obs.export import write_chrome_trace

    tracer = Tracer()
    tracer.record_external("chunk", wall_start=0.0, wall_end=0.25, worker=0)
    path = tmp_path / "nested" / "trace.json"
    count = write_chrome_trace(tracer, path, clock="wall")
    assert count == 1
    doc = json.loads(path.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
