"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's experiment drivers:

- ``graph500`` — the official benchmark flow (generation, construction,
  N roots, validation, official statistics block).
- ``bfs`` — one BFS with the full per-iteration trace.
- ``sweep`` — the weak-scaling ladder (Fig. 9 data).
- ``partitions`` — the four partitioning methods side by side (Table 1).
- ``ocs`` — the Fig. 14 bucketing microbenchmark.
- ``report`` — run the benchmark metered and write a
  :class:`~repro.obs.report.RunReport` JSON artifact (plus optional
  Prometheus text and Chrome trace exports).
- ``compare OLD NEW`` — diff two RunReport artifacts; exits non-zero
  when a tracked metric regresses past ``--max-regress`` (the CI perf
  gate).
- ``chaos`` — run a fault matrix against the fault-free golden run and
  assert every recovered parent tree matches it (the CI chaos gate).
- ``mutate`` — stream seeded edge-update batches through the
  incremental partition repair path and check the repaired graph
  bit-for-bit against a from-scratch rebuild; ``--smoke`` runs the
  pinned equivalence-gate matrix (the CI dynamic gate).
- ``serve`` — run a seeded query workload through the batched traversal
  service (bounded queue, batching window, result cache); ``--validate``
  checks every response bit-for-bit against a sequential run.
  ``--tenants`` switches to the multi-tenant cluster plane: N replicas
  serve M resident tenant graphs behind a weighted-fair router with
  per-tenant quotas and SLOs, driven by a seeded diurnal workload;
  ``--smoke`` runs the pinned slo-smoke gate (validation plus a mid-run
  replica kill drill).
- ``bench-serve`` — the serving benchmark: the deterministic
  amortization sweep (batched vs sequential simulated cost per query)
  plus an end-to-end wall-clock service sweep.

``graph500`` and ``bfs`` accept the resilience flags ``--faults SPEC``
(see :mod:`repro.resilience.faults` for the grammar), ``--checkpoint-every
N``, ``--max-restarts`` and ``--recovery-mode``; a malformed spec exits 2
with a usage message.

All output is plain text; ``--csv PATH`` additionally writes machine-
readable results where it applies.  ``graph500`` and ``bfs`` accept
``--trace out.json`` to record the run with :mod:`repro.obs` and export
a Chrome ``trace_event`` file (open in ``chrome://tracing`` or
https://ui.perfetto.dev); ``bfs`` additionally accepts ``--flame`` to
print the span-tree summary.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _mesh_arg(value: str) -> tuple[int, int]:
    """Parse 'RxC' mesh shapes."""
    try:
        rows, cols = value.lower().split("x")
        out = (int(rows), int(cols))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"mesh must look like 8x8, got {value!r}"
        ) from exc
    if out[0] < 1 or out[1] < 1:
        raise argparse.ArgumentTypeError("mesh dimensions must be positive")
    return out


def _positive_float_arg(value: str) -> float:
    """Parse a strictly positive float (``--delta``, ``--tol``)."""
    try:
        out = float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {value!r}"
        ) from exc
    if not out > 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value!r}")
    return out


def _damping_arg(value: str) -> float:
    """Parse a PageRank damping factor in the open interval (0, 1)."""
    try:
        out = float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {value!r}"
        ) from exc
    if not 0.0 < out < 1.0:
        raise argparse.ArgumentTypeError(
            f"damping must be in (0, 1), got {value!r}"
        )
    return out


def _workers_arg(value: str) -> int:
    """Parse a positive worker count for ``--workers``."""
    try:
        out = int(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}"
        ) from exc
    if out < 1:
        raise argparse.ArgumentTypeError(f"workers must be >= 1, got {value!r}")
    return out


def _slo_arg(value: str):
    """Parse and validate an ``--slo`` spec at argument time."""
    from repro.obs.slo import parse_slo_spec

    try:
        return parse_slo_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _tenants_arg(value: str) -> str:
    """Validate a ``--tenants`` spec (count or name:class list) at
    argument time; the spec is re-parsed with the effective scale/mesh/
    seed later, so the validated raw string is returned."""
    from repro.cluster.tenants import parse_tenant_spec

    try:
        parse_tenant_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value


def _replicas_arg(value: str) -> int:
    """Parse a positive replica count for ``--replicas``."""
    try:
        out = int(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}"
        ) from exc
    if out < 1:
        raise argparse.ArgumentTypeError(
            f"replicas must be >= 1, got {value!r}"
        )
    return out


def _quota_arg(value: str) -> int:
    """Parse a positive per-tenant admission quota for ``--quota``."""
    try:
        out = int(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}"
        ) from exc
    if out < 1:
        raise argparse.ArgumentTypeError(f"quota must be >= 1, got {value!r}")
    return out


def _faults_arg(value: str):
    """Parse and validate a ``--faults`` spec at argument time, so a
    malformed spec exits 2 with usage instead of a mid-run traceback."""
    from repro.resilience.faults import FaultSpecError, parse_fault_spec

    try:
        return parse_fault_spec(value)
    except FaultSpecError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _updates_arg(value: str):
    """Parse and validate an ``--updates`` spec at argument time, so a
    malformed spec exits 2 with usage, matching ``--faults``."""
    from repro.dynamic.updates import UpdateSpecError, parse_update_spec

    try:
        return parse_update_spec(value)
    except UpdateSpecError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


#: The CI chaos gate's default scenarios: one of each recoverable
#: failure mode (crash + checkpoint restore, dropped message retries,
#: straggler slowdown).
DEFAULT_CHAOS_MATRIX = (
    "crash:rank=1,iter=2",
    "drop:phase=L2L,count=2,retries=2",
    "straggler:rank=0,factor=4,phase=EH2EH",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Scaling Graph Traversal to 281 Trillion "
            "Edges with 40 Million Cores' (PPoPP 2022) on a simulated "
            "New Sunway machine."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", type=int, default=14, help="Graph500 SCALE")
    common.add_argument(
        "--mesh", type=_mesh_arg, default=(8, 8), help="process mesh, e.g. 16x16"
    )
    common.add_argument("--seed", type=int, default=1)
    common.add_argument("--e-threshold", type=int, default=None)
    common.add_argument("--h-threshold", type=int, default=None)

    trace_help = "write a Chrome trace_event JSON of the run to PATH"

    from repro.runtime.backends import BACKEND_NAMES

    backend_p = argparse.ArgumentParser(add_help=False)
    backend_p.add_argument(
        "--backend", choices=BACKEND_NAMES, default="simulated",
        help="where kernel bodies execute: the in-process simulated "
             "ledger loop, or real shared-memory parallel workers "
             "(bit-identical results)",
    )
    backend_p.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N",
        help="body worker processes for --backend shmem (>= 1)",
    )

    resil = argparse.ArgumentParser(add_help=False)
    resil.add_argument(
        "--faults", type=_faults_arg, default=None, metavar="SPEC",
        help="inject faults, e.g. 'crash:rank=3,iter=2;drop:phase=L2L,count=2'",
    )
    resil.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="snapshot BFS state every N levels (0 = off)",
    )
    resil.add_argument("--max-restarts", type=int, default=3)
    resil.add_argument(
        "--recovery-mode", choices=("restart", "degrade"), default="restart"
    )

    g5 = sub.add_parser(
        "graph500", parents=[common, resil, backend_p],
        help="official benchmark flow",
    )
    g5.add_argument("--roots", type=int, default=8, help="BFS roots (64 = conforming)")
    g5.add_argument("--no-validate", action="store_true")
    g5.add_argument("--trace", metavar="PATH", default=None, help=trace_help)
    g5.add_argument(
        "--batch-roots", action="store_true",
        help="run roots through the multi-source batch engine (up to 64 "
             "per traversal; parents bit-identical, times amortized)",
    )

    bfs = sub.add_parser(
        "bfs", parents=[common, resil, backend_p], help="one traced BFS run"
    )
    bfs.add_argument("--root", type=int, default=None, help="default: max-degree hub")
    bfs.add_argument(
        "--timeline",
        action="store_true",
        help="print the per-iteration component/time matrix",
    )
    bfs.add_argument("--trace", metavar="PATH", default=None, help=trace_help)
    bfs.add_argument(
        "--flame",
        action="store_true",
        help="print the flame-style span summary (implies tracing)",
    )

    sweep = sub.add_parser("sweep", help="weak-scaling ladder (Fig. 9)")
    sweep.add_argument(
        "--points",
        default="12:4x4,14:8x8,16:16x16",
        help="comma-separated scale:RxC ladder",
    )
    sweep.add_argument("--seed", type=int, default=1)

    parts = sub.add_parser(
        "partitions", parents=[common], help="partitioning methods (Table 1)"
    )
    del parts  # no extra flags beyond the common set

    rep = sub.add_parser(
        "report", parents=[common],
        help="metered benchmark run -> RunReport JSON artifact",
    )
    rep.add_argument("--roots", type=int, default=8, help="BFS roots")
    rep.add_argument("--out", metavar="PATH", default=None,
                     help="RunReport JSON destination (default: stdout render)")
    rep.add_argument("--prometheus", metavar="PATH", default=None,
                     help="also write Prometheus text exposition of the registry")
    rep.add_argument("--metrics-json", metavar="PATH", default=None,
                     help="also write the registry as schema-tagged JSON "
                          "(counters, gauges, histogram buckets)")
    rep.add_argument("--trace", metavar="PATH", default=None, help=trace_help)
    rep.add_argument("--smoke", action="store_true",
                     help="use the pinned SCALE-10 smoke configuration "
                          "(ignores --scale/--mesh/--seed; matches the "
                          "committed CI baseline)")

    cmp_p = sub.add_parser(
        "compare", help="diff two RunReport artifacts (perf-regression gate)"
    )
    cmp_p.add_argument("old", metavar="OLD", help="baseline RunReport JSON")
    cmp_p.add_argument("new", metavar="NEW", help="candidate RunReport JSON")
    cmp_p.add_argument("--max-regress", default="5%",
                       help="allowed relative regression, e.g. 5%% or 0.05")

    chaos = sub.add_parser(
        "chaos", parents=[common],
        help="fault matrix vs. the fault-free golden run (CI chaos gate)",
    )
    chaos.add_argument("--roots", type=int, default=4, help="BFS roots per run")
    chaos.add_argument(
        "--smoke", action="store_true",
        help="use the pinned SCALE-10 smoke configuration "
             "(ignores --scale/--mesh/--seed)",
    )
    chaos.add_argument(
        "--matrix", default=None, metavar="SPECS",
        help="'|'-separated fault specs (default: one crash, one drop, "
             "one straggler scenario)",
    )
    chaos.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint cadence during faulty runs",
    )

    serve = sub.add_parser(
        "serve", parents=[common, backend_p],
        help="serve a seeded query workload through the batched "
             "traversal service",
    )
    serve.add_argument("--queries", type=int, default=256,
                       help="total queries in the workload")
    serve.add_argument("--clients", type=int, default=32,
                       help="concurrent closed-loop clients")
    serve.add_argument("--batch-size", type=int, default=64,
                       help="roots per batch (flush threshold, max 64)")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="admission-control queue bound")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="SECONDS", help="batching window deadline")
    serve.add_argument("--hot-fraction", type=float, default=0.5,
                       help="fraction of queries drawn from the hot set")
    serve.add_argument("--hot-set", type=int, default=16,
                       help="hot-set size (repeat roots exercise the cache)")
    serve.add_argument("--validate", action="store_true",
                       help="check every response bit-for-bit against a "
                            "sequential run of the same root")
    serve.add_argument("--faults", type=_faults_arg, default=None,
                       metavar="SPEC",
                       help="inject faults into batches (crash -> replay)")
    serve.add_argument("--min-hit-rate", type=float, default=None,
                       metavar="FRACTION",
                       help="fail unless the cache hit rate reaches this "
                            "(the CI smoke gates > 0 on repeats)")
    serve.add_argument("--out", metavar="PATH", default=None,
                       help="write the serve.* RunReport JSON artifact")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="write the session's Chrome trace (wall clock; "
                            "per-request and per-worker tracks)")
    serve.add_argument("--telemetry-port", type=int, default=None,
                       metavar="PORT",
                       help="start the live telemetry endpoint (/metrics, "
                            "/healthz, /slo, /timeline, /trace/<id>) on this "
                            "port (0 = ephemeral) and self-scrape it during "
                            "the run")
    serve.add_argument("--telemetry-interval", type=float, default=0.05,
                       metavar="SECONDS",
                       help="sampler and self-scrape cadence")
    serve.add_argument("--slo", type=_slo_arg, action="append", default=None,
                       metavar="SPEC",
                       help="SLO spec stage:threshold:objective[:window], "
                            "repeatable (default with telemetry on: "
                            "total:0.25:0.99)")
    serve.add_argument("--straggler-ms", type=float, default=None,
                       metavar="MS",
                       help="wall-clock straggler injection: every batch "
                            "sleeps this long before traversal (drives the "
                            "SLO monitor in the CI smoke)")
    serve.add_argument("--expect-slo", choices=("green", "fired"),
                       default=None,
                       help="fail unless the final SLO status matches "
                            "(green = ok with no alerts; fired = degraded "
                            "or alerted)")
    serve.add_argument("--tenants", type=_tenants_arg, default=None,
                       metavar="SPEC",
                       help="multi-tenant mode: a tenant count (3) or "
                            "name:class list (search:gold,feed:silver); "
                            "classes gold|silver|bronze set quota, weight "
                            "and SLOs; each tenant serves its own seeded "
                            "graph behind the cluster router")
    serve.add_argument("--replicas", type=_replicas_arg, default=2,
                       metavar="N",
                       help="service replicas in multi-tenant mode (>= 1)")
    serve.add_argument("--quota", type=_quota_arg, default=None, metavar="N",
                       help="override every tenant's admission quota "
                            "(default: the SLO class quota)")
    serve.add_argument("--duration", type=_positive_float_arg, default=0.5,
                       metavar="SECONDS",
                       help="diurnal workload duration in multi-tenant mode")
    serve.add_argument("--smoke", action="store_true",
                       help="pinned multi-tenant smoke: SCALE-9 tenant "
                            "graphs on 2x2 meshes, seeded diurnal workload, "
                            "bit-exact validation, and a mid-run replica "
                            "kill drill when --replicas >= 2 (the CI "
                            "slo-smoke gate; implies --tenants 3 unless "
                            "given)")

    bserve = sub.add_parser(
        "bench-serve", parents=[common, backend_p],
        help="batched-serving benchmark: amortization + throughput sweep",
    )
    bserve.add_argument("--queries", type=int, default=256)
    bserve.add_argument("--batch-sizes", default="1,4,16,64",
                        help="comma-separated batch sizes for the "
                             "amortization sweep")
    bserve.add_argument("--queue-depths", default="64,256",
                        help="comma-separated queue depths for the "
                             "service sweep")
    bserve.add_argument("--windows", default="0.005",
                        help="comma-separated batching windows (seconds)")
    bserve.add_argument("--clients", type=int, default=None,
                        help="closed-loop clients (default: 2x batch size)")
    bserve.add_argument("--json", metavar="PATH", default=None,
                        help="write the sweep as a JSON artifact")

    mut = sub.add_parser(
        "mutate", parents=[common],
        help="streaming edge updates: incremental partition repair "
             "checked against a from-scratch rebuild",
    )
    mut.add_argument("--updates", type=_updates_arg, default=None,
                     metavar="SPEC",
                     help="update stream spec KIND[:key=value,...] with "
                          "KIND insert|delete|mixed and keys batches=, "
                          "size=, frac= (e.g. 'mixed:batches=4,size=64')")
    mut.add_argument("--batch-size", type=int, default=None, metavar="N",
                     help="override the spec's updates-per-batch size")
    mut.add_argument("--compact-every", type=int, default=4, metavar="N",
                     help="merge delta overlays into the packed arrays "
                          "every N batches")
    mut.add_argument("--smoke", action="store_true",
                     help="run the pinned equivalence-gate matrix "
                          "(insert/delete/mixed streams over R-MAT, "
                          "power-law and ring graphs; ignores --updates/"
                          "--scale/--mesh; the CI dynamic gate)")

    ocs = sub.add_parser("ocs", help="OCS-RMA microbenchmark (Fig. 14)")
    ocs.add_argument("--mib", type=int, default=32, help="stream size in MiB")
    ocs.add_argument("--seed", type=int, default=1)

    sssp_p = sub.add_parser(
        "sssp", parents=[common], help="weighted SSSP (Graph500 kernel 2b)"
    )
    sssp_p.add_argument("--root", type=int, default=None)
    sssp_p.add_argument(
        "--algorithm",
        choices=("delta-stepping", "bellman-ford"),
        default="delta-stepping",
    )
    sssp_p.add_argument("--delta", type=_positive_float_arg, default=None)

    algo = sub.add_parser(
        "algo", parents=[common, resil, backend_p],
        help="run a registered vertex program (sssp, pagerank, cc, ...)",
    )
    algo.add_argument(
        "program", nargs="?", default=None, metavar="PROGRAM",
        help="registered program name (see --list)",
    )
    algo.add_argument("--root", type=int, default=None,
                      help="source vertex for traversal programs "
                           "(default: max-degree hub)")
    algo.add_argument("--delta", type=_positive_float_arg, default=None,
                      metavar="WIDTH",
                      help="bucket width for sssp-delta (default: tuned)")
    algo.add_argument("--damping", type=_damping_arg, default=None,
                      help="PageRank damping factor in (0, 1)")
    algo.add_argument("--tol", type=_positive_float_arg, default=None,
                      help="PageRank convergence tolerance")
    algo.add_argument("--max-iterations", type=int, default=None,
                      metavar="N", help="iteration cap where the program "
                                        "takes one")
    algo.add_argument("--unit-weights", action="store_true",
                      help="run SSSP programs with unit weights instead "
                           "of the seeded weight table")
    algo.add_argument("--report", metavar="PATH", default=None,
                      help="write the run's RunReport JSON artifact")
    algo.add_argument("--trace", metavar="PATH", default=None, help=trace_help)
    algo.add_argument("--smoke", action="store_true",
                      help="run every registered program on the pinned "
                           "SCALE-12 smoke graph (ignores PROGRAM and "
                           "--scale/--mesh/--seed; matches the committed "
                           "CI baseline)")
    algo.add_argument("--list", action="store_true",
                      help="list registered programs and exit")

    return parser


def _write_trace(tracer, path) -> bool:
    from repro.obs.export import write_chrome_trace

    try:
        events = write_chrome_trace(tracer, path)
    except OSError as exc:
        print(f"error: cannot write trace to {path}: {exc}", file=sys.stderr)
        return False
    print(f"trace: {events} spans -> {path}")
    return True


def _cmd_graph500(args) -> int:
    from repro.runtime.backends import create_backend

    backend = create_backend(args.backend, workers=args.workers)
    try:
        return _cmd_graph500_impl(args, backend)
    finally:
        backend.close()


def _cmd_graph500_impl(args, backend) -> int:
    from repro.graph500.driver import run_graph500
    from repro.obs.tracer import Tracer

    tracer = Tracer() if args.trace else None
    rows, cols = args.mesh
    report = run_graph500(
        args.scale,
        rows,
        cols,
        seed=args.seed,
        num_roots=args.roots,
        e_threshold=args.e_threshold,
        h_threshold=args.h_threshold,
        validate=not args.no_validate,
        tracer=tracer,
        faults=args.faults,
        checkpoint_every=args.checkpoint_every,
        max_restarts=args.max_restarts,
        recovery_mode=args.recovery_mode,
        batch_roots=args.batch_roots,
        backend=backend,
    )
    print(report.render())
    print(f"harmonic_mean_GTEPS: {report.mean_gteps:.3f}")
    if report.resilience is not None:
        r = report.resilience
        print(
            "resilience: "
            f"{r.get('faults_fired', 0)} faults fired, "
            f"{r['crashes']} crash(es), {r['restarts']} restart(s), "
            f"{r.get('retries', 0)} retried transfer(s), "
            f"wasted {r['wasted_seconds']:.3e} s"
        )
    wrote = _write_trace(tracer, args.trace) if tracer is not None else True
    return 0 if report.validated and wrote else 1


def _cmd_bfs(args) -> int:
    from repro.runtime.backends import create_backend

    backend = create_backend(args.backend, workers=args.workers)
    try:
        return _cmd_bfs_impl(args, backend)
    finally:
        backend.close()


def _cmd_bfs_impl(args, backend) -> int:
    from repro.analysis.experiments import build_setup, run_15d
    from repro.analysis.reporting import ascii_table, format_seconds
    from repro.obs.tracer import Tracer

    tracer = Tracer() if (args.trace or args.flame) else None
    rows, cols = args.mesh
    setup = build_setup(args.scale, rows, cols, seed=args.seed)
    if args.root is not None:
        setup = type(setup)(
            setup.scale, setup.src, setup.dst, setup.num_vertices,
            setup.mesh, setup.machine, args.root,
        )
    part, res = run_15d(
        setup, e_threshold=args.e_threshold, h_threshold=args.h_threshold,
        tracer=tracer,
        faults=args.faults,
        checkpoint_every=args.checkpoint_every,
        max_restarts=args.max_restarts,
        recovery_mode=args.recovery_mode,
        backend=backend,
    )
    print(f"classes: {part.class_sizes()}")
    print(ascii_table(
        ["iter", "frontier"] + list(res.iterations[0].directions),
        [
            [r.index, r.frontier_size] + list(r.directions.values())
            for r in res.iterations
        ],
        title="per-iteration directions:",
    ))
    print(f"visited: {res.num_visited:,}/{setup.num_vertices:,} | "
          f"time: {format_seconds(res.total_seconds)} | "
          f"sim GTEPS: {setup.num_edges / res.total_seconds / 1e9:.1f}")
    resilient = getattr(res, "resilient", None)
    if resilient is not None:
        print(f"resilience: {resilient.summary()}")
    if args.timeline:
        from repro.analysis.timeline import render_timeline

        print()
        print(render_timeline(res, tracer=tracer))
    if args.flame:
        from repro.obs.export import render_flame

        print()
        print(render_flame(tracer))
    if args.trace and not _write_trace(tracer, args.trace):
        return 1
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.experiments import run_scaling_sweep
    from repro.analysis.reporting import ascii_table

    points = []
    for token in args.points.split(","):
        scale_s, mesh_s = token.strip().split(":")
        rows, cols = _mesh_arg(mesh_s)
        points.append((int(scale_s), rows, cols))
    sweep = run_scaling_sweep(points=tuple(points), seed=args.seed)
    base = sweep[0]
    print(ascii_table(
        ["nodes", "scale", "sim GTEPS", "efficiency"],
        [
            [
                p.nodes, p.scale, f"{p.gteps:.1f}",
                f"{100 * p.gteps / (base.gteps * p.nodes / base.nodes):.0f}%",
            ]
            for p in sweep
        ],
        title="weak scaling:",
    ))
    return 0


def _cmd_partitions(args) -> int:
    from repro.analysis.experiments import run_partition_comparison
    from repro.analysis.reporting import ascii_table

    rows, cols = args.mesh
    rows_out = run_partition_comparison(
        points=((args.scale, rows, cols),), seed=args.seed
    )
    print(ascii_table(
        ["method", "sim GTEPS", "delegate KiB/node", "comm MB"],
        [
            [
                r["method"], f"{r['gteps']:.1f}",
                f"{r['delegate_bytes_per_node'] / 1024:.1f}",
                f"{r['comm_bytes'] / 1e6:.2f}",
            ]
            for r in rows_out
        ],
        title=f"partitioning methods at SCALE {args.scale}, {rows * cols} nodes:",
    ))
    return 0


def _cmd_report(args) -> int:
    from repro.graph500.driver import run_graph500
    from repro.obs.metrics import MetricsRegistry, to_prometheus_text
    from repro.obs.report import bfs_smoke_report, report_from_graph500
    from repro.obs.tracer import Tracer

    registry = MetricsRegistry()
    tracer = Tracer() if args.trace else None
    if args.smoke:
        report = bfs_smoke_report(metrics=registry, tracer=tracer)
    else:
        rows, cols = args.mesh
        g500 = run_graph500(
            args.scale, rows, cols,
            seed=args.seed, num_roots=args.roots,
            e_threshold=args.e_threshold, h_threshold=args.h_threshold,
            tracer=tracer, metrics=registry,
        )
        report = report_from_graph500(
            g500,
            context=dict(
                scale=args.scale, rows=rows, cols=cols, seed=args.seed,
                num_roots=args.roots,
                e_threshold=args.e_threshold, h_threshold=args.h_threshold,
            ),
        )
    if args.out:
        path = report.save(args.out)
        print(f"run report: {path}")
    else:
        print(report.render())
    if args.prometheus:
        from pathlib import Path

        prom = Path(args.prometheus)
        prom.parent.mkdir(parents=True, exist_ok=True)
        prom.write_text(to_prometheus_text(registry))
        print(f"prometheus: {args.prometheus}")
    if args.metrics_json:
        import json
        from pathlib import Path

        from repro.obs.metrics import registry_to_json

        dest = Path(args.metrics_json)
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(json.dumps(registry_to_json(registry), indent=2,
                                   sort_keys=True) + "\n")
        print(f"metrics json: {args.metrics_json}")
    if tracer is not None and not _write_trace(tracer, args.trace):
        return 1
    return 0


def _cmd_compare(args) -> int:
    from repro.obs.report import (
        RunReport,
        compare_reports,
        parse_threshold,
        render_compare,
    )

    try:
        threshold = parse_threshold(args.max_regress)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        old = RunReport.load(args.old)
        new = RunReport.load(args.new)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load RunReport: {exc}", file=sys.stderr)
        return 2
    if old.fingerprint != new.fingerprint:
        print(
            "warning: config fingerprints differ "
            f"({old.fingerprint[:12]}... vs {new.fingerprint[:12]}...); "
            "metric deltas may reflect configuration, not code",
            file=sys.stderr,
        )
    deltas = compare_reports(old, new, threshold)
    print(render_compare(deltas, max_regress=threshold,
                         title=f"{args.old} -> {args.new}"))
    return 1 if any(d.regressed for d in deltas) else 0


def _cmd_ocs(args) -> int:
    from repro.analysis.reporting import ascii_bar_chart
    from repro.sort.bucket import mpe_bucket_sort
    from repro.sort.ocs import OCSConfig, simulate_ocs_rma

    rng = np.random.default_rng(args.seed)
    values = rng.integers(0, 2**63 - 1, size=args.mib * (1 << 20) // 8)
    buckets = values & 0xFF
    mpe = mpe_bucket_sort(values, buckets, 256)
    one = simulate_ocs_rma(values, buckets, 256, config=OCSConfig(num_cgs=1))
    six = simulate_ocs_rma(values, buckets, 256, config=OCSConfig(num_cgs=6))
    print(ascii_bar_chart(
        ["MPE", "1 CG", "6 CGs"],
        [
            mpe.throughput_bytes_per_s / 1e9,
            one.throughput_bytes_per_s / 1e9,
            six.throughput_bytes_per_s / 1e9,
        ],
        log=True,
        unit=" GB/s",
        title=f"bucketing {args.mib} MiB by low 8 bits:",
    ))
    print(f"6-CG utilization: {100 * six.bandwidth_utilization():.1f}%")
    return 0


def _cmd_sssp(args) -> int:
    from repro.analysis.experiments import build_setup, tuned_thresholds
    from repro.analysis.reporting import format_seconds
    from repro.core import partition_graph
    from repro.core import delta_stepping_sssp, generate_weights, sssp

    rows, cols = args.mesh
    setup = build_setup(args.scale, rows, cols, seed=args.seed)
    e_thr, h_thr = args.e_threshold, args.h_threshold
    if e_thr is None or h_thr is None:
        e_thr, h_thr = tuned_thresholds(args.scale)
    part = partition_graph(
        setup.src, setup.dst, setup.num_vertices, setup.mesh,
        e_threshold=e_thr, h_threshold=h_thr,
    )
    weights = generate_weights(setup.src.size, seed=args.seed + 1)
    root = args.root if args.root is not None else setup.root
    if args.algorithm == "delta-stepping":
        res = delta_stepping_sssp(
            part, root, weights, setup.src, setup.dst,
            delta=args.delta, machine=setup.machine,
        )
        print(f"delta = {res.delta:.4g}; {res.num_buckets} buckets, "
              f"{res.num_phases} phases")
    else:
        res = sssp(
            part, root, weights, edge_src=setup.src, edge_dst=setup.dst,
            machine=setup.machine,
        )
        print(f"{res.num_iterations} Bellman-Ford rounds")
    reached = int(np.count_nonzero(np.isfinite(res.distance)))
    print(f"reached {reached:,}/{setup.num_vertices:,} vertices; "
          f"{res.relaxations:,} relaxations; "
          f"simulated {format_seconds(res.total_seconds)}")
    return 0


def _cmd_algo(args) -> int:
    from repro.runtime.backends import create_backend

    backend = create_backend(args.backend, workers=args.workers)
    try:
        return _cmd_algo_impl(args, backend)
    finally:
        backend.close()


def _cmd_algo_impl(args, backend) -> int:
    from repro.core.programs import PROGRAM_REGISTRY, available_programs

    if args.list:
        from repro.analysis.reporting import ascii_table

        print(ascii_table(
            ("program", "needs root", "description"),
            [
                (spec.name, "yes" if spec.needs_root else "no",
                 spec.description)
                for _, spec in sorted(PROGRAM_REGISTRY.items())
            ],
            title="registered vertex programs:",
        ))
        return 0

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

    registry = MetricsRegistry()
    tracer = Tracer() if args.trace else None

    if args.smoke:
        from repro.obs.report import programs_smoke_report

        report = programs_smoke_report(metrics=registry, tracer=tracer)
        if args.report:
            print(f"run report: {report.save(args.report)}")
        else:
            print(report.render())
        if tracer is not None and not _write_trace(tracer, args.trace):
            return 1
        return 0

    if args.program is None:
        print("error: choose a program (or pass --smoke / --list); "
              f"available: {', '.join(available_programs())}",
              file=sys.stderr)
        print("usage: see `repro algo --help`", file=sys.stderr)
        return 2
    spec = PROGRAM_REGISTRY.get(args.program)
    if spec is None:
        print(f"error: unknown program {args.program!r}; "
              f"available: {', '.join(available_programs())}",
              file=sys.stderr)
        print("usage: see `repro algo --help`", file=sys.stderr)
        return 2

    from repro.analysis.experiments import build_setup, tuned_thresholds
    from repro.analysis.reporting import format_seconds
    from repro.core import DistributedBFS, build_program, partition_graph
    from repro.obs.report import report_from_bfs, report_from_program

    rows, cols = args.mesh
    setup = build_setup(args.scale, rows, cols, seed=args.seed)
    e_thr, h_thr = args.e_threshold, args.h_threshold
    if e_thr is None or h_thr is None:
        e_thr, h_thr = tuned_thresholds(args.scale)
    part = partition_graph(
        setup.src, setup.dst, setup.num_vertices, setup.mesh,
        e_threshold=e_thr, h_threshold=h_thr,
    )
    root = args.root if args.root is not None else setup.root
    context = dict(
        scale=args.scale, rows=rows, cols=cols, seed=args.seed,
        e_threshold=e_thr, h_threshold=h_thr,
    )
    engine = DistributedBFS(
        part, machine=setup.machine, tracer=tracer, metrics=registry,
        backend=backend,
    )

    if spec.native_bfs:
        res = engine.run(root)
        print(f"bfs: {res.num_iterations} levels, "
              f"visited {res.num_visited:,}/{setup.num_vertices:,}, "
              f"simulated {format_seconds(res.total_seconds)} "
              f"({res.simulated_gteps():.1f} GTEPS)")
        report = report_from_bfs(
            res, name="program.bfs", context={**context, "root": root},
            tracer=tracer, backend=backend,
        )
    else:
        params: dict = {}
        if spec.needs_root:
            params["root"] = root
        if args.program in ("sssp", "sssp-delta") and not args.unit_weights:
            from repro.core.programs import generate_weights

            params.update(
                weights=generate_weights(setup.src.size, seed=args.seed + 1),
                edge_src=setup.src, edge_dst=setup.dst,
            )
        if args.delta is not None and args.program == "sssp-delta":
            params["delta"] = args.delta
        if args.program == "pagerank":
            if args.damping is not None:
                params["damping"] = args.damping
            if args.tol is not None:
                params["tol"] = args.tol
        if args.max_iterations is not None and args.program in (
            "sssp", "pagerank"
        ):
            params["max_iterations"] = args.max_iterations
        try:
            program = build_program(args.program, part, **params)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print("usage: see `repro algo --help`", file=sys.stderr)
            return 2

        resilience: dict = {}
        if args.faults is not None or args.checkpoint_every:
            from repro.resilience import (
                FaultInjector,
                LevelCheckpointer,
                RecoveryPolicy,
                run_program_with_recovery,
            )

            injector = None
            if args.faults is not None:
                injector = FaultInjector(
                    args.faults, rng=np.random.default_rng(args.scale)
                )
                injector.plan.validate(setup.mesh.num_ranks)
            recovered = run_program_with_recovery(
                engine, program,
                faults=injector,
                checkpointer=LevelCheckpointer(
                    every=args.checkpoint_every, mesh=setup.mesh
                ),
                policy=RecoveryPolicy(
                    max_restarts=args.max_restarts, mode=args.recovery_mode
                ),
            )
            res = recovered.result
        else:
            recovered = None
            res = engine.run_program(program)

        scalars = ", ".join(
            f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(res.info.items())
            if isinstance(v, (int, float, bool))
        )
        print(f"{res.program}: {res.num_iterations} iterations, "
              f"{'converged' if res.converged else 'not converged'}, "
              f"simulated {format_seconds(res.total_seconds)}")
        if scalars:
            print(f"  {scalars}")
        if recovered is not None:
            print(f"  resilience: {recovered.summary()}")
        report = report_from_program(res, context={**context, **{
            k: v for k, v in params.items()
            if isinstance(v, (int, float, bool, str))
        }})

    if args.report:
        print(f"run report: {report.save(args.report)}")
    if tracer is not None and not _write_trace(tracer, args.trace):
        return 1
    return 0


def _cmd_mutate(args) -> int:
    from repro.analysis.reporting import ascii_table, format_seconds
    from repro.dynamic.gate import (
        EquivalenceReport,
        parts_bitwise_equal,
        run_equivalence_gate,
    )
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    if args.smoke:
        # The pinned gate matrix: small-world families at default batch
        # sizes (mostly recomputes) plus a long-diameter ring with tiny
        # batches, which forces the resume-from-level patched path.
        main_gate = run_equivalence_gate(metrics=metrics)
        ring_gate = run_equivalence_gate(
            families=("ring",), scale=8, batches=3, batch_size=3,
            metrics=metrics,
        )
        merged = EquivalenceReport(cases=main_gate.cases + ring_gate.cases)
        print(merged.summary())
        modes = merged.mode_counts()
        ok = merged.ok and modes.get("patched", 0) > 0
        print(f"dynamic gate: {'PASS' if ok else 'FAIL'} "
              f"({len(merged.cases)} streams, {merged.num_batches} batches, "
              f"patch modes {modes})")
        return 0 if ok else 1

    if args.updates is None:
        print("error: choose an update stream with --updates SPEC "
              "(or pass --smoke)", file=sys.stderr)
        print("usage: see `repro mutate --help`", file=sys.stderr)
        return 2

    from dataclasses import replace

    from repro.analysis.experiments import tuned_thresholds
    from repro.dynamic.repair import IncrementalGraph
    from repro.dynamic.updates import UpdateSpecError, generate_update_stream
    from repro.graph500.rmat import generate_edges
    from repro.runtime.mesh import ProcessMesh

    spec = args.updates
    try:
        if args.batch_size is not None:
            spec = replace(spec, size=args.batch_size)
        if args.compact_every < 1:
            raise UpdateSpecError("--compact-every must be >= 1")
    except UpdateSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("usage: see `repro mutate --help`", file=sys.stderr)
        return 2

    rows, cols = args.mesh
    num_vertices = 2 ** args.scale
    src, dst = generate_edges(args.scale, seed=args.seed)
    e_thr, h_thr = args.e_threshold, args.h_threshold
    if e_thr is None or h_thr is None:
        e_thr, h_thr = tuned_thresholds(args.scale)
    mesh = ProcessMesh(rows, cols)
    inc = IncrementalGraph(
        src, dst, num_vertices, mesh,
        e_threshold=e_thr, h_threshold=h_thr,
        compact_every=args.compact_every, metrics=metrics,
    )
    lo, hi = inc.edges()
    stream = generate_update_stream(lo, hi, num_vertices, spec,
                                    seed=args.seed)
    rows_out = []
    for batch in stream:
        rep = inc.apply_batch(batch)
        rows_out.append([
            rep.batch_index, rep.num_inserted_edges, rep.num_deleted_edges,
            rep.num_class_changes, rep.num_arcs_moved,
            f"{rep.seconds:.3e}", "yes" if rep.compacted else "",
        ])
    print(ascii_table(
        ["batch", "inserted", "deleted", "reclass", "arcs moved",
         "repair s", "compacted"],
        rows_out,
        title=f"{spec.kind} stream over SCALE {args.scale} "
              f"({inc.num_edges:,} live edges after "
              f"{len(stream)} batches):",
    ))
    part = inc.graph()
    problems = parts_bitwise_equal(part, inc.rebuild_reference())
    repair_s = inc.ledger.total_seconds
    rebuild_s = inc.rebuild_cost_estimate() * len(stream)
    print(f"repair cost: {format_seconds(repair_s)} simulated vs "
          f"{format_seconds(rebuild_s)} for {len(stream)} full rebuilds "
          f"({100 * repair_s / rebuild_s:.1f}%)")
    if problems:
        for p in problems[:8]:
            print(f"MISMATCH: {p}")
    print("equivalence vs rebuild:", "PASS" if not problems else "FAIL")
    return 0 if not problems else 1


def _cmd_chaos(args) -> int:
    from repro.analysis.reporting import ascii_table
    from repro.graph500.driver import run_graph500
    from repro.obs.report import SMOKE_CONFIG
    from repro.resilience.faults import parse_fault_spec

    if args.smoke:
        cfg = dict(SMOKE_CONFIG)
    else:
        rows, cols = args.mesh
        cfg = dict(
            scale=args.scale, rows=rows, cols=cols, seed=args.seed,
            num_roots=args.roots,
            e_threshold=args.e_threshold, h_threshold=args.h_threshold,
        )
    if args.matrix:
        scenarios = tuple(s.strip() for s in args.matrix.split("|") if s.strip())
    else:
        scenarios = DEFAULT_CHAOS_MATRIX
    # Parse every spec up front: a malformed matrix exits 2 before any run.
    plans = [parse_fault_spec(s) for s in scenarios]

    def _run(**resilience):
        return run_graph500(
            cfg["scale"], cfg["rows"], cfg["cols"],
            seed=cfg["seed"], num_roots=cfg["num_roots"],
            e_threshold=cfg["e_threshold"], h_threshold=cfg["h_threshold"],
            **resilience,
        )

    golden = _run()
    golden_time = float(golden.bfs_times.sum())
    print(
        f"golden: SCALE {cfg['scale']}, {cfg['rows']}x{cfg['cols']} mesh, "
        f"{golden.roots.size} roots, validated={golden.validated}"
    )
    all_ok = golden.validated
    rows_out = []
    for spec, plan in zip(scenarios, plans):
        rep = _run(faults=plan, checkpoint_every=args.checkpoint_every)
        match = (
            np.array_equal(rep.roots, golden.roots)
            and len(rep.results) == len(golden.results)
            and all(
                np.array_equal(a.parent, b.parent)
                for a, b in zip(golden.results, rep.results)
            )
        )
        all_ok &= match and rep.validated
        r = rep.resilience or {}
        overhead = 100.0 * (float(rep.bfs_times.sum()) / golden_time - 1.0)
        rows_out.append([
            spec,
            r.get("faults_fired", 0),
            r.get("crashes", 0),
            r.get("restarts", 0),
            r.get("retries", 0),
            f"{overhead:+.1f}%",
            "MATCH" if match else "DIFF",
            "ok" if rep.validated else "FAIL",
        ])
    print(ascii_table(
        ["fault spec", "fired", "crashes", "restarts", "retries",
         "overhead", "parents", "validated"],
        rows_out,
        title="chaos matrix vs. fault-free golden run:",
    ))
    print("chaos gate:", "PASS" if all_ok else "FAIL")
    return 0 if all_ok else 1


def _cmd_serve(args) -> int:
    from repro.runtime.backends import create_backend

    backend = create_backend(args.backend, workers=args.workers)
    try:
        return _cmd_serve_impl(args, backend)
    finally:
        backend.close()


class _StragglerEngine:
    """Wraps a batch engine so every traversal sleeps ``delay`` wall
    seconds first.  Simulated faults never move the wall clock, so this
    is the honest way to make a wall-clock SLO fire in the CI smoke."""

    def __init__(self, engine, delay: float) -> None:
        self._engine = engine
        self._delay = float(delay)

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def run_batch(self, roots, **kwargs):
        import time

        time.sleep(self._delay)
        return self._engine.run_batch(roots, **kwargs)


def _cmd_serve_cluster(args, backend) -> int:
    from dataclasses import replace

    from repro.analysis.reporting import ascii_table, format_seconds
    from repro.cluster import (
        build_registry,
        parse_tenant_spec,
        run_cluster_session,
    )
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.workload import make_diurnal_workload

    rows, cols = args.mesh
    scale, seed = args.scale, args.seed
    queries, duration = args.queries, args.duration
    hot_fraction, hot_set = args.hot_fraction, args.hot_set
    validate = args.validate
    tenants_spec = args.tenants
    if args.smoke:
        # Pinned configuration for the CI slo-smoke gate: small tenant
        # graphs, bit-exact validation, and (with >= 2 replicas) a
        # mid-run replica kill so the failover path runs every time.
        scale, rows, cols, seed = 9, 2, 2, 7
        queries, duration = 120, 0.3
        hot_fraction, hot_set = 0.8, 8
        validate = True
        if tenants_spec is None:
            tenants_spec = "3"
    specs = parse_tenant_spec(
        tenants_spec, scale=scale, rows=rows, cols=cols, seed=seed
    )
    if args.quota is not None:
        specs = [replace(s, quota=args.quota) for s in specs]
    metrics = MetricsRegistry()
    registry = build_registry(specs, backend=backend)
    workload = make_diurnal_workload(
        registry.degrees_map(), queries, seed=seed,
        duration_seconds=duration,
        hot_fraction=hot_fraction, hot_set_size=hot_set,
    )
    kill_at = None
    if args.smoke and args.replicas >= 2:
        kill_at = ("r0", queries // 2)
    expected = None
    if validate:
        expected = {}
        for tenant in registry:
            mine = sorted(
                {q.root for q in workload.queries
                 if q.tenant == tenant.tenant_id}
            )
            expected[tenant.tenant_id] = {
                r: tenant.sequential.run(r).parent for r in mine
            }
    telemetry = None
    if args.telemetry_port is not None:
        telemetry = dict(
            port=args.telemetry_port, interval=args.telemetry_interval
        )
    session = run_cluster_session(
        registry, workload,
        replicas=args.replicas, expected=expected,
        max_shed_retries=10_000, kill_at=kill_at, telemetry=telemetry,
        batch_size=args.batch_size, batch_window=args.batch_window,
        metrics=metrics,
    )
    if telemetry is None:
        report, cluster = session
        telem = None
    else:
        report, cluster, telem = session
    per_tenant = report.per_tenant()
    slo_docs = cluster.slo_status()
    table_rows = []
    for tenant in registry:
        tid = tenant.tenant_id
        sub = per_tenant.get(tid)
        stats = tenant.stats
        slo_state = slo_docs.get(tid, {}).get("status", "ok")
        table_rows.append([
            tid, tenant.spec.slo_class,
            sub.num_queries if sub else 0,
            sub.served if sub else 0,
            sub.typed_sheds if sub else 0,
            sub.failed if sub else 0,
            f"{100 * stats.cache_hit_rate:.0f}%",
            format_seconds(stats.p50_seconds),
            format_seconds(stats.p99_seconds),
            slo_state,
        ])
    print(ascii_table(
        ("tenant", "class", "queries", "served", "sheds", "failed",
         "hit rate", "p50", "p99", "slo"),
        table_rows,
        title=f"cluster serving: {len(registry)} tenants x "
              f"{args.replicas} replicas (SCALE {scale}, {rows}x{cols} "
              f"per tenant), {queries} queries over {duration:g}s "
              f"diurnal workload:",
    ))
    print(f"aggregate: {report.served} served "
          f"({report.cache_hits} cached), {report.typed_sheds} typed "
          f"sheds, {report.failed} failed, "
          f"{report.num_queries - report.accounted} silently dropped; "
          f"{cluster.stats.batches} batches, "
          f"{cluster.stats.replays} failover replays; "
          f"replicas live: {len(cluster.live_replicas)}/"
          f"{len(cluster.replica_ids)}")
    ok = True
    if report.accounted != report.num_queries:
        print(f"FAIL: {report.num_queries - report.accounted} queries "
              "got no response and no typed shed")
        ok = False
    if report.failed:
        print(f"FAIL: {report.failed} queries failed")
        ok = False
    if expected is not None and report.wrong_parents:
        print(f"FAIL: {report.wrong_parents}/{report.validated} validated "
              "parents wrong")
        ok = False
    elif expected is not None:
        print(f"validated: {report.validated} responses bit-identical to "
              "sequential runs")
    if kill_at is not None:
        downs = len(cluster.replica_ids) - len(cluster.live_replicas)
        if downs != 1:
            print(f"FAIL: kill drill expected exactly 1 replica down, "
                  f"found {downs}")
            ok = False
        else:
            print(f"failover drill: replica {kill_at[0]} killed mid-run; "
                  "in-flight batch re-routed, parents validated")
    if args.min_hit_rate is not None \
            and not report.cache_hit_rate > args.min_hit_rate:
        print(f"FAIL: cache hit rate {report.cache_hit_rate:.3f} "
              f"not above {args.min_hit_rate:g}")
        ok = False
    if telem is not None:
        print(f"telemetry: port {telem.port}, {telem.samples} samples, "
              f"scrapes {telem.scrapes}")
        if not telem.scrapes.get("/metrics") \
                or not telem.scrapes.get("/healthz"):
            print("FAIL: telemetry endpoint was never scraped successfully")
            ok = False
    if args.out:
        import json
        from pathlib import Path

        doc = {
            "config": {
                "scale": scale, "mesh": f"{rows}x{cols}", "seed": seed,
                "replicas": args.replicas, "queries": queries,
                "duration_seconds": duration,
                "tenants": {t.tenant_id: t.spec.slo_class for t in registry},
            },
            "tenants": {
                tid: {
                    "slo_class": self_doc["slo_class"],
                    "requests": self_doc["requests"],
                    "completed": self_doc["completed"],
                    "cache_hits": self_doc["cache_hits"],
                    "shed": self_doc["shed"],
                    "failed": self_doc["failed"],
                    "p50_seconds": self_doc["p50_seconds"],
                    "p99_seconds": self_doc["p99_seconds"],
                }
                for tid, self_doc in
                cluster.tenants_snapshot()["tenants"].items()
            },
            "report": {
                "num_queries": report.num_queries,
                "served": report.served,
                "cache_hits": report.cache_hits,
                "typed_sheds": report.typed_sheds,
                "failed": report.failed,
                "accounted": report.accounted,
                "validated": report.validated,
                "wrong_parents": report.wrong_parents,
                "p50_seconds": report.latency_percentile(50),
                "p99_seconds": report.latency_percentile(99),
            },
            "slo": slo_docs,
            "replicas": {
                rid: rid in cluster.live_replicas
                for rid in cluster.replica_ids
            },
            "gate_passed": ok,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    print("cluster gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_serve_impl(args, backend) -> int:
    if args.tenants is not None or args.smoke:
        return _cmd_serve_cluster(args, backend)
    from repro.analysis.reporting import ascii_table, format_seconds
    from repro.obs.export import write_chrome_trace
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.report import report_from_serve
    from repro.obs.slo import SLOSpec
    from repro.obs.tracer import NULL_TRACER, Tracer
    from repro.serve.bench import build_serving_pair
    from repro.serve.workload import make_workload_roots, run_serving_session

    rows, cols = args.mesh
    metrics = MetricsRegistry()
    tracer = Tracer() if args.trace else NULL_TRACER
    sequential, batched = build_serving_pair(
        args.scale, rows, cols, seed=args.seed,
        e_threshold=args.e_threshold, h_threshold=args.h_threshold,
        backend=backend, tracer=tracer, metrics=metrics,
    )
    roots = make_workload_roots(
        batched.part.degrees, args.queries, seed=args.seed,
        hot_fraction=args.hot_fraction, hot_set_size=args.hot_set,
    )
    expected = None
    if args.validate:
        expected = {
            int(r): sequential.run(int(r)).parent for r in np.unique(roots)
        }
    faults = None
    if args.faults is not None:
        from repro.resilience.faults import FaultInjector

        faults = FaultInjector(
            args.faults, rng=np.random.default_rng(args.seed)
        )
    engine = batched
    if args.straggler_ms is not None:
        engine = _StragglerEngine(batched, args.straggler_ms / 1e3)
    telemetry = None
    if args.telemetry_port is not None:
        slos = args.slo if args.slo else [SLOSpec("total", 0.25, 0.99)]
        telemetry = dict(
            port=args.telemetry_port, interval=args.telemetry_interval,
            slos=slos,
        )
    session = run_serving_session(
        engine, roots,
        clients=args.clients, expected=expected,
        batch_size=args.batch_size, queue_depth=args.queue_depth,
        batch_window=args.batch_window, faults=faults, metrics=metrics,
        tracer=tracer, telemetry=telemetry,
    )
    if telemetry is None:
        report, service = session
        telem = None
    else:
        report, service, telem = session
    stats = service.stats
    table_rows = [
        ("queries", report.num_queries),
        ("served", report.served),
        ("cache hits", f"{report.cache_hits} "
                       f"({100 * report.cache_hit_rate:.0f}%)"),
        ("shed retries", report.shed_retries),
        ("failed", report.failed),
        ("batches", stats.batches),
        ("mean batch size", f"{stats.mean_batch_size:.1f}"),
        ("batch replays", stats.replays),
        ("p50 latency", format_seconds(stats.p50_seconds)),
        ("p99 latency", format_seconds(stats.p99_seconds)),
        ("sim seconds/query", f"{stats.sim_seconds_per_query:.3e}"),
    ]
    if expected is not None:
        table_rows.append(
            ("wrong parents",
             f"{report.wrong_parents}/{report.validated} validated")
        )
    print(ascii_table(
        ("stat", "value"), table_rows,
        title=f"serving SCALE {args.scale} on {rows}x{cols}: "
              f"batch<={args.batch_size}, queue<={args.queue_depth}, "
              f"window {args.batch_window * 1e3:g} ms",
    ))
    if args.out:
        run_report = report_from_serve(
            service, report,
            context=dict(
                scale=args.scale, rows=rows, cols=cols, seed=args.seed,
                queries=args.queries, clients=args.clients,
                hot_fraction=args.hot_fraction, hot_set=args.hot_set,
            ),
        )
        print(f"run report: {run_report.save(args.out)}")
    if args.trace:
        n = write_chrome_trace(tracer, args.trace, clock="wall")
        print(f"chrome trace: {args.trace} ({n} events, wall clock)")
    ok = report.failed == 0 and report.wrong_parents == 0
    if ok and report.served != report.num_queries:
        print(f"FAIL: {report.num_queries - report.served} queries dropped")
        ok = False
    if ok and args.min_hit_rate is not None \
            and not report.cache_hit_rate > args.min_hit_rate:
        print(f"FAIL: cache hit rate {report.cache_hit_rate:.3f} "
              f"not above {args.min_hit_rate:g}")
        ok = False
    if telem is not None:
        print(f"telemetry: port {telem.port}, {telem.samples} samples, "
              f"scrapes {telem.scrapes}")
        if telem.slo is not None:
            for row in telem.slo["slos"]:
                print(f"  SLO {row['name']}: {row['status']} "
                      f"(burn {row['burn_rate']:.2f}, "
                      f"{row['bad']}/{row['observed']} bad in "
                      f"{row['window_seconds']:g}s)")
            for alert in telem.slo["alerts"]:
                print(f"  alert [{alert['severity']}] {alert['message']}")
        if not telem.scrapes.get("/metrics") \
                or not telem.scrapes.get("/healthz"):
            print("FAIL: telemetry endpoint was never scraped successfully")
            ok = False
        if args.expect_slo is not None:
            status = (telem.slo or {}).get("status", "ok")
            fired = status != "ok" or bool((telem.slo or {}).get("alerts"))
            if args.expect_slo == "green" and fired:
                print(f"FAIL: expected green SLO, got status {status!r}")
                ok = False
            elif args.expect_slo == "fired" and not fired:
                print("FAIL: expected the SLO to fire, but it stayed green")
                ok = False
    elif args.expect_slo is not None:
        print("FAIL: --expect-slo requires --telemetry-port")
        ok = False
    return 0 if ok else 1


def _cmd_bench_serve(args) -> int:
    from repro.runtime.backends import create_backend

    backend = create_backend(args.backend, workers=args.workers)
    try:
        return _cmd_bench_serve_impl(args, backend)
    finally:
        backend.close()


def _cmd_bench_serve_impl(args, backend) -> int:
    from repro.analysis.reporting import ascii_table
    from repro.graph500.driver import sample_roots
    from repro.serve.bench import (
        amortization_sweep,
        build_serving_pair,
        service_sweep,
    )

    rows, cols = args.mesh
    sequential, batched = build_serving_pair(
        args.scale, rows, cols, seed=args.seed,
        e_threshold=args.e_threshold, h_threshold=args.h_threshold,
        backend=backend,
    )
    batch_sizes = [int(b) for b in args.batch_sizes.split(",") if b.strip()]
    roots = sample_roots(
        batched.part.degrees, max(batch_sizes),
        rng=np.random.default_rng(args.seed),
    )
    amort = amortization_sweep(
        sequential, batched, roots, batch_sizes=batch_sizes
    )
    print(ascii_table(
        ["batch", "sim s/query", "sequential s", "amortization",
         "bytes ratio", "waves"],
        [
            [p.batch_size, f"{p.amortized_seconds:.3e}",
             f"{p.sequential_seconds:.3e}",
             f"{p.amortization_factor:.1f}x",
             f"{p.batch_bytes / p.sequential_bytes:.2f}", p.waves]
            for p in amort
        ],
        title=f"amortized simulated cost per query "
              f"(SCALE {args.scale}, {rows}x{cols}):",
    ))
    depths = [int(d) for d in args.queue_depths.split(",") if d.strip()]
    windows = [float(w) for w in args.windows.split(",") if w.strip()]
    points = service_sweep(
        batched, batched.part.degrees,
        num_queries=args.queries, seed=args.seed,
        batch_sizes=(max(batch_sizes),),
        queue_depths=depths, batch_windows=windows, clients=args.clients,
    )
    print()
    print(ascii_table(
        ["depth", "window", "served", "hit rate", "mean batch",
         "qps", "p50", "p99"],
        [
            [p.queue_depth, f"{p.batch_window * 1e3:g}ms", p.served,
             f"{100 * p.cache_hit_rate:.0f}%", f"{p.mean_batch_size:.1f}",
             f"{p.qps:.0f}", f"{p.p50_seconds * 1e3:.1f}ms",
             f"{p.p99_seconds * 1e3:.1f}ms"]
            for p in points
        ],
        title=f"end-to-end service sweep ({args.queries} queries):",
    ))
    if args.json:
        import json
        from pathlib import Path

        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps({
            "schema": "repro.bench_serve/1",
            "config": dict(
                scale=args.scale, rows=rows, cols=cols, seed=args.seed,
                queries=args.queries,
            ),
            "amortization": [p.to_dict() for p in amort],
            "service": [p.to_dict() for p in points],
        }, indent=2, sort_keys=True) + "\n")
        print(f"json: {out}")
    return 0


_COMMANDS = {
    "graph500": _cmd_graph500,
    "bfs": _cmd_bfs,
    "sweep": _cmd_sweep,
    "partitions": _cmd_partitions,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "ocs": _cmd_ocs,
    "sssp": _cmd_sssp,
    "algo": _cmd_algo,
    "chaos": _cmd_chaos,
    "mutate": _cmd_mutate,
    "serve": _cmd_serve,
    "bench-serve": _cmd_bench_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.resilience import CheckpointError, FaultSpecError, RecoveryError

    try:
        return _COMMANDS[args.command](args)
    except (FaultSpecError, CheckpointError, RecoveryError) as exc:
        # Resilience misconfiguration (bad spec, rank out of range,
        # corrupt snapshot, restart budget exhausted) is a usage-class
        # error: report it and exit 2 like argparse does, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        print(f"usage: see `{parser.prog} {args.command} --help`", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
