"""Deficit-round-robin router over per-tenant admission queues.

The router is a pure data structure — no clock, no asyncio — so the
fairness policy is unit-testable deterministically.  Each tenant owns a
bounded FIFO; :meth:`ClusterRouter.next_batch` selects the tenant to
serve next and pops at most one MSBFS batch (``<= batch_size``
requests) from **that tenant only** — lanes never mix graphs.

Scheduling is classic deficit round-robin with per-request cost 1:

- Each tenant has ``quantum = weight * batch_size`` credits.
- A visit tops the tenant's deficit up by one quantum (only when it has
  run dry, so credits never accumulate while a tenant sits idle), then
  serves full batches until the deficit is spent; every dequeued
  request charges 1.
- When a tenant's queue empties its deficit resets to zero — an idle
  tenant cannot bank credit and burst later.

Over one full ring cycle a backlogged tenant therefore receives
``weight * batch_size`` requests of service: a weight-4 (gold) tenant
gets 4 consecutive full batches to a weight-1 (bronze) tenant's 1, and
a hot tenant can never starve a cold one — the cold tenant's batch is
at most ``sum(other quanta)`` requests away.
"""

from __future__ import annotations

from collections import deque

__all__ = ["ClusterRouter", "QueueFull"]


class QueueFull(Exception):
    """A tenant's admission queue is at quota (caller sheds typed)."""

    def __init__(self, tenant_id: str, depth: int, quota: int) -> None:
        super().__init__(
            f"tenant {tenant_id!r} admission queue full ({depth}/{quota})"
        )
        self.tenant_id = tenant_id
        self.depth = depth
        self.quota = quota


class _TenantQueue:
    __slots__ = ("tenant_id", "queue", "quota", "weight", "quantum", "deficit")

    def __init__(self, tenant_id: str, *, quota: int, weight: int,
                 batch_size: int) -> None:
        self.tenant_id = tenant_id
        self.queue: deque = deque()
        self.quota = int(quota)
        self.weight = int(weight)
        self.quantum = int(weight) * int(batch_size)
        self.deficit = 0


class ClusterRouter:
    """Weighted-fair admission queues for a set of tenants."""

    def __init__(self, tenants, *, batch_size: int = 64) -> None:
        """``tenants`` is an iterable of objects exposing ``tenant_id``
        and a spec with ``resolved_quota`` / ``resolved_weight`` (a
        :class:`~repro.cluster.tenants.Tenant`), or ``(tenant_id,
        quota, weight)`` triples in tests."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self._queues: dict[str, _TenantQueue] = {}
        self._order: list[str] = []
        self._cursor = 0
        for tenant in tenants:
            if isinstance(tenant, tuple):
                tid, quota, weight = tenant
            else:
                tid = tenant.tenant_id
                quota = tenant.spec.resolved_quota
                weight = tenant.spec.resolved_weight
            if tid in self._queues:
                raise ValueError(f"duplicate tenant id {tid!r}")
            self._queues[tid] = _TenantQueue(
                tid, quota=quota, weight=weight, batch_size=self.batch_size
            )
            self._order.append(tid)
        if not self._order:
            raise ValueError("router needs at least one tenant")

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def depth(self, tenant_id: str) -> int:
        return len(self._queues[tenant_id].queue)

    def quota(self, tenant_id: str) -> int:
        return self._queues[tenant_id].quota

    @property
    def pending(self) -> int:
        return sum(len(q.queue) for q in self._queues.values())

    def push(self, tenant_id: str, request) -> None:
        """Admit one request, or raise :class:`QueueFull` at quota."""
        tq = self._queues[tenant_id]
        if len(tq.queue) >= tq.quota:
            raise QueueFull(tenant_id, len(tq.queue), tq.quota)
        tq.queue.append(request)

    def push_front(self, tenant_id: str, requests) -> None:
        """Re-queue in-flight requests at the head, preserving order.

        Failover path: quota is deliberately not enforced — requests
        that were already admitted must not be shed by the re-route.
        """
        self._queues[tenant_id].queue.extendleft(reversed(list(requests)))

    def pop_extra(self, tenant_id: str, budget: int) -> list:
        """Pop up to ``budget`` more of one tenant's requests to fill a
        short batch after the batching window.  Deliberately does not
        charge the deficit — the forming batch already holds this
        tenant's scheduling turn."""
        tq = self._queues[tenant_id]
        extra = []
        while budget > 0 and tq.queue:
            extra.append(tq.queue.popleft())
            budget -= 1
        return extra

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % len(self._order)

    def next_batch(self):
        """Pop the next per-tenant batch, or ``None`` if all queues idle.

        Returns ``(tenant_id, [request, ...])`` with at most
        ``batch_size`` requests, all from one tenant.  The cursor stays
        on a tenant until its deficit is spent, so a gold tenant takes
        its weighted run of consecutive batches before the ring moves
        on.
        """
        for _ in range(len(self._order)):
            tq = self._queues[self._order[self._cursor]]
            if not tq.queue:
                tq.deficit = 0
                self._advance()
                continue
            if tq.deficit < 1:
                tq.deficit += tq.quantum
            take = min(self.batch_size, len(tq.queue), tq.deficit)
            batch = [tq.queue.popleft() for _ in range(take)]
            tq.deficit -= take
            if not tq.queue:
                tq.deficit = 0
                self._advance()
            elif tq.deficit < 1:
                self._advance()
            return tq.tenant_id, batch
        return None

    def drain(self):
        """Pop every queued request (shutdown); yields (tenant_id, request)."""
        for tid in self._order:
            tq = self._queues[tid]
            while tq.queue:
                yield tid, tq.queue.popleft()
            tq.deficit = 0

    def snapshot(self) -> dict:
        """Queue depths/quotas/deficits for the /tenants telemetry view."""
        return {
            tid: {
                "depth": len(tq.queue),
                "quota": tq.quota,
                "weight": tq.weight,
                "deficit": tq.deficit,
            }
            for tid, tq in self._queues.items()
        }
