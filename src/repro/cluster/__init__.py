"""repro.cluster — sharded multi-tenant serving with SLOs and failover.

The "millions of users" leg of the roadmap: M resident tenant graphs
(:mod:`~repro.cluster.tenants`) served by N replicas behind a
weighted-fair deficit-round-robin router (:mod:`~repro.cluster.router`),
with per-tenant admission quotas, per-tenant SLO burn-rate monitoring,
typed shed/fail/failover surfaces, and bit-identical re-routing of a
down replica's in-flight batches (:mod:`~repro.cluster.service`).
Open-loop diurnal workloads drive it (:mod:`~repro.cluster.workload`).
"""

from .router import ClusterRouter, QueueFull
from .service import ClusterIngestReport, ClusterService, ReplicaDown
from .tenants import (
    SLO_CLASSES,
    Tenant,
    TenantRegistry,
    TenantSpec,
    build_registry,
    build_tenant,
    parse_tenant_spec,
)
from .workload import run_cluster_session, run_cluster_workload

__all__ = [
    "SLO_CLASSES",
    "ClusterIngestReport",
    "ClusterRouter",
    "ClusterService",
    "QueueFull",
    "ReplicaDown",
    "Tenant",
    "TenantRegistry",
    "TenantSpec",
    "build_registry",
    "build_tenant",
    "parse_tenant_spec",
    "run_cluster_session",
    "run_cluster_workload",
]
