"""Open-loop multi-tenant workload driving for the cluster plane.

The single-graph :func:`~repro.serve.workload.run_workload` driver is
*closed-loop*: N clients each keep one query in flight, so offered load
adapts to service speed.  Fairness and overload gates need the
opposite — an **open loop** that dispatches each
:class:`~repro.serve.workload.ClusterQuery` at its scheduled arrival
time regardless of how the service is coping, so a hot tenant really
does offer 10× load and a 2× overload really is 2×.

Every query's terminal outcome is recorded: served (with optional
bit-exact parent validation against a per-tenant expectation), failed
typed (:class:`~repro.serve.service.TraversalError` /
:class:`~repro.cluster.service.ReplicaDown`), or shed typed
(:class:`~repro.serve.service.Overloaded` after the retry budget, which
defaults to 0 — under overload gates a shed is a terminal, *accounted*
answer, not something to hide behind retries).  The report's
``accounted`` therefore equals ``num_queries`` exactly when no request
was silently dropped — the gate the benchmark enforces.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.serve.service import Overloaded, TraversalError
from repro.serve.workload import ClusterWorkload, QueryOutcome, WorkloadReport

from .service import ClusterService, ReplicaDown

__all__ = ["run_cluster_workload", "run_cluster_session"]


async def run_cluster_workload(
    cluster: ClusterService,
    workload: ClusterWorkload,
    *,
    time_scale: float = 1.0,
    expected: dict | None = None,
    shed_backoff: float = 0.0005,
    max_shed_retries: int = 0,
    kill_at: tuple[str, int] | None = None,
) -> WorkloadReport:
    """Dispatch a timed workload open-loop; return per-query outcomes.

    ``time_scale`` compresses (<1) or stretches (>1) the workload's
    arrival times.  ``expected`` maps tenant id -> {root: parent array}
    for bit-exact validation.  ``kill_at=(replica_id, query_index)``
    calls :meth:`ClusterService.kill_replica` just before dispatching
    that query — the failure drill used by the smoke and the benchmark.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be > 0")
    loop = asyncio.get_running_loop()
    outcomes: list[QueryOutcome] = []

    async def one(query) -> None:
        retries = 0
        while True:
            try:
                response = await cluster.submit(query.tenant, query.root)
            except Overloaded as exc:
                if retries >= max_shed_retries:
                    outcomes.append(
                        QueryOutcome(
                            root=query.root,
                            tenant=query.tenant,
                            shed=True,
                            shed_retries=retries,
                            error=str(exc),
                        )
                    )
                    return
                retries += 1
                await asyncio.sleep(shed_backoff)
                continue
            except (TraversalError, ReplicaDown) as exc:
                outcomes.append(
                    QueryOutcome(
                        root=query.root,
                        tenant=query.tenant,
                        shed_retries=retries,
                        error=str(exc),
                    )
                )
                return
            correct = None
            if expected is not None:
                want = expected.get(query.tenant, {}).get(query.root)
                if want is not None:
                    correct = bool(np.array_equal(response.parent, want))
            outcomes.append(
                QueryOutcome(
                    root=query.root,
                    tenant=query.tenant,
                    cached=response.cached,
                    correct=correct,
                    total_seconds=response.total_seconds,
                    batch_lanes=response.batch_lanes,
                    shed_retries=retries,
                )
            )
            return

    t0 = loop.time()
    tasks = []
    for index, query in enumerate(workload.queries):
        if kill_at is not None and index == kill_at[1]:
            cluster.kill_replica(kill_at[0])
        due = t0 + query.arrival_seconds * time_scale
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(one(query)))
    if kill_at is not None and kill_at[1] >= len(workload.queries):
        cluster.kill_replica(kill_at[0])
    if tasks:
        await asyncio.gather(*tasks)
    return WorkloadReport(outcomes=outcomes)


def run_cluster_session(
    registry,
    workload: ClusterWorkload,
    *,
    replicas: int = 2,
    expected: dict | None = None,
    time_scale: float = 1.0,
    max_shed_retries: int = 0,
    kill_at: tuple[str, int] | None = None,
    telemetry: dict | None = None,
    **cluster_kwargs,
):
    """Synchronous convenience: build a :class:`ClusterService` over
    ``registry``, run ``workload`` open-loop to completion, stop the
    cluster, and return ``(report, cluster)`` for stats inspection.

    ``telemetry`` (optional) starts the live plane for the session and
    makes the return a 3-tuple ``(report, cluster, TelemetrySummary)``
    — keys as in :func:`~repro.serve.workload.run_serving_session`
    (``port``, ``interval``, ``scrape``); the cluster's own per-tenant
    SLO monitors back the ``/slo`` views.  Requires ``metrics=`` a real
    registry in ``cluster_kwargs``.
    """

    async def main():
        cluster = ClusterService(
            registry, replicas=replicas, **cluster_kwargs
        )
        if telemetry is None:
            async with cluster:
                report = await run_cluster_workload(
                    cluster,
                    workload,
                    time_scale=time_scale,
                    expected=expected,
                    max_shed_retries=max_shed_retries,
                    kill_at=kill_at,
                )
            return report, cluster

        from repro.obs.timeline import TelemetrySampler
        from repro.serve.telemetry import TelemetryServer
        from repro.serve.workload import TelemetrySummary, _scrape_loop

        metrics = cluster_kwargs.get("metrics")
        if metrics is None or not getattr(metrics, "enabled", False):
            raise ValueError(
                "telemetry requires metrics= a real MetricsRegistry"
            )
        interval = float(telemetry.get("interval", 0.05))
        sampler = TelemetrySampler(metrics, interval=interval)
        server = TelemetryServer(
            cluster,
            metrics,
            port=int(telemetry.get("port", 0)),
            sampler=sampler,
            cluster=cluster,
        )
        summary = TelemetrySummary()
        async with cluster:
            async with server:
                summary.port = server.port
                await sampler.start()
                scraper = None
                if telemetry.get("scrape", True):
                    scraper = asyncio.create_task(
                        _scrape_loop(
                            summary, "127.0.0.1", server.port, interval
                        )
                    )
                try:
                    report = await run_cluster_workload(
                        cluster,
                        workload,
                        time_scale=time_scale,
                        expected=expected,
                        max_shed_retries=max_shed_retries,
                        kill_at=kill_at,
                    )
                    await asyncio.sleep(interval)
                finally:
                    if scraper is not None:
                        scraper.cancel()
                        try:
                            await scraper
                        except asyncio.CancelledError:
                            pass
                    await sampler.stop()
                sampler.sample()
                summary.slo = cluster.slo_status()
        summary.samples = sampler.taken
        return report, cluster, summary

    return asyncio.run(main())
