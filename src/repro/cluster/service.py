"""The sharded multi-tenant serving plane.

A :class:`ClusterService` serves M resident tenant graphs from N
service *replicas*.  Admission is per tenant: a request enters its
tenant's bounded queue (quota exhaustion sheds with a typed, fully
attributed :class:`~repro.serve.service.Overloaded`), the
:class:`~repro.cluster.router.ClusterRouter` picks which tenant's batch
runs next under deficit round-robin, and each replica executes one
MSBFS batch at a time — packed from exactly one tenant, so lanes never
mix graphs and every lane's parent tree stays bit-identical to a
sequential run on that tenant's graph.

Failover reuses the batch-replay machinery: a replica that takes a
:class:`~repro.resilience.faults.RankCrashError` (or is killed via
:meth:`ClusterService.kill_replica` mid-batch) is marked down, its
in-flight batch is re-queued at the **front** of the owning tenant's
queue with submit times and trace ids intact, and a surviving replica
re-runs it — the re-routed batch's parents are bit-identical to a
crash-free run.  Requests whose batch crashed more than ``max_replays``
times fail with a typed :class:`~repro.serve.service.TraversalError`;
when no live replica remains, queued and incoming requests fail with a
typed :class:`ReplicaDown`.  Every transition is metered:
``cluster_failovers{replica=...}`` counts detections and
``cluster_replicas_live`` tracks capacity.

Per-tenant metric families carry a ``tenant`` label —
``cluster_requests{tenant,outcome}``,
``cluster_latency_seconds{tenant,stage}``,
``cluster_batches{tenant,outcome}``, ``cluster_queue_depth{tenant}`` —
and one :class:`~repro.obs.slo.SLOMonitor` per tenant (``match={"tenant":
...}``) evaluates that tenant's class SLOs over its own staged latency
histograms.
"""

from __future__ import annotations

import asyncio
import functools
import time
from collections import OrderedDict

import numpy as np

from repro.obs.metrics import NULL_METRICS
from repro.obs.slo import SLOMonitor
from repro.resilience.faults import RankCrashError
from repro.serve.service import (
    LATENCY_BUCKETS,
    Overloaded,
    RequestTimeline,
    ServeStats,
    TraversalError,
    TraversalResponse,
    _Request,
)

from .router import ClusterRouter
from .tenants import Tenant, TenantRegistry

__all__ = ["ClusterService", "ReplicaDown", "ClusterIngestReport"]


class ReplicaDown(RuntimeError):
    """No live replica remains to serve the request (typed, attributed)."""

    def __init__(
        self, *, tenant: str = "", trace_id: str = "", replicas: int = 0
    ) -> None:
        detail = ""
        if tenant:
            detail += f" tenant={tenant}"
        if trace_id:
            detail += f" trace={trace_id}"
        super().__init__(
            f"no live service replica ({replicas} configured)"
            + (f" [{detail.strip()}]" if detail else "")
        )
        self.tenant = tenant
        self.trace_id = trace_id
        self.replicas = replicas


class ClusterIngestReport:
    """Outcome of one per-tenant :meth:`ClusterService.ingest_updates`."""

    def __init__(self, tenant: str, reports, *, num_updates: int,
                 cache_evicted: int, cache_rekeyed: int,
                 old_fingerprint: str, new_fingerprint: str) -> None:
        self.tenant = tenant
        self.reports = list(reports)
        self.num_batches = len(self.reports)
        self.num_updates = num_updates
        self.cache_evicted = cache_evicted
        self.cache_rekeyed = cache_rekeyed
        self.old_fingerprint = old_fingerprint
        self.new_fingerprint = new_fingerprint


class _Replica:
    __slots__ = ("replica_id", "down", "kill_requested", "task", "batches")

    def __init__(self, replica_id: str) -> None:
        self.replica_id = replica_id
        self.down = False
        #: Set by kill_replica(); honored at the next batch boundary —
        #: if a batch is in flight its results are discarded and the
        #: batch re-routed, which is exactly the mid-batch crash drill.
        self.kill_requested = False
        self.task: asyncio.Task | None = None
        self.batches = 0


class ClusterService:
    """Serve M tenant graphs from N replicas with weighted fairness."""

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        replicas: int = 2,
        batch_size: int = 64,
        batch_window: float = 0.002,
        max_replays: int = 2,
        faults=None,
        metrics=NULL_METRICS,
        clock=time.monotonic,
        timeline_capacity: int = 2048,
    ) -> None:
        from repro.serve.msbfs import MAX_BATCH_ROOTS

        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if not 1 <= batch_size <= MAX_BATCH_ROOTS:
            raise ValueError(f"batch_size must be in [1, {MAX_BATCH_ROOTS}]")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        self.registry = registry
        self.router = ClusterRouter(registry, batch_size=batch_size)
        self.batch_size = int(batch_size)
        self.batch_window = float(batch_window)
        self.max_replays = int(max_replays)
        self._faults = faults
        self._metrics = metrics
        self._clock = clock
        self._replicas: dict[str, _Replica] = {
            f"r{i}": _Replica(f"r{i}") for i in range(int(replicas))
        }
        self._wake = asyncio.Event()
        self._closed = True
        self._trace_seq = 0
        self._timeline_capacity = int(timeline_capacity)
        self._timelines: "OrderedDict[str, RequestTimeline]" = OrderedDict()
        #: Cluster-aggregate counters (per-tenant counters live on the
        #: Tenant objects); both are updated on the serving path so the
        #: telemetry /healthz view and per-tenant views reconcile.
        self.stats = ServeStats()
        self._inflight = 0
        self._ingest_lock = asyncio.Lock()
        #: One burn-rate monitor per tenant, narrowed to that tenant's
        #: label on the shared latency family.
        self.slo_monitors: dict[str, SLOMonitor] = {
            tenant.tenant_id: SLOMonitor(
                metrics,
                tenant.spec.resolved_slos,
                metric="cluster_latency_seconds",
                match={"tenant": tenant.tenant_id},
                clock=clock,
            )
            for tenant in registry
        }
        self._metrics.gauge("cluster_replicas_live").set(len(self._replicas))
        self._metrics.gauge("cluster_tenants").set(len(registry))

    # ------------------------------------------------------------------
    # introspection (TelemetryServer-compatible surface)
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return self.router.pending + self._inflight

    @property
    def replica_ids(self) -> list[str]:
        return list(self._replicas)

    @property
    def live_replicas(self) -> list[str]:
        return [r.replica_id for r in self._replicas.values() if not r.down]

    def request_timeline(self, trace_id: str) -> RequestTimeline | None:
        return self._timelines.get(trace_id)

    def tenant_stats(self, tenant_id: str) -> ServeStats:
        return self.registry[tenant_id].stats

    def slo_status(self) -> dict:
        """Per-tenant SLO evaluation documents (the /slo/<tenant> view)."""
        return {
            tid: monitor.evaluate()
            for tid, monitor in self.slo_monitors.items()
        }

    def tenants_snapshot(self) -> dict:
        """The /tenants telemetry document: per-tenant queue + counters."""
        queues = self.router.snapshot()
        doc = {}
        for tenant in self.registry:
            tid = tenant.tenant_id
            stats = tenant.stats
            doc[tid] = {
                **queues[tid],
                "slo_class": tenant.spec.slo_class,
                "fingerprint": tenant.fingerprint,
                "num_vertices": tenant.num_vertices,
                "requests": stats.requests,
                "completed": stats.completed,
                "cache_hits": stats.cache_hits,
                "shed": stats.shed,
                "failed": stats.failed,
                "p50_seconds": stats.p50_seconds,
                "p99_seconds": stats.p99_seconds,
            }
        return {
            "tenants": doc,
            "replicas": {
                rid: {"down": rep.down, "batches": rep.batches}
                for rid, rep in self._replicas.items()
            },
            "pending": self.pending,
        }

    def _next_trace_id(self) -> str:
        self._trace_seq += 1
        return f"req-{self._trace_seq:06d}"

    def _record_timeline(self, timeline: RequestTimeline) -> None:
        self._timelines[timeline.trace_id] = timeline
        while len(self._timelines) > self._timeline_capacity:
            self._timelines.popitem(last=False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if any(r.task is not None for r in self._replicas.values()):
            raise RuntimeError("cluster already started")
        self._closed = False
        self._wake = asyncio.Event()
        for replica in self._replicas.values():
            replica.task = asyncio.create_task(self._replica_loop(replica))

    async def stop(self) -> None:
        """Drain every tenant queue on surviving replicas, then stop."""
        self._closed = True
        self._wake.set()
        for replica in self._replicas.values():
            if replica.task is not None:
                await replica.task
                replica.task = None
        # Anything still queued had no live replica to drain it.
        for tenant_id, request in self.router.drain():
            self._fail_request(
                request,
                self.registry[tenant_id],
                ReplicaDown(
                    tenant=tenant_id,
                    trace_id=request.trace_id,
                    replicas=len(self._replicas),
                ),
            )

    async def __aenter__(self) -> "ClusterService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def kill_replica(self, replica_id: str) -> None:
        """Take one replica down (failure drill / test hook).

        Takes effect at the replica's next batch boundary: an in-flight
        batch's results are discarded and the batch re-routed through
        the normal failover path, so a mid-batch kill exercises
        detection → re-queue → re-route on a surviving replica.
        """
        replica = self._replicas.get(replica_id)
        if replica is None:
            raise KeyError(
                f"unknown replica {replica_id!r} "
                f"(configured: {', '.join(self._replicas)})"
            )
        replica.kill_requested = True
        self._wake.set()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    async def submit(self, tenant_id: str, root: int) -> TraversalResponse:
        """Serve one BFS query against one tenant's resident graph.

        Raises :class:`~repro.serve.service.Overloaded` when the
        tenant's admission quota is exhausted,
        :class:`~repro.serve.service.TraversalError` when the query's
        batch exhausted its replay budget, and :class:`ReplicaDown` when
        no live replica remains.
        """
        if self._closed:
            raise RuntimeError("cluster is not running")
        tenant = self.registry[tenant_id]
        root = int(root)
        if not 0 <= root < tenant.num_vertices:
            raise ValueError(
                f"root {root} out of range for tenant {tenant_id!r}"
            )
        t0 = self._clock()
        trace_id = self._next_trace_id()
        tenant.stats.requests += 1
        self.stats.requests += 1
        if tenant.cache is not None:
            parent = tenant.cache.get(tenant.fingerprint, root)
            if parent is not None:
                total = self._clock() - t0
                tenant.stats.cache_hits += 1
                tenant.stats.total_latencies.append(total)
                self.stats.cache_hits += 1
                self.stats.total_latencies.append(total)
                self._count(tenant_id, "cached")
                self._observe(tenant_id, "total", total)
                self._record_timeline(
                    RequestTimeline(
                        trace_id=trace_id,
                        root=root,
                        status="cached",
                        total_seconds=total,
                    )
                )
                return TraversalResponse(
                    root=root,
                    trace_id=trace_id,
                    tenant=tenant_id,
                    parent=parent,
                    cached=True,
                    total_seconds=total,
                )
        if not self.live_replicas:
            tenant.stats.failed += 1
            self.stats.failed += 1
            self._count(tenant_id, "failed")
            raise ReplicaDown(
                tenant=tenant_id,
                trace_id=trace_id,
                replicas=len(self._replicas),
            )
        depth = self.router.depth(tenant_id)
        if depth >= self.router.quota(tenant_id):
            tenant.stats.shed += 1
            self.stats.shed += 1
            self._count(tenant_id, "shed")
            raise Overloaded(
                depth,
                self.router.quota(tenant_id),
                tenant=tenant_id,
                trace_id=trace_id,
            )
        future = asyncio.get_running_loop().create_future()
        request = _Request(
            root=root, future=future, submitted_at=t0, trace_id=trace_id
        )
        self.router.push(tenant_id, request)
        tenant.stats.admitted += 1
        self.stats.admitted += 1
        self._metrics.gauge("cluster_queue_depth", tenant=tenant_id).set(
            self.router.depth(tenant_id)
        )
        self._wake.set()
        return await future

    # ------------------------------------------------------------------
    # replica loops
    # ------------------------------------------------------------------

    async def _replica_loop(self, replica: _Replica) -> None:
        while True:
            if replica.kill_requested and not replica.down:
                self._mark_down(replica)
            if replica.down:
                return
            picked = self.router.next_batch()
            if picked is None:
                if self._closed:
                    return
                self._wake.clear()
                if self.router.pending:
                    continue
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.1)
                except TimeoutError:
                    pass
                continue
            tenant_id, batch = picked
            # Batching window: give late arrivals one window to join a
            # short batch (drained queues at shutdown skip it).
            if (
                self.batch_window > 0
                and len(batch) < self.batch_size
                and not self._closed
            ):
                await asyncio.sleep(self.batch_window)
                batch.extend(
                    self.router.pop_extra(
                        tenant_id, self.batch_size - len(batch)
                    )
                )
            self._metrics.gauge("cluster_queue_depth", tenant=tenant_id).set(
                self.router.depth(tenant_id)
            )
            await self._execute_batch(replica, tenant_id, batch)

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------

    async def _execute_batch(
        self, replica: _Replica, tenant_id: str, batch: list
    ) -> None:
        tenant = self.registry[tenant_id]
        now = self._clock()
        for request in batch:
            request.popped_at = now
        t_exec = self._clock()
        # Captured before the executor hop: an ingestion may swap the
        # tenant's engine mid-flight; results cache under the
        # generation they were computed on.
        engine = tenant.batched
        fingerprint = tenant.fingerprint
        by_root: dict[int, list] = {}
        for request in batch:
            by_root.setdefault(request.root, []).append(request)
        roots = np.array(sorted(by_root), dtype=np.int64)
        loop = asyncio.get_running_loop()
        self._inflight += len(batch)
        try:
            result = await loop.run_in_executor(
                None,
                functools.partial(
                    engine.run_batch, roots, faults=self._faults
                ),
            )
        except RankCrashError:
            self._inflight -= len(batch)
            self._metrics.counter(
                "cluster_batches", tenant=tenant_id, outcome="crashed"
            ).inc()
            self._mark_down(replica)
            self._reroute(replica, tenant, batch)
            return
        self._inflight -= len(batch)
        if replica.kill_requested and not replica.down:
            # Killed mid-batch: the replica is gone as far as clients
            # are concerned, so its computed results are discarded and
            # the batch re-routed like a crash.
            self._metrics.counter(
                "cluster_batches", tenant=tenant_id, outcome="crashed"
            ).inc()
            self._mark_down(replica)
            self._reroute(replica, tenant, batch)
            return
        t_done = self._clock()
        traversal = t_done - t_exec
        replica.batches += 1
        tenant.stats.batches += 1
        tenant.stats.batched_lanes += result.num_lanes
        self.stats.batches += 1
        self.stats.batched_lanes += result.num_lanes
        self._metrics.counter(
            "cluster_batches", tenant=tenant_id, outcome="completed"
        ).inc()
        self._metrics.histogram(
            "cluster_batch_size", tenant=tenant_id
        ).observe(result.num_lanes)
        self._observe(tenant_id, "traversal", traversal)
        lane_of = {int(r): lane for lane, r in enumerate(result.roots)}
        for root, requests in by_root.items():
            parent = result.lane_parent(lane_of[root])
            if tenant.cache is not None:
                tenant.cache.put(fingerprint, root, parent)
            for request in requests:
                queue_wait = request.popped_at - request.submitted_at
                batch_wait = t_exec - request.popped_at
                total = t_done - request.submitted_at
                self._observe(tenant_id, "queue", queue_wait)
                self._observe(tenant_id, "batch", batch_wait)
                self._observe(tenant_id, "total", total)
                tenant.stats.completed += 1
                tenant.stats.sim_seconds_total += result.amortized_seconds
                tenant.stats.total_latencies.append(total)
                self.stats.completed += 1
                self.stats.sim_seconds_total += result.amortized_seconds
                self.stats.total_latencies.append(total)
                self._count(tenant_id, "completed")
                self._record_timeline(
                    RequestTimeline(
                        trace_id=request.trace_id,
                        root=root,
                        batch_lanes=result.num_lanes,
                        queue_seconds=queue_wait,
                        batch_seconds=batch_wait,
                        traversal_seconds=traversal,
                        total_seconds=total,
                    )
                )
                if not request.future.done():
                    request.future.set_result(
                        TraversalResponse(
                            root=root,
                            trace_id=request.trace_id,
                            tenant=tenant_id,
                            parent=parent,
                            batch_lanes=result.num_lanes,
                            queue_wait=queue_wait,
                            batch_wait=batch_wait,
                            traversal_seconds=traversal,
                            total_seconds=total,
                            sim_seconds=result.amortized_seconds,
                        )
                    )

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def _mark_down(self, replica: _Replica) -> None:
        if replica.down:
            return
        replica.down = True
        replica.kill_requested = False
        self._metrics.counter(
            "cluster_failovers", replica=replica.replica_id
        ).inc()
        self._metrics.gauge("cluster_replicas_live").set(
            len(self.live_replicas)
        )

    def _reroute(self, replica: _Replica, tenant: Tenant, batch: list) -> None:
        """Re-queue a down replica's in-flight batch for a survivor.

        Requests keep their submit times and trace ids — latency
        accounting spans the failover.  Requests over the replay budget
        fail typed; with no survivors everything fails
        :class:`ReplicaDown`.
        """
        tenant_id = tenant.tenant_id
        for request in batch:
            request.attempts += 1
        if not self.live_replicas:
            for request in batch:
                self._fail_request(
                    request,
                    tenant,
                    ReplicaDown(
                        tenant=tenant_id,
                        trace_id=request.trace_id,
                        replicas=len(self._replicas),
                    ),
                )
            return
        survivors = []
        for request in batch:
            if request.attempts > self.max_replays:
                self._fail_request(
                    request,
                    tenant,
                    TraversalError(
                        f"batch of {len(batch)} requests failed after "
                        f"{self.max_replays} replays (replica "
                        f"{replica.replica_id} down)",
                        tenant=tenant_id,
                        trace_id=request.trace_id,
                    ),
                )
            else:
                survivors.append(request)
        if survivors:
            tenant.stats.replays += 1
            self.stats.replays += 1
            self._metrics.counter(
                "cluster_batch_replays", tenant=tenant_id
            ).inc()
            self.router.push_front(tenant_id, survivors)
            self._wake.set()

    def _fail_request(self, request, tenant: Tenant, error) -> None:
        tenant.stats.failed += 1
        self.stats.failed += 1
        self._count(tenant.tenant_id, "failed")
        self._record_timeline(
            RequestTimeline(
                trace_id=request.trace_id,
                root=request.root,
                status="failed",
            )
        )
        if not request.future.done():
            request.future.set_exception(error)

    # ------------------------------------------------------------------
    # streaming ingestion (per tenant)
    # ------------------------------------------------------------------

    async def ingest_updates(self, tenant_id: str, batches):
        """Apply edge-update batches to one tenant's resident graph.

        Requires the tenant to have been built with ``dynamic=True``.
        The repair runs on the executor; the engine swap, fingerprint
        bump, and partial cache invalidation are atomic between query
        batches.  Other tenants are completely unaffected — their
        fingerprints and caches don't move.
        """
        tenant = self.registry[tenant_id]
        if tenant.dynamic is None:
            raise RuntimeError(
                f"tenant {tenant_id!r} was not built with dynamic ingest"
            )
        loop = asyncio.get_running_loop()
        async with self._ingest_lock:
            reports = []
            num_updates = 0
            for batch in batches:
                report = await loop.run_in_executor(
                    None, tenant.dynamic.apply_batch, batch
                )
                reports.append(report)
                num_updates += batch.size
                self._metrics.counter(
                    "cluster_ingest_batches", tenant=tenant_id
                ).inc()
                self._metrics.counter(
                    "cluster_ingest_updates", tenant=tenant_id
                ).inc(batch.size)
            part = await loop.run_in_executor(None, tenant.dynamic.graph)
            touched = (
                np.unique(np.concatenate([r.delta.touched for r in reports]))
                if reports
                else np.array([], dtype=np.int64)
            )
            old_fp = tenant.fingerprint
            # Atomic from here: no awaits between swap and cache delta.
            tenant.swap_graph(part)
            evicted = rekeyed = 0
            if tenant.cache is not None:
                if hasattr(tenant.cache, "apply_delta"):
                    evicted, rekeyed = tenant.cache.apply_delta(
                        old_fp, tenant.fingerprint, touched
                    )
                else:
                    evicted = tenant.cache.invalidate(old_fp)
            return ClusterIngestReport(
                tenant_id,
                reports,
                num_updates=num_updates,
                cache_evicted=evicted,
                cache_rekeyed=rekeyed,
                old_fingerprint=old_fp,
                new_fingerprint=tenant.fingerprint,
            )

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------

    def _count(self, tenant_id: str, outcome: str) -> None:
        self._metrics.counter(
            "cluster_requests", tenant=tenant_id, outcome=outcome
        ).inc()

    def _observe(self, tenant_id: str, stage: str, seconds: float) -> None:
        self._metrics.histogram(
            "cluster_latency_seconds",
            buckets=LATENCY_BUCKETS,
            tenant=tenant_id,
            stage=stage,
        ).observe(max(seconds, 0.0))
