"""Tenants: resident graphs with their own caches, quotas, and SLOs.

A *tenant* is one resident graph behind the cluster serving plane: its
own partition, its own sequential + batched engine pair, its own
:class:`~repro.serve.cache.ResultCache` and graph fingerprint, its own
admission quota and fair-share weight, and (optionally) its own
:class:`~repro.dynamic.repair.IncrementalGraph` for streaming ingest.
Tenants never share lanes: an MSBFS batch is packed from exactly one
tenant's queue, so a lane word always refers to one graph.

Service classes bundle the per-tenant serving policy.  The defaults —
``gold`` / ``silver`` / ``bronze`` — trade admission quota and
scheduler weight against latency objectives:

=========  ======  =====  ==========================================
class      weight  quota  default SLO
=========  ======  =====  ==========================================
gold       4       96     99% of totals under 250 ms
silver     2       64     99% of totals under 500 ms
bronze     1       32     95% of totals under 1 s
=========  ======  =====  ==========================================

The :class:`TenantRegistry` holds the resident set and is the single
source of truth the router and replicas read tenants from.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.obs.slo import SLOSpec
from repro.serve.cache import ResultCache, fingerprint_graph
from repro.serve.service import ServeStats

__all__ = [
    "SLO_CLASSES",
    "TenantSpec",
    "Tenant",
    "TenantRegistry",
    "parse_tenant_count",
    "parse_tenant_spec",
    "build_registry",
]

#: Service classes: scheduler weight, admission quota, latency SLOs.
SLO_CLASSES: dict[str, dict] = {
    "gold": dict(
        weight=4,
        quota=96,
        slos=(SLOSpec(stage="total", threshold_seconds=0.25, objective=0.99),),
    ),
    "silver": dict(
        weight=2,
        quota=64,
        slos=(SLOSpec(stage="total", threshold_seconds=0.5, objective=0.99),),
    ),
    "bronze": dict(
        weight=1,
        quota=32,
        slos=(SLOSpec(stage="total", threshold_seconds=1.0, objective=0.95),),
    ),
}

#: Class assigned to tenants that don't name one.
DEFAULT_CLASS = "silver"


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant."""

    tenant_id: str
    #: Graph500 SCALE of the tenant's resident R-MAT graph.
    scale: int = 9
    rows: int = 2
    cols: int = 2
    #: Graph generation seed (different seeds -> different graphs).
    seed: int = 1
    #: Service class key into :data:`SLO_CLASSES`.
    slo_class: str = DEFAULT_CLASS
    #: Deficit-round-robin weight (None -> the class default).
    weight: int | None = None
    #: Admission quota: max queued requests before typed shedding
    #: (None -> the class default).
    quota: int | None = None
    #: Latency objectives (None -> the class defaults).
    slos: tuple | None = None
    e_threshold: int | None = None
    h_threshold: int | None = None
    cache_capacity: int = 1024

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"unknown SLO class {self.slo_class!r} "
                f"(known: {', '.join(sorted(SLO_CLASSES))})"
            )
        if self.weight is not None and self.weight < 1:
            raise ValueError("weight must be >= 1")
        if self.quota is not None and self.quota < 1:
            raise ValueError("quota must be >= 1")

    @property
    def resolved_weight(self) -> int:
        if self.weight is not None:
            return int(self.weight)
        return int(SLO_CLASSES[self.slo_class]["weight"])

    @property
    def resolved_quota(self) -> int:
        if self.quota is not None:
            return int(self.quota)
        return int(SLO_CLASSES[self.slo_class]["quota"])

    @property
    def resolved_slos(self) -> tuple:
        if self.slos is not None:
            return tuple(self.slos)
        return tuple(SLO_CLASSES[self.slo_class]["slos"])


@dataclass
class Tenant:
    """One resident graph and its serving state.

    ``sequential`` is the single-root engine (validation, program
    serving); ``batched`` is the MSBFS engine replicas run query
    batches on.  Both views share the partition, so the fingerprint
    keys both the cache and result attribution.
    """

    spec: TenantSpec
    sequential: object = field(repr=False, default=None)
    batched: object = field(repr=False, default=None)
    cache: ResultCache | None = field(repr=False, default=None)
    fingerprint: str = ""
    #: Optional streaming-ingest wrapper over the same edge set.
    dynamic: object = field(repr=False, default=None)
    #: Per-tenant service-lifetime counters.
    stats: ServeStats = field(default_factory=ServeStats, repr=False)

    @property
    def tenant_id(self) -> str:
        return self.spec.tenant_id

    @property
    def num_vertices(self) -> int:
        return int(self.batched.num_vertices)

    @property
    def degrees(self):
        return self.batched.part.degrees

    def swap_graph(self, part) -> None:
        """Rebuild both engines over a repaired partition (streaming
        ingest); the fingerprint moves with the graph."""
        from repro.core.engine import DistributedBFS
        from repro.serve.msbfs import MultiSourceBFS

        src = self.batched
        kwargs = dict(
            machine=getattr(src, "machine", None),
            config=src.config,
            backend=getattr(getattr(src, "scheduler", None), "backend", None),
        )
        self.batched = MultiSourceBFS(part, **kwargs)
        self.sequential = DistributedBFS(part, **kwargs)
        self.fingerprint = fingerprint_graph(part)


class TenantRegistry:
    """The resident tenant set, iteration-ordered by registration."""

    def __init__(self, tenants=()) -> None:
        self._tenants: dict[str, Tenant] = {}
        for tenant in tenants:
            self.add(tenant)

    def add(self, tenant: Tenant) -> Tenant:
        if tenant.tenant_id in self._tenants:
            raise ValueError(f"duplicate tenant id {tenant.tenant_id!r}")
        self._tenants[tenant.tenant_id] = tenant
        return tenant

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def __getitem__(self, tenant_id: str) -> Tenant:
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            known = ", ".join(self._tenants) or "<none>"
            raise KeyError(
                f"unknown tenant {tenant_id!r} (resident: {known})"
            )
        return tenant

    @property
    def tenant_ids(self) -> list[str]:
        return list(self._tenants)

    def degrees_map(self) -> dict:
        """Tenant id -> degree vector (the diurnal generator's input)."""
        return {tid: t.degrees for tid, t in self._tenants.items()}


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


def build_tenant(spec: TenantSpec, *, backend=None, dynamic: bool = False) -> Tenant:
    """Build one tenant's engines and cache from its spec.

    ``dynamic=True`` additionally wraps the tenant's edge set in an
    :class:`~repro.dynamic.repair.IncrementalGraph` so update batches
    can be ingested while the tenant serves.
    """
    from repro.serve.bench import build_serving_pair

    sequential, batched = build_serving_pair(
        spec.scale, spec.rows, spec.cols,
        seed=spec.seed,
        e_threshold=spec.e_threshold, h_threshold=spec.h_threshold,
        backend=backend,
    )
    tenant = Tenant(
        spec=spec,
        sequential=sequential,
        batched=batched,
        cache=ResultCache(capacity=spec.cache_capacity),
        fingerprint=fingerprint_graph(batched.part),
    )
    if dynamic:
        from repro.analysis.experiments import tuned_thresholds
        from repro.dynamic.repair import IncrementalGraph
        from repro.graph500.rmat import generate_edges
        from repro.runtime.mesh import ProcessMesh

        e_thr, h_thr = spec.e_threshold, spec.h_threshold
        if e_thr is None or h_thr is None:
            e_thr, h_thr = tuned_thresholds(spec.scale)
        src, dst = generate_edges(spec.scale, seed=spec.seed)
        tenant.dynamic = IncrementalGraph(
            src, dst, 1 << spec.scale,
            ProcessMesh(spec.rows, spec.cols),
            e_threshold=e_thr, h_threshold=h_thr,
        )
    return tenant


def build_registry(specs, *, backend=None, dynamic: bool = False) -> TenantRegistry:
    """Build a registry of tenants from an iterable of specs."""
    return TenantRegistry(
        build_tenant(spec, backend=backend, dynamic=dynamic)
        for spec in specs
    )


# ----------------------------------------------------------------------
# CLI spec grammar
# ----------------------------------------------------------------------


def parse_tenant_count(value: str) -> int:
    """Parse a bare ``--tenants N`` count (``>= 1``)."""
    try:
        count = int(value)
    except ValueError as exc:
        raise ValueError(
            f"tenants must be a count or name:class list, got {value!r}"
        ) from exc
    if count < 1:
        raise ValueError(f"tenant count must be >= 1, got {count}")
    return count


def parse_tenant_spec(value: str, *, scale: int = 9, rows: int = 2,
                      cols: int = 2, seed: int = 1) -> list[TenantSpec]:
    """Parse the CLI ``--tenants`` grammar into specs.

    Either a bare count (``3`` — tenants ``t0..tN-1`` cycling through
    gold/silver/bronze) or a comma list of ``name:class`` pairs
    (``search:gold,feed:silver,batch:bronze``).  Each tenant's graph is
    seeded ``seed + index`` so resident graphs differ.
    """
    value = value.strip()
    if not value:
        raise ValueError("tenants spec must be non-empty")
    classes = list(SLO_CLASSES)
    base = TenantSpec(
        tenant_id="_", scale=scale, rows=rows, cols=cols, seed=seed
    )
    is_count = True
    try:
        int(value)
    except ValueError:
        is_count = False
    if is_count:
        # Numeric input is always the count form — "0" must fail as an
        # invalid count, not sneak through as a tenant named "0".
        count = parse_tenant_count(value)
        return [
            replace(
                base,
                tenant_id=f"t{i}",
                seed=seed + i,
                slo_class=classes[i % len(classes)],
            )
            for i in range(count)
        ]
    specs = []
    for i, token in enumerate(value.split(",")):
        token = token.strip()
        if not token:
            raise ValueError(f"empty tenant entry in {value!r}")
        name, sep, cls = token.partition(":")
        if not name:
            raise ValueError(f"tenant entry {token!r} has an empty name")
        cls = cls.strip() if sep else DEFAULT_CLASS
        if cls not in SLO_CLASSES:
            raise ValueError(
                f"unknown SLO class {cls!r} in {token!r} "
                f"(known: {', '.join(sorted(SLO_CLASSES))})"
            )
        specs.append(
            replace(base, tenant_id=name.strip(), seed=seed + i, slo_class=cls)
        )
    if len({s.tenant_id for s in specs}) != len(specs):
        raise ValueError(f"duplicate tenant names in {value!r}")
    return specs
