"""Baseline distributed BFS engines (paper §2, Table 1).

Implemented on the same simulated runtime, chip model, and cost model as
the 1.5D engine, so Table 1-style comparisons measure the partitioning
scheme and nothing else:

- :class:`~repro.baselines.onedim.OneDimBFS` — vanilla 1D partitioning
  (Buluc & Madduri style): arcs at the source's owner, per-edge global
  messaging, full-bitmap allgather for bottom-up.
- :class:`~repro.baselines.onedim.DelegatedOneDimBFS` — 1D with heavy
  delegates (Pearce / Checconi / Lin): vertices above one threshold are
  delegated on every node; its scalability wall is the global delegate
  set (§2.3).
- :class:`~repro.baselines.twodim.TwoDimBFS` — 2D partitioning
  (Yoo / Ueno): all vertices logically delegated on rows and columns;
  its wall is the O(|V_local| * sqrt(P)) row/column bitmap sync (§2.3).
"""

from repro.baselines.onedim import DelegatedOneDimBFS, OneDimBFS
from repro.baselines.twodim import TwoDimBFS

__all__ = ["OneDimBFS", "DelegatedOneDimBFS", "TwoDimBFS"]
