"""2D-partitioned baseline (Yoo'05, Checconi'12, Ueno'17).

The adjacency matrix is partitioned over the R x C mesh: arc ``(u, v)``
lives at rank ``(row(owner(v)), col(owner(u)))``, which is "delegating all
vertices on rows and columns" (§2.1.1).  Traversal needs no per-edge
messages — expansion reads column-replicated source bits and writes
row-replicated destination bits — but every iteration must synchronize
those replicas:

- the frontier bits of each column's vertices allreduce down the column,
- the newly-visited bits of each row's vertices allreduce along the row,

a per-rank volume of ``n/C + n/R ~ |V_local| * sqrt(P)`` bits, the
scalability wall §2.3 quantifies (5.56e10 shared vertices at the paper's
scale).  Parents of all vertices are delegate-collected, so the final
reduction covers the whole vertex set.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineEngine
from repro.core.subgraphs import SubgraphComponent
from repro.graphs.csr import symmetrize_edges
from repro.machine.costmodel import CollectiveKind

__all__ = ["TwoDimBFS"]


class TwoDimBFS(BaselineEngine):
    """2D (block) partitioning with row/column vertex delegation."""

    scheme = "2D"

    def _build_components(self, src, dst):
        a_src, a_dst = symmetrize_edges(src, dst)
        o_src = self.mesh.owner_of(a_src, self.num_vertices)
        o_dst = self.mesh.owner_of(a_dst, self.num_vertices)
        rank = self.mesh.row_of(o_dst) * self.mesh.cols + self.mesh.col_of(o_src)
        return {"2D": SubgraphComponent("2D", a_src, a_dst, rank, self._p)}

    # ------------------------------------------------------------------

    def _col_vertex_bits(self) -> int:
        """Vertices owned by the ranks of one mesh column (max)."""
        per_rank = self.mesh.block_size(self.num_vertices)
        return per_rank * self.mesh.rows

    def _row_vertex_bits(self) -> int:
        per_rank = self.mesh.block_size(self.num_vertices)
        return per_rank * self.mesh.cols

    def charge_iteration_sync(self, ledger, active, visited):
        # Column allreduce of frontier bits (sources), row allreduce of
        # visited/next bits (destinations): the O(|V_local| * sqrt(P)) term.
        active_per_col = -(-int(np.count_nonzero(active)) // self.mesh.cols)
        col_bytes = self.sync_bytes(self._col_vertex_bits(), active_per_col)
        intra_f, inter_f = self.mesh.group_traffic_split(self.mesh.col_ranks(0))
        for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
            ledger.charge_collective(
                "other",
                kind,
                self.mesh.rows,
                col_bytes * intra_f,
                col_bytes * inter_f,
                total_bytes=col_bytes * self.mesh.rows,
            )
        active_per_row = -(-int(np.count_nonzero(active)) // self.mesh.rows)
        row_bytes = self.sync_bytes(self._row_vertex_bits(), active_per_row)
        intra_f, inter_f = self.mesh.group_traffic_split(self.mesh.row_ranks(0))
        for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
            ledger.charge_collective(
                "other",
                kind,
                self.mesh.cols,
                row_bytes * intra_f,
                row_bytes * inter_f,
                total_bytes=row_bytes * self.mesh.cols,
            )

    def charge_push_messages(self, name, sel, ledger):
        pass  # updates land in row delegates; the sync above carries them

    def charge_pull_prereq(self, name, ledger, active, visited):
        pass  # column bits are already replicated by the sync

    def charge_parent_reduction(self, ledger):
        # All vertices are delegated: parents reduce over rows (each owner
        # collects from its row's replicas).
        row_bytes = float(self._row_vertex_bits()) * 8
        intra_f, inter_f = self.mesh.group_traffic_split(self.mesh.row_ranks(0))
        ledger.charge_collective(
            "reduce",
            CollectiveKind.REDUCE_SCATTER,
            self.mesh.cols,
            row_bytes * intra_f,
            row_bytes * inter_f,
            total_bytes=row_bytes * self.mesh.cols,
        )
