"""Shared machinery for the baseline engines.

Every baseline is a :class:`BaselineEngine` subclass that provides:

- its component set (built from :class:`~repro.core.subgraphs.SubgraphComponent`
  with the scheme's arc placement);
- per-iteration synchronization charges (``charge_iteration_sync``);
- message charges for push (``charge_push_messages``) and pull
  prerequisites (``charge_pull_prereq``);
- kernel rates per direction.

The loop itself is identical whole-iteration direction-optimized BFS
(Beamer heuristic — none of the baselines has sub-iteration direction),
so differences in simulated time come only from the partitioning scheme's
communication and balance properties.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BFSConfig
from repro.core.direction import choose_whole_iteration_direction
from repro.core.metrics import BFSRunResult, IterationRecord
from repro.core.subgraphs import SubgraphComponent
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh

__all__ = ["BaselineEngine"]


class BaselineEngine:
    """Whole-iteration direction-optimized BFS over scheme components."""

    #: Human-readable scheme name (Table 1's "Part. Method" column).
    scheme = "abstract"

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_vertices: int,
        mesh: ProcessMesh,
        machine: MachineSpec | None = None,
        config: BFSConfig | None = None,
    ) -> None:
        self.mesh = mesh
        self.num_vertices = int(num_vertices)
        if machine is None:
            machine = mesh.machine or MachineSpec(num_nodes=mesh.num_ranks)
        self.machine = machine
        self.config = config or BFSConfig()
        self.cost = CostModel(machine)
        self.rates = NodeKernelRates(chip=machine.chip)
        self._ws = machine.work_scale
        self._p = mesh.num_ranks
        self._block_bytes = -(-mesh.block_size(num_vertices) // 8)
        from repro.graphs.stats import degrees_from_edges

        self.degrees = degrees_from_edges(src, dst, num_vertices)
        self.components = self._build_components(src, dst)
        self.num_input_edges = (
            sum(c.num_arcs for c in self.components.values()) // 2
        )

    # ------------------------------------------------------------------
    # scheme hooks
    # ------------------------------------------------------------------

    def _build_components(self, src, dst) -> dict[str, SubgraphComponent]:
        raise NotImplementedError

    def charge_iteration_sync(self, ledger: TrafficLedger, active, visited) -> None:
        """Frontier/delegate synchronization paid every iteration."""
        raise NotImplementedError

    def charge_push_messages(self, name, sel, ledger) -> None:
        """Remote traffic of a top-down sub-step (may be nothing)."""
        raise NotImplementedError

    def charge_pull_prereq(self, name, ledger, active, visited) -> None:
        """Remote state needed before a bottom-up sub-step."""
        raise NotImplementedError

    def charge_parent_reduction(self, ledger) -> None:
        """End-of-run delegated parent reduction (may be nothing)."""
        raise NotImplementedError

    def push_rate(self, name) -> float:
        return self.rates.message_rate(self.config.num_cgs)

    def pull_rate(self, name) -> float:
        # Baselines lack CG-aware segmenting: GLD-latency bound pulls.
        return self.rates.pull_rate_unsegmented()

    # ------------------------------------------------------------------
    # the shared loop
    # ------------------------------------------------------------------

    def run(self, root: int) -> BFSRunResult:
        n = self.num_vertices
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range for n={n}")
        parent = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        active = np.zeros(n, dtype=bool)
        parent[root] = root
        visited[root] = True
        active[root] = True

        ledger = TrafficLedger(self.cost)
        iterations: list[IterationRecord] = []

        for it in range(self.config.max_iterations):
            if not active.any():
                break
            self.charge_iteration_sync(ledger, active, visited)
            record = IterationRecord(
                index=it, frontier_size=int(np.count_nonzero(active))
            )
            direction = choose_whole_iteration_direction(
                active, visited, self.degrees, self.config
            )
            next_active = np.zeros(n, dtype=bool)
            for name, comp in self.components.items():
                if comp.num_arcs == 0:
                    record.directions[name] = "-"
                    continue
                record.directions[name] = direction
                if direction == "push":
                    sel = comp.push_select(active)
                    per_rank = sel.per_rank(self._p)
                    record.scanned_arcs[name] = sel.num_arcs
                    seconds = self.rates.kernel_time(
                        int(per_rank.max()), self.push_rate(name), self._ws
                    )
                    ledger.charge_compute(name, f"push:{name}", per_rank, seconds)
                    if sel.num_arcs:
                        self.charge_push_messages(name, sel, ledger)
                    fresh = ~visited[sel.dst]
                    src_f, dst_f = sel.src[fresh], sel.dst[fresh]
                    newly, first = np.unique(dst_f, return_index=True)
                    parents = src_f[first]
                else:
                    self.charge_pull_prereq(name, ledger, active, visited)
                    scan = comp.pull_scan(~visited, active)
                    record.scanned_arcs[name] = scan.scanned_arcs
                    seconds = self.rates.kernel_time(
                        int(scan.scanned_per_rank.max()), self.pull_rate(name), self._ws
                    )
                    ledger.charge_compute(
                        name, f"pull:{name}", scan.scanned_per_rank, seconds
                    )
                    newly, parents = scan.hit_dst, scan.hit_src
                if newly.size:
                    parent[newly] = parents
                    visited[newly] = True
                    next_active[newly] = True
            record.newly_activated["all"] = int(np.count_nonzero(next_active))
            iterations.append(record)
            active = next_active

        self.charge_parent_reduction(ledger)
        return BFSRunResult(
            root=root,
            parent=parent,
            iterations=iterations,
            ledger=ledger,
            total_seconds=ledger.total_seconds,
            num_input_edges=self.num_input_edges,
        )

    # ------------------------------------------------------------------
    # charging helpers shared by schemes
    # ------------------------------------------------------------------

    def _group_split(self, group: np.ndarray) -> tuple[float, float]:
        sn = self.mesh.supernode_of_rank(group)
        if group.size <= 1:
            return 1.0, 0.0
        if np.all(sn == sn[0]):
            return 1.0, 0.0
        counts = np.bincount(sn)
        counts = counts[counts > 0]
        worst_same = int(counts.min())
        inter = 1.0 - (worst_same - 1) / max(group.size - 1, 1)
        return 1.0 - inter, inter

    @staticmethod
    def sync_bytes(bitmap_bits: int, sparse_count: int) -> float:
        """Wire bytes of a frontier-set exchange: packed bitmap or sparse
        8-byte IDs, whichever is smaller."""
        return float(min(-(-bitmap_bits // 8), sparse_count * 8))

    def charge_global_bitmap_allreduce(
        self, phase: str, ledger: TrafficLedger, num_bits: int, sparse_count: int | None = None
    ) -> None:
        """Allreduce (reduce-scatter + allgather) of a shared frontier set."""
        nbytes = float(-(-num_bits // 8))
        if sparse_count is not None:
            nbytes = self.sync_bytes(num_bits, sparse_count)
        intra_f, inter_f = self._group_split(np.arange(self._p))
        for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
            ledger.charge_collective(
                phase,
                kind,
                self._p,
                nbytes * intra_f,
                nbytes * inter_f,
                total_bytes=nbytes * self._p,
            )

    def charge_global_alltoallv(
        self, phase: str, send_msgs_per_rank: np.ndarray, ledger: TrafficLedger, message_bytes: int = 8
    ) -> None:
        max_bytes = float(send_msgs_per_rank.max()) * message_bytes
        intra_f, inter_f = self._group_split(np.arange(self._p))
        ledger.charge_collective(
            phase,
            CollectiveKind.ALLTOALLV,
            self._p,
            max_bytes * intra_f,
            max_bytes * inter_f,
            total_bytes=float(send_msgs_per_rank.sum()) * message_bytes,
        )

    def charge_receiver_kernel(self, phase, recv_rank_per_msg, ledger, label="recv"):
        counts = np.bincount(recv_rank_per_msg, minlength=self._p)
        seconds = self.rates.kernel_time(
            int(counts.max()), self.rates.message_rate(self.config.num_cgs), self._ws
        )
        ledger.charge_compute(phase, f"push_{label}:{phase}", counts, seconds)
