"""Shared machinery for the baseline engines.

Every baseline is a :class:`BaselineEngine` subclass that provides:

- its component set (built from :class:`~repro.core.subgraphs.SubgraphComponent`
  with the scheme's arc placement);
- per-iteration synchronization charges (``charge_iteration_sync``);
- message charges for push (``charge_push_messages``) and pull
  prerequisites (``charge_pull_prereq``);
- kernel rates per direction.

The loop itself is the shared
:class:`~repro.core.kernels.scheduler.LevelSyncScheduler` running one
:class:`BaselineComponentKernel` per component — identical
whole-iteration direction-optimized BFS (Beamer heuristic; none of the
baselines has sub-iteration direction) — so differences in simulated
time come only from the partitioning scheme's communication and balance
properties.  Pass ``tracer=`` to get the same ``bfs`` → ``iteration`` →
``component`` span tree the 1.5D engine emits.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BFSConfig
from repro.core.direction import choose_whole_iteration_direction
from repro.core.kernels.base import ComponentKernel, KernelBodySpec
from repro.core.kernels.scheduler import LevelSyncScheduler, SchedulerHost
from repro.core.metrics import BFSRunResult, IterationRecord
from repro.core.subgraphs import SubgraphComponent
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec
from repro.obs.tracer import Tracer
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh

__all__ = ["BaselineEngine", "BaselineComponentKernel"]


class BaselineComponentKernel(ComponentKernel):
    """Generic push/pull kernel over one baseline component.

    The traversal semantics (frontier arc selection, early-exit pull
    scan, first-writer-wins updates) are the shared component
    primitives; everything scheme-specific — message charges, pull
    prerequisites, kernel rates — is delegated back to the owning
    :class:`BaselineEngine`'s hooks.
    """

    def __init__(self, engine: "BaselineEngine", name: str, comp: SubgraphComponent):
        self.engine = engine
        self.name = name
        self.comp = comp

    @property
    def num_arcs(self) -> int:
        return self.comp.num_arcs

    def body_spec(self):
        return KernelBodySpec(component=self.comp, pull_kind="scan")

    def pull_body(self, active, visited):
        return self.comp.pull_scan(~visited, active)

    def commit_push(self, sel, active, visited, ledger, record):
        eng, name = self.engine, self.name
        per_rank = sel.per_rank(eng._p)
        record.scanned_arcs[name] = sel.num_arcs
        seconds = eng.rates.kernel_time(
            int(per_rank.max()), eng.push_rate(name), eng._ws
        )
        ledger.charge_compute(name, f"push:{name}", per_rank, seconds)
        if sel.num_arcs:
            eng.charge_push_messages(name, sel, ledger)
        fresh = ~visited[sel.dst]
        src_f, dst_f = sel.src[fresh], sel.dst[fresh]
        newly, first = np.unique(dst_f, return_index=True)
        return newly, src_f[first]

    def commit_pull(self, scan, active, visited, ledger, record):
        eng, name = self.engine, self.name
        eng.charge_pull_prereq(name, ledger, active, visited)
        record.scanned_arcs[name] = scan.scanned_arcs
        seconds = eng.rates.kernel_time(
            int(scan.scanned_per_rank.max()), eng.pull_rate(name), eng._ws
        )
        ledger.charge_compute(
            name, f"pull:{name}", scan.scanned_per_rank, seconds
        )
        return scan.hit_dst, scan.hit_src

    def execute(self, direction, active, visited, ledger, record):
        if direction == "push":
            sel = self.comp.push_select(active)
            return self.commit_push(sel, active, visited, ledger, record)
        scan = self.pull_body(active, visited)
        return self.commit_pull(scan, active, visited, ledger, record)


class BaselineEngine(SchedulerHost):
    """Whole-iteration direction-optimized BFS over scheme components."""

    #: Human-readable scheme name (Table 1's "Part. Method" column).
    scheme = "abstract"

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_vertices: int,
        mesh: ProcessMesh,
        machine: MachineSpec | None = None,
        config: BFSConfig | None = None,
        tracer: Tracer | None = None,
        metrics=None,
        backend=None,
    ) -> None:
        self.mesh = mesh
        self.num_vertices = int(num_vertices)
        if machine is None:
            machine = mesh.machine or MachineSpec(num_nodes=mesh.num_ranks)
        self.machine = machine
        self.config = config or BFSConfig()
        self.cost = CostModel(machine)
        self.rates = NodeKernelRates(chip=machine.chip)
        self._ws = machine.work_scale
        self._p = mesh.num_ranks
        self._block_bytes = -(-mesh.block_size(num_vertices) // 8)
        from repro.graphs.stats import degrees_from_edges

        self.degrees = degrees_from_edges(src, dst, num_vertices)
        self.components = self._build_components(src, dst)
        self.num_input_edges = (
            sum(c.num_arcs for c in self.components.values()) // 2
        )
        self.kernels = {
            name: BaselineComponentKernel(self, name, comp)
            for name, comp in self.components.items()
        }
        self.scheduler = LevelSyncScheduler(
            self, self.kernels, tracer=tracer, metrics=metrics, backend=backend
        )

    # ------------------------------------------------------------------
    # scheme hooks
    # ------------------------------------------------------------------

    def _build_components(self, src, dst) -> dict[str, SubgraphComponent]:
        raise NotImplementedError

    def charge_iteration_sync(self, ledger: TrafficLedger, active, visited) -> None:
        """Frontier/delegate synchronization paid every iteration."""
        raise NotImplementedError

    def charge_push_messages(self, name, sel, ledger) -> None:
        """Remote traffic of a top-down sub-step (may be nothing)."""
        raise NotImplementedError

    def charge_pull_prereq(self, name, ledger, active, visited) -> None:
        """Remote state needed before a bottom-up sub-step."""
        raise NotImplementedError

    def charge_parent_reduction(self, ledger) -> None:
        """End-of-run delegated parent reduction (may be nothing)."""
        raise NotImplementedError

    def push_rate(self, name) -> float:
        return self.rates.message_rate(self.config.num_cgs)

    def pull_rate(self, name) -> float:
        # Baselines lack CG-aware segmenting: GLD-latency bound pulls.
        return self.rates.pull_rate_unsegmented()

    # ------------------------------------------------------------------
    # scheduler hooks
    # ------------------------------------------------------------------

    def run(self, root: int, **resilience) -> BFSRunResult:
        return self.scheduler.run(root, **resilience)

    def begin_iteration(self, ledger, active, visited) -> None:
        self.charge_iteration_sync(ledger, active, visited)

    def iteration_direction(self, active, visited) -> str:
        return choose_whole_iteration_direction(
            active, visited, self.degrees, self.config
        )

    def record_activation(self, record: IterationRecord, next_active) -> None:
        record.newly_activated["all"] = int(np.count_nonzero(next_active))

    def end_run(self, ledger, tracer, parent) -> None:
        self.charge_parent_reduction(ledger)

    # ------------------------------------------------------------------
    # charging helpers shared by schemes
    # ------------------------------------------------------------------

    @staticmethod
    def sync_bytes(bitmap_bits: int, sparse_count: int) -> float:
        """Wire bytes of a frontier-set exchange: packed bitmap or sparse
        8-byte IDs, whichever is smaller."""
        return float(min(-(-bitmap_bits // 8), sparse_count * 8))

    def charge_global_bitmap_allreduce(
        self, phase: str, ledger: TrafficLedger, num_bits: int, sparse_count: int | None = None
    ) -> None:
        """Allreduce (reduce-scatter + allgather) of a shared frontier set."""
        nbytes = float(-(-num_bits // 8))
        if sparse_count is not None:
            nbytes = self.sync_bytes(num_bits, sparse_count)
        intra_f, inter_f = self.mesh.group_traffic_split(np.arange(self._p))
        for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
            ledger.charge_collective(
                phase,
                kind,
                self._p,
                nbytes * intra_f,
                nbytes * inter_f,
                total_bytes=nbytes * self._p,
            )

    def charge_global_alltoallv(
        self, phase: str, send_msgs_per_rank: np.ndarray, ledger: TrafficLedger, message_bytes: int = 8
    ) -> None:
        max_bytes = float(send_msgs_per_rank.max()) * message_bytes
        intra_f, inter_f = self.mesh.group_traffic_split(np.arange(self._p))
        ledger.charge_collective(
            phase,
            CollectiveKind.ALLTOALLV,
            self._p,
            max_bytes * intra_f,
            max_bytes * inter_f,
            total_bytes=float(send_msgs_per_rank.sum()) * message_bytes,
        )

    def charge_receiver_kernel(self, phase, recv_rank_per_msg, ledger, label="recv"):
        counts = np.bincount(recv_rank_per_msg, minlength=self._p)
        seconds = self.rates.kernel_time(
            int(counts.max()), self.rates.message_rate(self.config.num_cgs), self._ws
        )
        ledger.charge_compute(phase, f"push_{label}:{phase}", counts, seconds)
