"""1D-partitioned baselines: vanilla and heavy-delegated.

**Vanilla 1D** (Buluc & Madduri, SC'11): every arc lives at its source's
owner.  Top-down sends one message per frontier arc through a *global*
alltoallv; bottom-up needs the full frontier bitmap on every rank (a
global allgather of n bits) — both patterns scale poorly, and heavy
vertices concentrate whole adjacency lists on single ranks (the load
imbalance §2.1.1 describes).

**1D with heavy delegates** (Pearce'14 / Checconi'14 / Lin'17): vertices
above ``heavy_threshold`` are delegated on every node.  Arcs touching a
heavy endpoint become node-local (delegate bits carry the information),
so only light-light arcs still message.  The price is a per-iteration
global allreduce of the heavy bitmap and a final parent reduction over
*all* heavy vertices — the §2.3 scalability wall: at SCALE 44 the paper
estimates 1.76e10 delegated vertices per node, which no longer fits.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineEngine
from repro.core.subgraphs import SubgraphComponent
from repro.graphs.csr import symmetrize_edges

__all__ = ["OneDimBFS", "DelegatedOneDimBFS"]


class OneDimBFS(BaselineEngine):
    """Vanilla 1D partitioning."""

    scheme = "1D"

    def _build_components(self, src, dst):
        a_src, a_dst = symmetrize_edges(src, dst)
        rank = self.mesh.owner_of(a_src, self.num_vertices)
        return {
            "ALL": SubgraphComponent("ALL", a_src, a_dst, rank, self._p)
        }

    def charge_iteration_sync(self, ledger, active, visited):
        # No delegates: nothing to synchronize beyond the frontier counts
        # (a scalar allreduce folded into the barrier).
        from repro.machine.costmodel import CollectiveKind

        ledger.charge_collective("other", CollectiveKind.BARRIER, self._p)

    def charge_push_messages(self, name, sel, ledger):
        # One 8-byte message per frontier arc whose destination is remote.
        o_dst = self.mesh.owner_of(sel.dst, self.num_vertices)
        remote = o_dst != sel.rank
        if not np.any(remote):
            return
        send = np.bincount(sel.rank[remote], minlength=self._p)
        self.charge_global_alltoallv(name, send, ledger)
        self.charge_receiver_kernel(name, o_dst[remote], ledger)

    def charge_pull_prereq(self, name, ledger, active, visited):
        # Bottom-up needs every rank to hold the full frontier set.
        self.charge_global_bitmap_allreduce(
            name, ledger, self.num_vertices, int(np.count_nonzero(active))
        )

    def charge_parent_reduction(self, ledger):
        pass  # parents are owner-local in 1D


class DelegatedOneDimBFS(BaselineEngine):
    """1D partitioning with heavy-vertex delegates."""

    scheme = "1D+delegates"

    def __init__(self, src, dst, num_vertices, mesh, machine=None, config=None,
                 tracer=None, metrics=None, backend=None, *,
                 heavy_threshold: int | None = None):
        self.heavy_threshold = heavy_threshold
        super().__init__(src, dst, num_vertices, mesh, machine, config,
                         tracer, metrics, backend)

    def _build_components(self, src, dst):
        if self.heavy_threshold is None:
            # The literature's rule of thumb (§2.3): ~0.1% of vertices are
            # delegated; pick the degree of the 0.1%-quantile vertex.
            deg_sorted = np.sort(self.degrees)[::-1]
            k = max(1, self.num_vertices // 1000)
            self.heavy_threshold = max(int(deg_sorted[min(k, deg_sorted.size - 1)]), 2)
        heavy = self.degrees >= self.heavy_threshold
        self.heavy_mask = heavy
        self.num_heavy = int(np.count_nonzero(heavy))

        a_src, a_dst = symmetrize_edges(src, dst)
        hs = heavy[a_src]
        hd = heavy[a_dst]
        o_src = self.mesh.owner_of(a_src, self.num_vertices)
        o_dst = self.mesh.owner_of(a_dst, self.num_vertices)

        comps = {}
        # heavy source: adjacency distributed with the destination, so
        # expansion from a delegate is node-local (like the paper's E2L).
        sel = hs
        comps["H2X"] = SubgraphComponent(
            "H2X", a_src[sel], a_dst[sel], o_dst[sel], self._p
        )
        # light -> heavy: the local delegate absorbs the update.
        sel = (~hs) & hd
        comps["L2H"] = SubgraphComponent(
            "L2H", a_src[sel], a_dst[sel], o_src[sel], self._p
        )
        # light -> light: plain 1D messaging.
        sel = (~hs) & (~hd)
        comps["L2L"] = SubgraphComponent(
            "L2L", a_src[sel], a_dst[sel], o_src[sel], self._p
        )
        return comps

    def charge_iteration_sync(self, ledger, active, visited):
        # Global allreduce of the heavy frontier: every node keeps every
        # heavy vertex's state — the delegate set that stops scaling.
        active_heavy = int(np.count_nonzero(active & self.heavy_mask))
        self.charge_global_bitmap_allreduce(
            "other", ledger, self.num_heavy, active_heavy
        )

    def charge_push_messages(self, name, sel, ledger):
        if name != "L2L":
            return  # heavy-endpoint arcs are node-local by placement
        o_dst = self.mesh.owner_of(sel.dst, self.num_vertices)
        remote = o_dst != sel.rank
        if not np.any(remote):
            return
        send = np.bincount(sel.rank[remote], minlength=self._p)
        self.charge_global_alltoallv(name, send, ledger)
        self.charge_receiver_kernel(name, o_dst[remote], ledger)

    def charge_pull_prereq(self, name, ledger, active, visited):
        if name == "L2L":
            # light frontier state must be everywhere for bottom-up.
            light = self.num_vertices - self.num_heavy
            active_light = int(np.count_nonzero(active & ~self.heavy_mask))
            self.charge_global_bitmap_allreduce(name, ledger, light, active_light)
        # H2X / L2H pulls read the replicated heavy bitmap: free beyond
        # the per-iteration sync.

    def charge_parent_reduction(self, ledger):
        from repro.machine.costmodel import CollectiveKind

        if self.num_heavy == 0:
            return
        nbytes = float(self.num_heavy) * 8
        intra_f, inter_f = self.mesh.group_traffic_split(np.arange(self._p))
        ledger.charge_collective(
            "reduce",
            CollectiveKind.REDUCE_SCATTER,
            self._p,
            nbytes * intra_f,
            nbytes * inter_f,
            total_bytes=nbytes * self._p,
        )
