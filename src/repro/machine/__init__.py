"""Models of the New Sunway machine.

The paper's hardware is unavailable, so this subpackage provides calibrated
analytic models that convert *measured algorithm behaviour* (bytes moved,
arcs touched, messages sorted — all counted exactly by the simulated
runtime) into modeled seconds:

- :mod:`repro.machine.chip` — the SW26010-Pro processor: 6 core groups of
  64 CPEs, LDM scratchpads, DMA, RMA, GLD/GST, and the MPE.
- :mod:`repro.machine.ldm` — the Figure 7 LDM line/CPE offset mapping used
  by CG-aware core-subgraph segmenting.
- :mod:`repro.machine.network` — node counts, 256-node supernodes, and the
  oversubscribed fat tree.
- :mod:`repro.machine.costmodel` — collective communication timing and the
  per-node kernel rates derived from the chip model.

Calibration targets come from the paper itself (Fig. 14 throughputs, the
9x segmenting speedup, 249 GB/s memory bandwidth) — see each module's
docstring.
"""

from repro.machine.chip import SW26010_PRO, ChipSpec
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.ldm import LDMLayout, SegmentBitVectorMap
from repro.machine.network import PAPER_EDGES_PER_NODE, MachineSpec
from repro.machine.pullsim import (
    PullKernelResult,
    simulate_segmented_pull,
    simulate_unsegmented_pull,
)

__all__ = [
    "ChipSpec",
    "SW26010_PRO",
    "LDMLayout",
    "SegmentBitVectorMap",
    "MachineSpec",
    "PAPER_EDGES_PER_NODE",
    "CostModel",
    "CollectiveKind",
    "NodeKernelRates",
    "PullKernelResult",
    "simulate_segmented_pull",
    "simulate_unsegmented_pull",
]
