"""LDM layout for CG-aware core-subgraph segmenting (paper Fig. 6/7).

In the bottom-up EH2EH kernel, the frontier bit-vector of the column's E and
H vertices must be randomly readable.  It does not fit into one CPE's 256 KB
LDM, so the paper:

1. segments the core subgraph by destination into 6 pieces (one per CG),
   shrinking each piece's bit-vector to ~2 MB;
2. splits that bit-vector into 1024-byte *lines*, round-robin assigned to
   the 64 CPEs of the CG, so a bit lookup becomes an RMA ``get`` from the
   owning sibling CPE (Fig. 7's offset mapping: high bits = line number,
   middle bits = CPE number, low bits = offset within the line).

:class:`LDMLayout` implements and inverts that mapping; the engine and the
tests use it to verify a segment actually fits and that the mapping is a
bijection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.chip import ChipSpec, SW26010_PRO

__all__ = ["LDMLayout", "SegmentBitVectorMap"]


@dataclass(frozen=True)
class LDMLayout:
    """Round-robin line mapping of a byte range onto a CG's CPE LDMs."""

    line_bytes: int = 1024
    num_cpes: int = 64
    #: LDM bytes a CPE may dedicate to the shared bit-vector; the rest is
    #: needed for DMA staging of edges and send/receive buffers.
    ldm_budget_bytes: int = 96 * 1024

    def __post_init__(self) -> None:
        if self.line_bytes < 1 or self.num_cpes < 1:
            raise ValueError("line_bytes and num_cpes must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")

    @property
    def capacity_bytes(self) -> int:
        """Largest shared byte range this layout can host."""
        return self.num_cpes * self.ldm_budget_bytes

    @property
    def capacity_bits(self) -> int:
        return self.capacity_bytes * 8

    def locate_byte(self, byte_offset: np.ndarray | int):
        """Map global byte offset(s) to ``(cpe, local_byte_offset)``.

        Lines are striped round-robin: line ``k`` lives on CPE ``k % 64``
        and is that CPE's ``k // 64``-th local line.
        """
        byte_offset = np.asarray(byte_offset, dtype=np.int64)
        line_no = byte_offset // self.line_bytes
        within = byte_offset % self.line_bytes
        cpe = line_no % self.num_cpes
        local = (line_no // self.num_cpes) * self.line_bytes + within
        return cpe, local

    def locate_bit(self, bit_index: np.ndarray | int):
        """Map global bit index(es) to ``(cpe, local_byte_offset, bit_in_byte)``."""
        bit_index = np.asarray(bit_index, dtype=np.int64)
        cpe, local = self.locate_byte(bit_index // 8)
        return cpe, local, bit_index % 8

    def global_byte(self, cpe: np.ndarray | int, local: np.ndarray | int):
        """Inverse of :meth:`locate_byte`."""
        cpe = np.asarray(cpe, dtype=np.int64)
        local = np.asarray(local, dtype=np.int64)
        local_line = local // self.line_bytes
        within = local % self.line_bytes
        line_no = local_line * self.num_cpes + cpe
        return line_no * self.line_bytes + within

    def fits(self, num_bits: int) -> bool:
        """Can a bit-vector of ``num_bits`` be hosted by this layout?"""
        return num_bits <= self.capacity_bits


@dataclass(frozen=True)
class SegmentBitVectorMap:
    """Placement of one core-subgraph segment's bit-vector in a CG.

    Couples an :class:`LDMLayout` with the segment's vertex range so the
    engine can ask which CPE serves a destination vertex and whether the
    lookup is local or an RMA get.
    """

    vertex_lo: int
    vertex_hi: int
    layout: LDMLayout = LDMLayout()

    def __post_init__(self) -> None:
        if self.vertex_hi < self.vertex_lo:
            raise ValueError("vertex range is inverted")
        if not self.layout.fits(self.num_vertices):
            raise ValueError(
                f"segment of {self.num_vertices} bits exceeds the CG's "
                f"{self.layout.capacity_bits}-bit LDM capacity"
            )

    @property
    def num_vertices(self) -> int:
        return self.vertex_hi - self.vertex_lo

    def serving_cpe(self, vertex: np.ndarray | int) -> np.ndarray:
        """CPE number holding each vertex's frontier bit."""
        vertex = np.asarray(vertex, dtype=np.int64)
        if np.any((vertex < self.vertex_lo) | (vertex >= self.vertex_hi)):
            raise ValueError("vertex outside segment range")
        cpe, _, _ = self.layout.locate_bit(vertex - self.vertex_lo)
        return cpe

    def rma_fraction(self, vertices: np.ndarray, reader_cpe: np.ndarray) -> float:
        """Fraction of lookups that need an RMA get (bit not on the reader).

        With 64 CPEs and round-robin lines this is ~63/64 for random
        accesses; the cost model uses the exact measured fraction.
        """
        served = self.serving_cpe(vertices)
        reader_cpe = np.asarray(reader_cpe, dtype=np.int64)
        if served.size == 0:
            return 0.0
        return float(np.mean(served != (reader_cpe % self.layout.num_cpes)))


def chip_segment_layout(chip: ChipSpec = SW26010_PRO) -> LDMLayout:
    """Default layout for the given chip (64 CPEs, 1 KB lines)."""
    return LDMLayout(num_cpes=chip.cpes_per_cg)
