"""Interconnect model: supernodes and the oversubscribed fat tree.

New Sunway (paper §3.2) groups every 256 nodes into a *supernode* whose
internal communication is non-blocking at the 200 Gbps NIC rate.  Traffic
between supernodes climbs into the top of the fat tree, which is
oversubscribed 8x (§6.1.1), so the per-node bandwidth available for
inter-supernode traffic is 1/8 of the NIC rate when the machine communicates
all-to-all.

The 1.5D partitioning maps mesh *rows* to supernodes, which is why the H
delegation on rows/columns pays off: row collectives stay inside a
supernode, and only column/global traffic crosses the oversubscribed layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.chip import ChipSpec, SW26010_PRO

__all__ = ["MachineSpec", "PAPER_EDGES_PER_NODE"]

#: Per-node undirected edges of the paper's headline run: SCALE 44 with
#: edgefactor 16 over 103,912 nodes (~2.7e9).  Used to derive the work
#: scale of laptop-size reproductions.
PAPER_EDGES_PER_NODE = (16 << 44) / 103912


@dataclass(frozen=True)
class MachineSpec:
    """A New Sunway style machine: nodes, supernodes, fat tree, chips."""

    #: Number of nodes (one SW26010-Pro chip each).  The paper's full
    #: machine is 103,912; the reproduction simulates any count.
    num_nodes: int = 256
    #: Nodes per supernode; intra-supernode communication is unblocked.
    nodes_per_supernode: int = 256
    #: NIC bandwidth per node, bits per second (200 Gbps).
    nic_bits_per_s: float = 200e9
    #: Fat-tree oversubscription for traffic leaving a supernode.
    fat_tree_oversubscription: float = 8.0
    #: Base latency of one point-to-point message, seconds.
    p2p_latency_s: float = 2.0e-6
    #: Additional per-hop software/collective latency, seconds.
    hop_latency_s: float = 0.5e-6
    #: The processor at every node.
    chip: ChipSpec = field(default=SW26010_PRO)
    #: Work-scale extrapolation factor K (DESIGN.md §2): each counted work
    #: unit of the simulated problem represents K units of a paper-scale
    #: problem.  Volume-derived times are left as counted while fixed
    #: overheads (collective latency, kernel spawn, the MPE small-kernel
    #: threshold) divide by K, so ``K * T_simulated`` equals the estimated
    #: paper-scale time exactly — and simulated GTEPS computed from the
    #: small problem's edge count directly estimates the paper-scale GTEPS
    #: at the same node count.
    work_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.nodes_per_supernode < 1:
            raise ValueError("nodes_per_supernode must be >= 1")
        if self.fat_tree_oversubscription < 1:
            raise ValueError("oversubscription must be >= 1")
        if self.work_scale < 1:
            raise ValueError("work_scale must be >= 1")

    @property
    def nic_bytes_per_s(self) -> float:
        """Per-node injection bandwidth in bytes/second (25 GB/s)."""
        return self.nic_bits_per_s / 8.0

    @property
    def inter_supernode_bytes_per_s(self) -> float:
        """Per-node bandwidth available across the oversubscribed layer."""
        return self.nic_bytes_per_s / self.fat_tree_oversubscription

    @property
    def num_supernodes(self) -> int:
        return -(-self.num_nodes // self.nodes_per_supernode)

    def supernode_of(self, node: np.ndarray | int) -> np.ndarray:
        """Supernode index of each node."""
        node = np.asarray(node, dtype=np.int64)
        if np.any((node < 0) | (node >= self.num_nodes)):
            raise ValueError("node index out of range")
        return node // self.nodes_per_supernode

    def same_supernode(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
        """Whether node pairs share a supernode (cheap path)."""
        return self.supernode_of(a) == self.supernode_of(b)

    def bandwidth_for(self, crosses_supernode: bool) -> float:
        """Effective per-node bandwidth for one traffic class."""
        if crosses_supernode:
            return self.inter_supernode_bytes_per_s
        return self.nic_bytes_per_s

    def collective_latency(self, participants: int) -> float:
        """Latency term of a tree-structured collective over P nodes."""
        if participants < 1:
            raise ValueError("participants must be >= 1")
        return self.p2p_latency_s + self.hop_latency_s * float(
            np.ceil(np.log2(max(participants, 2)))
        )

    def scaled_for(self, edges_per_node: float) -> "MachineSpec":
        """A copy whose work scale matches a small per-node problem.

        ``edges_per_node`` is the simulated problem's undirected edges per
        node; K = :data:`PAPER_EDGES_PER_NODE` / edges_per_node (floored
        at 1).  See :attr:`work_scale`.
        """
        if edges_per_node <= 0:
            raise ValueError("edges_per_node must be positive")
        from dataclasses import replace

        k = max(PAPER_EDGES_PER_NODE / edges_per_node, 1.0)
        return replace(self, work_scale=k)
