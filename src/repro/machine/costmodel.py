"""Cost model: counted events → modeled seconds.

Two halves:

1. :class:`CostModel` — communication timing.  Collectives use an
   alpha/beta model: latency grows with log2(participants); the bandwidth
   term divides per-rank bytes by the effective link rate, which depends on
   whether the traffic stays inside a supernode (full NIC rate) or crosses
   the oversubscribed fat-tree layer (rate / oversubscription).

2. :class:`NodeKernelRates` — per-node compute rates for the BFS kernels,
   derived from the chip model so that the chip-level experiments (Fig. 14,
   the 9x segmenting speedup) and the end-to-end BFS model share one source
   of truth:

   - *message kernels* (top-down remote-edge processing, bucketing) run at
     the OCS-RMA rate: memory-bandwidth-bound with ~47% utilization;
   - *pull with segmenting* streams edges via DMA and reads frontier bits
     via RMA from sibling LDMs;
   - *pull without segmenting* pays one GLD-latency random read per scanned
     arc, spread over all CPEs — the 9x gap of §6.4 emerges from these two
     expressions;
   - *sparse kernels* too small to amortize CPE spawning run on the MPE at
     GLD latency per arc (why L2L costs so much of the total at scale,
     Fig. 10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.machine.chip import ChipSpec, SW26010_PRO
from repro.machine.network import MachineSpec

__all__ = ["CollectiveKind", "CostModel", "NodeKernelRates"]


class CollectiveKind(enum.Enum):
    """Communication primitive categories, matching the paper's Fig. 11."""

    ALLTOALLV = "alltoallv"
    ALLGATHER = "allgather"
    REDUCE_SCATTER = "reduce_scatter"
    ALLREDUCE = "allreduce"
    BARRIER = "barrier"
    P2P = "p2p"


@dataclass(frozen=True)
class CostModel:
    """Converts communication volumes into modeled seconds."""

    machine: MachineSpec

    def collective_time(
        self,
        kind: CollectiveKind,
        participants: int,
        max_bytes_per_rank_intra: float = 0.0,
        max_bytes_per_rank_inter: float = 0.0,
    ) -> float:
        """Seconds for one collective.

        Parameters
        ----------
        kind:
            Which primitive; alltoallv pays latency proportional to the
            participant count (it opens P buffers), the tree collectives
            pay log2(P).
        participants:
            Ranks taking part (a row, a column, or the whole mesh).
        max_bytes_per_rank_intra / max_bytes_per_rank_inter:
            The busiest rank's send volume that stays within its supernode
            / crosses supernodes.  The max rank bounds the completion time
            of a balanced collective implementation.
        """
        m = self.machine
        if participants < 1:
            raise ValueError("participants must be >= 1")
        if kind is CollectiveKind.BARRIER:
            return m.collective_latency(participants) / m.work_scale
        if kind in (CollectiveKind.ALLTOALLV, CollectiveKind.P2P):
            # Per-destination message setup dominates sparse alltoallv:
            # this is the low-parallelism latency floor the paper observes
            # for L2L in sparse iterations.
            latency = m.p2p_latency_s + m.hop_latency_s * max(participants - 1, 0)
        else:
            latency = m.collective_latency(participants)
        # Fixed overheads shrink by the work scale (volume terms are
        # already expressed in counted units); see MachineSpec.work_scale.
        latency /= m.work_scale
        bw_time = (
            max_bytes_per_rank_intra / m.nic_bytes_per_s
            + max_bytes_per_rank_inter / m.inter_supernode_bytes_per_s
        )
        if kind in (
            CollectiveKind.ALLGATHER,
            CollectiveKind.REDUCE_SCATTER,
            CollectiveKind.ALLREDUCE,
        ):
            # Ring-style collectives move (P-1)/P of the data volume.
            bw_time *= (participants - 1) / max(participants, 1)
            if kind is CollectiveKind.ALLREDUCE:
                bw_time *= 2.0  # reduce-scatter + allgather
        return latency + bw_time


@dataclass(frozen=True)
class NodeKernelRates:
    """Per-node kernel rates (items/second) derived from a chip model."""

    chip: ChipSpec = field(default=SW26010_PRO)
    #: Bytes per BFS message (vertex id + parent, packed).
    message_bytes: int = 8
    #: Fraction of pull lookups answered by a sibling CPE via RMA under
    #: segmenting (measured ~63/64 for a round-robin layout).
    rma_lookup_fraction: float = 63.0 / 64.0
    #: Pipeline efficiency of overlapping DMA edge streaming with RMA bit
    #: lookups in the segmented pull kernel.
    pull_pipeline_efficiency: float = 0.85
    #: Threshold below which a kernel cannot amortize CPE spawning and runs
    #: on the MPE (items per kernel invocation).
    cpe_spawn_threshold: int = 2048
    #: Seconds to spawn work on the CPE clusters.
    cpe_spawn_latency_s: float = 8.0e-6

    # ------------------------------------------------------------------
    # message-style kernels (OCS-RMA bound)
    # ------------------------------------------------------------------

    def message_throughput_bytes_per_s(self, num_cgs: int | None = None) -> float:
        """Sorted-message throughput of OCS-RMA on ``num_cgs`` CGs.

        Memory-bandwidth bound: one DMA read and one DMA write per message,
        plus per-message CPE work on the producer/consumer halves and the
        cross-CG atomics when more than one CG participates.  Mirrors the
        accounting of :func:`repro.sort.ocs.simulate_ocs_rma` in closed
        form.
        """
        chip = self.chip
        cgs = chip.num_core_groups if num_cgs is None else num_cgs
        dma_s_per_byte = 2.0 / (chip.dma_peak_bytes_per_s * cgs / chip.num_core_groups)
        producers = cgs * chip.cpes_per_cg / 2
        # Per message, producer and consumer each spend cpe_message_ns of
        # register work; messages are spread over `producers` pairs.
        cpe_s_per_byte = 2.0 * chip.cpe_message_ns * 1e-9 / self.message_bytes / producers
        batch_msgs = 512 // self.message_bytes
        rma_s_per_byte = chip.rma_batch_time(512) / 512 / producers
        atomic_s_per_byte = 0.0
        if cgs > 1:
            # One main-memory atomic per flushed batch to claim the shared
            # output cursor across CGs (§4.4: "atomic operations that
            # rarely conflict").
            atomic_s_per_byte = (
                chip.cross_cg_atomic_ns * 1e-9 / (batch_msgs * self.message_bytes)
            ) / producers
        s_per_byte = dma_s_per_byte + cpe_s_per_byte + rma_s_per_byte + atomic_s_per_byte
        return 1.0 / s_per_byte

    def message_rate(self, num_cgs: int | None = None) -> float:
        """Messages/second a node generates-and-buckets via OCS-RMA."""
        return self.message_throughput_bytes_per_s(num_cgs) / self.message_bytes

    # ------------------------------------------------------------------
    # pull (bottom-up) kernels on the EH2EH core subgraph
    # ------------------------------------------------------------------

    def pull_rate_segmented(self) -> float:
        """Arcs/second for segmented bottom-up (frontier bits in LDM).

        Each scanned arc streams 8 bytes of edge data via DMA and performs
        one LDM/RMA bit lookup; lookups across the CG's CPEs proceed in
        parallel, so the RMA latency amortizes per-CPE.
        """
        chip = self.chip
        dma_s = 8.0 / chip.dma_peak_bytes_per_s
        lookup_ns = (
            self.rma_lookup_fraction * chip.rma_pipelined_get_ns
            + (1.0 - self.rma_lookup_fraction) * 2.0  # local LDM access
        )
        lookup_s = lookup_ns * 1e-9 / chip.total_cpes
        return self.pull_pipeline_efficiency / (dma_s + lookup_s)

    def pull_rate_unsegmented(self) -> float:
        """Arcs/second for naive bottom-up (GLD per frontier-bit read)."""
        chip = self.chip
        dma_s = 8.0 / chip.dma_peak_bytes_per_s
        gld_s = chip.gld_latency_ns * 2.0 * 1e-9 / chip.total_cpes
        return 1.0 / (dma_s + gld_s)

    def pull_rate_ldcache(self, working_set_bits: int) -> float:
        """Arcs/second for bottom-up through LDCache (§3.1.2).

        LDCache shares physical space with LDM and caches main-memory
        loads.  Its hit rate collapses once the frontier bit-vector
        exceeds the per-CPE cache capacity — the paper's point that "the
        cache size is also not large enough to hold the hot data given
        millions of vertices each node is responsible for", which is why
        segmenting + RMA was needed.
        """
        chip = self.chip
        cache_bits = chip.ldm_bytes * 8  # LDCache can take up to the LDM
        hit_rate = min(1.0, cache_bits / max(working_set_bits, 1))
        dma_s = 8.0 / chip.dma_peak_bytes_per_s
        lookup_ns = hit_rate * 3.0 + (1.0 - hit_rate) * chip.gld_latency_ns * 2.0
        lookup_s = lookup_ns * 1e-9 / chip.total_cpes
        return 1.0 / (dma_s + lookup_s)

    def pull_rate(self, segmenting: bool) -> float:
        return self.pull_rate_segmented() if segmenting else self.pull_rate_unsegmented()

    # ------------------------------------------------------------------
    # local push / bitmap update kernels
    # ------------------------------------------------------------------

    def local_push_rate(self) -> float:
        """Arcs/second for node-local top-down over delegated subgraphs.

        Reads are sequential (CSR stream) and writes go through the
        two-stage OCS-RMA destination update, so the rate tracks the
        message throughput.
        """
        return self.message_rate()

    def mpe_rate(self) -> float:
        """Arcs/second of the sequential MPE fallback (latency bound)."""
        return 1.0 / (2.0 * self.chip.gld_latency_ns * 1e-9)

    def kernel_time(self, items: int, rate: float, work_scale: float = 1.0) -> float:
        """Seconds for a kernel over ``items``, with the MPE fallback.

        Kernels below the CPE spawn threshold run on the MPE: their cost is
        latency- not bandwidth-bound.  This models the paper's observation
        that extremely sparse iterations (small L2L frontiers) show "low
        parallelism" and keep the MPE busy instead of the CPE clusters.

        ``work_scale`` applies the machine's extrapolation factor K: the
        kernel stands for ``items * K`` paper-scale items, whose time is
        then divided back by K — so the spawn latency amortizes and the
        MPE fallback triggers exactly as it would at paper scale.
        """
        if items <= 0:
            return 0.0
        effective = items * work_scale
        mpe_time = effective / self.mpe_rate() / work_scale
        cpe_time = (self.cpe_spawn_latency_s + effective / rate) / work_scale
        if effective < self.cpe_spawn_threshold:
            # Tiny kernels stay on the MPE...  unless spawning would still
            # be cheaper (a tuned runtime takes the faster engine, which
            # also keeps the model monotone in the work).
            return min(mpe_time, cpe_time)
        return cpe_time

    def segmenting_speedup(self) -> float:
        """Modeled pull speedup of segmenting (paper reports 9x)."""
        return self.pull_rate_segmented() / self.pull_rate_unsegmented()
