"""SW26010-Pro processor model.

The chip (paper §3.1) has 6 core groups (CGs); each CG pairs one management
processing element (MPE) with 64 compute processing elements (CPEs).  Each
CPE owns a 256 KB local data memory (LDM) scratchpad, reachable from sibling
CPEs in the same CG through remote memory access (RMA).  Bulk main-memory
traffic goes through asynchronous DMA; direct loads/stores (GLD/GST) behave
like uncached memory accesses; atomics are implemented through main memory
and are similarly slow.

Every quantity the reproduction needs is a field of :class:`ChipSpec`.  The
values of :data:`SW26010_PRO` are calibrated against numbers stated in the
paper:

- ``dma_peak_bytes_per_s = 249.0 GB/s`` — measured chip DMA peak (§3.1.1).
- ``gld_latency_ns`` — set so a sequential MPE bucketing loop lands at the
  paper's 0.0406 GB/s (Fig. 14): one random read + one random write per
  8-byte record ⇒ ~197 ns per record.
- ``cpe_message_cycles`` and ``cross_cg_atomic_ns`` — set so the OCS-RMA
  simulator (:mod:`repro.sort.ocs`) lands near 12.5 GB/s on one CG and
  58.6 GB/s on six (Fig. 14), i.e. 47% memory-bandwidth utilization.

Tests assert the modeled Fig. 14 shape, not exact equality: the goal is that
relative results follow from the counted events.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChipSpec", "SW26010_PRO"]


@dataclass(frozen=True)
class ChipSpec:
    """Parameters of one SW26010-Pro style many-core processor."""

    #: Core groups per chip.
    num_core_groups: int = 6
    #: CPEs per core group.
    cpes_per_cg: int = 64
    #: LDM scratchpad bytes per CPE.
    ldm_bytes: int = 256 * 1024
    #: CPE clock in Hz (SW26010-Pro runs at 2.25 GHz).
    cpe_clock_hz: float = 2.25e9
    #: Chip-wide DMA peak bandwidth, bytes/second (paper: 249.0 GB/s).
    dma_peak_bytes_per_s: float = 249.0e9
    #: Minimum DMA transfer for good bandwidth utilization, bytes (§4.4
    #: cites a > 1 KB grain-size requirement).
    dma_grain_bytes: int = 1024
    #: Latency of one uncached main-memory access (GLD or GST), ns.
    gld_latency_ns: float = 98.5
    #: Latency of an isolated RMA put/get between CPEs in one CG, ns.
    rma_latency_ns: float = 150.0
    #: Effective per-access cost of *pipelined* fine-grained RMA gets with
    #: multiple outstanding requests, ns.  This is the cost the segmented
    #: pull kernel pays per frontier-bit lookup; it is what makes LDM+RMA
    #: behave like a last-level cache (paper §7) and yields the 9x kernel
    #: speedup of §6.4.
    rma_pipelined_get_ns: float = 7.5
    #: RMA streaming bandwidth between a CPE pair, bytes/second.
    rma_bytes_per_s: float = 20.0e9
    #: CPE cycles of register work to produce or consume one sorted message
    #: (key extraction, LDM buffer append, bounds check).
    cpe_message_cycles: float = 7.0
    #: Cost of one main-memory atomic operation, ns (used for cross-CG
    #: synchronization; the paper notes atomics are as slow as on SW26010).
    cross_cg_atomic_ns: float = 370.0
    #: Main memory per node, bytes (96 GiB per §2.3).
    memory_bytes: int = 96 * 1024**3

    def __post_init__(self) -> None:
        if self.num_core_groups < 1 or self.cpes_per_cg < 1:
            raise ValueError("chip must have at least one CG and one CPE")
        if self.dma_peak_bytes_per_s <= 0:
            raise ValueError("dma_peak_bytes_per_s must be positive")

    @property
    def total_cpes(self) -> int:
        """All CPEs on the chip (384 for SW26010-Pro)."""
        return self.num_core_groups * self.cpes_per_cg

    @property
    def dma_bytes_per_s_per_cg(self) -> float:
        """Fair-share DMA bandwidth for a single active core group."""
        return self.dma_peak_bytes_per_s / self.num_core_groups

    @property
    def cpe_message_ns(self) -> float:
        """Per-message CPE register work in nanoseconds."""
        return self.cpe_message_cycles / self.cpe_clock_hz * 1e9

    def gld_random_access_time(self, num_accesses: int) -> float:
        """Seconds for ``num_accesses`` dependent uncached accesses."""
        return num_accesses * self.gld_latency_ns * 1e-9

    def dma_stream_time(self, num_bytes: float, num_cgs: int | None = None) -> float:
        """Seconds to stream ``num_bytes`` through DMA with ``num_cgs`` CGs.

        Bandwidth scales with the number of participating CGs up to the chip
        peak; ``None`` means the whole chip.
        """
        cgs = self.num_core_groups if num_cgs is None else num_cgs
        if not 1 <= cgs <= self.num_core_groups:
            raise ValueError(f"num_cgs must be in [1, {self.num_core_groups}]")
        bw = self.dma_peak_bytes_per_s * cgs / self.num_core_groups
        return num_bytes / bw

    def rma_batch_time(self, batch_bytes: int) -> float:
        """Seconds for one RMA put of ``batch_bytes`` (latency + stream)."""
        return self.rma_latency_ns * 1e-9 + batch_bytes / self.rma_bytes_per_s


#: The chip model used throughout the reproduction.
SW26010_PRO = ChipSpec()
