"""Functional simulator of the segmented bottom-up kernel (paper §4.3).

The CG-aware segmented pull is the paper's single largest kernel win
(9x).  :func:`simulate_segmented_pull` executes it the way the chip
would, against a real arc list and frontier bit-vector:

- the destination range is split into ``num_segments`` pieces, one per CG;
- each segment's frontier bits are striped over the CG's 64 CPE LDMs by
  the Fig. 7 line mapping (:class:`~repro.machine.ldm.LDMLayout`);
- source intervals are round-robin scheduled across CGs (the Latin-square
  schedule of :class:`~repro.core.segmenting.SegmentingPlan`), so no two
  CGs write the same sources concurrently;
- every scanned arc streams through DMA and performs one bit lookup that
  is *local* when the Fig. 7 mapping places the bit on the scanning CPE
  and an *RMA get* otherwise (~63/64 of lookups).

The function returns the functional hits (identical to a plain early-exit
scan — asserted by tests) plus the counted events priced by the chip
model.  Its balanced-limit throughput is the closed form in
:meth:`~repro.machine.costmodel.NodeKernelRates.pull_rate_segmented`;
:func:`simulate_unsegmented_pull` prices the same scan through GLD
latency, and the ratio of the two reproduces the 9x of §6.4 from event
counts rather than by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.chip import ChipSpec, SW26010_PRO
from repro.machine.ldm import LDMLayout

__all__ = [
    "PullKernelResult",
    "simulate_segmented_pull",
    "simulate_unsegmented_pull",
]


@dataclass(frozen=True)
class PullKernelResult:
    """Functional output + modeled cost of one bottom-up kernel run."""

    #: Destinations that found an active source, and that source.
    hit_dst: np.ndarray
    hit_src: np.ndarray
    #: Arcs scanned (early exit counted).
    scanned_arcs: int
    #: Bit lookups answered by a sibling CPE via RMA (segmented only).
    rma_lookups: int
    #: Bit lookups answered from the scanning CPE's own LDM.
    local_lookups: int
    #: Uncached main-memory reads (unsegmented only).
    gld_lookups: int
    #: Modeled kernel seconds.
    modeled_seconds: float

    @property
    def arcs_per_second(self) -> float:
        if self.modeled_seconds <= 0:
            return 0.0
        return self.scanned_arcs / self.modeled_seconds


def _early_exit_scan(
    src: np.ndarray,
    dst: np.ndarray,
    candidate: np.ndarray,
    active_bits: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group arcs by destination; scan each group until the first active
    source.  Returns (hit_dst, hit_src, scanned_src_of_every_scanned_arc,
    scanned_count_per_group_destination)."""
    order = np.lexsort((src, dst))
    s = src[order]
    d = dst[order]
    keep = candidate[d]
    s, d = s[keep], d[keep]
    if d.size == 0:
        e = np.array([], dtype=np.int64)
        return e, e, e, e
    starts = np.flatnonzero(np.concatenate(([True], d[1:] != d[:-1])))
    lens = np.diff(np.append(starts, d.size))
    offs = np.arange(d.size, dtype=np.int64) - np.repeat(starts, lens)
    hit = active_bits[s]
    first = np.full(starts.size, np.iinfo(np.int64).max)
    grp_of = np.repeat(np.arange(starts.size), lens)
    if np.any(hit):
        np.minimum.at(first, grp_of[hit], offs[hit])
    found = first < np.iinfo(np.int64).max
    scanned_per_group = np.where(found, first + 1, lens)
    # arcs actually scanned: offset < scanned_per_group[group]
    scanned_mask = offs < scanned_per_group[grp_of]
    hit_dst = d[starts[found]]
    hit_src = s[starts[found] + first[found]]
    return hit_dst, hit_src, s[scanned_mask], scanned_per_group


def simulate_segmented_pull(
    src: np.ndarray,
    dst: np.ndarray,
    dst_lo: int,
    dst_hi: int,
    candidate: np.ndarray,
    active_bits: np.ndarray,
    *,
    chip: ChipSpec = SW26010_PRO,
    layout: LDMLayout | None = None,
) -> PullKernelResult:
    """Execute the segmented bottom-up kernel over one rank's arc block.

    Parameters
    ----------
    src, dst:
        The rank's EH2EH arcs (source read for activeness, destination
        scanned when unvisited).
    dst_lo, dst_hi:
        Destination vertex range of this rank's block; segmented into one
        piece per core group.
    candidate:
        Boolean mask: destinations still unvisited.
    active_bits:
        Boolean mask over *source* vertices: the column frontier bits
        whose striped-LDM placement is being simulated.
    """
    if layout is None:
        layout = LDMLayout(num_cpes=chip.cpes_per_cg)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.size and (dst.min() < dst_lo or dst.max() >= dst_hi):
        raise ValueError("arcs outside the destination range")

    num_segments = chip.num_core_groups
    seg_size = -(-(dst_hi - dst_lo) // num_segments) if dst_hi > dst_lo else 1
    hit_d, hit_s, scanned = [], [], 0
    rma = local = 0

    for seg in range(num_segments):
        lo = dst_lo + seg * seg_size
        hi = min(dst_lo + (seg + 1) * seg_size, dst_hi)
        if hi <= lo:
            continue
        in_seg = (dst >= lo) & (dst < hi)
        if not np.any(in_seg):
            continue
        d_seg, s_seg = dst[in_seg], src[in_seg]
        hd, hs, scanned_src, _ = _early_exit_scan(
            s_seg, d_seg, candidate, active_bits
        )
        hit_d.append(hd)
        hit_s.append(hs)
        scanned += scanned_src.size
        # Fig. 7 lookup placement: the frontier bit-vector index of each
        # scanned source, striped over the CG's CPEs; the scanning CPE is
        # derived from the arc's position in the segment's work deal.
        if scanned_src.size:
            bit_cpe, _, _ = layout.locate_bit(scanned_src)
            reader_cpe = np.arange(scanned_src.size) % layout.num_cpes
            is_rma = bit_cpe != reader_cpe
            rma += int(np.count_nonzero(is_rma))
            local += int(scanned_src.size - np.count_nonzero(is_rma))

    hit_dst = np.concatenate(hit_d) if hit_d else np.array([], dtype=np.int64)
    hit_src = np.concatenate(hit_s) if hit_s else np.array([], dtype=np.int64)

    # pricing: DMA stream of the scanned arcs + the measured RMA/local mix
    dma_s = chip.dma_stream_time(scanned * 8.0)
    lookup_ns = rma * chip.rma_pipelined_get_ns + local * 2.0
    lookup_s = lookup_ns * 1e-9 / chip.total_cpes
    # the closed form divides the rate by the pipeline efficiency; the
    # event-driven equivalent inflates the time by it.
    seconds = (dma_s + lookup_s) / 0.85

    return PullKernelResult(
        hit_dst=hit_dst,
        hit_src=hit_src,
        scanned_arcs=scanned,
        rma_lookups=rma,
        local_lookups=local,
        gld_lookups=0,
        modeled_seconds=max(seconds, 1e-30),
    )


def simulate_unsegmented_pull(
    src: np.ndarray,
    dst: np.ndarray,
    candidate: np.ndarray,
    active_bits: np.ndarray,
    *,
    chip: ChipSpec = SW26010_PRO,
) -> PullKernelResult:
    """The same scan priced without segmenting: every frontier-bit lookup
    is an uncached main-memory access (two GLD latencies round-trip),
    spread over all CPEs."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    hd, hs, scanned_src, _ = _early_exit_scan(src, dst, candidate, active_bits)
    scanned = int(scanned_src.size)
    dma_s = chip.dma_stream_time(scanned * 8.0)
    gld_s = scanned * chip.gld_latency_ns * 2.0 * 1e-9 / chip.total_cpes
    return PullKernelResult(
        hit_dst=hd,
        hit_src=hs,
        scanned_arcs=scanned,
        rma_lookups=0,
        local_lookups=0,
        gld_lookups=scanned,
        modeled_seconds=max(dma_s + gld_s, 1e-30),
    )
