"""Compressed sparse row (CSR) adjacency structures.

The whole reproduction works on flat ``int64`` numpy arrays; a graph is a pair
of arc arrays ``(src, dst)`` until it is frozen into a :class:`CSRGraph` for
traversal.  Construction uses a vectorized counting sort (``np.bincount`` +
prefix sums) rather than ``argsort`` — this is O(m) and is the same
construction the paper performs with its in-place global sort during
preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRGraph", "build_csr", "symmetrize_edges"]


def symmetrize_edges(
    src: np.ndarray, dst: np.ndarray, *, drop_self_loops: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Turn an undirected edge list into a directed arc list.

    Every undirected edge ``{u, v}`` contributes the two arcs ``(u, v)`` and
    ``(v, u)``.  Graph500 permits self loops and duplicate edges in the input;
    self loops carry no information for BFS (a vertex cannot be its own
    parent unless it is the root) so they are dropped by default, matching
    what every published Graph500 implementation does during construction.

    Returns the concatenated ``(src, dst)`` arc arrays.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError(f"src/dst shape mismatch: {src.shape} vs {dst.shape}")
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    return np.concatenate([src, dst]), np.concatenate([dst, src])


def build_csr(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    sort_neighbors: bool = False,
) -> "CSRGraph":
    """Build a :class:`CSRGraph` from directed arc arrays.

    Parameters
    ----------
    src, dst:
        Arc endpoint arrays of equal length.  For an undirected traversal
        graph pass the output of :func:`symmetrize_edges`.
    num_vertices:
        Number of vertices ``n``; all arc endpoints must lie in ``[0, n)``.
    sort_neighbors:
        When true, each adjacency list is sorted ascending.  Sorted lists make
        equality tests and validation deterministic; traversal does not
        require it.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError(f"src/dst shape mismatch: {src.shape} vs {dst.shape}")
    if src.size:
        lo = min(src.min(), dst.min())
        hi = max(src.max(), dst.max())
        if lo < 0 or hi >= num_vertices:
            raise ValueError(
                f"arc endpoints [{lo}, {hi}] out of range for n={num_vertices}"
            )

    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    indices = np.empty(src.size, dtype=np.int64)
    # Counting-sort arcs into their source's slot.
    cursor = indptr[:-1].copy()
    order = np.argsort(src, kind="stable")
    indices[:] = dst[order]
    del cursor  # the stable argsort already groups arcs by source

    if sort_neighbors and src.size:
        # Sort within each row by sorting (row, neighbor) pairs.
        row_of = np.repeat(np.arange(num_vertices, dtype=np.int64), counts)
        pair_order = np.lexsort((indices, row_of))
        indices = indices[pair_order]

    return CSRGraph(num_vertices=num_vertices, indptr=indptr, indices=indices)


@dataclass(frozen=True)
class CSRGraph:
    """A frozen CSR adjacency structure.

    Attributes
    ----------
    num_vertices:
        Vertex count ``n``; vertex IDs are ``0..n-1``.
    indptr:
        ``int64[n + 1]`` row pointer; the neighbors of ``v`` are
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64[m]`` flattened adjacency.
    """

    num_vertices: int
    indptr: np.ndarray
    indices: np.ndarray
    _degrees: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.indptr.shape != (self.num_vertices + 1,):
            raise ValueError("indptr must have length num_vertices + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr endpoints inconsistent with indices")

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs stored (2x the undirected edge count)."""
        return int(self.indices.size)

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (``int64[n]``)."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Adjacency list of ``v`` as a view into ``indices``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def arcs(self) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct the flat ``(src, dst)`` arc arrays."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        return src, self.indices.copy()

    def has_arc(self, u: int, v: int) -> bool:
        """True when the directed arc ``(u, v)`` is stored."""
        return bool(np.any(self.neighbors(u) == v))

    def reverse(self) -> "CSRGraph":
        """CSR of the transposed graph (incoming adjacency)."""
        src, dst = self.arcs()
        return build_csr(dst, src, self.num_vertices)

    def subgraph_arcs(self, mask_src: np.ndarray, mask_dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Arcs whose source satisfies ``mask_src`` and destination ``mask_dst``.

        Both masks are boolean arrays of length ``n``.  Used by the 1.5D
        partitioner to split the arc set into the six degree-class
        components.
        """
        src, dst = self.arcs()
        keep = mask_src[src] & mask_dst[dst]
        return src[keep], dst[keep]
