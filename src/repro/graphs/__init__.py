"""Graph storage and statistics substrate.

This subpackage provides the in-memory graph representations shared by the
Graph500 reference implementations, the baseline engines, and the 1.5D
partitioned engine:

- :mod:`repro.graphs.csr` — compressed sparse row adjacency built from raw
  edge arrays with vectorized counting sort.
- :mod:`repro.graphs.stats` — degree statistics and the log-binned degree
  histogram used for Figure 2 and for threshold selection.
"""

from repro.graphs.csr import CSRGraph, build_csr, symmetrize_edges
from repro.graphs.generators import (
    erdos_renyi_edges,
    power_law_edges,
    ring_lattice_edges,
    star_forest_edges,
)
from repro.graphs.io import (
    load_edges_npz,
    load_edges_text,
    save_edges_npz,
    save_edges_text,
)
from repro.graphs.stats import (
    degree_histogram,
    degree_peaks,
    degrees_from_edges,
    gini_coefficient,
)

__all__ = [
    "CSRGraph",
    "build_csr",
    "symmetrize_edges",
    "degrees_from_edges",
    "degree_histogram",
    "degree_peaks",
    "gini_coefficient",
    "erdos_renyi_edges",
    "power_law_edges",
    "star_forest_edges",
    "ring_lattice_edges",
    "save_edges_npz",
    "load_edges_npz",
    "save_edges_text",
    "load_edges_text",
]
