"""Additional graph generators for testing and applicability studies.

The paper argues (§8) the 1.5D partitioning targets "any graph with
extremely skewed degree distribution".  Beyond the Graph500 R-MAT
generator (:mod:`repro.graph500.rmat`), this module provides the other
degree regimes needed to probe that claim:

- :func:`erdos_renyi_edges` — homogeneous degrees (the null case where
  delegation should win nothing);
- :func:`power_law_edges` — a configuration-model graph with an exact
  target power-law exponent (web/social-like tails);
- :func:`star_forest_edges` — adversarially hub-dominated (every edge
  touches a hub), the stress case for delegation;
- :func:`ring_lattice_edges` — high-diameter, zero skew (worst case for
  direction optimization, many BFS iterations).

All generators are deterministic under a seed and return plain
``(src, dst)`` edge arrays compatible with the whole pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "erdos_renyi_edges",
    "power_law_edges",
    "star_forest_edges",
    "ring_lattice_edges",
]


def erdos_renyi_edges(
    num_vertices: int, num_edges: int, *, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """G(n, m)-style uniform random edges (duplicates possible)."""
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return src, dst


def power_law_edges(
    num_vertices: int,
    num_edges: int,
    *,
    exponent: float = 2.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Configuration-model edges with a power-law stub distribution.

    Each endpoint is drawn independently with ``P(v) ∝ (v + 1)^-alpha``
    over a permuted vertex order — a Zipf-attachment graph whose degree
    tail follows the target exponent.
    """
    if not 1.0 < exponent < 4.0:
        raise ValueError("exponent should be in (1, 4) for a heavy tail")
    rng = np.random.default_rng(seed)
    weights = (np.arange(num_vertices, dtype=np.float64) + 1.0) ** (-exponent)
    weights /= weights.sum()
    perm = rng.permutation(num_vertices)
    src = perm[rng.choice(num_vertices, size=num_edges, p=weights)]
    dst = perm[rng.choice(num_vertices, size=num_edges, p=weights)]
    return src.astype(np.int64), dst.astype(np.int64)


def star_forest_edges(
    num_vertices: int, num_hubs: int, *, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Every non-hub vertex attaches to one of ``num_hubs`` hubs."""
    if not 1 <= num_hubs < num_vertices:
        raise ValueError("need 1 <= num_hubs < num_vertices")
    rng = np.random.default_rng(seed)
    leaves = np.arange(num_hubs, num_vertices, dtype=np.int64)
    hubs = rng.integers(0, num_hubs, size=leaves.size, dtype=np.int64)
    return hubs, leaves


def ring_lattice_edges(
    num_vertices: int, *, neighbors: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """A ring where each vertex connects to its ``neighbors`` successors.

    Diameter ~ n / (2 * neighbors): the many-iteration regime where BFS
    frontiers never densify and direction optimization stays top-down.
    """
    if num_vertices < 3:
        raise ValueError("ring needs at least 3 vertices")
    if not 1 <= neighbors < num_vertices // 2:
        raise ValueError("neighbors must be in [1, n/2)")
    base = np.arange(num_vertices, dtype=np.int64)
    src = np.concatenate([base for _ in range(neighbors)])
    dst = np.concatenate(
        [(base + k) % num_vertices for k in range(1, neighbors + 1)]
    )
    return src, dst
