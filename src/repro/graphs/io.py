"""Graph I/O: edge-list persistence for experiment reproducibility.

Two formats:

- **binary** (``.npz``) — compressed numpy archive with the edge arrays
  and metadata (vertex count, generator parameters); lossless and fast.
- **text** (``.txt`` / ``.tsv``) — one ``src dst`` pair per line, the
  lingua franca of graph repositories (SNAP, KONECT), so real-world edge
  lists drop straight into the 1.5D pipeline.

Both loaders return ``(src, dst, num_vertices)`` ready for
:func:`repro.core.partition.partition_graph`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = [
    "save_edges_npz",
    "load_edges_npz",
    "save_edges_text",
    "load_edges_text",
]


def save_edges_npz(
    path: str | Path,
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    metadata: dict | None = None,
) -> Path:
    """Write an edge list (and optional generator metadata) to ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src/dst shape mismatch")
    meta_keys = []
    meta_vals = []
    for k, v in (metadata or {}).items():
        meta_keys.append(str(k))
        meta_vals.append(str(v))
    np.savez_compressed(
        path,
        src=src,
        dst=dst,
        num_vertices=np.int64(num_vertices),
        meta_keys=np.array(meta_keys, dtype="U64"),
        meta_vals=np.array(meta_vals, dtype="U64"),
    )
    return path


def load_edges_npz(path: str | Path) -> tuple[np.ndarray, np.ndarray, int, dict]:
    """Load an edge list saved by :func:`save_edges_npz`.

    Returns ``(src, dst, num_vertices, metadata)``.
    """
    with np.load(Path(path)) as data:
        src = data["src"].astype(np.int64)
        dst = data["dst"].astype(np.int64)
        n = int(data["num_vertices"])
        meta = dict(zip(data["meta_keys"].tolist(), data["meta_vals"].tolist()))
    _validate(src, dst, n)
    return src, dst, n, meta


def save_edges_text(
    path: str | Path, src: np.ndarray, dst: np.ndarray, *, comment: str | None = None
) -> Path:
    """Write a SNAP-style whitespace edge list."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src/dst shape mismatch")
    with path.open("w") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"# {line}\n")
        np.savetxt(fh, np.column_stack([src, dst]), fmt="%d")
    return path


def load_edges_text(
    path: str | Path, *, num_vertices: int | None = None
) -> tuple[np.ndarray, np.ndarray, int]:
    """Load a SNAP-style edge list (``#`` comments ignored).

    ``num_vertices`` defaults to ``max(endpoint) + 1``.  Vertex IDs must
    be nonnegative integers; relabel upstream if the source file uses
    arbitrary keys.
    """
    text_lines = [
        line
        for line in Path(path).read_text().splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not text_lines:
        arr = np.empty((0, 2), dtype=np.int64)
    else:
        arr = np.loadtxt(text_lines, dtype=np.int64, ndmin=2)
    if arr.size == 0:
        src = dst = np.array([], dtype=np.int64)
    else:
        if arr.shape[1] < 2:
            raise ValueError("edge list rows need at least two columns")
        src, dst = arr[:, 0].copy(), arr[:, 1].copy()
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    _validate(src, dst, num_vertices)
    return src, dst, num_vertices


def _validate(src: np.ndarray, dst: np.ndarray, n: int) -> None:
    if src.size and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n):
        raise ValueError(f"edge endpoints out of range for n={n}")
