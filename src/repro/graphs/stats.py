"""Degree statistics for skewed graphs.

Used for three purposes in the reproduction:

1. Figure 2 — the log-binned degree histogram of a Graph500 R-MAT graph,
   showing the characteristic *multi-peak discrete* distribution.
2. Threshold selection (paper §6.2.1) — only thresholds falling *between*
   degree peaks are meaningful, so :func:`degree_peaks` locates the peaks.
3. Load-imbalance quantification — :func:`gini_coefficient` summarizes how
   skewed a per-partition workload is.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "degrees_from_edges",
    "degree_histogram",
    "degree_peaks",
    "gini_coefficient",
]


def degrees_from_edges(
    src: np.ndarray, dst: np.ndarray, num_vertices: int, *, count_self_loops: bool = False
) -> np.ndarray:
    """Undirected degree of every vertex from an undirected edge list.

    Each edge ``{u, v}`` adds one to both endpoints' degrees.  Self loops are
    excluded by default (consistent with :func:`repro.graphs.csr.symmetrize_edges`).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if not count_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    deg = np.bincount(src, minlength=num_vertices)
    deg += np.bincount(dst, minlength=num_vertices)
    return deg.astype(np.int64)


def degree_histogram(degrees: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact (degree, vertex-count) histogram over nonzero degrees.

    Returns a pair of equal-length arrays ``(unique_degrees, counts)`` sorted
    by degree ascending.  Degree-0 vertices are excluded, matching the
    paper's Figure 2 axes (both log scale, so zero cannot be plotted).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    nz = degrees[degrees > 0]
    if nz.size == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    values, counts = np.unique(nz, return_counts=True)
    return values, counts


def degree_peaks(
    degrees: np.ndarray, *, num_bins_per_decade: int = 8, min_prominence: float = 0.5
) -> np.ndarray:
    """Locate the peaks of the log-binned degree distribution.

    Graph500's Kronecker generator yields a degree distribution that is a
    mixture of hypergeometric modes (paper Fig. 2).  The E/H thresholds must
    fall in the valleys between modes; this function finds the mode centers
    so the benchmark harness can derive small-SCALE analogues of the paper's
    threshold grid.

    Parameters
    ----------
    degrees:
        Per-vertex degrees.
    num_bins_per_decade:
        Resolution of the log-space histogram used for peak finding.
    min_prominence:
        A bin is a peak when its log10 count exceeds both neighbors by at
        least this much *or* is a local maximum over a 3-bin window.

    Returns
    -------
    Array of peak-center degrees, ascending.
    """
    values, counts = degree_histogram(degrees)
    if values.size == 0:
        return np.array([], dtype=np.int64)
    max_deg = float(values.max())
    num_bins = max(int(np.ceil(np.log10(max(max_deg, 10.0)) * num_bins_per_decade)), 4)
    edges = np.logspace(0, np.log10(max_deg + 1.0), num_bins + 1)
    bin_counts, _ = np.histogram(
        np.repeat(values, counts).astype(np.float64), bins=edges
    )
    logc = np.log10(bin_counts + 1.0)
    peaks: list[float] = []
    for i in range(len(logc)):
        left = logc[i - 1] if i > 0 else -np.inf
        right = logc[i + 1] if i + 1 < len(logc) else -np.inf
        if logc[i] <= 0:
            continue
        if logc[i] >= left and logc[i] >= right and (
            logc[i] - min(left, right) >= min_prominence or (logc[i] > left and logc[i] > right)
        ):
            peaks.append(float(np.sqrt(edges[i] * edges[i + 1])))
    return np.unique(np.round(peaks).astype(np.int64))


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a nonnegative workload vector.

    0 means perfectly balanced, values toward 1 mean concentrated on few
    partitions.  Used by the load-balance analysis around Figure 13.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0:
        return 0.0
    if np.any(v < 0):
        raise ValueError("gini_coefficient requires nonnegative values")
    total = v.sum()
    if total == 0:
        return 0.0
    n = v.size
    # Standard formula: G = (2 * sum(i * v_i) / (n * sum(v))) - (n + 1) / n
    idx = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * np.dot(idx, v) / (n * total) - (n + 1.0) / n)
