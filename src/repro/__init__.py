"""repro — reproduction of "Scaling Graph Traversal to 281 Trillion Edges
with 40 Million Cores" (Cao et al., PPoPP 2022).

The package implements the paper's full system on a simulated New Sunway
machine:

- :mod:`repro.graph500` — spec-conforming R-MAT generation, reference BFS,
  and result validation.
- :mod:`repro.graphs` — CSR storage and degree statistics.
- :mod:`repro.machine` — SW26010-Pro chip and fat-tree interconnect models.
- :mod:`repro.runtime` — simulated SPMD runtime (process mesh, communicator,
  traffic ledger).
- :mod:`repro.sort` — OCS-RMA on-chip sorting, PSRS, PARADIS-style radix.
- :mod:`repro.core` — the paper's contribution: 3-level degree-aware 1.5D
  partitioning, sub-iteration direction optimization, CG-aware segmenting,
  and the distributed BFS engine.
- :mod:`repro.baselines` — 1D, 1D+heavy-delegates, and 2D BFS engines.
- :mod:`repro.analysis` — breakdown collection and report rendering.
- :mod:`repro.obs` — span-based tracing/profiling with Chrome-trace,
  flame-text, and CSV exporters.

Quickstart::

    from repro import Graph500Problem, generate_edges
    from repro.core import BFSConfig, DistributedBFS, partition_graph
    from repro.machine import MachineSpec

    problem = Graph500Problem(scale=16)
    src, dst = generate_edges(problem.scale, seed=1)
    machine = MachineSpec(num_nodes=16)
    part = partition_graph(src, dst, problem.num_vertices, machine=machine)
    engine = DistributedBFS(part, machine=machine, config=BFSConfig())
    result = engine.run(root=0)
    print(result.simulated_gteps(problem))
"""

from repro.graph500 import (
    Graph500Problem,
    direction_optimizing_bfs,
    generate_edges,
    serial_bfs,
    validate_bfs_result,
)
from repro.graphs import CSRGraph, build_csr, symmetrize_edges
from repro.obs import NullTracer, Tracer

__version__ = "1.0.0"

__all__ = [
    "Graph500Problem",
    "generate_edges",
    "serial_bfs",
    "direction_optimizing_bfs",
    "validate_bfs_result",
    "CSRGraph",
    "build_csr",
    "symmetrize_edges",
    "Tracer",
    "NullTracer",
    "__version__",
]
