"""Sorting substrates.

The paper treats sorting as a first-class meta-kernel:

- :mod:`repro.sort.ocs` — On-Chip Sorting with RMA (OCS-RMA, §4.4): the
  producer/consumer bucket sort running on a core group's CPEs, used for
  message generation, L2L forwarding, and two-stage destination updates.
- :mod:`repro.sort.bucket` — the sequential MPE bucketing baseline and the
  vectorized bucket partition primitive shared by the runtime.
- :mod:`repro.sort.psrs` — Parallel Sorting by Regular Sampling (§5,
  in-place global sort for preprocessing).
- :mod:`repro.sort.radix` — PARADIS-style LSD radix sort used as PSRS's
  local sort.
"""

from repro.sort.bucket import bucket_partition, mpe_bucket_sort
from repro.sort.ocs import OCSConfig, OCSResult, simulate_ocs_rma
from repro.sort.psrs import psrs_sort
from repro.sort.radix import radix_argsort, radix_sort

__all__ = [
    "OCSConfig",
    "OCSResult",
    "simulate_ocs_rma",
    "bucket_partition",
    "mpe_bucket_sort",
    "psrs_sort",
    "radix_sort",
    "radix_argsort",
]
