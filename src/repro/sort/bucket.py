"""Bucket partition primitives.

:func:`bucket_partition` is the workhorse the simulated runtime uses to
split message arrays by destination rank (the functional half of what
OCS-RMA does on the chip).  :func:`mpe_bucket_sort` is the sequential
reference whose modeled cost anchors the bottom bar of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.chip import ChipSpec, SW26010_PRO

__all__ = ["bucket_partition", "mpe_bucket_sort", "MPEBucketResult"]


def bucket_partition(
    values: np.ndarray, bucket_of: np.ndarray, num_buckets: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable-partition ``values`` into buckets.

    Parameters
    ----------
    values:
        1-D (or 2-D row-records) array of messages.
    bucket_of:
        ``int64`` bucket index per message, each in ``[0, num_buckets)``.
    num_buckets:
        Number of buckets.

    Returns
    -------
    ``(out, offsets)`` where ``out`` is ``values`` reordered so bucket ``b``
    occupies ``out[offsets[b]:offsets[b + 1]]``; within a bucket original
    order is preserved (stability is what makes two-stage sorting work).
    """
    bucket_of = np.asarray(bucket_of, dtype=np.int64)
    if bucket_of.ndim != 1 or bucket_of.shape[0] != np.asarray(values).shape[0]:
        raise ValueError("bucket_of must be 1-D and match values length")
    if bucket_of.size and (bucket_of.min() < 0 or bucket_of.max() >= num_buckets):
        raise ValueError("bucket index out of range")
    counts = np.bincount(bucket_of, minlength=num_buckets)
    offsets = np.zeros(num_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    order = np.argsort(bucket_of, kind="stable")
    return np.asarray(values)[order], offsets


@dataclass(frozen=True)
class MPEBucketResult:
    """Output + modeled cost of the sequential MPE bucketing baseline."""

    values: np.ndarray
    offsets: np.ndarray
    modeled_seconds: float
    bytes_processed: int

    @property
    def throughput_bytes_per_s(self) -> float:
        return self.bytes_processed / self.modeled_seconds


def mpe_bucket_sort(
    values: np.ndarray,
    bucket_of: np.ndarray,
    num_buckets: int,
    *,
    chip: ChipSpec = SW26010_PRO,
    message_bytes: int = 8,
) -> MPEBucketResult:
    """Sequential MPE bucketing: functional output + modeled time.

    The MPE walks the messages one by one; each message costs one uncached
    read of the input and one uncached write to the bucket cursor (two GLD
    latencies) because the bucket write stream is effectively random.
    At the paper's parameters this lands at 0.0406 GB/s (Fig. 14).
    """
    out, offsets = bucket_partition(values, bucket_of, num_buckets)
    n = np.asarray(values).shape[0]
    seconds = chip.gld_random_access_time(2 * n)
    return MPEBucketResult(
        values=out,
        offsets=offsets,
        modeled_seconds=max(seconds, 1e-30),
        bytes_processed=n * message_bytes,
    )
