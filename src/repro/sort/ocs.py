"""On-Chip Sorting with RMA (OCS-RMA, paper §4.4).

The kernel sorts a stream of fixed-size messages into buckets without
atomics and without redundant main-memory round trips:

- the 64 CPEs of a core group split into 32 *producers* and 32 *consumers*;
- bucket ``x`` belongs to consumer ``x mod 32``;
- each producer keeps 32 send buffers of 512 bytes (one per consumer);
  a full buffer is RMA-put into the producer's slot in the consumer's
  receive window;
- consumers drain their receive slots and DMA completed buckets to memory.

With several CGs, each CG runs the kernel on a slice of the input and
claims output cursors with main-memory atomics ("rarely conflict", §4.4),
which costs a little efficiency — visible in Fig. 14 (12.5 GB/s x 6 CGs
would be 75, the measured 6-CG rate is 58.6).

:func:`simulate_ocs_rma` executes the bucketing *functionally* (the output
really is the input stably partitioned by bucket) while counting the DMA
bytes, RMA batches, per-CPE message work, and cross-CG atomics the chip
would perform, then prices them with :class:`repro.machine.chip.ChipSpec`.
The closed-form rate in :class:`repro.machine.costmodel.NodeKernelRates`
is the balanced-load limit of this event count; a test pins the two within
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.chip import ChipSpec, SW26010_PRO
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sort.bucket import bucket_partition

__all__ = ["OCSConfig", "OCSResult", "simulate_ocs_rma"]


@dataclass(frozen=True)
class OCSConfig:
    """Kernel configuration (defaults are the paper's)."""

    #: Producer CPEs per core group (half of 64).
    producers_per_cg: int = 32
    #: Consumer CPEs per core group.
    consumers_per_cg: int = 32
    #: Send/receive buffer size per (producer, consumer) pair, bytes.
    buffer_bytes: int = 512
    #: Bytes per message.
    message_bytes: int = 8
    #: Core groups participating (1..chip.num_core_groups).
    num_cgs: int = 6

    def __post_init__(self) -> None:
        if self.buffer_bytes < self.message_bytes:
            raise ValueError("buffer must hold at least one message")
        if self.producers_per_cg < 1 or self.consumers_per_cg < 1:
            raise ValueError("need at least one producer and consumer per CG")
        if self.num_cgs < 1:
            raise ValueError("num_cgs must be >= 1")

    @property
    def messages_per_batch(self) -> int:
        return self.buffer_bytes // self.message_bytes

    @property
    def total_producers(self) -> int:
        return self.producers_per_cg * self.num_cgs


@dataclass(frozen=True)
class OCSResult:
    """Functional output and modeled cost of one OCS-RMA invocation."""

    #: Messages stably partitioned by bucket.
    values: np.ndarray
    #: ``offsets[b]:offsets[b+1]`` delimits bucket ``b`` in ``values``.
    offsets: np.ndarray
    #: Event counts.
    num_messages: int
    num_batches: int
    num_atomics: int
    dma_bytes: int
    #: Modeled execution time, seconds.
    modeled_seconds: float
    config: OCSConfig = field(repr=False, default=OCSConfig())

    @property
    def throughput_bytes_per_s(self) -> float:
        """Sorted bytes per modeled second (the Fig. 14 metric)."""
        if self.modeled_seconds <= 0:
            return 0.0
        return self.num_messages * self.config.message_bytes / self.modeled_seconds

    def bandwidth_utilization(self, chip: ChipSpec = SW26010_PRO) -> float:
        """Memory-bandwidth utilization: one read + one write per message."""
        return 2.0 * self.throughput_bytes_per_s / chip.dma_peak_bytes_per_s


def simulate_ocs_rma(
    values: np.ndarray,
    bucket_of: np.ndarray,
    num_buckets: int,
    *,
    config: OCSConfig = OCSConfig(),
    chip: ChipSpec = SW26010_PRO,
    tracer: Tracer | None = None,
) -> OCSResult:
    """Run OCS-RMA: functionally bucket ``values``, count and price events.

    Parameters
    ----------
    values:
        Message array (1-D scalars or 2-D row records).
    bucket_of:
        Bucket index per message in ``[0, num_buckets)``.
    num_buckets:
        Bucket count (e.g. 256 for the Fig. 14 microbenchmark, or the
        destination-rank count for message generation).
    config, chip:
        Kernel and chip parameters.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; records an
        ``ocs_rma`` span with one leaf per modeled cost term (DMA
        streaming, producer batching, consumer draining, cross-CG
        atomics), each carrying its event counters.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    if config.num_cgs > chip.num_core_groups:
        raise ValueError(
            f"config asks for {config.num_cgs} CGs, chip has {chip.num_core_groups}"
        )
    bucket_of = np.asarray(bucket_of, dtype=np.int64)
    n = bucket_of.size

    out, offsets = bucket_partition(values, bucket_of, num_buckets)

    # --- event counting -------------------------------------------------
    # Input is split into contiguous chunks round-robin over producers;
    # message i is handled by producer (i * P) // n for near-equal chunks.
    producers = config.total_producers
    if n:
        producer_of = (np.arange(n, dtype=np.int64) * producers) // n
        consumer_of = bucket_of % config.consumers_per_cg
        # Batches: ceil(count / messages_per_batch) per (producer, consumer)
        # pair with a nonzero count (every pair flushes its partial buffer
        # at the end).
        pair = producer_of * config.consumers_per_cg + consumer_of
        pair_counts = np.bincount(pair, minlength=producers * config.consumers_per_cg)
        nz = pair_counts[pair_counts > 0]
        batches = int(np.sum(-(-nz // config.messages_per_batch)))
        msgs_per_producer = np.bincount(producer_of, minlength=producers)
        batches_per_producer = np.zeros(producers, dtype=np.int64)
        pair_producer = np.arange(producers * config.consumers_per_cg) // config.consumers_per_cg
        np.add.at(
            batches_per_producer,
            pair_producer,
            -(-pair_counts // config.messages_per_batch),
        )
        # Consumer-side message counts (within each CG, consumers see the
        # messages of that CG's producer slice).
        cg_of_producer = np.arange(producers) // config.producers_per_cg
        cg_of_msg = cg_of_producer[producer_of]
        cons_slot = cg_of_msg * config.consumers_per_cg + consumer_of
        msgs_per_consumer = np.bincount(
            cons_slot, minlength=config.num_cgs * config.consumers_per_cg
        )
        max_prod_msgs = int(msgs_per_producer.max())
        max_cons_msgs = int(msgs_per_consumer.max())
        max_prod_batches = int(batches_per_producer.max())
    else:
        batches = 0
        max_prod_msgs = max_cons_msgs = max_prod_batches = 0

    atomics = batches if config.num_cgs > 1 else 0
    dma_bytes = 2 * n * config.message_bytes

    # --- pricing ---------------------------------------------------------
    t_dma = chip.dma_stream_time(dma_bytes, num_cgs=config.num_cgs)
    t_cpe = (max_prod_msgs + max_cons_msgs) * chip.cpe_message_ns * 1e-9
    t_rma = max_prod_batches * chip.rma_batch_time(config.buffer_bytes)
    t_atomic = (
        max_prod_batches * chip.cross_cg_atomic_ns * 1e-9
        if config.num_cgs > 1
        else 0.0
    )
    seconds = t_dma + t_cpe + t_rma + t_atomic

    if tracer.enabled:
        t_produce = max_prod_msgs * chip.cpe_message_ns * 1e-9 + t_rma
        t_consume = max_cons_msgs * chip.cpe_message_ns * 1e-9
        with tracer.span(
            "ocs_rma", category="ocs",
            num_buckets=num_buckets, num_cgs=config.num_cgs,
        ):
            tracer.charge(
                "dma_stream", category="kernel", sim_seconds=t_dma,
                counters={"dma_bytes": float(dma_bytes)}, phase="ocs",
            )
            tracer.charge(
                "produce", category="kernel", sim_seconds=t_produce,
                counters={"messages": float(n), "batches": float(batches)},
                phase="ocs",
            )
            tracer.charge(
                "consume", category="kernel", sim_seconds=t_consume,
                counters={"messages": float(n)}, phase="ocs",
            )
            if t_atomic:
                tracer.charge(
                    "cross_cg_atomics", category="kernel",
                    sim_seconds=t_atomic,
                    counters={"atomics": float(atomics)}, phase="ocs",
                )

    return OCSResult(
        values=out,
        offsets=offsets,
        num_messages=n,
        num_batches=batches,
        num_atomics=atomics,
        dma_bytes=dma_bytes,
        modeled_seconds=max(seconds, 1e-30),
        config=config,
    )
