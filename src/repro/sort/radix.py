"""LSD radix sort (the PARADIS role in the preprocessing pipeline).

The paper's in-place global sort uses PARADIS (Cho et al., VLDB'15) as its
node-local sort.  PARADIS is an in-place parallel *MSD* radix sort; in a
numpy reproduction the equivalent role — a linear-time, comparison-free,
stable integer sort — is filled by a vectorized LSD byte-radix sort.  The
stability property is what the partitioner relies on (it sorts arcs by
destination then by source and needs the second pass to preserve the
first's order).
"""

from __future__ import annotations

import numpy as np

__all__ = ["radix_sort", "radix_argsort"]

_RADIX_BITS = 8
_RADIX = 1 << _RADIX_BITS
_MASK = _RADIX - 1


def radix_argsort(keys: np.ndarray, *, max_key: int | None = None) -> np.ndarray:
    """Stable argsort of nonnegative int64 keys via LSD byte passes.

    Equivalent to ``np.argsort(keys, kind='stable')`` but linear in
    ``len(keys)`` for bounded keys.  ``max_key`` (defaults to
    ``keys.max()``) bounds the number of byte passes.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    if keys.size == 0:
        return np.array([], dtype=np.int64)
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError(f"radix sort requires integer keys, got {keys.dtype}")
    keys = keys.astype(np.int64, copy=False)
    if keys.min() < 0:
        raise ValueError("radix sort requires nonnegative keys")
    hi = int(keys.max()) if max_key is None else int(max_key)
    if hi < int(keys.max()):
        raise ValueError("max_key smaller than actual maximum key")

    order = np.arange(keys.size, dtype=np.int64)
    shifted = keys.copy()
    passes = 1
    while (hi >> (passes * _RADIX_BITS)) > 0:
        passes += 1
    for _ in range(passes):
        digit = shifted & _MASK
        # counting sort on this digit, stable
        counts = np.bincount(digit, minlength=_RADIX)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        # position of each element within its digit group, preserving order
        within = _stable_rank(digit)
        pos = starts[digit] + within
        new_order = np.empty_like(order)
        new_order[pos] = order
        new_shifted = np.empty_like(shifted)
        new_shifted[pos] = shifted
        order, shifted = new_order, new_shifted
        shifted >>= _RADIX_BITS
    return order


def _stable_rank(digit: np.ndarray) -> np.ndarray:
    """Rank of each element among equal digits, in original order.

    For ``digit = [2, 0, 2, 2]`` returns ``[0, 0, 1, 2]``.  Computed with a
    cumulative per-value counter, vectorized via sorting-free bincount
    offsets and a cumsum trick.
    """
    n = digit.size
    # occurrences[i] = number of earlier elements with the same digit.
    # Use the classic "cumcount" construction: stable argsort of digit,
    # then within each group positions are consecutive.
    order = np.argsort(digit, kind="stable")
    sorted_digit = digit[order]
    group_start = np.flatnonzero(
        np.concatenate(([True], sorted_digit[1:] != sorted_digit[:-1]))
    )
    idx = np.arange(n, dtype=np.int64)
    start_of_group = np.repeat(idx[group_start], np.diff(np.append(group_start, n)))
    rank_sorted = idx - start_of_group
    rank = np.empty(n, dtype=np.int64)
    rank[order] = rank_sorted
    return rank


def radix_sort(keys: np.ndarray, *, max_key: int | None = None) -> np.ndarray:
    """Return the keys in ascending order (stable radix sort)."""
    keys = np.asarray(keys)
    if keys.size == 0:
        return keys.astype(np.int64, copy=True) if keys.ndim == 1 else keys.copy()
    return keys[radix_argsort(keys, max_key=max_key)]
