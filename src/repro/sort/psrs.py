"""Parallel Sorting by Regular Sampling (Shi & Schaeffer, 1992).

The paper's preprocessing (§5, "in-place global sort") splits a near-memory-
full edge list into the six 1.5D components with a generic global sort built
on PSRS, with PARADIS as the node-local sort.  This module implements PSRS
over the simulated ranks:

1. every rank sorts its chunk locally (:mod:`repro.sort.radix`);
2. every rank contributes ``P`` regular samples;
3. rank 0 sorts the ``P * P`` samples and picks ``P - 1`` pivots;
4. each rank splits its sorted chunk by the pivots and alltoallv-exchanges
   the pieces;
5. every rank merges its received runs.

The optional ``comm`` hook receives the exchange matrix so the runtime can
charge the traffic ledger for the preprocessing phase.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.sort.radix import radix_sort

__all__ = ["psrs_sort"]


def psrs_sort(
    chunks: Sequence[np.ndarray],
    *,
    local_sort: Callable[[np.ndarray], np.ndarray] | None = None,
    on_exchange: Callable[[np.ndarray], None] | None = None,
) -> list[np.ndarray]:
    """Globally sort data distributed over ``P`` rank-local chunks.

    Parameters
    ----------
    chunks:
        One array per rank (lengths may differ; empty ranks are fine).
    local_sort:
        Node-local sort; defaults to the radix sort for nonnegative ints
        and ``np.sort`` otherwise.
    on_exchange:
        Callback receiving the ``P x P`` byte matrix ``sent[i, j]`` of the
        alltoallv exchange, for ledger accounting.

    Returns
    -------
    Per-rank sorted partitions: concatenating them yields the globally
    sorted sequence, and ``max(part[i]) <= min(part[i+1])`` for nonempty
    neighbors.
    """
    p = len(chunks)
    if p == 0:
        return []
    chunks = [np.asarray(c) for c in chunks]
    if any(c.ndim != 1 for c in chunks):
        raise ValueError("each chunk must be one-dimensional")

    if local_sort is None:
        def local_sort(arr: np.ndarray) -> np.ndarray:
            if arr.size and np.issubdtype(arr.dtype, np.integer) and arr.min() >= 0:
                return radix_sort(arr)
            return np.sort(arr, kind="stable")

    local = [local_sort(c) for c in chunks]
    if p == 1:
        return local

    # Phase 2: regular sampling — P samples per rank at strides len/P.
    samples: list[np.ndarray] = []
    for arr in local:
        if arr.size == 0:
            continue
        idx = (np.arange(p, dtype=np.int64) * arr.size) // p
        samples.append(arr[idx])
    if not samples:
        return [c.copy() for c in local]
    gathered = np.sort(np.concatenate(samples), kind="stable")

    # Phase 3: choose P-1 pivots at regular positions of the sample.
    pivot_idx = (np.arange(1, p, dtype=np.int64) * gathered.size) // p
    pivots = gathered[pivot_idx]

    # Phase 4: split and exchange.  searchsorted(side='right') keeps the
    # split stable for keys equal to a pivot.
    pieces: list[list[np.ndarray]] = [[] for _ in range(p)]
    exchange = np.zeros((p, p), dtype=np.int64)
    for i, arr in enumerate(local):
        bounds = np.concatenate(
            ([0], np.searchsorted(arr, pivots, side="right"), [arr.size])
        )
        for j in range(p):
            piece = arr[bounds[j] : bounds[j + 1]]
            pieces[j].append(piece)
            exchange[i, j] = piece.nbytes
    if on_exchange is not None:
        on_exchange(exchange)

    # Phase 5: merge received sorted runs (k-way merge via sort of the
    # concatenation; the runs are short so this is near-linear in practice).
    out: list[np.ndarray] = []
    for j in range(p):
        merged = np.concatenate(pieces[j]) if pieces[j] else np.array([], dtype=local[0].dtype)
        out.append(np.sort(merged, kind="stable"))
    return out
