"""Fault injection, checkpointing, and recovery for simulated BFS runs.

See ``docs/resilience.md`` for the fault-spec grammar, the checkpoint
format, and the recovery policies.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    PROGRAM_CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointError,
    LevelCheckpointer,
    ProgramCheckpoint,
)
from repro.resilience.faults import (
    NULL_FAULTS,
    Fault,
    FaultInjector,
    FaultPlan,
    FaultSpecError,
    NullFaultInjector,
    RankCrashError,
    RetryBackoff,
    parse_fault_spec,
)
from repro.resilience.recovery import (
    PartialCoverage,
    RecoveryError,
    RecoveryPolicy,
    ResilientRunResult,
    run_program_with_recovery,
    run_with_recovery,
    validate_partial,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointError",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "LevelCheckpointer",
    "NULL_FAULTS",
    "NullFaultInjector",
    "PROGRAM_CHECKPOINT_SCHEMA",
    "PartialCoverage",
    "ProgramCheckpoint",
    "RankCrashError",
    "RecoveryError",
    "RecoveryPolicy",
    "ResilientRunResult",
    "RetryBackoff",
    "parse_fault_spec",
    "run_program_with_recovery",
    "run_with_recovery",
    "validate_partial",
]
