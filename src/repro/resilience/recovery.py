"""Crash recovery policies for interrupted BFS runs.

Two failure channels exist in the simulation and two mechanisms answer
them:

- **Dropped/corrupted messages** are handled *inside* the charging path:
  the :class:`~repro.resilience.faults.FaultInjector` makes the
  :class:`~repro.runtime.ledger.TrafficLedger` charge each failed
  attempt at full cost plus an exponential backoff wait before the
  successful transfer — retry-with-backoff priced, not just counted.
- **Rank crashes** abort the whole attempt with a
  :class:`~repro.resilience.faults.RankCrashError`.  That is this
  module's job: :func:`run_with_recovery` catches the crash, accounts
  the wasted attempt's ledger, and applies a :class:`RecoveryPolicy` —

  ``restart``
      restore from the newest :class:`~repro.resilience.checkpoint`
      snapshot (or from scratch when none exists) and re-execute the
      remaining levels; the snapshot's restore broadcast is charged to
      the recovered attempt's ledger.
  ``degrade``
      give up on the dead rank: excise the L-vertices it owned from the
      traversal (mark pre-visited with no parent) and finish on the
      surviving ranks.  The result no longer satisfies full Graph500
      validation — :func:`validate_partial` checks the weaker contract
      (tree edges are real, levels are consistent, and nothing *outside*
      the excised set was silently lost) and reports coverage.

The returned :class:`ResilientRunResult` wraps the final
:class:`~repro.core.metrics.BFSRunResult` with the recovery story: how
many crashes were survived, what the wasted attempts cost (their events
are merged into the final ledger so ``total_seconds`` is the true
end-to-end cost including lost work), and which vertices were excised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import BFSRunResult
from repro.obs.metrics import NULL_METRICS
from repro.resilience.checkpoint import Checkpoint, LevelCheckpointer
from repro.resilience.faults import NULL_FAULTS, RankCrashError

__all__ = [
    "RecoveryError",
    "RecoveryPolicy",
    "ResilientRunResult",
    "PartialCoverage",
    "run_with_recovery",
    "run_program_with_recovery",
    "validate_partial",
]


class RecoveryError(RuntimeError):
    """The run could not be recovered within the policy's budget."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """What to do when a rank dies mid-traversal."""

    #: Crashes survived before giving up (``RecoveryError``).
    max_restarts: int = 3
    #: ``restart`` (re-execute from checkpoint/scratch) or ``degrade``
    #: (excise the dead rank's L-vertices and finish without it).
    mode: str = "restart"

    def __post_init__(self) -> None:
        if self.mode not in ("restart", "degrade"):
            raise ValueError(f"unknown recovery mode {self.mode!r}")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


@dataclass
class ResilientRunResult:
    """A recovered BFS run plus its failure/recovery accounting."""

    result: BFSRunResult
    crashes: int = 0
    restarts: int = 0
    #: Iteration of the snapshot each restart resumed from (-1 = scratch).
    resumed_from: list[int] = field(default_factory=list)
    #: Simulated seconds burned by aborted attempts (already included in
    #: ``result.total_seconds``).
    wasted_seconds: float = 0.0
    #: Vertices excised by degrade mode (empty in restart mode).
    excised: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))

    @property
    def degraded(self) -> bool:
        return self.excised.size > 0

    def summary(self) -> dict:
        return {
            "crashes": self.crashes,
            "restarts": self.restarts,
            "resumed_from": list(self.resumed_from),
            "wasted_seconds": self.wasted_seconds,
            "excised_vertices": int(self.excised.size),
            "degraded": self.degraded,
        }


def _degraded_resume(engine, root: int, snap: Checkpoint | None,
                     dead_ranks) -> tuple[Checkpoint, np.ndarray]:
    """Build a resume state with the dead ranks' L-vertices excised.

    Only L (low-degree) vertices are excisable: they live on exactly one
    rank under the block distribution, so a dead rank takes its slice
    with it.  E/H delegates are replicated along mesh rows/columns and
    survive any single failure — the redundancy argument the 1.5D
    placement makes in the paper.
    """
    part, mesh = engine.part, engine.mesh
    n = part.num_vertices
    is_l = part.class_masks()["L"]
    excise = np.zeros(n, dtype=bool)
    for rank in sorted(dead_ranks):
        lo, hi = mesh.vertex_range(int(rank), n)
        excise[lo:hi] = True
    excise &= is_l
    if excise[root]:
        raise RecoveryError(
            f"root {root} was owned by a dead rank; degraded recovery "
            "cannot excise the search key"
        )
    if snap is not None:
        parent = snap.parent.copy()
        visited = snap.visited.copy()
        active = snap.active.copy()
        iteration = snap.iteration
        records = snap.records
        # Vertices the dead rank had already reached keep their parents;
        # the excision only removes *future* work on that rank.
        excise &= ~(parent >= 0)
    else:
        parent = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        active = np.zeros(n, dtype=bool)
        parent[root] = root
        visited[root] = True
        active[root] = True
        iteration = -1
        records = ()
    visited[excise] = True
    active[excise] = False
    resume = Checkpoint.capture(
        root=root, iteration=iteration, parent=parent, visited=visited,
        active=active, records=records,
    )
    return resume, np.flatnonzero(excise).astype(np.int64)


def run_with_recovery(
    engine,
    root: int,
    *,
    faults=NULL_FAULTS,
    checkpointer: LevelCheckpointer | None = None,
    policy: RecoveryPolicy = RecoveryPolicy(),
    metrics=NULL_METRICS,
) -> ResilientRunResult:
    """Run one BFS, surviving injected rank crashes.

    ``engine`` is any scheduler-backed engine
    (:class:`~repro.core.engine.DistributedBFS`, the baselines, or
    :class:`~repro.runtime.replay.ReplayBFS`); its ``run`` must accept
    the ``faults``/``checkpointer``/``resume`` keywords, which every
    host inherits from :class:`~repro.core.kernels.scheduler.LevelSyncScheduler`.
    """
    crashes = 0
    wasted: list = []  # aborted attempts' ledgers
    wasted_seconds = 0.0
    resumed_from: list[int] = []
    excised = np.array([], dtype=np.int64)
    resume: Checkpoint | None = None

    while True:
        try:
            result = engine.run(
                root, faults=faults, checkpointer=checkpointer, resume=resume
            )
            break
        except RankCrashError as crash:
            crashes += 1
            metrics.counter("rank_crashes").inc()
            if crash.ledger is not None:
                wasted.append(crash.ledger)
                wasted_seconds += crash.ledger.total_seconds
            if crashes > policy.max_restarts:
                raise RecoveryError(
                    f"rank {crash.rank} crashed at iteration "
                    f"{crash.iteration}; restart budget "
                    f"({policy.max_restarts}) exhausted"
                ) from crash
            snap = checkpointer.latest() if checkpointer is not None else None
            if snap is not None:
                snap.verify()
            if policy.mode == "degrade":
                resume, excised = _degraded_resume(
                    engine, root, snap, faults.dead_ranks
                )
                metrics.counter("degraded_runs").inc()
            else:
                resume = snap
            resumed_from.append(resume.iteration if resume is not None else -1)
            metrics.counter("recoveries", mode=policy.mode).inc()

    # Fold the lost work into the final accounting: the recovered run's
    # true cost includes every second the aborted attempts burned.
    recovery_seconds = 0.0
    for ledger in wasted:
        recovery_seconds += ledger.total_seconds
        result.ledger.merge(ledger)
    if wasted:
        result.total_seconds = result.ledger.total_seconds
        metrics.counter("recovery_time").inc(recovery_seconds)

    return ResilientRunResult(
        result=result,
        crashes=crashes,
        restarts=len(resumed_from),
        resumed_from=resumed_from,
        wasted_seconds=wasted_seconds,
        excised=excised,
    )


def run_program_with_recovery(
    engine,
    program,
    *,
    faults=NULL_FAULTS,
    checkpointer: LevelCheckpointer | None = None,
    policy: RecoveryPolicy = RecoveryPolicy(),
    metrics=NULL_METRICS,
):
    """Run one vertex program, surviving injected rank crashes.

    The restart loop mirrors :func:`run_with_recovery`: each attempt
    re-enters :meth:`~repro.core.engine.DistributedBFS.run_program`
    (whose ``bind`` re-initializes program state before a
    :class:`~repro.resilience.checkpoint.ProgramCheckpoint` resume
    restores it), aborted attempts' ledgers are merged into the final
    result so ``total_seconds`` includes the lost work, and the restore
    broadcast is charged to the recovered attempt.  ``degrade`` mode is
    BFS-specific (it excises a dead rank's L-vertices from a *visited*
    set, which value programs do not have) and is rejected here.
    """
    if policy.mode != "restart":
        raise RecoveryError(
            "vertex programs only support restart recovery "
            f"(got mode={policy.mode!r})"
        )
    crashes = 0
    wasted: list = []
    wasted_seconds = 0.0
    resumed_from: list[int] = []
    resume = None

    while True:
        try:
            result = engine.run_program(
                program, faults=faults, checkpointer=checkpointer,
                resume=resume,
            )
            break
        except RankCrashError as crash:
            crashes += 1
            metrics.counter("rank_crashes").inc()
            if crash.ledger is not None:
                wasted.append(crash.ledger)
                wasted_seconds += crash.ledger.total_seconds
            if crashes > policy.max_restarts:
                raise RecoveryError(
                    f"rank {crash.rank} crashed at iteration "
                    f"{crash.iteration}; restart budget "
                    f"({policy.max_restarts}) exhausted"
                ) from crash
            snap = checkpointer.latest() if checkpointer is not None else None
            if snap is not None:
                snap.verify()
            resume = snap
            resumed_from.append(resume.iteration if resume is not None else -1)
            metrics.counter("recoveries", mode=policy.mode).inc()

    recovery_seconds = 0.0
    for ledger in wasted:
        recovery_seconds += ledger.total_seconds
        result.ledger.merge(ledger)
    if wasted:
        metrics.counter("recovery_time").inc(recovery_seconds)

    return ResilientRunResult(
        result=result,
        crashes=crashes,
        restarts=len(resumed_from),
        resumed_from=resumed_from,
        wasted_seconds=wasted_seconds,
    )


@dataclass(frozen=True)
class PartialCoverage:
    """Outcome of :func:`validate_partial` on a degraded run."""

    reached: int
    reachable: int
    excised: int
    #: Non-excised vertices adjacent to the tree that were not reached.
    lost: int

    @property
    def coverage(self) -> float:
        return self.reached / self.reachable if self.reachable else 1.0


def validate_partial(
    graph, root: int, parent: np.ndarray, excised: np.ndarray
) -> PartialCoverage:
    """Validate a degraded run's weaker contract.

    Checks (subset of the Graph500 spec, minus full coverage):

    1. the root is its own parent;
    2. every tree edge ``(v, parent[v])`` is a real graph edge;
    3. BFS levels are consistent: ``level[v] == level[parent[v]] + 1``;
    4. no *silent* loss — every unreached, non-excised vertex with a
       reached neighbour must be explained by the excision (reachable
       only through excised vertices is fine; a skipped expandable
       vertex is not).

    ``graph`` is the CSR used by :mod:`repro.graph500.validate`
    (``indptr``/``indices`` attributes).  Raises ``AssertionError`` on
    any violation; returns coverage statistics otherwise.
    """
    n = parent.size
    excised_mask = np.zeros(n, dtype=bool)
    excised_mask[excised] = True
    assert parent[root] == root, "root must be its own parent"
    assert not excised_mask[root], "root cannot be excised"

    reached = np.flatnonzero(parent >= 0)
    # levels by walking up the tree (tree depth <= n).
    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    frontier = [root]
    depth = 0
    reached_set = set(int(v) for v in reached)
    children: dict[int, list[int]] = {}
    for v in reached:
        v = int(v)
        if v != root:
            children.setdefault(int(parent[v]), []).append(v)
    while frontier:
        depth += 1
        nxt = []
        for u in frontier:
            for v in children.get(u, ()):  # tree edges only
                level[v] = depth
                nxt.append(v)
        frontier = nxt
    assert int((level >= 0).sum()) == len(reached_set), (
        "parent array contains a cycle or an orphaned subtree"
    )

    indptr, indices = graph.indptr, graph.indices
    for v in reached:
        v = int(v)
        if v == root:
            continue
        p = int(parent[v])
        neigh = indices[indptr[v]:indptr[v + 1]]
        assert p in neigh, f"tree edge ({v}, {p}) is not a graph edge"
        assert level[v] == level[p] + 1, (
            f"level inconsistency at {v}: {level[v]} vs parent {level[p]}"
        )

    # Silent-loss check: an unreached, non-excised vertex may only have
    # reached neighbours if every such neighbour is excised (i.e. the
    # frontier died there by design, not by a bug).
    lost = 0
    unreached = np.flatnonzero((parent < 0) & ~excised_mask)
    for v in unreached:
        v = int(v)
        neigh = indices[indptr[v]:indptr[v + 1]]
        if neigh.size == 0:
            continue
        reached_neigh = neigh[parent[neigh] >= 0]
        if reached_neigh.size and not excised_mask[reached_neigh].all():
            lost += 1
    assert lost == 0, (
        f"{lost} non-excised vertices were reachable from live ranks "
        "but never visited"
    )

    reachable = int((parent >= 0).sum() + unreached.size)
    return PartialCoverage(
        reached=int(reached.size),
        reachable=reachable,
        excised=int(excised_mask.sum()),
        lost=lost,
    )
