"""Deterministic fault injection for the simulated runtime.

At the paper's scale (103,912 nodes, 40M cores) component failure is not
an edge case — it is the steady state the communication layer must
survive.  This module injects those failures into the simulation so the
cost of surviving them can be *measured* like any other phase:

- **crash** — a rank dies at the start of BFS iteration ``k``; the run
  aborts with :class:`RankCrashError` and a recovery policy
  (:mod:`repro.resilience.recovery`) decides whether to restore from a
  checkpoint, restart from scratch, or degrade gracefully.
- **straggler** — a slow rank multiplies the charged critical-path time
  of every matching collective/kernel (the slowest participant bounds a
  synchronous collective).
- **drop** / **corrupt** — a collective's payload is lost or corrupted
  on the wire; the transfer is detected (sha256 payload fingerprint for
  corruption) and retried with backoff, so each fault charges the full
  wasted attempt plus the backoff wait to the
  :class:`~repro.runtime.ledger.TrafficLedger`.

Faults are described by a compact spec grammar (see
:func:`parse_fault_spec` and ``docs/resilience.md``)::

    crash:rank=3,iter=2
    straggler:rank=1,factor=4,phase=L2L,iter=0-5
    drop:phase=H2L,count=2,retries=1
    corrupt:phase=L2L,p=0.25

A :class:`FaultInjector` is installed onto a
:class:`~repro.runtime.ledger.TrafficLedger` (``ledger.faults``) by the
:class:`~repro.core.kernels.scheduler.LevelSyncScheduler`, so every
engine — the 1.5D ``DistributedBFS``, the baselines, and the SPMD
``ReplayBFS`` — inherits fault behaviour through the one charge choke
point with zero per-engine code.  The functional payload-corruption
round-trip additionally hooks :class:`~repro.runtime.comm.SimCommunicator`
delivery (see :meth:`FaultInjector.verify_delivery`).

All randomness (probabilistic faults, corruption positions) draws from
one seeded :class:`numpy.random.Generator` threaded down from
``run_graph500`` — the same generator that samples BFS roots — so a
faulty run is bit-reproducible from ``--seed`` alone.

The default everywhere is :data:`NULL_FAULTS`, a no-op injector: an
unfaulted run takes the same code paths and stays bit-identical
(pinned against the committed smoke baseline).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import NULL_METRICS

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultSpecError",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_FAULTS",
    "RankCrashError",
    "RetryBackoff",
    "CollectiveOutcome",
    "parse_fault_spec",
]

FAULT_KINDS = ("crash", "straggler", "drop", "corrupt")


class FaultSpecError(ValueError):
    """A fault spec string failed to parse or validate."""


class RankCrashError(RuntimeError):
    """A simulated rank died mid-run.

    Raised by the injector at the iteration boundary where the crash
    fault fires; the scheduler annotates the exception with the partial
    run's ledger and completed-iteration count before re-raising, so a
    recovery policy can account the wasted work.
    """

    def __init__(self, rank: int, iteration: int) -> None:
        super().__init__(f"rank {rank} crashed at iteration {iteration}")
        self.rank = rank
        self.iteration = iteration
        #: Attached by the scheduler: the aborted attempt's ledger.
        self.ledger = None
        #: Attached by the scheduler: iterations completed before death.
        self.completed_iterations = 0

    @property
    def wasted_seconds(self) -> float:
        """Simulated seconds the aborted attempt burned."""
        return self.ledger.total_seconds if self.ledger is not None else 0.0


@dataclass(frozen=True)
class Fault:
    """One injected failure (see the module grammar)."""

    kind: str
    #: Affected rank (crash/straggler); ``None`` = any participant.
    rank: int | None = None
    #: Trigger iteration (crash) or first iteration of the active window.
    iteration: int | None = None
    #: Last iteration of the active window (defaults to ``iteration``).
    last_iteration: int | None = None
    #: Phase filter (collective/kernel tag, e.g. ``L2L``); ``None`` = any.
    phase: str | None = None
    #: Straggler slowdown multiplier.
    factor: float = 4.0
    #: Number of matching events a drop/corrupt fault affects.
    count: int = 1
    #: Failed attempts charged per affected event.
    retries: int = 1
    #: Per-event fault probability (alternative to ``count``).
    probability: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r} (one of {', '.join(FAULT_KINDS)})"
            )
        if self.kind == "crash":
            if self.rank is None or self.iteration is None:
                raise FaultSpecError("crash faults need rank= and iter=")
        if self.kind == "straggler" and self.factor <= 1.0:
            raise FaultSpecError("straggler factor must exceed 1")
        if self.count < 1:
            raise FaultSpecError("count must be >= 1")
        if self.retries < 1:
            raise FaultSpecError("retries must be >= 1")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise FaultSpecError("p must be in (0, 1]")
        if self.rank is not None and self.rank < 0:
            raise FaultSpecError("rank must be nonnegative")

    def window(self) -> tuple[int, int] | None:
        """Active iteration window ``[first, last]`` or ``None`` = always."""
        if self.iteration is None:
            return None
        last = self.last_iteration if self.last_iteration is not None else self.iteration
        return self.iteration, last


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated set of faults parsed from one spec string."""

    faults: tuple[Fault, ...]
    spec: str = ""

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def validate(self, num_ranks: int) -> "FaultPlan":
        """Check rank references against a concrete mesh size."""
        for f in self.faults:
            if f.rank is not None and f.rank >= num_ranks:
                raise FaultSpecError(
                    f"fault {f.kind!r} targets rank {f.rank} but the mesh has "
                    f"only {num_ranks} ranks"
                )
        return self


def _parse_int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise FaultSpecError(f"{key}= expects an integer, got {value!r}") from exc


def _parse_float(key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError as exc:
        raise FaultSpecError(f"{key}= expects a number, got {value!r}") from exc


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``;``-separated fault spec string into a :class:`FaultPlan`.

    Grammar (full reference in ``docs/resilience.md``)::

        SPEC  := fault (';' fault)*
        fault := KIND [':' key '=' value (',' key '=' value)*]
        KIND  := crash | straggler | drop | corrupt
        keys  := rank | iter (N or A-B) | phase | factor | count
                 | retries | p

    Raises :class:`FaultSpecError` with a actionable message on any
    malformed input — the CLI maps that to exit code 2 plus usage.
    """
    faults: list[Fault] = []
    text = (spec or "").strip()
    if not text:
        raise FaultSpecError("empty fault spec")
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip().lower()
        kwargs: dict = {}
        if body.strip():
            for item in body.split(","):
                item = item.strip()
                if not item:
                    continue
                key, sep, value = item.partition("=")
                key, value = key.strip().lower(), value.strip()
                if not sep or not value:
                    raise FaultSpecError(
                        f"malformed clause {item!r} in {clause!r} "
                        "(expected key=value)"
                    )
                if key == "rank":
                    kwargs["rank"] = _parse_int(key, value)
                elif key in ("iter", "iteration"):
                    first, sep2, last = value.partition("-")
                    kwargs["iteration"] = _parse_int(key, first)
                    if sep2:
                        kwargs["last_iteration"] = _parse_int(key, last)
                elif key == "phase":
                    kwargs["phase"] = None if value == "*" else value
                elif key == "factor":
                    kwargs["factor"] = _parse_float(key, value)
                elif key == "count":
                    kwargs["count"] = _parse_int(key, value)
                elif key == "retries":
                    kwargs["retries"] = _parse_int(key, value)
                elif key in ("p", "prob", "probability"):
                    kwargs["probability"] = _parse_float(key, value)
                else:
                    raise FaultSpecError(
                        f"unknown key {key!r} in fault clause {clause!r}"
                    )
        try:
            faults.append(Fault(kind=kind, **kwargs))
        except TypeError as exc:
            raise FaultSpecError(f"invalid fault clause {clause!r}: {exc}") from exc
    if not faults:
        raise FaultSpecError("fault spec contains no fault clauses")
    return FaultPlan(faults=tuple(faults), spec=text)


@dataclass(frozen=True)
class RetryBackoff:
    """Exponential backoff schedule for retried transfers (sim seconds)."""

    base_seconds: float = 5e-5
    growth: float = 2.0
    max_seconds: float = 1e-2

    def seconds(self, attempt: int) -> float:
        """Wait before retry ``attempt`` (0-based)."""
        return min(self.base_seconds * self.growth**attempt, self.max_seconds)


@dataclass(frozen=True)
class CollectiveOutcome:
    """What the injector decided for one collective charge."""

    #: Failed attempts to charge before the successful one.
    retries: int = 0
    #: Critical-path inflation from stragglers.
    straggle_factor: float = 1.0
    #: Whether a corruption fault fired (payload round-trip in comm).
    corrupted: bool = False
    #: Backoff schedule for the retried attempts.
    backoff: RetryBackoff = RetryBackoff()


class FaultInjector:
    """Stateful, deterministic executor of one :class:`FaultPlan`.

    One injector instance spans an entire (possibly multi-attempt,
    multi-root) run: count-limited faults are consumed exactly once, so
    a crash that triggered a restart does not re-fire on the recovered
    attempt — the semantics of a real one-off node failure.
    """

    enabled = True

    def __init__(
        self,
        plan: FaultPlan | str,
        *,
        rng: np.random.Generator | None = None,
        metrics=NULL_METRICS,
        backoff: RetryBackoff | None = None,
    ) -> None:
        self.plan = parse_fault_spec(plan) if isinstance(plan, str) else plan
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.metrics = metrics
        self.backoff = backoff if backoff is not None else RetryBackoff()
        #: Current BFS iteration (-1 outside a scheduler loop).
        self.iteration = -1
        self.dead_ranks: set[int] = set()
        self.faults_fired = 0
        self.retries_total = 0
        self.corruptions_detected = 0
        self._crashes_fired: set[int] = set()
        self._stragglers_counted: set[int] = set()
        self._budget = {
            i: f.count
            for i, f in enumerate(self.plan)
            if f.kind in ("drop", "corrupt") and f.probability is None
        }
        self._pending_corruption = False

    # ------------------------------------------------------------------
    # scheduler hook: crash faults fire at iteration boundaries
    # ------------------------------------------------------------------

    def begin_iteration(self, iteration: int) -> None:
        """Advance the iteration cursor; raise when a crash fault fires."""
        self.iteration = iteration
        for i, f in enumerate(self.plan):
            if f.kind != "crash" or i in self._crashes_fired:
                continue
            if f.iteration is not None and iteration >= f.iteration:
                self._crashes_fired.add(i)
                self.dead_ranks.add(int(f.rank))
                self.faults_fired += 1
                self.metrics.counter("faults_injected", kind="crash").inc()
                raise RankCrashError(int(f.rank), iteration)

    def end_run(self) -> None:
        self.iteration = -1

    # ------------------------------------------------------------------
    # ledger hook: the single charging choke point
    # ------------------------------------------------------------------

    def _in_window(self, f: Fault) -> bool:
        window = f.window()
        if window is None:
            return True
        if self.iteration < 0:
            return False
        first, last = window
        return first <= self.iteration <= last

    def _matches(self, f: Fault, phase: str) -> bool:
        if f.phase is not None and f.phase != phase:
            return False
        return self._in_window(f)

    def collective(
        self,
        phase: str,
        kind,
        participants: int,
        group: np.ndarray | None = None,
    ) -> CollectiveOutcome | None:
        """Outcome for one collective charge (``None`` = untouched).

        ``group`` is the explicit participant set when the caller knows
        it (the functional :class:`~repro.runtime.comm.SimCommunicator`
        passes its row/column/global groups); a straggler fault only
        inflates collectives its slow rank takes part in.  Analytic
        charges pass ``None`` and are treated as involving every rank.
        """
        retries = 0
        factor = 1.0
        corrupted = False
        for i, f in enumerate(self.plan):
            if f.kind == "crash" or not self._matches(f, phase):
                continue
            if f.kind == "straggler":
                if (
                    f.rank is not None
                    and group is not None
                    and int(f.rank) not in np.asarray(group).tolist()
                ):
                    continue
                factor *= f.factor
                if i not in self._stragglers_counted:
                    self._stragglers_counted.add(i)
                    self.faults_fired += 1
                    self.metrics.counter("faults_injected", kind="straggler").inc()
                continue
            # drop / corrupt: count-budgeted or probabilistic
            if f.probability is not None:
                if self.rng.random() >= f.probability:
                    continue
            else:
                if self._budget.get(i, 0) <= 0:
                    continue
                self._budget[i] -= 1
            retries += f.retries
            corrupted |= f.kind == "corrupt"
            self.faults_fired += 1
            self.metrics.counter("faults_injected", kind=f.kind).inc()
        if retries == 0 and factor == 1.0:
            return None
        if retries:
            self.retries_total += retries
            self.metrics.counter("retries", phase=phase).inc(retries)
        if corrupted:
            self._pending_corruption = True
        return CollectiveOutcome(
            retries=retries,
            straggle_factor=factor,
            corrupted=corrupted,
            backoff=self.backoff,
        )

    def compute_factor(self, phase: str, per_node_items=None) -> float:
        """Straggler inflation of a compute charge's critical path."""
        factor = 1.0
        for i, f in enumerate(self.plan):
            if f.kind != "straggler" or not self._matches(f, phase):
                continue
            if f.rank is not None and per_node_items is not None:
                items = np.asarray(per_node_items)
                # A slow rank only stretches kernels it has work in.
                if f.rank < items.size and items[f.rank] == 0:
                    continue
            factor *= f.factor
            if i not in self._stragglers_counted:
                self._stragglers_counted.add(i)
                self.faults_fired += 1
                self.metrics.counter("faults_injected", kind="straggler").inc()
        return factor

    # ------------------------------------------------------------------
    # comm hook: functional corruption round-trip
    # ------------------------------------------------------------------

    def verify_delivery(self, phase: str, payload: np.ndarray) -> np.ndarray:
        """Corrupt-detect-retransmit round-trip on a real payload.

        Called by :class:`~repro.runtime.comm.SimCommunicator` after the
        (already retry-charged) collective: when the charge carried a
        corruption fault, a copy of the payload is corrupted at an
        rng-chosen byte, the sha256 fingerprints are compared — the
        mismatch *is* the detection — and the pristine data is returned,
        modelling checksum-verified retransmission.
        """
        if not self._pending_corruption:
            return payload
        self._pending_corruption = False
        buf = np.ascontiguousarray(payload)
        raw = buf.tobytes()
        if raw:
            corrupted = bytearray(raw)
            pos = int(self.rng.integers(0, len(corrupted)))
            corrupted[pos] ^= 0xFF
            if (
                hashlib.sha256(bytes(corrupted)).hexdigest()
                == hashlib.sha256(raw).hexdigest()
            ):  # pragma: no cover - xor always changes the digest
                raise AssertionError("corruption not detectable")
        self.corruptions_detected += 1
        self.metrics.counter("corruptions_detected", phase=phase).inc()
        return payload

    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Scalar digest for reports and the chaos CLI."""
        return {
            "faults_planned": len(self.plan),
            "faults_fired": self.faults_fired,
            "retries": self.retries_total,
            "corruptions_detected": self.corruptions_detected,
            "dead_ranks": sorted(self.dead_ranks),
        }


class NullFaultInjector:
    """Zero-overhead injector: never fires, never allocates.

    The default on every :class:`~repro.runtime.ledger.TrafficLedger`,
    so an unfaulted run takes identical code paths and produces
    bit-identical results (pinned against the smoke baseline).
    """

    enabled = False
    iteration = -1
    dead_ranks: frozenset = frozenset()

    def begin_iteration(self, iteration: int) -> None:
        pass

    def end_run(self) -> None:
        pass

    def collective(self, phase, kind, participants, group=None):
        return None

    def compute_factor(self, phase, per_node_items=None) -> float:
        return 1.0

    def verify_delivery(self, phase, payload):
        return payload

    def summary(self) -> dict:
        return {}


#: Shared inert injector used as the default everywhere.
NULL_FAULTS = NullFaultInjector()
