"""Level-synchronous checkpointing of BFS traversal state.

A level-synchronous BFS has a natural consistency point: the iteration
boundary, where every rank has committed its activations and the global
``parent``/``visited``/``active`` arrays plus the per-iteration records
fully determine the rest of the traversal.  :class:`LevelCheckpointer`
snapshots exactly that state at a configurable cadence
(``--checkpoint-every N``), fingerprints each snapshot with sha256, and
can hand the latest one back to
:meth:`~repro.core.kernels.scheduler.LevelSyncScheduler.run` as a
``resume`` point so a crashed run re-executes only the levels after the
last checkpoint.

The *cost* of checkpointing is part of the experiment, not hidden
bookkeeping: each save charges the :class:`~repro.runtime.ledger.TrafficLedger`
one ``checkpoint``-phase ALLGATHER sized at the snapshot's bytes (every
rank persists its partition slice; the supernode intra/inter split comes
from :meth:`~repro.runtime.mesh.ProcessMesh.group_traffic_split`), so
checkpoint overhead shows up in the Fig. 10/11 phase and collective
breakdowns and in RunReports like any other phase.  Restores charge a
``recovery``-phase broadcast of the same volume.

Snapshots live in memory by default (``keep`` most recent); pass
``dir=`` to also persist each one as a compressed ``.npz`` with an
embedded JSON meta record (schema tag, fingerprint, iteration records)
that :meth:`Checkpoint.load` round-trips exactly.

Vertex programs (:mod:`repro.core.programs`) checkpoint through the
same machinery: :class:`ProgramCheckpoint` snapshots whatever
``program.snapshot()`` returns — the program declares its own state
arrays, so SSSP distances, PageRank ranks or delta-stepping bucket
control all persist without per-algorithm code here — and
:meth:`LevelCheckpointer.save_program` charges the identical
``checkpoint``-phase ALLGATHER sized at the snapshot's actual bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.metrics import IterationRecord
from repro.machine.costmodel import CollectiveKind
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "LevelCheckpointer",
    "ProgramCheckpoint",
    "CHECKPOINT_SCHEMA",
    "PROGRAM_CHECKPOINT_SCHEMA",
]

#: Bump on incompatible snapshot layout changes.
CHECKPOINT_SCHEMA = "repro.checkpoint/1"

#: Vertex-program snapshots carry a program-declared state dict instead
#: of the fixed parent/visited triple; separate schema tag.
PROGRAM_CHECKPOINT_SCHEMA = "repro.program-checkpoint/1"


class CheckpointError(RuntimeError):
    """A snapshot failed to verify or load."""


def _fingerprint(root: int, iteration: int, parent, visited, active) -> str:
    h = hashlib.sha256()
    h.update(f"{CHECKPOINT_SCHEMA}:{root}:{iteration}".encode())
    h.update(np.ascontiguousarray(parent).tobytes())
    h.update(np.packbits(visited).tobytes())
    h.update(np.packbits(active).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One immutable snapshot of traversal state at an iteration boundary."""

    root: int
    #: Last completed iteration index (state is *after* this level).
    iteration: int
    parent: np.ndarray
    visited: np.ndarray
    active: np.ndarray
    #: Per-iteration records completed so far (restored onto the result).
    records: tuple[IterationRecord, ...] = ()
    fingerprint: str = ""

    @classmethod
    def capture(cls, *, root, iteration, parent, visited, active, records=()):
        """Deep-copy live scheduler state into an immutable snapshot."""
        parent = np.array(parent, dtype=np.int64, copy=True)
        visited = np.array(visited, dtype=bool, copy=True)
        active = np.array(active, dtype=bool, copy=True)
        return cls(
            root=int(root),
            iteration=int(iteration),
            parent=parent,
            visited=visited,
            active=active,
            records=tuple(records),
            fingerprint=_fingerprint(root, iteration, parent, visited, active),
        )

    @property
    def nbytes(self) -> int:
        """Persisted volume: 8 B/vertex parents + two packed bitmaps."""
        n = self.parent.size
        return 8 * n + 2 * ((n + 7) // 8)

    def verify(self) -> "Checkpoint":
        """Recompute the sha256 fingerprint; raise on mismatch."""
        actual = _fingerprint(
            self.root, self.iteration, self.parent, self.visited, self.active
        )
        if actual != self.fingerprint:
            raise CheckpointError(
                f"checkpoint fingerprint mismatch at iteration {self.iteration}: "
                f"expected {self.fingerprint[:12]}…, got {actual[:12]}…"
            )
        return self

    # ------------------------------------------------------------------
    # disk round-trip
    # ------------------------------------------------------------------

    def save_npz(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "schema": CHECKPOINT_SCHEMA,
            "root": self.root,
            "iteration": self.iteration,
            "fingerprint": self.fingerprint,
            "records": [dataclasses.asdict(r) for r in self.records],
        }
        np.savez_compressed(
            path,
            meta=np.array([json.dumps(meta)]),
            parent=self.parent,
            visited=np.packbits(self.visited),
            active=np.packbits(self.active),
            n=np.array([self.parent.size], dtype=np.int64),
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Checkpoint":
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][0]))
                if meta.get("schema") != CHECKPOINT_SCHEMA:
                    raise CheckpointError(
                        f"unsupported checkpoint schema {meta.get('schema')!r}"
                    )
                n = int(data["n"][0])
                snap = cls(
                    root=int(meta["root"]),
                    iteration=int(meta["iteration"]),
                    parent=data["parent"].astype(np.int64),
                    visited=np.unpackbits(data["visited"], count=n).astype(bool),
                    active=np.unpackbits(data["active"], count=n).astype(bool),
                    records=tuple(
                        IterationRecord(**r) for r in meta["records"]
                    ),
                    fingerprint=meta["fingerprint"],
                )
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(f"cannot load checkpoint {path}: {exc}") from exc
        return snap.verify()


def _program_fingerprint(
    program: str, iteration: int, state: dict, active
) -> str:
    h = hashlib.sha256()
    h.update(f"{PROGRAM_CHECKPOINT_SCHEMA}:{program}:{iteration}".encode())
    for key in sorted(state):
        arr = np.ascontiguousarray(state[key])
        h.update(f"{key}:{arr.dtype.str}:{arr.shape}".encode())
        h.update(arr.tobytes())
    h.update(np.packbits(active).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class ProgramCheckpoint:
    """One immutable snapshot of vertex-program state at an iteration
    boundary.

    The ``state`` dict is whatever the program's
    :meth:`~repro.core.programs.base.VertexProgram.snapshot` returned —
    per-vertex arrays plus any 0-d/1-d control scalars — so the same
    class checkpoints every registered program.
    """

    program: str
    #: Last completed iteration index (state is *after* this iteration).
    iteration: int
    active: np.ndarray
    state: dict[str, np.ndarray]
    records: tuple[IterationRecord, ...] = ()
    fingerprint: str = ""

    @classmethod
    def capture(cls, *, program, iteration, active, records=()):
        """Deep-copy a live program's state into an immutable snapshot."""
        state = {
            k: np.array(v, copy=True) for k, v in program.snapshot().items()
        }
        active = np.array(active, dtype=bool, copy=True)
        return cls(
            program=program.name,
            iteration=int(iteration),
            active=active,
            state=state,
            records=tuple(records),
            fingerprint=_program_fingerprint(
                program.name, iteration, state, active
            ),
        )

    @property
    def nbytes(self) -> int:
        """Persisted volume: every state array plus the packed frontier."""
        state_bytes = sum(int(arr.nbytes) for arr in self.state.values())
        return state_bytes + (self.active.size + 7) // 8

    def verify(self) -> "ProgramCheckpoint":
        """Recompute the sha256 fingerprint; raise on mismatch."""
        actual = _program_fingerprint(
            self.program, self.iteration, self.state, self.active
        )
        if actual != self.fingerprint:
            raise CheckpointError(
                f"program checkpoint fingerprint mismatch at iteration "
                f"{self.iteration}: expected {self.fingerprint[:12]}…, "
                f"got {actual[:12]}…"
            )
        return self

    # ------------------------------------------------------------------
    # disk round-trip
    # ------------------------------------------------------------------

    def save_npz(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "schema": PROGRAM_CHECKPOINT_SCHEMA,
            "program": self.program,
            "iteration": self.iteration,
            "fingerprint": self.fingerprint,
            "state_keys": sorted(self.state),
            "records": [dataclasses.asdict(r) for r in self.records],
        }
        arrays = {f"state_{k}": v for k, v in self.state.items()}
        np.savez_compressed(
            path,
            meta=np.array([json.dumps(meta)]),
            active=np.packbits(self.active),
            n=np.array([self.active.size], dtype=np.int64),
            **arrays,
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ProgramCheckpoint":
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][0]))
                if meta.get("schema") != PROGRAM_CHECKPOINT_SCHEMA:
                    raise CheckpointError(
                        f"unsupported checkpoint schema {meta.get('schema')!r}"
                    )
                n = int(data["n"][0])
                snap = cls(
                    program=str(meta["program"]),
                    iteration=int(meta["iteration"]),
                    active=np.unpackbits(data["active"], count=n).astype(bool),
                    state={
                        k: data[f"state_{k}"] for k in meta["state_keys"]
                    },
                    records=tuple(
                        IterationRecord(**r) for r in meta["records"]
                    ),
                    fingerprint=meta["fingerprint"],
                )
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(f"cannot load checkpoint {path}: {exc}") from exc
        return snap.verify()


@dataclass
class LevelCheckpointer:
    """Cadence-driven snapshot store attached to one scheduler run.

    ``every=N`` snapshots after every Nth completed level (``every=0``
    disables, the default at the CLI).  The newest ``keep`` snapshots
    stay in memory; older ones are dropped (and their ``.npz`` files
    deleted when ``dir`` persistence is on), modelling the bounded
    burst-buffer budget a real machine would give checkpoints.
    """

    every: int = 0
    mesh: object | None = None
    keep: int = 2
    dir: str | Path | None = None
    metrics: object = field(default=NULL_METRICS, repr=False)
    snapshots: list[Checkpoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ValueError("checkpoint cadence must be >= 0")
        if self.keep < 1:
            raise ValueError("keep must be >= 1")

    def due(self, iteration: int) -> bool:
        return self.every > 0 and (iteration + 1) % self.every == 0

    def _charge(self, ledger, snap, phase: str, counter: str) -> None:
        if self.mesh is not None:
            participants = self.mesh.num_ranks
            ranks = np.arange(participants)
            intra_frac, inter_frac = self.mesh.group_traffic_split(ranks)
        else:
            participants, intra_frac, inter_frac = 1, 1.0, 0.0
        per_rank = snap.nbytes / participants
        ledger.charge_collective(
            phase,
            CollectiveKind.ALLGATHER,
            participants=participants,
            max_bytes_intra=per_rank * intra_frac,
            max_bytes_inter=per_rank * inter_frac,
            total_bytes=float(snap.nbytes),
        )
        self.metrics.counter(counter).inc()
        self.metrics.counter("checkpoint_bytes", op=phase).inc(snap.nbytes)

    def save(self, *, ledger, root, iteration, parent, visited, active,
             records=()) -> Checkpoint:
        """Snapshot state after ``iteration`` and charge the write cost."""
        snap = Checkpoint.capture(
            root=root,
            iteration=iteration,
            parent=parent,
            visited=visited,
            active=active,
            records=records,
        )
        self.snapshots.append(snap)
        if self.dir is not None:
            snap.save_npz(self._path(snap))
        while len(self.snapshots) > self.keep:
            evicted = self.snapshots.pop(0)
            if self.dir is not None:
                self._path(evicted).unlink(missing_ok=True)
        self._charge(ledger, snap, "checkpoint", "checkpoints")
        return snap

    def save_program(self, *, ledger, program, iteration, active,
                     records=()) -> ProgramCheckpoint:
        """Snapshot a vertex program after ``iteration`` and charge the
        write cost.  Same cadence, eviction, persistence and pricing as
        :meth:`save` — the snapshot volume is just whatever state the
        program declared instead of the fixed BFS triple."""
        snap = ProgramCheckpoint.capture(
            program=program,
            iteration=iteration,
            active=active,
            records=records,
        )
        self.snapshots.append(snap)
        if self.dir is not None:
            snap.save_npz(self._path(snap))
        while len(self.snapshots) > self.keep:
            evicted = self.snapshots.pop(0)
            if self.dir is not None:
                self._path(evicted).unlink(missing_ok=True)
        self._charge(ledger, snap, "checkpoint", "checkpoints")
        return snap

    def _path(self, snap) -> Path:
        if isinstance(snap, ProgramCheckpoint):
            tag = f"prog_{snap.program}"
        else:
            tag = f"root{snap.root}"
        return Path(self.dir) / f"ckpt_{tag}_it{snap.iteration}.npz"

    def latest(self) -> Checkpoint | ProgramCheckpoint | None:
        return self.snapshots[-1] if self.snapshots else None

    def charge_restore(self, ledger, snap) -> None:
        """Price re-reading and broadcasting a snapshot during recovery."""
        self._charge(ledger, snap, "recovery", "restores")

    def clear(self) -> None:
        self.snapshots.clear()
