"""3-level degree-aware 1.5D graph partitioning (paper §4.1).

Pipeline (mirrors the paper's in-place preprocessing):

1. compute undirected degrees;
2. classify vertices: **E** (degree >= ``e_threshold``), **H** (degree >=
   ``h_threshold``), **L** (the rest);
3. give E and H vertices new dense IDs ordered by degree descending (the
   "new ID among the higher degree vertices" relabeling) — used for
   delegate bitmap sizing;
4. split the symmetrized arc set into the six components and place each
   arc on its owning mesh rank (see :mod:`repro.core.subgraphs` for the
   placement table);
5. freeze each component into its push/pull access structures.

Degenerate settings reproduce the paper's §4.1 observations: with
``h_threshold == e_threshold`` there are no H vertices and the scheme
collapses toward 1D-with-heavy-delegates; with a threshold of 1 every
vertex is delegated and it collapses toward 2D.

Two placement modes
-------------------

``placement="cyclic"`` (the default, and the paper's static pipeline)
deals E-endpoint EH2EH arcs over the mesh by their *position* in the
global arc array, and assigns EH-space columns/rows by dense degree-
descending re-ID.  Both choices depend on the edge list's order and on
the full degree ranking, so the placement of untouched arcs shifts when
edges are inserted or deleted — fine for a frozen graph, fatal for
incremental repair.

``placement="stable"`` replaces both order-dependent choices with
content hashes (a splitmix64 mix of the endpoint IDs): every arc and
every EH vertex lands on a rank that is a pure function of its own
content and the current degree classes.  Inserting or deleting an edge
then moves only that edge's arcs (plus the incident arcs of vertices
whose class changed), which is the property :mod:`repro.dynamic`'s
incremental-vs-rebuild equivalence gate is built on.  The spread
quality is the same in expectation — a hash deal is statistically the
same deal as a cyclic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.subgraphs import COMPONENT_ORDER, SubgraphComponent
from repro.graphs.csr import symmetrize_edges
from repro.graphs.stats import degrees_from_edges
from repro.runtime.mesh import ProcessMesh

__all__ = [
    "VertexClass",
    "PartitionedGraph",
    "partition_graph",
    "classify_vertices",
    "eh_placement",
    "place_arcs",
    "mix64",
]

#: Valid values of ``partition_graph(..., placement=)``.
PLACEMENT_MODES = ("cyclic", "stable")


def mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer: a high-quality 64-bit mix.

    Used by the stable placement mode to derive content-deterministic
    mesh coordinates from vertex and arc identities.
    """
    z = np.asarray(x).astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class VertexClass:
    """Degree-class codes stored in :attr:`PartitionedGraph.vclass`."""

    L = 0
    H = 1
    E = 2


#: Source/destination degree class of each component, used by the
#: direction heuristics.  "EH" means the merged E+H class.
COMPONENT_CLASSES = {
    "EH2EH": ("EH", "EH"),
    "E2L": ("E", "L"),
    "L2E": ("L", "E"),
    "H2L": ("H", "L"),
    "L2H": ("L", "H"),
    "L2L": ("L", "L"),
}

#: Components whose arcs stay on one node for both directions (§4.2).
NODE_LOCAL_COMPONENTS = frozenset({"EH2EH", "E2L", "L2E"})


@dataclass
class PartitionedGraph:
    """A graph partitioned by the 3-level degree-aware 1.5D scheme."""

    mesh: ProcessMesh
    num_vertices: int
    e_threshold: int
    h_threshold: int
    #: Undirected degree per vertex.
    degrees: np.ndarray
    #: Per-vertex class code (:class:`VertexClass`).
    vclass: np.ndarray
    #: The six components, keyed by name.
    components: dict[str, SubgraphComponent]
    #: E and H vertex IDs, each sorted by degree descending.
    e_ids: np.ndarray
    h_ids: np.ndarray
    #: Per-vertex mesh column/row of the EH-space placement (-1 for L).
    #: EH vertices are re-IDed by degree descending and dealt cyclically
    #: over the mesh, which is what spreads hub adjacency evenly (§4.1's
    #: "given a new ID among the higher degree vertices").
    eh_col: np.ndarray = field(default=None)
    eh_row: np.ndarray = field(default=None)
    #: EH delegate population per mesh column / row (bitmap sizes).
    col_eh_counts: np.ndarray = field(default=None)
    row_eh_counts: np.ndarray = field(default=None)
    #: L vertices per rank (block distribution).
    l_per_rank: np.ndarray = field(default=None)
    #: Placement mode the partition was built with ("cyclic" or
    #: "stable"); incremental repair requires "stable".
    placement: str = "cyclic"

    # ------------------------------------------------------------------

    @property
    def num_e(self) -> int:
        return int(self.e_ids.size)

    @property
    def num_h(self) -> int:
        return int(self.h_ids.size)

    @property
    def num_eh(self) -> int:
        return self.num_e + self.num_h

    @property
    def num_l(self) -> int:
        return self.num_vertices - self.num_eh

    @property
    def total_arcs(self) -> int:
        return sum(c.num_arcs for c in self.components.values())

    def class_masks(self) -> dict[str, np.ndarray]:
        """Boolean masks for E, H, L, and merged EH."""
        is_e = self.vclass == VertexClass.E
        is_h = self.vclass == VertexClass.H
        return {"E": is_e, "H": is_h, "L": self.vclass == VertexClass.L, "EH": is_e | is_h}

    def class_sizes(self) -> dict[str, int]:
        return {k: int(v.sum()) for k, v in self.class_masks().items()}

    def component_load_vectors(self) -> dict[str, np.ndarray]:
        """Per-rank arc counts per component (Figure 13's distributions)."""
        return {name: c.arcs_per_rank.copy() for name, c in self.components.items()}

    def core_fraction(self) -> float:
        """Fraction of arcs in the EH2EH core subgraph (paper: >60% of
        edges are between E/H vertices in Graph500 graphs)."""
        if self.total_arcs == 0:
            return 0.0
        return self.components["EH2EH"].num_arcs / self.total_arcs


def classify_vertices(
    degrees: np.ndarray, *, e_threshold: int, h_threshold: int
) -> np.ndarray:
    """Per-vertex class codes from undirected degrees (step 2)."""
    vclass = np.zeros(degrees.size, dtype=np.int8)
    vclass[degrees >= h_threshold] = VertexClass.H
    vclass[degrees >= e_threshold] = VertexClass.E
    return vclass


def eh_placement(
    vclass: np.ndarray,
    degrees: np.ndarray,
    mesh: ProcessMesh,
    *,
    placement: str = "cyclic",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(e_ids, h_ids, eh_col, eh_row)`` for the current classes.

    ``e_ids``/``h_ids`` are always sorted by degree descending (dense
    re-ID order, used for delegate bitmap sizing).  The EH-space mesh
    coordinates depend on the mode: cyclic deals the degree-descending
    re-IDs over columns/rows (order-dependent under degree drift),
    stable hashes each vertex ID (a pure function of the vertex, so a
    reclassification moves only that vertex's delegates).
    """
    num_vertices = int(vclass.size)

    # Dense re-IDs by degree descending (stable on vertex id).
    def by_degree_desc(ids: np.ndarray) -> np.ndarray:
        if ids.size == 0:
            return ids
        order = np.lexsort((ids, -degrees[ids]))
        return ids[order]

    e_ids = by_degree_desc(np.flatnonzero(vclass == VertexClass.E))
    h_ids = by_degree_desc(np.flatnonzero(vclass == VertexClass.H))
    eh_order = np.concatenate([e_ids, h_ids])

    if placement == "stable":
        is_eh = vclass >= VertexClass.H
        hashed = mix64(np.arange(num_vertices, dtype=np.int64))
        eh_col = np.where(
            is_eh, (hashed % np.uint64(mesh.cols)).astype(np.int64), -1
        )
        eh_row = np.where(
            is_eh,
            ((hashed // np.uint64(mesh.cols)) % np.uint64(mesh.rows)).astype(
                np.int64
            ),
            -1,
        )
        return e_ids, h_ids, eh_col, eh_row

    # Cyclic: dense IDs by degree descending, dealt cyclically over
    # columns (and row-cyclically within a column's deal) so the
    # heaviest vertices' delegate load spreads evenly over the mesh.
    eh_index = np.full(num_vertices, -1, dtype=np.int64)
    if eh_order.size:
        eh_index[eh_order] = np.arange(eh_order.size, dtype=np.int64)
    eh_col = np.where(eh_index >= 0, eh_index % mesh.cols, -1)
    eh_row = np.where(eh_index >= 0, (eh_index // mesh.cols) % mesh.rows, -1)
    return e_ids, h_ids, eh_col, eh_row


def place_arcs(
    a_src: np.ndarray,
    a_dst: np.ndarray,
    *,
    vclass: np.ndarray,
    eh_col: np.ndarray,
    eh_row: np.ndarray,
    mesh: ProcessMesh,
    num_vertices: int,
    placement: str = "cyclic",
    arc_cycle: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(component_index, rank)`` per arc (steps 4's placement table).

    ``component_index`` indexes :data:`~repro.core.subgraphs.COMPONENT_ORDER`.
    In cyclic mode ``arc_cycle`` is each arc's position in the global
    symmetrized array (defaults to ``arange``); stable mode ignores it
    and hashes the endpoint pair instead, so an arc's rank never depends
    on what other arcs exist.
    """
    sc = vclass[a_src].astype(np.int64)
    dc = vclass[a_dst].astype(np.int64)
    o_src = mesh.owner_of(a_src, num_vertices)
    o_dst = mesh.owner_of(a_dst, num_vertices)
    r_dst = mesh.row_of(o_dst)

    heavy_s = sc >= VertexClass.H
    heavy_d = dc >= VertexClass.H

    comp_of = np.empty(a_src.size, dtype=np.int64)
    names = list(COMPONENT_ORDER)
    comp_of[heavy_s & heavy_d] = names.index("EH2EH")
    comp_of[(sc == VertexClass.E) & (dc == VertexClass.L)] = names.index("E2L")
    comp_of[(sc == VertexClass.L) & (dc == VertexClass.E)] = names.index("L2E")
    comp_of[(sc == VertexClass.H) & (dc == VertexClass.L)] = names.index("H2L")
    comp_of[(sc == VertexClass.L) & (dc == VertexClass.H)] = names.index("L2H")
    comp_of[(sc == VertexClass.L) & (dc == VertexClass.L)] = names.index("L2L")

    # Rank per arc, by component placement rule.
    #
    # H endpoints pin an arc to the H vertex's EH-space column (source) or
    # row (destination) — that is where H's delegates live.  E endpoints
    # are delegated on *every* node (§4.1), so their adjacency is free to
    # be dealt cyclically across columns/rows; this is what breaks up the
    # super-hubs' adjacency mass and gives the tight Fig. 13 balance.
    # L endpoints place by block ownership.
    rank = np.empty(a_src.size, dtype=np.int64)
    if placement == "stable":
        deal = mix64(mix64(a_src) + np.asarray(a_dst).astype(np.uint64))
        deal_col = (deal % np.uint64(mesh.cols)).astype(np.int64)
        deal_row = (
            (deal // np.uint64(mesh.cols)) % np.uint64(mesh.rows)
        ).astype(np.int64)
    else:
        if arc_cycle is None:
            arc_cycle = np.arange(a_src.size, dtype=np.int64)
        deal_col = arc_cycle % mesh.cols
        deal_row = (arc_cycle // mesh.cols) % mesh.rows

    m_2d = comp_of == names.index("EH2EH")
    src_is_h = sc == VertexClass.H
    dst_is_h = dc == VertexClass.H
    col_2d = np.where(src_is_h, eh_col[a_src], deal_col)
    row_2d = np.where(dst_is_h, eh_row[a_dst], deal_row)
    rank[m_2d] = row_2d[m_2d] * mesh.cols + col_2d[m_2d]

    m = comp_of == names.index("E2L")
    rank[m] = o_dst[m]
    m = comp_of == names.index("L2E")
    rank[m] = o_src[m]
    m = comp_of == names.index("H2L")
    rank[m] = r_dst[m] * mesh.cols + eh_col[a_src[m]]
    m = comp_of == names.index("L2H")
    rank[m] = o_src[m]
    m = comp_of == names.index("L2L")
    rank[m] = o_src[m]
    return comp_of, rank


def partition_graph(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    mesh: ProcessMesh,
    *,
    e_threshold: int,
    h_threshold: int,
    placement: str = "cyclic",
) -> PartitionedGraph:
    """Partition an undirected edge list into the six 1.5D components.

    Parameters
    ----------
    src, dst:
        Undirected edge list (one entry per edge; self loops dropped).
    num_vertices:
        Vertex count; the mesh's block distribution covers ``[0, n)``.
    mesh:
        The R x C process mesh.
    e_threshold, h_threshold:
        Degree class thresholds, ``e_threshold >= h_threshold``.
    placement:
        ``"cyclic"`` (default, order-dependent deal — the static
        pipeline) or ``"stable"`` (content-hashed deal, required by
        :mod:`repro.dynamic`'s incremental repair; see module docs).
    """
    if e_threshold < h_threshold:
        raise ValueError(
            f"e_threshold ({e_threshold}) must be >= h_threshold ({h_threshold})"
        )
    if placement not in PLACEMENT_MODES:
        raise ValueError(
            f"unknown placement mode {placement!r}; expected one of "
            f"{PLACEMENT_MODES}"
        )
    degrees = degrees_from_edges(src, dst, num_vertices)
    vclass = classify_vertices(
        degrees, e_threshold=e_threshold, h_threshold=h_threshold
    )
    e_ids, h_ids, eh_col, eh_row = eh_placement(
        vclass, degrees, mesh, placement=placement
    )
    eh_order = np.concatenate([e_ids, h_ids])

    a_src, a_dst = symmetrize_edges(src, dst)
    comp_of, rank = place_arcs(
        a_src,
        a_dst,
        vclass=vclass,
        eh_col=eh_col,
        eh_row=eh_row,
        mesh=mesh,
        num_vertices=num_vertices,
        placement=placement,
    )

    names = list(COMPONENT_ORDER)
    components = {}
    for i, name in enumerate(names):
        sel = comp_of == i
        components[name] = SubgraphComponent(
            name, a_src[sel], a_dst[sel], rank[sel], mesh.num_ranks
        )

    # Delegate bitmap sizes: EH vertices per mesh column and row.
    if eh_order.size:
        col_eh = np.bincount(eh_col[eh_order], minlength=mesh.cols)
        row_eh = np.bincount(eh_row[eh_order], minlength=mesh.rows)
    else:
        col_eh = np.zeros(mesh.cols, np.int64)
        row_eh = np.zeros(mesh.rows, np.int64)

    l_vertices = np.flatnonzero(vclass == VertexClass.L)
    l_owner = mesh.owner_of(l_vertices, num_vertices) if l_vertices.size else np.array([], np.int64)
    l_per_rank = np.bincount(l_owner, minlength=mesh.num_ranks) if l_vertices.size else np.zeros(mesh.num_ranks, np.int64)

    return PartitionedGraph(
        mesh=mesh,
        num_vertices=num_vertices,
        e_threshold=e_threshold,
        h_threshold=h_threshold,
        degrees=degrees,
        vclass=vclass,
        components=components,
        e_ids=e_ids,
        h_ids=h_ids,
        eh_col=eh_col,
        eh_row=eh_row,
        col_eh_counts=col_eh,
        row_eh_counts=row_eh,
        l_per_rank=l_per_rank,
        placement=placement,
    )
