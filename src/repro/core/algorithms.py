"""Beyond BFS: the classic algorithm entry points (compat facade).

The bespoke SSSP/PageRank sweep loops that used to live here (and the
delta-stepping loop in the deleted ``delta_stepping.py``) were
re-mounted as vertex programs — see :mod:`repro.core.programs` and
``docs/programs.md``.  Every algorithm now executes through the shared
:class:`~repro.core.kernels.scheduler.LevelSyncScheduler` and the six
1.5D :class:`~repro.core.kernels.base.ComponentKernel`\\ s, inheriting
direction choice, ledger charging, spans, metrics and resilience; the
outputs are bit-identical to the old loops (pinned by
``tests/golden/programs_golden.json``).

This module re-exports the function-style API so existing imports keep
working; new code should use the program classes or
:func:`repro.core.programs.build_program` directly.
"""

from repro.core.programs.pagerank import PageRankResult, pagerank
from repro.core.programs.sssp import (
    DeltaSteppingResult,
    SSSPResult,
    delta_stepping_sssp,
    generate_weights,
    sssp,
    suggest_delta,
)

__all__ = [
    "SSSPResult",
    "sssp",
    "generate_weights",
    "PageRankResult",
    "pagerank",
    "DeltaSteppingResult",
    "delta_stepping_sssp",
    "suggest_delta",
]
