"""Beyond BFS: SSSP and PageRank on the 1.5D partitioning (paper §8).

The discussion section argues the 3-level degree-aware 1.5D partitioning
"is a graph partitioning method neutral to the graph algorithm" and that
a general-purpose framework (the next ShenTu) could be built on it.  This
module substantiates the claim with two more kernels running over the
same :class:`~repro.core.partition.PartitionedGraph` and the same traffic
ledger:

- :func:`sssp` — level-synchronous label-correcting single-source
  shortest paths (the Graph500 benchmark's second kernel) with uniform
  random edge weights per the specification.
- :func:`pagerank` — damped power iteration; each iteration is one
  push-mode sweep over the six components with delegate-style reductions.

Both compute exact results (tests compare against scipy/networkx) and
charge the ledger with the same component placement as BFS, so their
simulated cost profiles inherit the partitioning's communication
structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.core.subgraphs import COMPONENT_ORDER
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger

__all__ = ["SSSPResult", "sssp", "generate_weights", "PageRankResult", "pagerank"]

_REMOTE = ("H2L", "L2H", "L2L")


def generate_weights(num_edges: int, *, seed: int = 2) -> np.ndarray:
    """Uniform [0, 1) edge weights, as the Graph500 SSSP kernel specifies."""
    return np.random.default_rng(seed).random(num_edges)


@dataclass
class SSSPResult:
    """Output of a distributed SSSP run."""

    root: int
    distance: np.ndarray
    parent: np.ndarray
    num_iterations: int
    relaxations: int
    ledger: TrafficLedger

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds

    def gteps(self, num_edges: int) -> float:
        """Graph500 SSSP counts input edges per traversal second."""
        if self.total_seconds <= 0:
            return 0.0
        return num_edges / self.total_seconds / 1e9


def _arc_weights(part: PartitionedGraph, weights_by_pair) -> dict[str, np.ndarray]:
    """Weight per stored arc of each component, looked up by endpoint pair."""
    out = {}
    for name, comp in part.components.items():
        if comp.num_arcs == 0:
            out[name] = np.array([], dtype=np.float64)
            continue
        s, d, _ = comp.arcs()
        out[name] = weights_by_pair(s, d)
    return out


def sssp(
    part: PartitionedGraph,
    root: int,
    weights: np.ndarray | None = None,
    *,
    edge_src: np.ndarray | None = None,
    edge_dst: np.ndarray | None = None,
    machine: MachineSpec | None = None,
    max_iterations: int = 10_000,
) -> SSSPResult:
    """Single-source shortest paths over the partitioned graph.

    Level-synchronous Bellman-Ford: every iteration pushes relaxations
    from the vertices whose distance improved, component by component in
    the 1.5D order, charging compute and messaging exactly like BFS push
    sub-iterations.  With nonnegative weights this converges to exact
    distances.

    Parameters
    ----------
    part:
        The partitioned graph (also defines arc placement).
    root:
        Source vertex.
    weights:
        Per-input-edge weights aligned with ``edge_src``/``edge_dst``.
        When all three are omitted, unit weights are used (SSSP then
        equals BFS depth).
    """
    n = part.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for n={n}")
    mesh = part.mesh
    if machine is None:
        machine = mesh.machine or MachineSpec(num_nodes=mesh.num_ranks)
    rates = NodeKernelRates(chip=machine.chip)
    ledger = TrafficLedger(CostModel(machine))
    ws = machine.work_scale
    p = mesh.num_ranks

    if weights is None:
        def weight_of(s, d):
            return np.ones(s.size, dtype=np.float64)
    else:
        if edge_src is None or edge_dst is None:
            raise ValueError("weights require edge_src/edge_dst for alignment")
        weights = np.asarray(weights, dtype=np.float64)
        if np.any(weights < 0):
            raise ValueError("sssp requires nonnegative weights")
        # weight lookup by undirected endpoint pair (min weight for
        # duplicate edges, matching the multigraph shortest path)
        lo = np.minimum(edge_src, edge_dst)
        hi = np.maximum(edge_src, edge_dst)
        key = lo * n + hi
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        w_sorted = np.minimum.reduceat(
            weights[order],
            np.concatenate(([0], np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1)),
        )
        key_unique = np.unique(key_sorted)

        def weight_of(s, d):
            k = np.minimum(s, d) * n + np.maximum(s, d)
            idx = np.searchsorted(key_unique, k)
            return w_sorted[idx]

    arc_w = _arc_weights(part, weight_of)

    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    dist[root] = 0.0
    parent[root] = root
    improved = np.zeros(n, dtype=bool)
    improved[root] = True
    relaxations = 0
    it = 0

    for it in range(max_iterations):
        if not improved.any():
            break
        next_improved = np.zeros(n, dtype=bool)
        for name in COMPONENT_ORDER:
            comp = part.components[name]
            if comp.num_arcs == 0:
                continue
            sel = comp.push_select(improved)
            if sel.num_arcs == 0:
                continue
            per_rank = sel.per_rank(p)
            seconds = rates.kernel_time(
                int(per_rank.max()), rates.message_rate(), ws
            )
            ledger.charge_compute(name, f"relax:{name}", per_rank, seconds)
            if name in _REMOTE:
                max_bytes = float(per_rank.max()) * 16  # dist + parent payload
                ledger.charge_collective(
                    name,
                    CollectiveKind.ALLTOALLV,
                    participants=p if name == "L2L" else mesh.cols,
                    max_bytes_intra=max_bytes * 0.5,
                    max_bytes_inter=max_bytes * 0.5,
                    total_bytes=float(per_rank.sum()) * 16,
                )
            # weights of the selected arcs: recompute via lookup on the
            # selected endpoints (component arc order is not preserved by
            # push_select, so look up directly).
            w = weight_of(sel.src, sel.dst) if weights is not None else np.ones(sel.num_arcs)
            cand = dist[sel.src] + w
            better = cand < dist[sel.dst]
            relaxations += int(np.count_nonzero(better))
            if not np.any(better):
                continue
            d_idx = sel.dst[better]
            c = cand[better]
            s_idx = sel.src[better]
            # reduce to the minimum candidate per destination
            order = np.lexsort((c, d_idx))
            d_sorted, c_sorted, s_sorted = d_idx[order], c[order], s_idx[order]
            first = np.concatenate(
                ([True], d_sorted[1:] != d_sorted[:-1])
            )
            d_min, c_min, s_min = d_sorted[first], c_sorted[first], s_sorted[first]
            apply = c_min < dist[d_min]
            dist[d_min[apply]] = c_min[apply]
            parent[d_min[apply]] = s_min[apply]
            next_improved[d_min[apply]] = True
        improved = next_improved

    return SSSPResult(
        root=root,
        distance=dist,
        parent=parent,
        num_iterations=it,
        relaxations=relaxations,
        ledger=ledger,
    )


@dataclass
class PageRankResult:
    """Output of a distributed PageRank run."""

    ranks: np.ndarray
    num_iterations: int
    converged: bool
    ledger: TrafficLedger

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds


def pagerank(
    part: PartitionedGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iterations: int = 100,
    machine: MachineSpec | None = None,
) -> PageRankResult:
    """Damped PageRank by power iteration over the six components.

    Each iteration is a full push sweep: every component scatters rank
    mass along its arcs (so the sweep's communication profile matches a
    dense BFS push iteration), followed by the delegate reduction.
    Dangling-vertex mass is redistributed uniformly, matching networkx's
    convention so tests can compare directly.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = part.num_vertices
    mesh = part.mesh
    if machine is None:
        machine = mesh.machine or MachineSpec(num_nodes=mesh.num_ranks)
    rates = NodeKernelRates(chip=machine.chip)
    ledger = TrafficLedger(CostModel(machine))
    ws = machine.work_scale
    p = mesh.num_ranks

    degrees = part.degrees.astype(np.float64)
    out_deg = np.maximum(degrees, 1.0)
    dangling = degrees == 0

    rank = np.full(n, 1.0 / n)
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        contrib = rank / out_deg
        incoming = np.zeros(n)
        for name in COMPONENT_ORDER:
            comp = part.components[name]
            if comp.num_arcs == 0:
                continue
            s, d, r = comp.arcs()
            np.add.at(incoming, d, contrib[s])
            per_rank = comp.arcs_per_rank
            seconds = rates.kernel_time(
                int(per_rank.max()), rates.message_rate(), ws
            )
            ledger.charge_compute(name, f"scatter:{name}", per_rank, seconds)
            if name in _REMOTE:
                max_bytes = float(per_rank.max()) * 8
                ledger.charge_collective(
                    name,
                    CollectiveKind.ALLTOALLV,
                    participants=p if name == "L2L" else mesh.cols,
                    max_bytes_intra=max_bytes * 0.5,
                    max_bytes_inter=max_bytes * 0.5,
                    total_bytes=float(per_rank.sum()) * 8,
                )
        dangling_mass = float(rank[dangling].sum())
        new_rank = (1.0 - damping) / n + damping * (incoming + dangling_mass / n)
        # delegate reduction of the rank vector (like the parent reduce)
        ledger.charge_collective(
            "reduce",
            CollectiveKind.REDUCE_SCATTER,
            p,
            float(part.num_eh) * 8,
            0.0,
            total_bytes=float(part.num_eh) * 8 * p,
        )
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank
        if delta < tol:
            converged = True
            break

    return PageRankResult(
        ranks=rank, num_iterations=it, converged=converged, ledger=ledger
    )
