"""The distributed 1.5D BFS engine (paper §4-§5).

Executes Graph500 BFS over a :class:`~repro.core.partition.PartitionedGraph`
on the simulated runtime.  Functional semantics are exact level-synchronous
BFS — the parent array validates under the Graph500 specification and the
levels match the serial reference — while every kernel and collective the
real machine would run is charged to a :class:`~repro.runtime.ledger.TrafficLedger`
with its exactly-counted volume.

The engine is a facade over the component-kernel layer
(:mod:`repro.core.kernels`): the six edge components execute as
:class:`~repro.core.kernels.base.ComponentKernel` objects from
:data:`~repro.core.kernels.fifteend.FIFTEEND_KERNELS` — each owning its
push/pull kernels, compute rates, message routing, and ledger charges —
mounted densest-first (EH2EH, E2L, L2E, H2L, L2H, L2L) on the shared
:class:`~repro.core.kernels.scheduler.LevelSyncScheduler`.  The engine
itself only supplies the 1.5D scheduler hooks: the per-iteration
delegate frontier sync, the §4.2 direction policy (every component picks
its own direction from the *latest* visited state), the per-class
activation trace, and the §5 (optionally delayed) parent reduction.
``ReplayBFS`` and the 1D/2D baselines mount their own kernel sets on the
same scheduler, so all engines share one frontier/visited/parent
semantics and one tracing shape.

Communication pattern per the 1.5D scheme:

- E frontier bits: global allreduce each iteration (E is tiny).
- H frontier bits: column + row allreduce each iteration (the delegate
  sync; rows are intra-supernode, columns cross the fat-tree layer).
- H2L / L2H messaging: row alltoallv (intra-supernode by construction).
- L2L messaging: two-stage forwarding through the intersection rank of the
  source column and destination row (§4.4) — a column alltoallv (crossing
  supernodes) followed by a row alltoallv.
- pull prerequisites: H2L pull row-allgathers the row's unvisited-L bits;
  L2L pull all-gathers the global active-L bits (the §2.3 scalability
  wall of bottom-up 1D, priced explicitly).
- parent arrays of delegated vertices: reduce-scatter at run end (delayed
  reduction, §5) or every iteration when disabled.

Observability: pass ``tracer=`` a :class:`~repro.obs.tracer.Tracer` to
record the run as a span tree — one span per BFS, per iteration, and per
executed component sub-iteration (annotated with the chosen direction,
frontier size, and scanned-arc/message counters) with every ledger charge
as a leaf underneath.  The default :data:`~repro.obs.tracer.NULL_TRACER`
is a no-op and leaves results bit-identical to an untraced run.  Pass
``metrics=`` a :class:`~repro.obs.metrics.MetricsRegistry` to additionally
accumulate the aggregate metric families (see
:mod:`repro.core.kernels.scheduler` and :mod:`repro.runtime.ledger`);
build a :class:`~repro.obs.report.RunReport` artifact from the run with
:func:`repro.obs.report.report_from_bfs`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BFSConfig
from repro.core.direction import (
    choose_component_direction,
    choose_whole_iteration_direction,
)
from repro.core.kernels.fifteend import FifteenDContext, build_fifteend_kernels
from repro.core.kernels.scheduler import LevelSyncScheduler, SchedulerHost
from repro.core.metrics import BFSRunResult, IterationRecord
from repro.core.partition import PartitionedGraph
from repro.core.subgraphs import COMPONENT_ORDER
from repro.machine.network import MachineSpec
from repro.obs.tracer import Tracer

__all__ = ["DistributedBFS"]


class DistributedBFS(SchedulerHost):
    """BFS over a 1.5D-partitioned graph on a simulated machine."""

    def __init__(
        self,
        part: PartitionedGraph,
        machine: MachineSpec | None = None,
        config: BFSConfig = BFSConfig(),
        tracer: Tracer | None = None,
        metrics=None,
        backend=None,
    ) -> None:
        self.part = part
        self.mesh = part.mesh
        self.config = config
        self.tracer = tracer
        self.metrics = metrics
        if machine is None:
            machine = self.mesh.machine or MachineSpec(
                num_nodes=self.mesh.num_ranks
            )
        if machine.num_nodes < self.mesh.num_ranks:
            raise ValueError("machine smaller than the mesh")
        self.machine = machine

        self.ctx = FifteenDContext(part, machine, config)
        self.kernels = build_fifteend_kernels(self.ctx, COMPONENT_ORDER)
        self.scheduler = LevelSyncScheduler(
            self, self.kernels, tracer=tracer, metrics=metrics, backend=backend
        )

        self.num_vertices = part.num_vertices
        self.num_input_edges = part.total_arcs // 2

    # Convenience views onto the kernel context (public API of old).
    @property
    def cost(self):
        return self.ctx.cost

    @property
    def rates(self):
        return self.ctx.rates

    @property
    def masks(self):
        return self.ctx.masks

    @property
    def class_state(self):
        return self.ctx.class_state

    @property
    def seg_plan(self):
        return self.ctx.seg_plan

    @property
    def use_segmenting(self):
        return self.ctx.use_segmenting

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, root: int, **resilience) -> BFSRunResult:
        """Run one BFS from ``root``; returns the validated-shape result.

        ``**resilience`` forwards the scheduler's optional
        ``faults``/``checkpointer``/``resume`` hooks (see
        :meth:`~repro.core.kernels.scheduler.LevelSyncScheduler.run`).
        """
        return self.scheduler.run(root, **resilience)

    def run_program(self, program, **resilience):
        """Run a :class:`~repro.core.programs.base.VertexProgram` through
        the six 1.5D kernels.

        Binds the program to this engine's partition and enters
        :meth:`~repro.core.kernels.scheduler.LevelSyncScheduler.run_program`;
        the program inherits the engine's delegate-sync pricing, §4.2
        direction policy, per-class activation trace and §5 parent/state
        reduction through the same host hooks BFS uses.  ``**resilience``
        forwards ``faults``/``checkpointer``/``resume``.
        """
        program.bind(self.part)
        return self.scheduler.run_program(program, **resilience)

    # ------------------------------------------------------------------
    # scheduler hooks (the 1.5D policy)
    # ------------------------------------------------------------------

    def begin_iteration(self, ledger, active, visited) -> None:
        self.ctx.charge_delegate_sync(ledger, active)

    def iteration_direction(self, active, visited) -> str | None:
        if self.config.sub_iteration_direction:
            return None
        return choose_whole_iteration_direction(
            active, visited, self.part.degrees, self.config
        )

    def component_direction(self, name, active, visited) -> str:
        ratios = self.ctx.class_state.measure(active, visited)
        return choose_component_direction(name, ratios, self.config)

    def record_activation(self, record: IterationRecord, next_active) -> None:
        for cls in ("E", "H", "L"):
            record.newly_activated[cls] = int(
                np.count_nonzero(next_active & self.ctx.masks[cls])
            )

    def end_iteration(self, ledger, record, active, visited, parent, next_active):
        if not self.config.delayed_reduction:
            self.ctx.charge_parent_reduction(ledger)

    def end_run(self, ledger, tracer, parent) -> None:
        if self.config.delayed_reduction:
            with tracer.span("parent_reduction", category="phase"):
                self.ctx.charge_parent_reduction(ledger)

    # ------------------------------------------------------------------
    # back-compat delegates (analytic charge paths, used by cross-checks)
    # ------------------------------------------------------------------

    def _charge_row_alltoallv(self, name, send_msgs_per_rank, ledger):
        self.ctx.charge_row_alltoallv(name, send_msgs_per_rank, ledger)

    def _charge_l2l_alltoallv(self, sender_rank, dest_rank, ledger):
        self.ctx.charge_l2l_alltoallv(sender_rank, dest_rank, ledger)
