"""The distributed 1.5D BFS engine (paper §4-§5).

Executes Graph500 BFS over a :class:`~repro.core.partition.PartitionedGraph`
on the simulated runtime.  Functional semantics are exact level-synchronous
BFS — the parent array validates under the Graph500 specification and the
levels match the serial reference — while every kernel and collective the
real machine would run is charged to a :class:`~repro.runtime.ledger.TrafficLedger`
with its exactly-counted volume.

Iteration structure (§4.2): the six components execute densest-first
(EH2EH, E2L, L2E, H2L, L2H, L2L).  Every component picks its own direction
from the *latest* visited state; sources are always the current frontier
(level-synchronous), destinations activated by an earlier sub-iteration of
the same iteration are skipped by later ones.

Communication pattern per the 1.5D scheme:

- E frontier bits: global allreduce each iteration (E is tiny).
- H frontier bits: column + row allreduce each iteration (the delegate
  sync; rows are intra-supernode, columns cross the fat-tree layer).
- H2L / L2H messaging: row alltoallv (intra-supernode by construction).
- L2L messaging: two-stage forwarding through the intersection rank of the
  source column and destination row (§4.4) — a column alltoallv (crossing
  supernodes) followed by a row alltoallv.
- pull prerequisites: H2L pull row-allgathers the row's unvisited-L bits;
  L2L pull all-gathers the global active-L bits (the §2.3 scalability
  wall of bottom-up 1D, priced explicitly).
- parent arrays of delegated vertices: reduce-scatter at run end (delayed
  reduction, §5) or every iteration when disabled.

Observability: pass ``tracer=`` a :class:`~repro.obs.tracer.Tracer` to
record the run as a span tree — one span per BFS, per iteration, and per
executed component sub-iteration (annotated with the chosen direction,
frontier size, and scanned-arc/message counters) with every ledger charge
as a leaf underneath.  The default :data:`~repro.obs.tracer.NULL_TRACER`
is a no-op and leaves results bit-identical to an untraced run.
"""

from __future__ import annotations

import numpy as np

from repro.core.balance import vertex_cut_imbalance
from repro.core.config import BFSConfig
from repro.core.direction import (
    ClassState,
    choose_component_direction,
    choose_whole_iteration_direction,
)
from repro.core.metrics import BFSRunResult, IterationRecord
from repro.core.partition import PartitionedGraph, VertexClass
from repro.core.segmenting import plan_segmenting
from repro.core.subgraphs import COMPONENT_ORDER
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.ledger import TrafficLedger

__all__ = ["DistributedBFS"]

_MESSAGE_BYTES = 8
_REMOTE_COMPONENTS = ("H2L", "L2H", "L2L")


class DistributedBFS:
    """BFS over a 1.5D-partitioned graph on a simulated machine."""

    def __init__(
        self,
        part: PartitionedGraph,
        machine: MachineSpec | None = None,
        config: BFSConfig = BFSConfig(),
        tracer: Tracer | None = None,
    ) -> None:
        self.part = part
        self.mesh = part.mesh
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if machine is None:
            machine = self.mesh.machine or MachineSpec(
                num_nodes=self.mesh.num_ranks
            )
        if machine.num_nodes < self.mesh.num_ranks:
            raise ValueError("machine smaller than the mesh")
        self.machine = machine
        self.cost = CostModel(machine)
        self.rates = NodeKernelRates(chip=machine.chip)
        self._ws = machine.work_scale

        masks = part.class_masks()
        self.masks = masks
        self.class_state = ClassState(masks)
        self.seg_plan = plan_segmenting(part, chip=machine.chip)
        self.use_segmenting = config.segmenting and self.seg_plan.feasible

        n = part.num_vertices
        self._n = n
        p = self.mesh.num_ranks
        self._p = p
        self._block_bytes = -(-self.mesh.block_size(n) // 8)

        # Precomputed per-arc destination owners for message routing.
        self._dst_owner: dict[str, np.ndarray] = {}
        # group-topology splits (intra_frac, inter_frac) for the three
        # collective scopes.
        self._split_global = self._group_split(np.arange(p))
        self._split_row = self._group_split(self.mesh.row_ranks(0))
        self._split_col = self._group_split(self.mesh.col_ranks(0))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, root: int) -> BFSRunResult:
        """Run one BFS from ``root``; returns the validated-shape result."""
        n, cfg = self._n, self.config
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range for n={n}")
        parent = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        active = np.zeros(n, dtype=bool)
        parent[root] = root
        visited[root] = True
        active[root] = True

        tracer = self.tracer
        ledger = TrafficLedger(self.cost, tracer=tracer)
        iterations: list[IterationRecord] = []

        with tracer.span("bfs", category="bfs", root=root):
            for it in range(cfg.max_iterations):
                if not active.any():
                    break
                frontier = int(np.count_nonzero(active))
                with tracer.span(
                    "iteration", category="iteration", index=it, frontier=frontier
                ):
                    self._charge_delegate_sync(ledger, active)
                    record = IterationRecord(index=it, frontier_size=frontier)
                    next_active = np.zeros(n, dtype=bool)

                    global_dir = None
                    if not cfg.sub_iteration_direction:
                        global_dir = choose_whole_iteration_direction(
                            active, visited, self.part.degrees, cfg
                        )

                    for name in COMPONENT_ORDER:
                        comp = self.part.components[name]
                        if comp.num_arcs == 0:
                            record.directions[name] = "-"
                            continue
                        if global_dir is None:
                            ratios = self.class_state.measure(active, visited)
                            direction = choose_component_direction(
                                name, ratios, cfg
                            )
                        else:
                            direction = global_dir
                        record.directions[name] = direction
                        with tracer.span(
                            name,
                            category="component",
                            iteration=it,
                            direction=direction,
                        ) as csp:
                            newly, parents = self._execute(
                                name, comp, direction, active, visited, parent,
                                ledger, record,
                            )
                            csp.add_counter(
                                "edges", record.scanned_arcs.get(name, 0)
                            )
                            if record.messages.get(name, 0):
                                csp.add_counter("messages", record.messages[name])
                            csp.add_counter("activated", newly.size)
                        if newly.size:
                            parent[newly] = parents
                            visited[newly] = True
                            next_active[newly] = True

                    for cls in ("E", "H", "L"):
                        record.newly_activated[cls] = int(
                            np.count_nonzero(next_active & self.masks[cls])
                        )
                    if not cfg.delayed_reduction:
                        self._charge_parent_reduction(ledger)
                    iterations.append(record)
                    active = next_active

            if cfg.delayed_reduction:
                with tracer.span("parent_reduction", category="phase"):
                    self._charge_parent_reduction(ledger)

        return BFSRunResult(
            root=root,
            parent=parent,
            iterations=iterations,
            ledger=ledger,
            total_seconds=ledger.total_seconds,
            num_input_edges=self.part.total_arcs // 2,
        )

    # ------------------------------------------------------------------
    # sub-iteration execution
    # ------------------------------------------------------------------

    def _execute(self, name, comp, direction, active, visited, parent, ledger, record):
        if direction == "push":
            return self._execute_push(name, comp, active, visited, ledger, record)
        return self._execute_pull(name, comp, active, visited, ledger, record)

    @staticmethod
    def _sync_bytes(bitmap_bits: int, sparse_count: int) -> float:
        """Wire bytes of a frontier-set exchange: packed bitmap or sparse
        8-byte vertex IDs, whichever is smaller (what real implementations
        switch between)."""
        return float(min(-(-bitmap_bits // 8), sparse_count * 8))

    def _execute_push(self, name, comp, active, visited, ledger, record):
        sel = comp.push_select(active)
        per_rank = sel.per_rank(self._p)
        record.scanned_arcs[name] = sel.num_arcs

        # compute: scan + local update (or message generation for remote
        # components, priced at the OCS-RMA rate).
        if name == "EH2EH":
            rate = self.rates.local_push_rate()
            factor = self._eh2eh_push_balance(comp, active)
            seconds = (
                self.rates.kernel_time(int(per_rank.max()), rate, self._ws)
                * factor
            )
        elif name in _REMOTE_COMPONENTS:
            seconds = self.rates.kernel_time(
                int(per_rank.max()),
                self.rates.message_rate(self.config.num_cgs),
                self._ws,
            )
        else:  # E2L, L2E: node-local scan + update
            seconds = self.rates.kernel_time(
                int(per_rank.max()), self.rates.local_push_rate(), self._ws
            )
        ledger.charge_compute(name, f"push:{name}", per_rank, seconds)

        if name in _REMOTE_COMPONENTS and sel.num_arcs:
            record.messages[name] = sel.num_arcs
            self._charge_push_messages(name, sel, ledger)
        # Local (or post-message) update: first writer per destination in
        # deterministic component order wins.
        fresh = ~visited[sel.dst]
        if not np.any(fresh):
            empty = np.array([], dtype=np.int64)
            return empty, empty
        src_f, dst_f = sel.src[fresh], sel.dst[fresh]
        uniq, first = np.unique(dst_f, return_index=True)
        return uniq, src_f[first]

    def _execute_pull(self, name, comp, active, visited, ledger, record):
        # prerequisites: remote state the pulling ranks need.
        if name == "H2L":
            # Unvisited-L state of each row, allgathered within the row
            # (bitmap or sparse IDs, whichever is cheaper on the wire).
            unvisited_l = int(np.count_nonzero(~visited & self.masks["L"]))
            row_bits = self._block_bytes * 8 * self.mesh.cols
            recv = self._sync_bytes(
                row_bits, -(-unvisited_l // self.mesh.rows)
            )
            intra, inter = self._split_bytes(recv, self._split_row)
            ledger.charge_collective(
                name,
                CollectiveKind.ALLGATHER,
                participants=self.mesh.cols,
                max_bytes_intra=intra,
                max_bytes_inter=inter,
                total_bytes=recv * self.mesh.cols,
            )
        elif name == "L2L":
            # L2L bottom-up is query messaging, not a bitmap broadcast:
            # owner(v) scans the arcs of each unvisited local v and sends a
            # batched query per arc through the two-stage forwarding path;
            # the peer answers from its local frontier bits.  Batching is
            # why "1D partitioning methods have to drop or limit the early
            # exit" (§2.1.2) — every arc of an unvisited vertex is queried.
            return self._execute_pull_l2l_query(
                comp, active, visited, ledger, record
            )

        scan = comp.pull_scan(~visited, active)
        record.scanned_arcs[name] = scan.scanned_arcs
        rate = self._pull_rate(name)
        seconds = self.rates.kernel_time(
            int(scan.scanned_per_rank.max()), rate, self._ws
        )
        ledger.charge_compute(name, f"pull:{name}", scan.scanned_per_rank, seconds)

        if name in ("H2L", "L2H") and scan.num_hits:
            # hits travel intra-row to the destination's owner (H2L) or to
            # the column-delegate intersection rank (L2H).
            record.messages[name] = scan.num_hits
            send_per_rank = np.bincount(scan.hit_rank, minlength=self._p)
            self._charge_row_alltoallv(name, send_per_rank, ledger)
            recv_rank = self._owner_of_dst(name, scan.hit_dst, scan.hit_rank)
            self._charge_receiver_kernel(name, recv_rank, ledger, "pull_recv")
        return scan.hit_dst, scan.hit_src

    def _execute_pull_l2l_query(self, comp, active, visited, ledger, record):
        """Bottom-up L2L via batched query/reply messages.

        By edge symmetry, the arcs stored at ``owner(v)`` with source ``v``
        are exactly v's undirected incidence, so scanning unvisited local
        sources is the destination-side pull view.  Each scanned arc costs
        a query to the neighbor's owner plus a reply — twice the push
        message size per arc, which is why pull only wins once the
        unvisited population is well below the active one (the
        ``cross_pull_bias`` economics).
        """
        sel = comp.push_select(~visited)
        per_rank = sel.per_rank(self._p)
        record.scanned_arcs["L2L"] = sel.num_arcs
        seconds = self.rates.kernel_time(
            int(per_rank.max()),
            self.rates.message_rate(self.config.num_cgs),
            self._ws,
        )
        ledger.charge_compute("L2L", "pull:L2L", per_rank, seconds)
        if sel.num_arcs:
            record.messages["L2L"] = 2 * sel.num_arcs
            o_peer = self.mesh.owner_of(sel.dst, self._n)
            # query path (two-stage forwarding) and the reply back.
            self._charge_l2l_alltoallv(sel.rank, o_peer, ledger)
            self._charge_receiver_kernel("L2L", o_peer, ledger, "pull_query")
            self._charge_l2l_alltoallv(o_peer, sel.rank, ledger)
            self._charge_receiver_kernel("L2L", sel.rank, ledger, "pull_reply")
        hits = active[sel.dst]
        if not np.any(hits):
            empty = np.array([], dtype=np.int64)
            return empty, empty
        v_h, u_h = sel.src[hits], sel.dst[hits]
        uniq, first = np.unique(v_h, return_index=True)
        return uniq, u_h[first]

    # ------------------------------------------------------------------
    # communication charging
    # ------------------------------------------------------------------

    def _charge_l2l_alltoallv(self, sender_rank, dest_rank, ledger):
        """Two-stage forwarded global alltoallv (§4.4): sender's column to
        the intersection rank, then the destination's row."""
        fwd_rank = (
            self.mesh.row_of(dest_rank) * self.mesh.cols
            + self.mesh.col_of(sender_rank)
        )
        stage1 = np.bincount(sender_rank, minlength=self._p) * _MESSAGE_BYTES
        intra, inter = self._split_bytes(float(stage1.max()), self._split_col)
        ledger.charge_collective(
            "L2L",
            CollectiveKind.ALLTOALLV,
            participants=self.mesh.rows,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=float(stage1.sum()),
        )
        self._charge_receiver_kernel("L2L", fwd_rank, ledger, "forward")
        stage2 = np.bincount(fwd_rank, minlength=self._p) * _MESSAGE_BYTES
        intra, inter = self._split_bytes(float(stage2.max()), self._split_row)
        ledger.charge_collective(
            "L2L",
            CollectiveKind.ALLTOALLV,
            participants=self.mesh.cols,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=float(stage2.sum()),
        )

    def _charge_push_messages(self, name, sel, ledger):
        send_per_rank = (
            np.bincount(sel.rank, minlength=self._p) * _MESSAGE_BYTES
        )
        if name in ("H2L", "L2H"):
            self._charge_row_alltoallv(
                name, np.bincount(sel.rank, minlength=self._p), ledger
            )
            recv_rank = self._owner_of_dst(name, sel.dst, sel.rank)
            self._charge_receiver_kernel(name, recv_rank, ledger, "push_recv")
            return
        # L2L: two-stage forwarding through the intersection rank of the
        # source's column and the destination's row (§4.4).
        o_dst = self.mesh.owner_of(sel.dst, self._n)
        self._charge_l2l_alltoallv(sel.rank, o_dst, ledger)
        self._charge_receiver_kernel(name, o_dst, ledger, "push_recv")

    def _charge_row_alltoallv(self, name, send_msgs_per_rank, ledger):
        max_bytes = float(send_msgs_per_rank.max()) * _MESSAGE_BYTES
        intra, inter = self._split_bytes(max_bytes, self._split_row)
        ledger.charge_collective(
            name,
            CollectiveKind.ALLTOALLV,
            participants=self.mesh.cols,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=float(send_msgs_per_rank.sum()) * _MESSAGE_BYTES,
        )

    def _charge_receiver_kernel(self, name, recv_rank_per_msg, ledger, label):
        counts = np.bincount(recv_rank_per_msg, minlength=self._p)
        seconds = self.rates.kernel_time(
            int(counts.max()), self.rates.message_rate(self.config.num_cgs), self._ws
        )
        ledger.charge_compute(name, f"{label}:{name}", counts, seconds)

    def _charge_delegate_sync(self, ledger, active):
        """Per-iteration frontier synchronization of delegated classes."""
        p = self._p
        if self.part.num_e:
            active_e = int(np.count_nonzero(active & self.masks["E"]))
            e_bytes = self._sync_bytes(self.part.num_e, active_e)
            intra, inter = self._split_bytes(float(e_bytes), self._split_global)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other", kind, p, intra, inter, total_bytes=float(e_bytes) * p
                )
        active_h = int(np.count_nonzero(active & self.masks["H"]))
        if self.part.num_h and self.mesh.rows > 1:
            col_bytes = self._sync_bytes(
                int(self.part.col_eh_counts.max()),
                -(-active_h // self.mesh.cols),
            )
            intra, inter = self._split_bytes(float(col_bytes), self._split_col)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other",
                    kind,
                    self.mesh.rows,
                    intra,
                    inter,
                    total_bytes=float(col_bytes) * self.mesh.rows,
                )
        if self.part.num_h and self.mesh.cols > 1:
            row_bytes = self._sync_bytes(
                int(self.part.row_eh_counts.max()),
                -(-active_h // self.mesh.rows),
            )
            intra, inter = self._split_bytes(float(row_bytes), self._split_row)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other",
                    kind,
                    self.mesh.cols,
                    intra,
                    inter,
                    total_bytes=float(row_bytes) * self.mesh.cols,
                )

    def _charge_parent_reduction(self, ledger):
        """Reduce delegated parent arrays to their owners (§5)."""
        if self.part.num_e:
            e_bytes = float(self.part.num_e) * 8
            intra, inter = self._split_bytes(e_bytes, self._split_global)
            ledger.charge_collective(
                "reduce",
                CollectiveKind.REDUCE_SCATTER,
                self._p,
                intra,
                inter,
                total_bytes=e_bytes * self._p,
            )
        if self.part.num_h and self.mesh.rows > 1:
            col_bytes = float(self.part.col_eh_counts.max()) * 8
            intra, inter = self._split_bytes(col_bytes, self._split_col)
            ledger.charge_collective(
                "reduce",
                CollectiveKind.REDUCE_SCATTER,
                self.mesh.rows,
                intra,
                inter,
                total_bytes=col_bytes * self.mesh.rows,
            )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _pull_rate(self, name: str) -> float:
        """Arcs/second of the bottom-up kernel for one component.

        EH2EH gets the segmented rate when the plan is feasible and
        enabled (§4.3); components whose frontier bitmap is small (the E
        bitmap, the column-H bits) enjoy the same LDM-resident rate;
        components that must randomly read large local bitmaps (local L,
        global L) pay the GLD-latency rate.
        """
        if name == "EH2EH":
            return self.rates.pull_rate(self.use_segmenting)
        if name in ("E2L", "H2L", "L2H"):
            return self.rates.pull_rate_segmented()
        return self.rates.pull_rate_unsegmented()

    def _eh2eh_push_balance(self, comp, active) -> float:
        """CPE load factor of the EH2EH push vertex-cut (§5)."""
        sel_srcs = np.flatnonzero(active[comp.src_ids])
        if sel_srcs.size == 0:
            return 1.0
        lens = comp.src_indptr[sel_srcs + 1] - comp.src_indptr[sel_srcs]
        return vertex_cut_imbalance(
            lens,
            self.machine.chip.total_cpes,
            edge_aware=self.config.edge_aware_balance,
        )

    def _owner_of_dst(self, name, dst, sender_rank):
        """Rank receiving each message, by component semantics."""
        if name == "H2L":
            return self.mesh.owner_of(dst, self._n)
        # L2H: messages go to the intersection rank (sender's row, the H
        # vertex's EH-space column) where the column delegate lives.
        sender_row = self.mesh.row_of(np.asarray(sender_rank, dtype=np.int64))
        return sender_row * self.mesh.cols + self.part.eh_col[dst]

    def _group_split(self, group: np.ndarray) -> tuple[float, float]:
        """(intra, inter) fractions of a group collective's traffic."""
        sn = self.mesh.supernode_of_rank(group)
        if group.size <= 1:
            return 1.0, 0.0
        if np.all(sn == sn[0]):
            return 1.0, 0.0
        counts = np.bincount(sn)
        counts = counts[counts > 0]
        worst_same = int(counts.min())
        inter = 1.0 - (worst_same - 1) / max(group.size - 1, 1)
        return 1.0 - inter, inter

    @staticmethod
    def _split_bytes(nbytes: float, split: tuple[float, float]) -> tuple[float, float]:
        return nbytes * split[0], nbytes * split[1]
