"""Edge-aware vertex-cut load balancing for EH2EH push (paper §5).

In the second or third iteration a small fraction of E/H frontier vertices
carries most of the outgoing edges.  Cutting the frontier into equal
*vertex-count* chunks then leaves some CPEs with most of the edges.  The
paper adopts GraphIt's edge-aware vertex-cut: prefix-sum the frontier
vertices' degrees and cut at equal *accumulated-degree* positions.

:func:`vertex_cut_imbalance` computes the CPE load factor (busiest CPE /
average) under both policies; the engine multiplies the EH2EH push kernel
time by the naive factor when ``edge_aware_balance`` is off, so the
ablation shows exactly the effect §5 describes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_aware_cuts", "vertex_cut_imbalance"]


def edge_aware_cuts(frontier_degrees: np.ndarray, num_workers: int) -> np.ndarray:
    """Cut positions splitting the frontier into equal-degree chunks.

    Returns ``num_workers + 1`` boundaries into the frontier array such
    that each chunk's degree sum is within one vertex's degree of the
    target (the GraphIt prefix-sum construction).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    frontier_degrees = np.asarray(frontier_degrees, dtype=np.int64)
    n = frontier_degrees.size
    if n == 0:
        return np.zeros(num_workers + 1, dtype=np.int64)
    prefix = np.concatenate(([0], np.cumsum(frontier_degrees)))
    targets = (np.arange(num_workers + 1, dtype=np.float64) / num_workers) * prefix[-1]
    cuts = np.searchsorted(prefix, targets, side="left")
    cuts[0] = 0
    cuts[-1] = n
    return np.maximum.accumulate(cuts).astype(np.int64)


def vertex_cut_imbalance(
    frontier_degrees: np.ndarray, num_workers: int, *, edge_aware: bool
) -> float:
    """Load factor (max chunk degree-sum / mean) of a frontier cut.

    ``edge_aware=False`` cuts by vertex count (the naive policy);
    ``edge_aware=True`` cuts by accumulated degree.  Returns 1.0 for an
    empty frontier or a perfectly balanced cut; values above 1 multiply
    the slowest CPE's runtime.
    """
    frontier_degrees = np.asarray(frontier_degrees, dtype=np.int64)
    n = frontier_degrees.size
    total = int(frontier_degrees.sum())
    if n == 0 or total == 0 or num_workers < 2:
        return 1.0
    if edge_aware:
        cuts = edge_aware_cuts(frontier_degrees, num_workers)
    else:
        cuts = (np.arange(num_workers + 1, dtype=np.int64) * n) // num_workers
    prefix = np.concatenate(([0], np.cumsum(frontier_degrees)))
    loads = prefix[cuts[1:]] - prefix[cuts[:-1]]
    active_workers = min(num_workers, n)
    mean = total / active_workers
    return float(loads.max() / mean) if mean > 0 else 1.0
