"""Run metrics: everything the evaluation figures need from one BFS.

:class:`BFSRunResult` carries the functional output (the parent array,
validatable against the Graph500 spec) plus the full per-iteration trace
and the priced ledger:

- Fig. 5  — :meth:`activation_trace` (newly activated fraction per class
  per iteration);
- Fig. 9  — :meth:`simulated_gteps`;
- Fig. 10 — :meth:`time_by_phase` (per-component + reduce + other);
- Fig. 11 — :meth:`time_by_category` (compute / imbalance / alltoallv /
  allgather / reduce-scatter);
- Fig. 15 — :meth:`time_by_direction` (EH2EH vs others, push vs pull).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph500.spec import Graph500Problem
from repro.machine.costmodel import CollectiveKind
from repro.obs.metrics import NULL_METRICS
from repro.runtime.ledger import TrafficLedger

__all__ = ["IterationRecord", "BFSRunResult"]


@dataclass
class IterationRecord:
    """Trace of one BFS iteration."""

    index: int
    frontier_size: int
    #: Direction chosen per component this iteration.
    directions: dict[str, str] = field(default_factory=dict)
    #: Newly activated vertices per degree class (E/H/L).
    newly_activated: dict[str, int] = field(default_factory=dict)
    #: Arcs scanned per component.
    scanned_arcs: dict[str, int] = field(default_factory=dict)
    #: Remote messages generated per component.
    messages: dict[str, int] = field(default_factory=dict)


@dataclass
class BFSRunResult:
    """Functional + modeled outcome of one BFS run."""

    root: int
    parent: np.ndarray
    iterations: list[IterationRecord]
    ledger: TrafficLedger
    #: Total modeled seconds (ledger total at run end).
    total_seconds: float
    #: Undirected input edges traversed-equivalent (Graph500 counts the
    #: generator's edge count regardless of duplicates).
    num_input_edges: int
    #: The :class:`~repro.obs.metrics.MetricsRegistry` the run fed
    #: (:data:`~repro.obs.metrics.NULL_METRICS` when unmetered).
    metrics: object = field(default=NULL_METRICS, repr=False, compare=False)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def num_visited(self) -> int:
        return int(np.count_nonzero(self.parent >= 0))

    def simulated_gteps(self, problem: Graph500Problem | None = None) -> float:
        """Simulated giga-traversed-edges-per-second.

        With a :class:`Graph500Problem` this is the benchmark's metric
        (input edge count / time); without, it uses the run's own edge
        count.
        """
        edges = problem.num_edges if problem is not None else self.num_input_edges
        if self.total_seconds <= 0:
            return 0.0
        return edges / self.total_seconds / 1e9

    # ------------------------------------------------------------------
    # figure-shaped queries
    # ------------------------------------------------------------------

    def activation_trace(self, class_sizes: dict[str, int]) -> dict[str, list[float]]:
        """Fig. 5: per-iteration newly-activated fraction per class."""
        out: dict[str, list[float]] = {}
        for cls in ("E", "H", "L"):
            size = max(class_sizes.get(cls, 0), 1)
            out[cls] = [
                rec.newly_activated.get(cls, 0) / size for rec in self.iterations
            ]
        return out

    def time_by_phase(self) -> dict[str, float]:
        """Fig. 10: seconds per component (+ ``reduce`` and ``other``)."""
        return self.ledger.seconds_by_phase()

    def time_by_category(self) -> dict[str, float]:
        """Fig. 11: compute / imbalance / per-collective-kind seconds."""
        out: dict[str, float] = {
            "compute": self.ledger.compute_seconds - self.ledger.imbalance_seconds,
            "imbalance/latency": self.ledger.imbalance_seconds,
        }
        kind_names = {
            CollectiveKind.ALLTOALLV: "alltoallv",
            CollectiveKind.ALLGATHER: "allgather",
            CollectiveKind.REDUCE_SCATTER: "reduce_scatter",
            CollectiveKind.ALLREDUCE: "allreduce",
            CollectiveKind.BARRIER: "barrier",
            CollectiveKind.P2P: "p2p",
        }
        for kind, secs in self.ledger.comm_seconds_by_kind().items():
            name = kind_names[kind]
            out[name] = out.get(name, 0.0) + secs
        return out

    def time_by_direction(self) -> dict[str, float]:
        """Fig. 15: {EH2EH, others} x {push, pull} + other seconds.

        Uses the compute events' kernel tags (``push``/``pull`` prefix).
        """
        out = {
            "EH2EH push": 0.0,
            "EH2EH pull": 0.0,
            "others push": 0.0,
            "others pull": 0.0,
            "other": 0.0,
        }
        for ev in self.ledger.compute_events:
            where = "EH2EH" if ev.phase == "EH2EH" else "others"
            if ev.kernel.startswith("push"):
                out[f"{where} push"] += ev.seconds
            elif ev.kernel.startswith("pull"):
                out[f"{where} pull"] += ev.seconds
            else:
                out["other"] += ev.seconds
        for ev in self.ledger.comm_events:
            out["other"] += ev.seconds
        return out

    def directions_of(self, component: str) -> list[str]:
        """Direction chosen for one component across iterations."""
        return [rec.directions.get(component, "-") for rec in self.iterations]
