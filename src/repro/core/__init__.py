"""The paper's primary contribution: 3-level degree-aware 1.5D BFS.

- :mod:`repro.core.partition` — vertex classification (E/H/L), the six
  arc components, and their mesh placement (§4.1).
- :mod:`repro.core.subgraphs` — component storage with push/pull access
  paths and exact per-rank load accounting.
- :mod:`repro.core.direction` — sub-iteration direction heuristics (§4.2).
- :mod:`repro.core.segmenting` — CG-aware core subgraph segmenting (§4.3).
- :mod:`repro.core.balance` — edge-aware vertex-cut load balancing (§5).
- :mod:`repro.core.engine` — the BFS engine tying it together.
- :mod:`repro.core.programs` — the vertex-program layer: SSSP,
  PageRank, connected components and triangle counting on the same
  scheduler and kernels (§8's algorithm neutrality).
- :mod:`repro.core.metrics` — per-run traces shaped like the paper's
  figures.
- :mod:`repro.core.config` — toggles for every optimization (ablations).
"""

from repro.core.balance import edge_aware_cuts, vertex_cut_imbalance
from repro.core.config import BFSConfig
from repro.core.programs import (
    DeltaSteppingResult,
    PageRankResult,
    ProgramRunResult,
    SSSPResult,
    VertexProgram,
    build_program,
    connected_components,
    delta_stepping_sssp,
    generate_weights,
    pagerank,
    sssp,
    suggest_delta,
    triangle_count,
)
from repro.core.preprocessing import (
    PreprocessingReport,
    estimate_construction_seconds,
    preprocess,
)
from repro.core.direction import (
    ClassState,
    choose_component_direction,
    choose_whole_iteration_direction,
)
from repro.core.engine import DistributedBFS
from repro.core.metrics import BFSRunResult, IterationRecord
from repro.core.partition import (
    PartitionedGraph,
    VertexClass,
    partition_graph,
)
from repro.core.segmenting import SegmentingPlan, plan_segmenting
from repro.core.subgraphs import COMPONENT_ORDER, SubgraphComponent

__all__ = [
    "BFSConfig",
    "DistributedBFS",
    "BFSRunResult",
    "IterationRecord",
    "PartitionedGraph",
    "VertexClass",
    "partition_graph",
    "SubgraphComponent",
    "COMPONENT_ORDER",
    "SegmentingPlan",
    "plan_segmenting",
    "ClassState",
    "choose_component_direction",
    "choose_whole_iteration_direction",
    "edge_aware_cuts",
    "vertex_cut_imbalance",
    "sssp",
    "SSSPResult",
    "delta_stepping_sssp",
    "DeltaSteppingResult",
    "suggest_delta",
    "generate_weights",
    "pagerank",
    "PageRankResult",
    "VertexProgram",
    "ProgramRunResult",
    "build_program",
    "connected_components",
    "triangle_count",
    "preprocess",
    "PreprocessingReport",
    "estimate_construction_seconds",
]
