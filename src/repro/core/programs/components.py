"""Connected components as a min-label propagation program.

This is the contract's smallest nontrivial citizen — the ``docs/programs.md``
tutorial walks through writing exactly this class — and the only built-in
that leaves direction choice to the engine: min-label combines see the
same value set push or pull, so ``supports_pull = True`` lets each
component pick its §4.2 direction freely.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.core.programs.base import VertexProgram
from repro.machine.network import MachineSpec

__all__ = ["ConnectedComponentsProgram", "connected_components"]


class ConnectedComponentsProgram(VertexProgram):
    """Min-label propagation: every vertex converges to the smallest
    vertex ID in its connected component."""

    name = "cc"
    supports_pull = True
    #: A label message carries the destination ID plus the 8-byte label.
    message_bytes = 16

    def _init_state(self) -> None:
        self.labels = np.arange(self.n, dtype=np.int64)

    def initial_frontier(self) -> np.ndarray:
        return np.ones(self.n, dtype=bool)

    def gather(self, src, dst):
        msg = self.labels[src]
        better = msg < self.labels[dst]
        if not np.any(better):
            return None
        return src[better], dst[better], msg[better]

    def apply(self, dst, val, src):
        improved = val < self.labels[dst]
        d = dst[improved]
        self.labels[d] = val[improved]
        return d

    def state_arrays(self):
        return {"labels": self.labels}

    def info(self):
        return {"num_components": int(np.unique(self.labels).size)}


def connected_components(
    part: PartitionedGraph, *, machine: MachineSpec | None = None, backend=None
):
    """Run min-label CC over the partitioned graph; returns the
    :class:`~repro.core.programs.base.ProgramRunResult` whose
    ``state["labels"]`` maps each vertex to its component's minimum ID."""
    from repro.core.engine import DistributedBFS

    engine = DistributedBFS(part, machine=machine, backend=backend)
    return engine.run_program(ConnectedComponentsProgram())
