"""The vertex-program contract (paper §8's "algorithm neutrality").

A :class:`VertexProgram` is the gather/apply/scatter-style object that
lets any frontier-sweep algorithm run through the six 1.5D
:class:`~repro.core.kernels.base.ComponentKernel`\\ s and the
:class:`~repro.core.kernels.scheduler.LevelSyncScheduler` — inheriting
direction choice, ledger charging, spans, metrics, fault injection and
checkpointing with zero per-algorithm glue.  The split of
responsibilities:

- the **scheduler** owns the iteration loop: frontier bookkeeping,
  densest-first component order, per-component direction choice,
  resilience hooks, metric emission;
- the **kernels** own arc selection and pricing: push CSR or pull
  groups, per-rank compute charges, alltoallv routing at the program's
  ``message_bytes``;
- the **program** owns only values: per-vertex state arrays, the
  per-arc ``gather`` message, the per-destination ``combine``, the
  ``apply`` activation rule, and the per-iteration convergence test in
  ``end_iteration``.

See ``docs/programs.md`` for the full contract and a worked example.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import IterationRecord
from repro.runtime.ledger import TrafficLedger

__all__ = ["VertexProgram", "ProgramRunResult", "EMPTY_IDS"]

#: The activation of a sub-iteration that updated nothing.
EMPTY_IDS: np.ndarray = np.array([], dtype=np.int64)


class VertexProgram(ABC):
    """One frontier-sweep algorithm, expressed as per-vertex state plus
    gather/combine/apply hooks.

    Lifecycle (driven by ``LevelSyncScheduler.run_program``)::

        bind(part)                       # allocate state arrays
        active = initial_frontier()
        for it in 0..max_iterations:
            begin_iteration(it, active)
            for each component (densest first):
                arcs = kernel selection (push or pull)
                edge_sweep(name, src, dst)   # gather -> combine -> apply
            next = end_iteration(it, active, touched)
            active = next                # None or empty mask ends the run
        end_run()

    Subclasses implement :meth:`_init_state`, :meth:`initial_frontier`,
    :meth:`gather` and :meth:`apply`; everything else has a default.
    State must live entirely in the arrays returned by :meth:`snapshot`
    (plus what :meth:`restore` rebuilds) so checkpoint/recovery works for
    free.
    """

    #: Registry key and metric/span label.
    name: str = "program"
    #: Whether the bottom-up (pull) path produces the same values; the
    #: scheduler only consults the §4.2 direction heuristics when true.
    supports_pull: bool = False
    #: Force "push"/"pull" for every component (None = let the scheduler
    #: decide when ``supports_pull``, else push).
    forced_direction: str | None = None
    #: Wire size of one (vertex, value) message for ledger pricing.
    message_bytes: int = 16
    #: Hard iteration cap (programs converge via ``end_iteration``).
    max_iterations: int = 10_000

    def __init__(self) -> None:
        self.part = None
        self.n = 0
        self.converged = False

    # -- lifecycle -----------------------------------------------------

    def bind(self, part) -> None:
        """Attach to a partitioned graph and allocate state arrays."""
        self.part = part
        self.n = int(part.num_vertices)
        self.converged = False
        self._init_state()

    @abstractmethod
    def _init_state(self) -> None:
        """Allocate per-vertex state for ``self.n`` vertices."""

    @abstractmethod
    def initial_frontier(self) -> np.ndarray:
        """Boolean mask of the vertices active in iteration 0."""

    def begin_iteration(self, iteration: int, active: np.ndarray) -> None:
        """Hook before the component sweeps of one iteration."""

    def end_iteration(
        self, iteration: int, active: np.ndarray, touched: np.ndarray
    ) -> np.ndarray | None:
        """Return the next frontier (``None``/empty ends the run).

        ``touched`` is the union of every component's activations this
        iteration.  The default is plain frontier propagation: the
        touched vertices become the next frontier, and the run converges
        when nothing was touched.
        """
        if not touched.any():
            self.converged = True
            return None
        return touched.copy()

    def end_run(self) -> None:
        """Hook after the loop ends (finalize derived state)."""

    # -- gather / combine / apply --------------------------------------

    @abstractmethod
    def gather(
        self, src: np.ndarray, dst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Produce messages for the selected arcs.

        Returns ``(src, dst, msg)`` — possibly a *subset* of the input
        arcs (drop arcs that cannot improve their destination before the
        shuffle; that filtering is the algorithm's business, not the
        kernel's) — or ``None`` when nothing is worth sending.
        """

    def combine(
        self, src: np.ndarray, dst: np.ndarray, msg: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Reduce messages per destination.

        The default is the deterministic min-combine every shortest-path
        style program wants: stable-sort by (value, dst) and keep each
        destination's first (minimal) message, ties broken by the arcs'
        selection order.  Returns ``(dst, value, src)`` with one entry
        per destination, or ``None`` to skip apply (deferred programs
        accumulate in combine instead).
        """
        order = np.lexsort((msg, dst))
        d_s, m_s, s_s = dst[order], msg[order], src[order]
        first = np.concatenate(([True], d_s[1:] != d_s[:-1]))
        return d_s[first], m_s[first], s_s[first]

    def apply(
        self, dst: np.ndarray, val: np.ndarray, src: np.ndarray | None
    ) -> np.ndarray:
        """Commit combined values to state; return the activated IDs.

        Applied *eagerly* per component, so later (sparser) components of
        the same iteration see the fresh values — the §4.2 freshness rule
        extended from visited bits to program state.  Deferred programs
        (combine returns ``None``) never reach here.
        """
        return EMPTY_IDS

    def edge_sweep(
        self, component: str, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray:
        """One component's gather → combine → apply; returns activations.

        Kernels call this with the arcs they selected (push or pull
        order).  Override only for algorithms that don't decompose into
        the three hooks; the built-ins all use the default driver.
        """
        if src.size == 0:
            return EMPTY_IDS
        gathered = self.gather(src, dst)
        if gathered is None:
            return EMPTY_IDS
        g_src, g_dst, msg = gathered
        if g_dst.size == 0:
            return EMPTY_IDS
        combined = self.combine(g_src, g_dst, msg)
        if combined is None:
            return EMPTY_IDS
        c_dst, c_val, c_src = combined
        return self.apply(c_dst, c_val, c_src)

    # -- direction economics -------------------------------------------

    def pull_candidates(self) -> np.ndarray:
        """Destinations a bottom-up sweep must visit (default: all)."""
        return np.ones(self.n, dtype=bool)

    def settled_mask(self) -> np.ndarray:
        """Vertices whose state is final — the "visited" proxy the §4.2
        direction heuristics and the delegate-sync pricing read (default:
        none, i.e. every vertex still counts as in-play)."""
        return np.zeros(self.n, dtype=bool)

    # -- resilience ----------------------------------------------------

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copy of every state array (control scalars as 0-d arrays)."""
        return {k: np.array(v) for k, v in self.state_arrays().items()}

    def restore(self, state: dict[str, np.ndarray]) -> None:
        """Rebuild state from a :meth:`snapshot` (inverse operation)."""
        own = self.state_arrays()
        for key, arr in state.items():
            if key not in own:
                raise KeyError(f"unknown state array {key!r} for {self.name}")
            np.copyto(own[key], arr)

    # -- results -------------------------------------------------------

    @abstractmethod
    def state_arrays(self) -> dict[str, np.ndarray]:
        """The live per-vertex state arrays, by name."""

    def info(self) -> dict:
        """Scalar outputs (counters, convergence details) for results."""
        return {}


@dataclass
class ProgramRunResult:
    """Outcome of one vertex-program run through the scheduler."""

    program: str
    state: dict[str, np.ndarray]
    iterations: list[IterationRecord]
    ledger: TrafficLedger
    num_input_edges: int
    converged: bool
    info: dict = field(default_factory=dict)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds

    @property
    def total_bytes(self) -> float:
        return self.ledger.total_bytes

    def gteps(self, num_edges: int | None = None) -> float:
        edges = self.num_input_edges if num_edges is None else num_edges
        if self.total_seconds <= 0:
            return 0.0
        return edges / self.total_seconds / 1e9
