"""Vertex programs: the algorithm-neutral layer over the 1.5D engine.

One :class:`~repro.core.programs.base.VertexProgram` contract, one
scheduler loop, six component kernels — every registered program
inherits §4.2 direction choices, ledger charging, spans, metric
families, fault injection and checkpointing with zero per-algorithm
glue.  See ``docs/programs.md`` for the contract and a tutorial.

The :data:`PROGRAM_REGISTRY` maps CLI/serving names to factories;
:func:`build_program` is the single entry point the ``algo`` subcommand
and :class:`~repro.serve.service.TraversalService` resolve through.
BFS itself stays on the scheduler's native ``run`` path (its early-exit
pull and MSBFS batching are visited-bit machinery a value program does
not need); the registry marks it ``native_bfs`` so callers dispatch it
to ``engine.run(root)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.programs.base import EMPTY_IDS, ProgramRunResult, VertexProgram
from repro.core.programs.components import (
    ConnectedComponentsProgram,
    connected_components,
)
from repro.core.programs.pagerank import PageRankProgram, PageRankResult, pagerank
from repro.core.programs.sssp import (
    BellmanFordProgram,
    DeltaSteppingProgram,
    DeltaSteppingResult,
    SSSPResult,
    WeightTable,
    delta_stepping_sssp,
    generate_weights,
    sssp,
    suggest_delta,
)
from repro.core.programs.triangles import TriangleCountingProgram, triangle_count

__all__ = [
    "VertexProgram",
    "ProgramRunResult",
    "EMPTY_IDS",
    "ProgramSpec",
    "PROGRAM_REGISTRY",
    "register_program",
    "available_programs",
    "build_program",
    "BellmanFordProgram",
    "DeltaSteppingProgram",
    "PageRankProgram",
    "ConnectedComponentsProgram",
    "TriangleCountingProgram",
    "WeightTable",
    "SSSPResult",
    "DeltaSteppingResult",
    "PageRankResult",
    "generate_weights",
    "suggest_delta",
    "sssp",
    "delta_stepping_sssp",
    "pagerank",
    "connected_components",
    "triangle_count",
]


@dataclass(frozen=True)
class ProgramSpec:
    """Registry entry: how to build (and describe) one program."""

    name: str
    factory: Callable
    description: str
    #: Whether the program traverses from a source vertex (``root``
    #: required by serving; the CLI defaults it to the max-degree hub).
    needs_root: bool = False
    #: BFS dispatches to the scheduler's native ``run``/``run_batch``
    #: path instead of ``run_program`` (early-exit pull, MSBFS lanes).
    native_bfs: bool = False


PROGRAM_REGISTRY: dict[str, ProgramSpec] = {}


def register_program(spec: ProgramSpec) -> ProgramSpec:
    """Register a program under its name (rejects duplicates)."""
    if spec.name in PROGRAM_REGISTRY:
        raise ValueError(f"program already registered for {spec.name!r}")
    PROGRAM_REGISTRY[spec.name] = spec
    return spec


def available_programs() -> tuple[str, ...]:
    return tuple(sorted(PROGRAM_REGISTRY))


def build_program(name: str, part, **params) -> VertexProgram:
    """Build a registered program for ``part``.

    ``params`` are forwarded to the factory (``root``, ``weights``,
    ``delta``, ``damping``, ...).  Raises ``ValueError`` for unknown
    names or for ``"bfs"`` (which runs natively through
    ``engine.run(root)``, not the program path).
    """
    spec = PROGRAM_REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown program {name!r} (available: "
            f"{', '.join(available_programs())})"
        )
    if spec.native_bfs:
        raise ValueError(
            "bfs runs natively through engine.run(root); "
            "build_program only constructs vertex programs"
        )
    return spec.factory(part, **params)


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------


def _bfs_factory(part, **params):  # pragma: no cover - guarded above
    raise ValueError("bfs runs natively through engine.run(root)")


def _sssp_factory(
    part,
    *,
    root: int = 0,
    weights=None,
    edge_src=None,
    edge_dst=None,
    max_iterations: int = 10_000,
):
    weight_of = None
    if weights is not None:
        if edge_src is None or edge_dst is None:
            raise ValueError("weights require edge_src/edge_dst for alignment")
        weight_of = WeightTable(
            part.num_vertices, weights, edge_src, edge_dst, context="sssp"
        )
    program = BellmanFordProgram(root, weight_of)
    program.max_iterations = int(max_iterations)
    return program


def _delta_factory(
    part,
    *,
    root: int = 0,
    weights=None,
    edge_src=None,
    edge_dst=None,
    delta=None,
    max_buckets: int = 1_000_000,
):
    if weights is not None:
        if edge_src is None or edge_dst is None:
            raise ValueError("weights require edge_src/edge_dst for alignment")
        weight_of = WeightTable(
            part.num_vertices,
            weights,
            edge_src,
            edge_dst,
            context="delta-stepping",
        )
        if delta is None:
            delta = suggest_delta(
                np.asarray(weights, dtype=np.float64), part.degrees
            )
    else:
        def weight_of(s, d):
            return np.ones(s.size, dtype=np.float64)

        if delta is None:
            delta = suggest_delta(np.ones(1), part.degrees)
    return DeltaSteppingProgram(root, weight_of, delta, max_buckets=max_buckets)


def _pagerank_factory(
    part,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iterations: int = 100,
):
    return PageRankProgram(
        damping=damping, tol=tol, max_iterations=max_iterations
    )


def _cc_factory(part):
    return ConnectedComponentsProgram()


def _triangles_factory(part):
    return TriangleCountingProgram()


register_program(
    ProgramSpec(
        name="bfs",
        factory=_bfs_factory,
        description="Graph500 BFS (native scheduler path, MSBFS-batchable)",
        needs_root=True,
        native_bfs=True,
    )
)
register_program(
    ProgramSpec(
        name="sssp",
        factory=_sssp_factory,
        description="Bellman-Ford SSSP (unit weights unless provided)",
        needs_root=True,
    )
)
register_program(
    ProgramSpec(
        name="sssp-delta",
        factory=_delta_factory,
        description="delta-stepping SSSP (buckets as staged frontiers)",
        needs_root=True,
    )
)
register_program(
    ProgramSpec(
        name="pagerank",
        factory=_pagerank_factory,
        description="damped PageRank power iteration",
    )
)
register_program(
    ProgramSpec(
        name="cc",
        factory=_cc_factory,
        description="connected components by min-label propagation",
    )
)
register_program(
    ProgramSpec(
        name="triangles",
        factory=_triangles_factory,
        description="exact triangle counting by arc-wise intersection",
    )
)
