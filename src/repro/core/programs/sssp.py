"""SSSP as vertex programs: Bellman-Ford sweeps and delta-stepping buckets.

The paper cites Chakaravarthy et al. for scalable SSSP; their algorithm
(and every competitive Graph500 SSSP submission) is a delta-stepping
variant (Meyer & Sanders): vertices are processed in distance buckets of
width ``delta``; within a bucket, *light* edges (weight < delta) are
relaxed iteratively until the bucket settles, then *heavy* edges
(weight >= delta) are relaxed once.

Both programs here express one relaxation sweep as gather (candidate
distances over the frontier's arcs, non-improving candidates dropped
before the shuffle) → min-combine per destination → eager apply, so the
:class:`~repro.core.kernels.scheduler.LevelSyncScheduler` runs them with
the full 1.5D treatment — densest-first component order, per-component
ledger charging, spans, metrics, faults and checkpoints:

- :class:`BellmanFordProgram` — level-synchronous label correcting; the
  scheduler's frontier *is* the improved set.
- :class:`DeltaSteppingProgram` — the bucket structure is a program-side
  state machine that stages frontiers: light phases re-feed the bucket's
  improved members, the heavy phase fires once per bucket, and bucket
  transitions (including the empty-bucket skip-ahead) happen in
  ``end_iteration``.  One scheduler iteration == one delta-stepping
  phase.

The classic function entry points (:func:`sssp`,
:func:`delta_stepping_sssp`) are kept as thin wrappers that run the
programs through a :class:`~repro.core.engine.DistributedBFS` engine and
adapt the results; they produce bit-identical distances/parents to the
pre-program implementations (pinned by ``tests/golden/programs_golden.json``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.core.programs.base import VertexProgram
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger

__all__ = [
    "WeightTable",
    "BellmanFordProgram",
    "DeltaSteppingProgram",
    "SSSPResult",
    "DeltaSteppingResult",
    "generate_weights",
    "suggest_delta",
    "sssp",
    "delta_stepping_sssp",
]


def generate_weights(num_edges: int, *, seed: int = 2) -> np.ndarray:
    """Uniform [0, 1) edge weights, as the Graph500 SSSP kernel specifies."""
    return np.random.default_rng(seed).random(num_edges)


def suggest_delta(weights: np.ndarray, degrees: np.ndarray) -> float:
    """The classic heuristic: delta ~ average weight x (1 / avg degree)
    scaled so a bucket holds a frontier-sized set; we use the robust
    ``mean weight / mean degree`` with floors."""
    w = float(np.mean(weights)) if weights.size else 1.0
    d = float(np.mean(degrees[degrees > 0])) if np.any(degrees > 0) else 1.0
    return max(w / max(d, 1.0), 1e-6)


class WeightTable:
    """Edge-weight lookup by undirected endpoint pair.

    Components store symmetrized (and possibly duplicated) arcs, so the
    weight of a stored arc is looked up by its endpoint pair — the
    minimum over duplicate input edges, matching multigraph shortest
    paths.
    """

    def __init__(
        self,
        n: int,
        weights: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        *,
        context: str = "sssp",
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if np.any(weights < 0):
            raise ValueError(f"{context} requires nonnegative weights")
        if weights.shape != np.asarray(edge_src).shape:
            raise ValueError("weights must align with edge_src/edge_dst")
        lo = np.minimum(edge_src, edge_dst).astype(np.int64)
        hi = np.maximum(edge_src, edge_dst).astype(np.int64)
        key = lo * n + hi
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        group_starts = np.concatenate(
            ([0], np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1)
        )
        self._w_min = np.minimum.reduceat(weights[order], group_starts)
        self._key = key_sorted[group_starts]
        self._n = int(n)

    def __call__(self, s: np.ndarray, d: np.ndarray) -> np.ndarray:
        k = np.minimum(s, d) * self._n + np.maximum(s, d)
        return self._w_min[np.searchsorted(self._key, k)]


def _unit_weights(s: np.ndarray, d: np.ndarray) -> np.ndarray:
    return np.ones(s.size, dtype=np.float64)


class _SSSPBase(VertexProgram):
    """Shared distance/parent state and the relax apply rule."""

    #: A relaxation message carries the candidate distance plus the
    #: proposing parent alongside the destination ID.
    message_bytes = 16

    def __init__(self, root: int, weight_of=None) -> None:
        super().__init__()
        self.root = int(root)
        self.weight_of = weight_of if weight_of is not None else _unit_weights
        self.relaxations = 0

    def _init_state(self) -> None:
        n = self.n
        if not 0 <= self.root < n:
            raise ValueError(f"root {self.root} out of range for n={n}")
        self.distance = np.full(n, np.inf)
        self.parent = np.full(n, -1, dtype=np.int64)
        self.distance[self.root] = 0.0
        self.parent[self.root] = self.root
        self.relaxations = 0

    def initial_frontier(self) -> np.ndarray:
        frontier = np.zeros(self.n, dtype=bool)
        frontier[self.root] = True
        return frontier

    def _relax_candidates(self, src, dst, w):
        """Candidate distances that improve their destination; counts
        every improving candidate (the ``relaxations`` statistic) before
        the per-destination min-combine."""
        cand = self.distance[src] + w
        better = cand < self.distance[dst]
        self.relaxations += int(np.count_nonzero(better))
        if not np.any(better):
            return None
        return src[better], dst[better], cand[better]

    def apply(self, dst, val, src):
        improved = val < self.distance[dst]
        d = dst[improved]
        self.distance[d] = val[improved]
        self.parent[d] = src[improved]
        return d

    def state_arrays(self):
        return {"distance": self.distance, "parent": self.parent}

    def info(self):
        return {"root": self.root, "relaxations": self.relaxations}


class BellmanFordProgram(_SSSPBase):
    """Level-synchronous label-correcting SSSP (Graph500 kernel 2).

    Every iteration relaxes the arcs of the vertices whose distance
    improved last iteration; with nonnegative weights this converges to
    exact distances.  With ``weight_of`` omitted, unit weights make SSSP
    equal BFS depth.
    """

    name = "sssp"
    max_iterations = 10_000

    def gather(self, src, dst):
        return self._relax_candidates(src, dst, self.weight_of(src, dst))

    def snapshot(self):
        return {
            "distance": self.distance.copy(),
            "parent": self.parent.copy(),
            "control": np.array([self.relaxations], dtype=np.int64),
        }

    def restore(self, state):
        np.copyto(self.distance, state["distance"])
        np.copyto(self.parent, state["parent"])
        self.relaxations = int(state["control"][0])


class DeltaSteppingProgram(_SSSPBase):
    """Delta-stepping SSSP: buckets as staged scheduler frontiers.

    The scheduler sees one frontier per *phase*; the program's state
    machine decides what that frontier is:

    - ``light`` phases: the bucket's (re-)improved members, relaxing
      only light arcs (weight < delta), until the bucket settles;
    - one ``heavy`` phase per bucket: all bucket members, heavy arcs
      only;
    - bucket transitions — including the skip-ahead over empty buckets —
      happen in ``end_iteration`` and return the next bucket's initial
      light frontier (or ``None`` when no reachable vertex is left).
    """

    name = "sssp-delta"

    def __init__(
        self,
        root: int,
        weight_of,
        delta: float,
        *,
        max_buckets: int = 1_000_000,
    ) -> None:
        super().__init__(root, weight_of)
        if delta is None or delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)
        self.max_buckets = int(max_buckets)

    def _init_state(self) -> None:
        super()._init_state()
        n = self.n
        self.settled = np.zeros(n, dtype=bool)
        self.bucket_members = np.zeros(n, dtype=bool)
        self.bucket_idx = 0
        self.phase = "light"
        self.hi_b = self.delta
        self.buckets_processed = 0
        # Phases are bounded by the bucket-settling guard the bespoke
        # loop enforced with a RuntimeError.
        self.max_iterations = max(10 * n, 1024)

    def initial_frontier(self):
        return self._enter_bucket()

    def _enter_bucket(self):
        """Find the next nonempty bucket (skipping ahead over empty
        bucket indices) and return its initial light frontier."""
        while self.bucket_idx < self.max_buckets:
            lo_b = self.bucket_idx * self.delta
            hi_b = lo_b + self.delta
            in_bucket = (
                (~self.settled)
                & (self.distance >= lo_b)
                & (self.distance < hi_b)
            )
            if in_bucket.any():
                self.hi_b = hi_b
                self.bucket_members = np.zeros(self.n, dtype=bool)
                self.phase = "light"
                return in_bucket
            remaining = (~self.settled) & np.isfinite(self.distance)
            if not remaining.any():
                self.converged = True
                return None
            self.bucket_idx = int(
                np.floor(self.distance[remaining].min() / self.delta)
            )
        return None

    def begin_iteration(self, iteration, active):
        if self.phase == "light":
            self.bucket_members |= active

    def gather(self, src, dst):
        w = self.weight_of(src, dst)
        keep = w < self.delta if self.phase == "light" else w >= self.delta
        if not np.any(keep):
            return None
        return self._relax_candidates(src[keep], dst[keep], w[keep])

    def end_iteration(self, iteration, active, touched):
        if self.phase == "light":
            frontier = (
                touched
                & (self.distance < self.hi_b)
                & ~self.settled
                & ~self.bucket_members
            )
            # re-touched members with improved in-bucket distance must
            # relax again too
            frontier |= (
                touched
                & self.bucket_members
                & (self.distance < self.hi_b)
                & ~self.settled
            )
            if frontier.any():
                return frontier
            # bucket settled under light arcs: one heavy phase from
            # every member, then advance.
            self.phase = "heavy"
            return self.bucket_members.copy()
        self.settled |= self.bucket_members
        self.buckets_processed += 1
        self.bucket_idx += 1
        return self._enter_bucket()

    def settled_mask(self):
        return self.settled

    def snapshot(self):
        return {
            "distance": self.distance.copy(),
            "parent": self.parent.copy(),
            "settled": self.settled.copy(),
            "bucket_members": self.bucket_members.copy(),
            "control": np.array(
                [
                    self.bucket_idx,
                    1 if self.phase == "heavy" else 0,
                    self.buckets_processed,
                    self.relaxations,
                ],
                dtype=np.int64,
            ),
        }

    def restore(self, state):
        np.copyto(self.distance, state["distance"])
        np.copyto(self.parent, state["parent"])
        np.copyto(self.settled, state["settled"])
        np.copyto(self.bucket_members, state["bucket_members"])
        ctrl = state["control"]
        self.bucket_idx = int(ctrl[0])
        self.phase = "heavy" if int(ctrl[1]) else "light"
        self.hi_b = self.bucket_idx * self.delta + self.delta
        self.buckets_processed = int(ctrl[2])
        self.relaxations = int(ctrl[3])

    def info(self):
        return {
            "root": self.root,
            "relaxations": self.relaxations,
            "delta": self.delta,
            "num_buckets": self.buckets_processed,
        }


# ----------------------------------------------------------------------
# classic entry points (compat wrappers over the programs)
# ----------------------------------------------------------------------


@dataclass
class SSSPResult:
    """Output of a distributed SSSP run."""

    root: int
    distance: np.ndarray
    parent: np.ndarray
    num_iterations: int
    relaxations: int
    ledger: TrafficLedger

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds

    def gteps(self, num_edges: int) -> float:
        """Graph500 SSSP counts input edges per traversal second."""
        if self.total_seconds <= 0:
            return 0.0
        return num_edges / self.total_seconds / 1e9


@dataclass
class DeltaSteppingResult:
    """Output of a delta-stepping run."""

    root: int
    distance: np.ndarray
    parent: np.ndarray
    delta: float
    num_buckets: int
    num_phases: int
    relaxations: int
    ledger: TrafficLedger

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds


def _run_program(part: PartitionedGraph, program, machine, backend=None):
    from repro.core.engine import DistributedBFS

    engine = DistributedBFS(part, machine=machine, backend=backend)
    return engine.run_program(program)


def sssp(
    part: PartitionedGraph,
    root: int,
    weights: np.ndarray | None = None,
    *,
    edge_src: np.ndarray | None = None,
    edge_dst: np.ndarray | None = None,
    machine: MachineSpec | None = None,
    max_iterations: int = 10_000,
    backend=None,
) -> SSSPResult:
    """Single-source shortest paths over the partitioned graph.

    Runs :class:`BellmanFordProgram` through the shared scheduler and
    the six 1.5D kernels.  With ``weights`` (aligned with
    ``edge_src``/``edge_dst``) omitted, unit weights are used and SSSP
    equals BFS depth.
    """
    n = part.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for n={n}")
    weight_of = None
    if weights is not None:
        if edge_src is None or edge_dst is None:
            raise ValueError("weights require edge_src/edge_dst for alignment")
        weight_of = WeightTable(n, weights, edge_src, edge_dst, context="sssp")
    program = BellmanFordProgram(root, weight_of)
    program.max_iterations = max_iterations
    res = _run_program(part, program, machine, backend)
    return SSSPResult(
        root=root,
        distance=res.state["distance"],
        parent=res.state["parent"],
        num_iterations=res.num_iterations,
        relaxations=program.relaxations,
        ledger=res.ledger,
    )


def delta_stepping_sssp(
    part: PartitionedGraph,
    root: int,
    weights: np.ndarray,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    *,
    delta: float | None = None,
    machine: MachineSpec | None = None,
    max_buckets: int = 1_000_000,
    backend=None,
) -> DeltaSteppingResult:
    """Exact delta-stepping shortest paths over the partitioned graph."""
    n = part.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for n={n}")
    weight_of = WeightTable(
        n, weights, edge_src, edge_dst, context="delta-stepping"
    )
    if delta is None:
        delta = suggest_delta(np.asarray(weights, dtype=np.float64), part.degrees)
    program = DeltaSteppingProgram(
        root, weight_of, delta, max_buckets=max_buckets
    )
    res = _run_program(part, program, machine, backend)
    return DeltaSteppingResult(
        root=root,
        distance=res.state["distance"],
        parent=res.state["parent"],
        delta=program.delta,
        num_buckets=program.buckets_processed,
        num_phases=res.num_iterations,
        relaxations=program.relaxations,
        ledger=res.ledger,
    )
