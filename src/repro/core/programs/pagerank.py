"""PageRank as a deferred-apply vertex program.

Damped power iteration: each scheduler iteration is one full push sweep
— every component scatters rank mass along its arcs in the densest-first
1.5D order, so the sweep's communication profile matches a dense BFS
push iteration.  PageRank is the *deferred* archetype of the contract:
``combine`` accumulates contributions instead of reducing to a
per-destination winner, and the rank update (damping, dangling-mass
redistribution, L1 convergence test) happens once per iteration in
``end_iteration``.  Dangling-vertex mass is redistributed uniformly,
matching networkx's convention so tests can compare directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.core.programs.base import VertexProgram
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger

__all__ = ["PageRankProgram", "PageRankResult", "pagerank"]


class PageRankProgram(VertexProgram):
    """Damped power iteration with uniform dangling redistribution."""

    name = "pagerank"
    #: A contribution message is one 8-byte rank value per arc.
    message_bytes = 8

    def __init__(
        self,
        *,
        damping: float = 0.85,
        tol: float = 1e-8,
        max_iterations: int = 100,
    ) -> None:
        super().__init__()
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.delta = float("inf")

    def _init_state(self) -> None:
        n = self.n
        degrees = self.part.degrees.astype(np.float64)
        self.out_deg = np.maximum(degrees, 1.0)
        self.dangling = degrees == 0
        self.ranks = np.full(n, 1.0 / n)
        self.delta = float("inf")

    def initial_frontier(self) -> np.ndarray:
        return np.ones(self.n, dtype=bool)

    def begin_iteration(self, iteration, active) -> None:
        self._contrib = self.ranks / self.out_deg
        self._incoming = np.zeros(self.n)

    def gather(self, src, dst):
        return src, dst, self._contrib[src]

    def combine(self, src, dst, msg):
        # Deferred: accumulate into the iteration's incoming-mass vector
        # (one float add per arc, in the kernels' push arc order so the
        # sums are bit-reproducible); apply happens in end_iteration.
        np.add.at(self._incoming, dst, msg)
        return None

    def end_iteration(self, iteration, active, touched):
        n = self.n
        dangling_mass = float(self.ranks[self.dangling].sum())
        new_rank = (1.0 - self.damping) / n + self.damping * (
            self._incoming + dangling_mass / n
        )
        self.delta = float(np.abs(new_rank - self.ranks).sum())
        self.ranks = new_rank
        if self.delta < self.tol:
            self.converged = True
            return None
        return np.ones(n, dtype=bool)

    def state_arrays(self):
        return {"ranks": self.ranks}

    def snapshot(self):
        return {
            "ranks": self.ranks.copy(),
            "control": np.array([self.delta], dtype=np.float64),
        }

    def restore(self, state):
        np.copyto(self.ranks, state["ranks"])
        self.delta = float(state["control"][0])

    def info(self):
        return {"damping": self.damping, "tol": self.tol, "delta": self.delta}


@dataclass
class PageRankResult:
    """Output of a distributed PageRank run."""

    ranks: np.ndarray
    num_iterations: int
    converged: bool
    ledger: TrafficLedger

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds


def pagerank(
    part: PartitionedGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iterations: int = 100,
    machine: MachineSpec | None = None,
    backend=None,
) -> PageRankResult:
    """Damped PageRank by power iteration over the six components."""
    from repro.core.engine import DistributedBFS

    program = PageRankProgram(
        damping=damping, tol=tol, max_iterations=max_iterations
    )
    engine = DistributedBFS(part, machine=machine, backend=backend)
    res = engine.run_program(program)
    return PageRankResult(
        ranks=res.state["ranks"],
        num_iterations=res.num_iterations,
        converged=res.converged,
        ledger=res.ledger,
    )
