"""Triangle counting as a one-iteration deferred program.

Per directed arc (u, v) the gather message is ``|N(u) ∩ N(v)|`` — the
number of wedges the arc closes — computed against a deduplicated
self-loop-free adjacency built once at bind time.  The combine sums the
messages per destination; after the single sweep each vertex's triangle
count is half its wedge sum (each triangle at v is seen via both of v's
arcs into it) and the global count is a sixth of the total (3 edges × 2
directions).

The intersection runs as chunked sparse row products, so the sweep costs
O(arcs × average-degree) like the classic algorithm, while the ledger
sees one full push sweep over the six components — the densest (EH2EH)
component carries the hub–hub arcs exactly where the real machine's
intersection traffic would concentrate.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.core.programs.base import VertexProgram
from repro.machine.network import MachineSpec

__all__ = ["TriangleCountingProgram", "triangle_count"]


class TriangleCountingProgram(VertexProgram):
    """Exact per-vertex and global triangle counts."""

    name = "triangles"
    #: An intersection message is the destination ID plus an 8-byte count.
    message_bytes = 16
    #: One full sweep suffices: the program is stateless across arcs.
    max_iterations = 1
    #: Rows per sparse intersection batch (bounds peak memory).
    chunk = 4096

    def _init_state(self) -> None:
        import scipy.sparse as sp

        n = self.n
        rows, cols = [], []
        for comp in self.part.components.values():
            if comp.num_arcs == 0:
                continue
            s, d, _ = comp.arcs()
            keep = s != d
            rows.append(s[keep])
            cols.append(d[keep])
        if rows:
            r = np.concatenate(rows)
            c = np.concatenate(cols)
        else:
            r = c = np.array([], dtype=np.int64)
        adj = sp.csr_matrix(
            (np.ones(r.size, dtype=np.int64), (r, c)), shape=(n, n)
        )
        adj.sum_duplicates()
        adj.data = np.minimum(adj.data, 1)
        self._adj = adj
        self.wedges = np.zeros(n)
        self.triangles = np.zeros(n)

    def initial_frontier(self) -> np.ndarray:
        return np.ones(self.n, dtype=bool)

    def gather(self, src, dst):
        # Components store symmetrized multigraph arcs; count each unique
        # non-loop directed arc once.  Endpoint classes fix the component
        # an arc lands in, so per-component dedup is global dedup.
        keep = src != dst
        if not np.any(keep):
            return None
        s, d = src[keep], dst[keep]
        key = s * np.int64(self.n) + d
        _, first = np.unique(key, return_index=True)
        s, d = s[first], d[first]
        counts = np.empty(s.size)
        adj = self._adj
        for i in range(0, s.size, self.chunk):
            sl = slice(i, min(i + self.chunk, s.size))
            counts[sl] = np.asarray(
                adj[s[sl]].multiply(adj[d[sl]]).sum(axis=1)
            ).ravel()
        return s, d, counts

    def combine(self, src, dst, msg):
        np.add.at(self.wedges, dst, msg)
        return None

    def end_run(self) -> None:
        self.triangles = self.wedges / 2.0

    def state_arrays(self):
        return {"triangles": self.triangles}

    @property
    def total_triangles(self) -> int:
        return int(round(self.wedges.sum() / 6.0))

    def info(self):
        return {"total_triangles": self.total_triangles}


def triangle_count(
    part: PartitionedGraph, *, machine: MachineSpec | None = None, backend=None
):
    """Count triangles over the partitioned graph; returns the
    :class:`~repro.core.programs.base.ProgramRunResult` with per-vertex
    counts in ``state["triangles"]`` and the global count in
    ``info["total_triangles"]``."""
    from repro.core.engine import DistributedBFS

    engine = DistributedBFS(part, machine=machine, backend=backend)
    return engine.run_program(TriangleCountingProgram())
