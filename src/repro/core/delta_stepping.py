"""Delta-stepping SSSP on the 1.5D partitioning.

The paper cites Chakaravarthy et al. [5] for scalable SSSP; their
algorithm (and every competitive Graph500 SSSP submission) is a
delta-stepping variant (Meyer & Sanders): vertices are processed in
distance buckets of width ``delta``; within a bucket, *light* edges
(weight < delta) are relaxed iteratively until the bucket settles, then
*heavy* edges (weight >= delta) are relaxed once.

This implementation runs over the same six 1.5D components as BFS, so
light/heavy *edge* phases compose with the E/H/L *vertex* classes: each
relaxation sweep is charged per component with its 1.5D messaging
pattern.  The result is exact (tests compare against Dijkstra via
networkx) and the bucket structure gives the expected work profile:
fewer phases than Bellman-Ford on weighted R-MAT graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.core.subgraphs import COMPONENT_ORDER
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger

__all__ = ["DeltaSteppingResult", "delta_stepping_sssp", "suggest_delta"]

_REMOTE = ("H2L", "L2H", "L2L")


@dataclass
class DeltaSteppingResult:
    """Output of a delta-stepping run."""

    root: int
    distance: np.ndarray
    parent: np.ndarray
    delta: float
    num_buckets: int
    num_phases: int
    relaxations: int
    ledger: TrafficLedger

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds


def suggest_delta(weights: np.ndarray, degrees: np.ndarray) -> float:
    """The classic heuristic: delta ~ average weight x (1 / avg degree)
    scaled so a bucket holds a frontier-sized set; we use the robust
    ``mean weight / mean degree`` with floors."""
    w = float(np.mean(weights)) if weights.size else 1.0
    d = float(np.mean(degrees[degrees > 0])) if np.any(degrees > 0) else 1.0
    return max(w / max(d, 1.0), 1e-6)


def delta_stepping_sssp(
    part: PartitionedGraph,
    root: int,
    weights: np.ndarray,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    *,
    delta: float | None = None,
    machine: MachineSpec | None = None,
    max_buckets: int = 1_000_000,
) -> DeltaSteppingResult:
    """Exact delta-stepping shortest paths over the partitioned graph."""
    n = part.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for n={n}")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("delta-stepping requires nonnegative weights")
    if weights.shape != np.asarray(edge_src).shape:
        raise ValueError("weights must align with edge_src/edge_dst")
    if delta is None:
        delta = suggest_delta(weights, part.degrees)
    if delta <= 0:
        raise ValueError("delta must be positive")

    mesh = part.mesh
    if machine is None:
        machine = mesh.machine or MachineSpec(num_nodes=mesh.num_ranks)
    rates = NodeKernelRates(chip=machine.chip)
    ledger = TrafficLedger(CostModel(machine))
    ws = machine.work_scale
    p = mesh.num_ranks

    # weight lookup by undirected endpoint pair (min over duplicates)
    lo = np.minimum(edge_src, edge_dst).astype(np.int64)
    hi = np.maximum(edge_src, edge_dst).astype(np.int64)
    key = lo * n + hi
    order = np.argsort(key, kind="stable")
    key_sorted = key[order]
    group_starts = np.concatenate(
        ([0], np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1)
    )
    w_min = np.minimum.reduceat(weights[order], group_starts)
    key_unique = key_sorted[group_starts]

    def weight_of(s: np.ndarray, d: np.ndarray) -> np.ndarray:
        k = np.minimum(s, d) * n + np.maximum(s, d)
        return w_min[np.searchsorted(key_unique, k)]

    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    dist[root] = 0.0
    parent[root] = root

    relaxations = 0
    phases = 0
    buckets_processed = 0
    bucket_idx = 0

    def relax_from(sources_mask: np.ndarray, light_only: bool | None):
        """One sweep: push relaxations from `sources_mask` over every
        component, restricted to light / heavy / all edges."""
        nonlocal relaxations
        touched = np.zeros(n, dtype=bool)
        for name in COMPONENT_ORDER:
            comp = part.components[name]
            if comp.num_arcs == 0:
                continue
            sel = comp.push_select(sources_mask)
            if sel.num_arcs == 0:
                continue
            w = weight_of(sel.src, sel.dst)
            if light_only is True:
                keep = w < delta
            elif light_only is False:
                keep = w >= delta
            else:
                keep = np.ones(w.size, dtype=bool)
            if not np.any(keep):
                continue
            s_k, d_k, w_k = sel.src[keep], sel.dst[keep], w[keep]
            rank_k = sel.rank[keep]
            per_rank = np.bincount(rank_k, minlength=p)
            seconds = rates.kernel_time(
                int(per_rank.max()), rates.message_rate(), ws
            )
            ledger.charge_compute(name, f"relax:{name}", per_rank, seconds)
            if name in _REMOTE:
                mx = float(per_rank.max()) * 16
                ledger.charge_collective(
                    name,
                    CollectiveKind.ALLTOALLV,
                    participants=p if name == "L2L" else mesh.cols,
                    max_bytes_intra=mx * 0.5,
                    max_bytes_inter=mx * 0.5,
                    total_bytes=float(per_rank.sum()) * 16,
                )
            cand = dist[s_k] + w_k
            better = cand < dist[d_k]
            relaxations += int(np.count_nonzero(better))
            if not np.any(better):
                continue
            d_b, c_b, s_b = d_k[better], cand[better], s_k[better]
            o = np.lexsort((c_b, d_b))
            d_s, c_s, s_s = d_b[o], c_b[o], s_b[o]
            first = np.concatenate(([True], d_s[1:] != d_s[:-1]))
            d_m, c_m, s_m = d_s[first], c_s[first], s_s[first]
            apply = c_m < dist[d_m]
            dist[d_m[apply]] = c_m[apply]
            parent[d_m[apply]] = s_m[apply]
            touched[d_m[apply]] = True
        return touched

    settled = np.zeros(n, dtype=bool)
    while bucket_idx < max_buckets:
        lo_b = bucket_idx * delta
        hi_b = lo_b + delta
        in_bucket = (~settled) & (dist >= lo_b) & (dist < hi_b)
        if not in_bucket.any():
            remaining = (~settled) & np.isfinite(dist)
            if not remaining.any():
                break
            bucket_idx = int(np.floor(dist[remaining].min() / delta))
            continue
        bucket_members = np.zeros(n, dtype=bool)
        # inner light-edge loop: iterate until the bucket settles
        frontier = in_bucket.copy()
        while frontier.any():
            phases += 1
            bucket_members |= frontier
            touched = relax_from(frontier, light_only=True)
            frontier = touched & (dist < hi_b) & ~settled & ~bucket_members
            # re-touched members with improved in-bucket distance must
            # relax again too
            frontier |= touched & bucket_members & (dist < hi_b) & ~settled
            # avoid infinite loop: only revisit members whose distance
            # actually improved this phase; 'touched' already encodes that
            if phases > 10 * n:
                raise RuntimeError("delta-stepping failed to settle a bucket")
        # heavy edges once, from every bucket member
        phases += 1
        relax_from(bucket_members, light_only=False)
        settled |= bucket_members
        buckets_processed += 1
        bucket_idx += 1

    return DeltaSteppingResult(
        root=root,
        distance=dist,
        parent=parent,
        delta=float(delta),
        num_buckets=buckets_processed,
        num_phases=phases,
        relaxations=relaxations,
        ledger=ledger,
    )
