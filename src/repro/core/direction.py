"""Sub-iteration direction selection (paper §4.2).

Each of the six components chooses push (top-down) or pull (bottom-up)
independently every iteration:

- **cross-node components** (H2L, L2H, L2L): the choice compares the active
  fraction of the *source* class with the unvisited fraction of the
  *destination* class — "the ratios directly reflect the number of messages
  required to communicate".  Pull wins when fewer destinations remain
  unvisited than sources are active.
- **node-local components** (EH2EH, E2L, L2E): early exit makes the pull
  workload hard to predict from the destination side, so "only the source
  active ratio is used": pull once the source class's frontier is dense.

Crucially the ratios are evaluated against the *latest* visited state —
each sub-iteration sees the activations of earlier sub-iterations in the
same iteration, which is what lets L2E/L2H flip to pull right after a dense
EH2EH sub-iteration.

The whole-iteration baseline (ablation Fig. 15 "Baseline") instead picks
one direction for everything using Beamer's frontier-arcs heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BFSConfig
from repro.core.partition import COMPONENT_CLASSES, NODE_LOCAL_COMPONENTS

__all__ = ["ClassState", "choose_component_direction", "choose_whole_iteration_direction"]


class ClassState:
    """Active / unvisited populations per degree class, kept fresh
    between sub-iterations."""

    def __init__(self, class_masks: dict[str, np.ndarray]) -> None:
        self._masks = class_masks
        self.sizes = {k: int(m.sum()) for k, m in class_masks.items()}

    def measure(
        self, active: np.ndarray, visited: np.ndarray
    ) -> dict[str, tuple[float, float]]:
        """(active_ratio, unvisited_ratio) per class under current state."""
        out = {}
        for name, mask in self._masks.items():
            size = self.sizes[name]
            if size == 0:
                out[name] = (0.0, 0.0)
                continue
            out[name] = (
                float(np.count_nonzero(active & mask)) / size,
                float(np.count_nonzero(~visited & mask)) / size,
            )
        return out


def choose_component_direction(
    component: str,
    ratios: dict[str, tuple[float, float]],
    config: BFSConfig,
) -> str:
    """Direction for one component given fresh class ratios.

    ``ratios[class] = (active_ratio, unvisited_ratio)``.
    """
    src_class, dst_class = COMPONENT_CLASSES[component]
    active_src, _ = ratios[src_class]
    _, unvisited_dst = ratios[dst_class]
    if component in NODE_LOCAL_COMPONENTS:
        return "pull" if active_src > config.local_pull_threshold else "push"
    # Cross-node: fewer messages wins.  Push messages scale with the
    # active sources' arcs, pull messages with the hit destinations, so
    # pull breaks even while unvisited_dst is still a multiple of
    # active_src (the cross_pull_bias).
    return (
        "pull"
        if unvisited_dst < active_src * config.cross_pull_bias
        else "push"
    )


def choose_whole_iteration_direction(
    active: np.ndarray,
    visited: np.ndarray,
    degrees: np.ndarray,
    config: BFSConfig,
) -> str:
    """One direction for the whole iteration (vanilla Beamer heuristic).

    Pull when the frontier's outgoing arcs exceed the unexplored arcs
    divided by alpha.
    """
    frontier_arcs = float(degrees[active].sum())
    unexplored_arcs = float(degrees[~visited].sum())
    if unexplored_arcs <= 0:
        return "push"
    return (
        "pull"
        if frontier_arcs > unexplored_arcs / config.whole_iteration_alpha
        else "push"
    )
