"""Bit-packed lane state for multi-source (batched) traversal.

A *lane* is one BFS rooted at one vertex.  Up to 64 lanes share a single
level-synchronous wave: per vertex, one ``uint64`` word holds the lane
membership bits of the frontier (``active``) and of the visited set
(``visited``), so a batched sub-iteration touches each arc once for all
lanes instead of once per root (Buluç & Madduri's amortization argument;
"MS-BFS" bit-parallelism).

The representation is deliberately *exact* with respect to the
sequential engine: lane ``l``'s view of ``active``/``visited`` — bit
``l`` of each word — evolves exactly as the boolean masks of a
single-root run from ``roots[l]`` would, because the batched kernels
select the same arcs in the same deterministic order per lane.  That is
what lets the serving layer promise parent trees bit-identical to
per-root runs.

Everything here is engine-agnostic: plain bit plumbing plus the per-lane
class population counters the §4.2 direction heuristics need.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_LANES",
    "LaneState",
    "LaneClassState",
    "lane_bit",
    "iter_lanes",
    "lane_population",
    "all_lanes_mask",
]

#: Width of the lane word: one bit per concurrent root.
MAX_LANES = 64

_ONE = np.uint64(1)


def lane_bit(lane: int) -> np.uint64:
    """The single-bit mask of lane ``lane``."""
    return _ONE << np.uint64(lane)


def all_lanes_mask(num_lanes: int) -> np.uint64:
    """Mask with the low ``num_lanes`` bits set."""
    if not 1 <= num_lanes <= MAX_LANES:
        raise ValueError(f"num_lanes must be in [1, {MAX_LANES}]")
    if num_lanes == MAX_LANES:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << num_lanes) - 1)


def iter_lanes(mask) -> list[int]:
    """Lane indices whose bit is set in ``mask`` (ascending)."""
    m = int(mask)
    lanes = []
    while m:
        low = m & -m
        lanes.append(low.bit_length() - 1)
        m ^= low
    return lanes


def lane_population(bits: np.ndarray, num_lanes: int = MAX_LANES) -> np.ndarray:
    """Per-lane set-bit counts of a lane-word array.

    One vectorized pass: explode each ``uint64`` into its 64 bits
    (little-endian, so column ``l`` is lane ``l``) and sum columns.
    """
    if bits.size == 0:
        return np.zeros(num_lanes, dtype=np.int64)
    as_bytes = bits.view(np.uint8).reshape(bits.size, 8)
    if not np.little_endian:  # pragma: no cover - big-endian hosts
        as_bytes = as_bytes[:, ::-1]
    cols = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return cols.sum(axis=0, dtype=np.int64)[:num_lanes]


class LaneState:
    """Frontier/visited/parent state of up to 64 concurrent BFS lanes."""

    def __init__(self, num_vertices: int, roots) -> None:
        roots = np.asarray(roots, dtype=np.int64)
        if roots.ndim != 1 or not 1 <= roots.size <= MAX_LANES:
            raise ValueError(
                f"batch must hold 1..{MAX_LANES} roots, got shape {roots.shape}"
            )
        if np.unique(roots).size != roots.size:
            raise ValueError("batch roots must be distinct")
        if roots.size and (roots.min() < 0 or roots.max() >= num_vertices):
            raise ValueError(f"root out of range for n={num_vertices}")
        self.num_vertices = int(num_vertices)
        self.num_lanes = int(roots.size)
        self.roots = roots
        self.lane_mask = all_lanes_mask(self.num_lanes)
        #: Lane membership bits of the current frontier, per vertex.
        self.active = np.zeros(num_vertices, dtype=np.uint64)
        #: Lane membership bits of the visited set, per vertex.
        self.visited = np.zeros(num_vertices, dtype=np.uint64)
        #: Per-lane parent trees, ``parent[lane, vertex]``.
        self.parent = np.full((self.num_lanes, num_vertices), -1, dtype=np.int64)
        for lane, root in enumerate(roots):
            bit = lane_bit(lane)
            self.active[root] |= bit
            self.visited[root] |= bit
            self.parent[lane, root] = root

    @property
    def active_lane_mask(self) -> np.uint64:
        """Bits of lanes whose frontier is non-empty."""
        return np.bitwise_or.reduce(self.active) if self.active.size else np.uint64(0)

    def frontier_sizes(self) -> np.ndarray:
        """Per-lane frontier vertex counts."""
        return lane_population(self.active, self.num_lanes)

    def commit(self, updates) -> np.ndarray:
        """Apply a sub-iteration's per-lane activations.

        ``updates`` is a list of ``(lane, dsts, parents)`` triples; the
        destinations of each lane must be fresh (unvisited in that lane).
        Returns the lane-bit array of newly activated (vertex, lane)
        pairs, already OR-ed into ``visited`` so the next sub-iteration
        of the same wave sees it (§4.2 freshness).
        """
        newly = np.zeros(self.num_vertices, dtype=np.uint64)
        for lane, dsts, parents in updates:
            if dsts.size == 0:
                continue
            bit = lane_bit(lane)
            self.parent[lane, dsts] = parents
            newly[dsts] |= bit
        self.visited |= newly
        return newly


class LaneClassState:
    """Per-lane active/unvisited ratios per degree class (§4.2 inputs).

    The sequential engine measures ``(active_ratio, unvisited_ratio)``
    per class as integer population counts divided by the class size;
    this reproduces exactly those integers per lane, so per-lane
    direction decisions are bit-equal to the decisions each sequential
    run would have made at the same level.
    """

    def __init__(self, class_masks: dict[str, np.ndarray]) -> None:
        self._indices = {
            name: np.flatnonzero(mask) for name, mask in class_masks.items()
        }
        self.sizes = {name: int(idx.size) for name, idx in self._indices.items()}

    def measure(self, lanes: LaneState) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """``{class: (active_ratio[num_lanes], unvisited_ratio[num_lanes])}``."""
        out = {}
        num_lanes = lanes.num_lanes
        mask = lanes.lane_mask
        for name, idx in self._indices.items():
            size = self.sizes[name]
            if size == 0:
                zero = np.zeros(num_lanes, dtype=np.float64)
                out[name] = (zero, zero.copy())
                continue
            act = lane_population(lanes.active[idx], num_lanes)
            unvis = lane_population(~lanes.visited[idx] & mask, num_lanes)
            out[name] = (
                act.astype(np.float64) / size,
                unvis.astype(np.float64) / size,
            )
        return out
