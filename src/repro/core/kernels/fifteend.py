"""The six 1.5D component kernels (paper §4.2–§4.4).

Each kernel owns its component's push and pull execution, its
compute-rate selection, its message routing, and its ledger charging —
the knowledge that used to be string-keyed ``if/elif`` chains inside the
monolithic engine:

========  =================================================================
kernel    execution semantics
========  =================================================================
EH2EH     node-local 2D core; push pays the edge-aware vertex-cut balance
          factor (§5), pull runs at the segmented rate when the §4.3 plan
          is feasible.
E2L/L2E   node-local by placement; LDM-resident pull rate, no messages.
H2L       push messages travel intra-row to ``owner(dst)``; pull first
          row-allgathers the row's unvisited-L set, then routes hits.
L2H       push messages travel intra-row to the column-delegate
          intersection rank; pull routes hits the same way.
L2L       push forwards through the §4.4 two-stage (column then row)
          alltoallv; pull is batched query/reply messaging — twice the
          bytes per scanned arc and no early exit (the §2.1.2 limit).
========  =================================================================

All six charge through one :class:`FifteenDContext`, which carries the
partition, mesh, machine rates, and the supernode traffic splits; the
context also prices the per-iteration delegate frontier sync and the §5
parent reduction for the engine facade.
"""

from __future__ import annotations

import numpy as np

from repro.core.balance import vertex_cut_imbalance
from repro.core.config import BFSConfig
from repro.core.direction import ClassState
from repro.core.kernels.base import (
    EMPTY_ACTIVATION,
    ComponentKernel,
    KernelBodySpec,
    KernelRegistry,
)
from repro.core.lanes import iter_lanes, lane_bit
from repro.core.partition import PartitionedGraph
from repro.core.segmenting import plan_segmenting
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec

__all__ = [
    "FifteenDContext",
    "FIFTEEND_KERNELS",
    "build_fifteend_kernels",
    "MESSAGE_BYTES",
    "LANE_MESSAGE_BYTES",
]

MESSAGE_BYTES = 8
#: A batched-wave message carries the 8-byte vertex ID plus the 64-bit
#: lane word, so up to 64 lanes share one message where sequential runs
#: would each send their own.
LANE_MESSAGE_BYTES = 16

#: The six 1.5D kernels, keyed by component name.
FIFTEEND_KERNELS = KernelRegistry()


class FifteenDContext:
    """Shared machine/partition state the six kernels charge through."""

    def __init__(
        self,
        part: PartitionedGraph,
        machine: MachineSpec,
        config: BFSConfig,
    ) -> None:
        self.part = part
        self.mesh = part.mesh
        self.machine = machine
        self.config = config
        self.cost = CostModel(machine)
        self.rates = NodeKernelRates(chip=machine.chip)
        self.work_scale = machine.work_scale

        self.masks = part.class_masks()
        self.class_state = ClassState(self.masks)
        self.seg_plan = plan_segmenting(part, chip=machine.chip)
        self.use_segmenting = config.segmenting and self.seg_plan.feasible

        self.num_vertices = part.num_vertices
        self.num_ranks = self.mesh.num_ranks
        self.block_bytes = -(-self.mesh.block_size(part.num_vertices) // 8)

        # Supernode (intra_frac, inter_frac) splits of the three
        # collective scopes, from the canonical mesh helper.
        self.split_global = self.mesh.group_traffic_split(
            np.arange(self.num_ranks)
        )
        self.split_row = self.mesh.group_traffic_split(self.mesh.row_ranks(0))
        self.split_col = self.mesh.group_traffic_split(self.mesh.col_ranks(0))

    # ------------------------------------------------------------------
    # shared pricing helpers
    # ------------------------------------------------------------------

    @staticmethod
    def sync_bytes(bitmap_bits: int, sparse_count: int) -> float:
        """Wire bytes of a frontier-set exchange: packed bitmap or sparse
        8-byte vertex IDs, whichever is smaller (what real implementations
        switch between)."""
        return float(min(-(-bitmap_bits // 8), sparse_count * 8))

    @staticmethod
    def sync_bytes_lanes(bitmap_bits: int, sparse_count: int, num_lanes: int) -> float:
        """Lane-word variant of :meth:`sync_bytes`: the packed bitmap
        widens by the lane count, a sparse entry carries its vertex ID
        plus the 64-bit lane word."""
        return float(
            min(-(-bitmap_bits * num_lanes // 8), sparse_count * LANE_MESSAGE_BYTES)
        )

    @staticmethod
    def split_bytes(nbytes: float, split: tuple[float, float]) -> tuple[float, float]:
        return nbytes * split[0], nbytes * split[1]

    def kernel_time(self, max_items: int, rate: float) -> float:
        return self.rates.kernel_time(max_items, rate, self.work_scale)

    def message_rate(self) -> float:
        return self.rates.message_rate(self.config.num_cgs)

    # ------------------------------------------------------------------
    # shared charging paths
    # ------------------------------------------------------------------

    def charge_row_alltoallv(
        self, name, send_msgs_per_rank, ledger, message_bytes=MESSAGE_BYTES
    ):
        """Intra-row alltoallv of fixed-size messages (H2L / L2H routing);
        batched waves pass ``message_bytes=LANE_MESSAGE_BYTES``."""
        max_bytes = float(send_msgs_per_rank.max()) * message_bytes
        intra, inter = self.split_bytes(max_bytes, self.split_row)
        ledger.charge_collective(
            name,
            CollectiveKind.ALLTOALLV,
            participants=self.mesh.cols,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=float(send_msgs_per_rank.sum()) * message_bytes,
        )

    def charge_l2l_alltoallv(
        self, sender_rank, dest_rank, ledger, message_bytes=MESSAGE_BYTES
    ):
        """Two-stage forwarded global alltoallv (§4.4): sender's column to
        the intersection rank, then the destination's row."""
        fwd_rank = (
            self.mesh.row_of(dest_rank) * self.mesh.cols
            + self.mesh.col_of(sender_rank)
        )
        stage1 = np.bincount(sender_rank, minlength=self.num_ranks) * message_bytes
        intra, inter = self.split_bytes(float(stage1.max()), self.split_col)
        ledger.charge_collective(
            "L2L",
            CollectiveKind.ALLTOALLV,
            participants=self.mesh.rows,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=float(stage1.sum()),
        )
        self.charge_receiver_kernel("L2L", fwd_rank, ledger, "forward")
        stage2 = np.bincount(fwd_rank, minlength=self.num_ranks) * message_bytes
        intra, inter = self.split_bytes(float(stage2.max()), self.split_row)
        ledger.charge_collective(
            "L2L",
            CollectiveKind.ALLTOALLV,
            participants=self.mesh.cols,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=float(stage2.sum()),
        )

    def charge_receiver_kernel(self, name, recv_rank_per_msg, ledger, label):
        counts = np.bincount(recv_rank_per_msg, minlength=self.num_ranks)
        seconds = self.kernel_time(int(counts.max()), self.message_rate())
        ledger.charge_compute(name, f"{label}:{name}", counts, seconds)

    # ------------------------------------------------------------------
    # per-iteration delegate sync and §5 parent reduction (engine-level
    # charges shared by the facade and the hosts)
    # ------------------------------------------------------------------

    def charge_delegate_sync(self, ledger, active):
        """Per-iteration frontier synchronization of delegated classes."""
        p = self.num_ranks
        if self.part.num_e:
            active_e = int(np.count_nonzero(active & self.masks["E"]))
            e_bytes = self.sync_bytes(self.part.num_e, active_e)
            intra, inter = self.split_bytes(float(e_bytes), self.split_global)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other", kind, p, intra, inter, total_bytes=float(e_bytes) * p
                )
        active_h = int(np.count_nonzero(active & self.masks["H"]))
        if self.part.num_h and self.mesh.rows > 1:
            col_bytes = self.sync_bytes(
                int(self.part.col_eh_counts.max()),
                -(-active_h // self.mesh.cols),
            )
            intra, inter = self.split_bytes(float(col_bytes), self.split_col)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other",
                    kind,
                    self.mesh.rows,
                    intra,
                    inter,
                    total_bytes=float(col_bytes) * self.mesh.rows,
                )
        if self.part.num_h and self.mesh.cols > 1:
            row_bytes = self.sync_bytes(
                int(self.part.row_eh_counts.max()),
                -(-active_h // self.mesh.rows),
            )
            intra, inter = self.split_bytes(float(row_bytes), self.split_row)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other",
                    kind,
                    self.mesh.cols,
                    intra,
                    inter,
                    total_bytes=float(row_bytes) * self.mesh.cols,
                )

    def charge_parent_reduction(self, ledger, num_lanes: int = 1):
        """Reduce delegated parent arrays to their owners (§5).

        A batched wave reduces one parent array per lane, so the bytes
        scale with ``num_lanes`` — but the collective launch overhead is
        paid once, which is part of the batch amortization.
        """
        if self.part.num_e:
            e_bytes = float(self.part.num_e) * 8 * num_lanes
            intra, inter = self.split_bytes(e_bytes, self.split_global)
            ledger.charge_collective(
                "reduce",
                CollectiveKind.REDUCE_SCATTER,
                self.num_ranks,
                intra,
                inter,
                total_bytes=e_bytes * self.num_ranks,
            )
        if self.part.num_h and self.mesh.rows > 1:
            col_bytes = float(self.part.col_eh_counts.max()) * 8 * num_lanes
            intra, inter = self.split_bytes(col_bytes, self.split_col)
            ledger.charge_collective(
                "reduce",
                CollectiveKind.REDUCE_SCATTER,
                self.mesh.rows,
                intra,
                inter,
                total_bytes=col_bytes * self.mesh.rows,
            )

    def charge_delegate_sync_lanes(self, ledger, lanes):
        """Batched-wave variant of :meth:`charge_delegate_sync`: one
        exchange syncs every lane's delegated frontier bits — lane-word
        bitmaps or sparse (id, lane-word) entries, whichever is cheaper."""
        p = self.num_ranks
        any_active = lanes.active != 0
        num_lanes = lanes.num_lanes
        if self.part.num_e:
            active_e = int(np.count_nonzero(any_active & self.masks["E"]))
            e_bytes = self.sync_bytes_lanes(self.part.num_e, active_e, num_lanes)
            intra, inter = self.split_bytes(float(e_bytes), self.split_global)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other", kind, p, intra, inter, total_bytes=float(e_bytes) * p
                )
        active_h = int(np.count_nonzero(any_active & self.masks["H"]))
        if self.part.num_h and self.mesh.rows > 1:
            col_bytes = self.sync_bytes_lanes(
                int(self.part.col_eh_counts.max()),
                -(-active_h // self.mesh.cols),
                num_lanes,
            )
            intra, inter = self.split_bytes(float(col_bytes), self.split_col)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other",
                    kind,
                    self.mesh.rows,
                    intra,
                    inter,
                    total_bytes=float(col_bytes) * self.mesh.rows,
                )
        if self.part.num_h and self.mesh.cols > 1:
            row_bytes = self.sync_bytes_lanes(
                int(self.part.row_eh_counts.max()),
                -(-active_h // self.mesh.rows),
                num_lanes,
            )
            intra, inter = self.split_bytes(float(row_bytes), self.split_row)
            for kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALLGATHER):
                ledger.charge_collective(
                    "other",
                    kind,
                    self.mesh.cols,
                    intra,
                    inter,
                    total_bytes=float(row_bytes) * self.mesh.cols,
                )


class _FifteenDKernel(ComponentKernel):
    """Shared push/pull skeleton of the six 1.5D kernels."""

    def __init__(self, ctx: FifteenDContext, comp) -> None:
        self.ctx = ctx
        self.comp = comp

    @property
    def num_arcs(self) -> int:
        return self.comp.num_arcs

    # -- per-kernel policy hooks ---------------------------------------

    def push_seconds(self, per_rank: np.ndarray, active: np.ndarray) -> float:
        """Compute time of the top-down sweep (busiest rank)."""
        raise NotImplementedError

    def pull_rate(self) -> float:
        """Arcs/second of the bottom-up kernel.

        Components whose frontier bitmap is small (the E bitmap, the
        column-H bits) enjoy the LDM-resident rate; components that must
        randomly read large local bitmaps pay the GLD-latency rate.
        """
        raise NotImplementedError

    def route_push(self, sel, ledger, record) -> None:
        """Charge the remote traffic of pushed arcs (nothing if local)."""

    def charge_pull_prereq(self, ledger, active, visited) -> None:
        """Charge remote state the pulling ranks need first (if any)."""

    def route_pull_hits(self, scan, ledger, record) -> None:
        """Charge delivery of bottom-up hits to their owners (if remote)."""

    # -- batched-wave policy hooks (lane-word message variants) ---------

    def route_push_lanes(self, sel, ledger, record) -> None:
        """Charge the remote traffic of a batched push (nothing if local)."""

    def charge_pull_prereq_lanes(self, ledger, lanes, group_lanes) -> None:
        """Charge remote state a batched pull needs first (if any)."""

    def route_pull_hits_lanes(self, scan, ledger, record) -> None:
        """Charge delivery of batched bottom-up hits (if remote)."""

    # -- vertex-program policy hooks (program-sized message variants) ---

    def route_program_push(self, sel, ledger, record, message_bytes) -> None:
        """Charge the remote traffic of pushed program messages (nothing
        if local).  One wire message per selected arc, ``message_bytes``
        wide (programs carry a value alongside the vertex ID)."""

    def route_program_pull(self, sel, ledger, record, message_bytes) -> None:
        """Charge delivery of pulled program messages (nothing if local)."""

    # -- body/commit split (the execution-backend contract) -------------
    #
    # Every path below factors into a pure *body* (an arc selection or
    # scan over the component's frozen arrays — no ledger access) and a
    # *commit* that does all charging, routing, and activation dedup on
    # the body's result.  The in-process ``execute*`` methods chain the
    # two; a parallel backend computes the body chunked in workers and
    # calls the same commit on the merged result, so the ledger sees an
    # identical charge sequence either way.

    def body_spec(self):
        return KernelBodySpec(component=self.comp, pull_kind="scan")

    def pull_body(self, active, visited):
        """The pure bottom-up body (L2L overrides with its query model)."""
        return self.comp.pull_scan(~visited, active)

    def lanes_pull_body(self, group_lanes, lanes):
        group = np.uint64(group_lanes)
        return self.comp.pull_scan_lanes(
            ~lanes.visited & group, lanes.active & group, group
        )

    def commit_push(self, sel, active, visited, ledger, record):
        ctx, name = self.ctx, self.name
        per_rank = sel.per_rank(ctx.num_ranks)
        record.scanned_arcs[name] = sel.num_arcs
        seconds = self.push_seconds(per_rank, active)
        ledger.charge_compute(name, f"push:{name}", per_rank, seconds)
        if sel.num_arcs:
            self.route_push(sel, ledger, record)
        # Local (or post-message) update: first writer per destination in
        # deterministic component order wins.
        fresh = ~visited[sel.dst]
        if not np.any(fresh):
            return EMPTY_ACTIVATION
        src_f, dst_f = sel.src[fresh], sel.dst[fresh]
        uniq, first = np.unique(dst_f, return_index=True)
        return uniq, src_f[first]

    def commit_pull(self, scan, active, visited, ledger, record):
        ctx, name = self.ctx, self.name
        self.charge_pull_prereq(ledger, active, visited)
        record.scanned_arcs[name] = scan.scanned_arcs
        seconds = ctx.kernel_time(int(scan.scanned_per_rank.max()), self.pull_rate())
        ledger.charge_compute(name, f"pull:{name}", scan.scanned_per_rank, seconds)
        if scan.num_hits:
            self.route_pull_hits(scan, ledger, record)
        return scan.hit_dst, scan.hit_src

    def commit_push_lanes(self, sel, group_lanes, lanes, ledger, record):
        """Commit of the lane-shared top-down sweep.

        One arc selection covers the union frontier; lane ``l``'s subset
        of the selection (arcs whose source carries bit ``l``) is exactly
        the selection of that lane's sequential run in the same order, so
        the per-lane first-writer-per-destination parents are identical.
        """
        ctx, name = self.ctx, self.name
        group = np.uint64(group_lanes)
        act_bits = lanes.active & group
        union_active = act_bits != 0
        per_rank = sel.per_rank(ctx.num_ranks)
        record.scanned_arcs[name] = (
            record.scanned_arcs.get(name, 0) + sel.num_arcs
        )
        seconds = self.push_seconds(per_rank, union_active)
        ledger.charge_compute(name, f"push:{name}", per_rank, seconds)
        if sel.num_arcs == 0:
            return []
        self.route_push_lanes(sel, ledger, record)
        # Per (arc, lane): fresh iff the source is active and the
        # destination unvisited in that lane.
        hit_bits = act_bits[sel.src] & ~lanes.visited[sel.dst] & group
        if not hit_bits.any():
            return []
        updates = []
        for lane in iter_lanes(group):
            mask = (hit_bits & lane_bit(lane)) != 0
            if not mask.any():
                continue
            uniq, first = np.unique(sel.dst[mask], return_index=True)
            updates.append((lane, uniq, sel.src[mask][first]))
        return updates

    def commit_pull_lanes(self, scan, group_lanes, lanes, ledger, record):
        """Commit of the lane-shared bottom-up scan (the generic grouped
        path; L2L overrides with its query/reply messaging)."""
        ctx, name = self.ctx, self.name
        group = np.uint64(group_lanes)
        self.charge_pull_prereq_lanes(ledger, lanes, group)
        record.scanned_arcs[name] = (
            record.scanned_arcs.get(name, 0) + scan.scanned_arcs
        )
        seconds = ctx.kernel_time(
            int(scan.scanned_per_rank.max()), self.pull_rate()
        )
        ledger.charge_compute(name, f"pull:{name}", scan.scanned_per_rank, seconds)
        if scan.num_messages:
            self.route_pull_hits_lanes(scan, ledger, record)
        return scan.updates

    def commit_program_push(self, program, sel, active, ledger, record):
        """Top-down program sub-iteration: the frontier's arcs in the
        same by-source CSR order (and at the same per-rank compute and
        alltoallv prices) as a BFS push, with the first-writer commit
        replaced by the program's gather → combine → apply."""
        ctx, name = self.ctx, self.name
        per_rank = sel.per_rank(ctx.num_ranks)
        record.scanned_arcs[name] = sel.num_arcs
        seconds = self.push_seconds(per_rank, active)
        ledger.charge_compute(name, f"push:{name}", per_rank, seconds)
        if sel.num_arcs:
            self.route_program_push(
                sel, ledger, record, program.message_bytes
            )
        return program.edge_sweep(name, sel.src, sel.dst)

    def commit_program_pull(self, program, sel, candidates, active, ledger, record):
        """Bottom-up program sub-iteration: full-run scans of the
        program's candidate destinations (no early exit — a value
        combine must see every active in-neighbour), priced at the same
        pull rate as BFS."""
        ctx, name = self.ctx, self.name
        self.charge_pull_prereq(ledger, active, ~candidates)
        record.scanned_arcs[name] = sel.scanned_arcs
        seconds = ctx.kernel_time(
            int(sel.scanned_per_rank.max()), self.pull_rate()
        )
        ledger.charge_compute(name, f"pull:{name}", sel.scanned_per_rank, seconds)
        if sel.num_arcs:
            self.route_program_pull(
                sel, ledger, record, program.message_bytes
            )
        return program.edge_sweep(name, sel.src, sel.dst)

    # -- execution ------------------------------------------------------

    def execute(self, direction, active, visited, ledger, record):
        if direction == "push":
            sel = self.comp.push_select(active)
            return self.commit_push(sel, active, visited, ledger, record)
        body = self.pull_body(active, visited)
        return self.commit_pull(body, active, visited, ledger, record)

    def execute_lanes(self, direction, group_lanes, lanes, ledger, record):
        group = np.uint64(group_lanes)
        if direction == "push":
            sel = self.comp.push_select((lanes.active & group) != 0)
            return self.commit_push_lanes(sel, group_lanes, lanes, ledger, record)
        body = self.lanes_pull_body(group_lanes, lanes)
        return self.commit_pull_lanes(body, group_lanes, lanes, ledger, record)

    def execute_program(self, program, direction, active, ledger, record):
        if direction == "push":
            sel = self.comp.push_select(active)
            return self.commit_program_push(program, sel, active, ledger, record)
        candidates = program.pull_candidates()
        sel = self.comp.pull_select(candidates, active)
        return self.commit_program_pull(
            program, sel, candidates, active, ledger, record
        )


@FIFTEEND_KERNELS.register("EH2EH")
class EH2EHKernel(_FifteenDKernel):
    """The 2D core: node-local, vertex-cut balanced, segmentable."""

    def push_seconds(self, per_rank, active):
        ctx = self.ctx
        factor = self._push_balance(active)
        return ctx.kernel_time(int(per_rank.max()), ctx.rates.local_push_rate()) * factor

    def _push_balance(self, active) -> float:
        """CPE load factor of the EH2EH push vertex-cut (§5)."""
        comp = self.comp
        sel_srcs = np.flatnonzero(active[comp.src_ids])
        if sel_srcs.size == 0:
            return 1.0
        lens = comp.src_indptr[sel_srcs + 1] - comp.src_indptr[sel_srcs]
        return vertex_cut_imbalance(
            lens,
            self.ctx.machine.chip.total_cpes,
            edge_aware=self.ctx.config.edge_aware_balance,
        )

    def pull_rate(self):
        # Segmented rate when the §4.3 plan is feasible and enabled.
        return self.ctx.rates.pull_rate(self.ctx.use_segmenting)


class _LocalKernel(_FifteenDKernel):
    """Node-local light components (E2L, L2E): scan + update, no messages."""

    def push_seconds(self, per_rank, active):
        ctx = self.ctx
        return ctx.kernel_time(int(per_rank.max()), ctx.rates.local_push_rate())

    def pull_rate(self):
        return self.ctx.rates.pull_rate_segmented()


@FIFTEEND_KERNELS.register("E2L")
class E2LKernel(_LocalKernel):
    pass


@FIFTEEND_KERNELS.register("L2E")
class L2EKernel(_LocalKernel):
    pass


class _RowMessageKernel(_FifteenDKernel):
    """Intra-row messaging components (H2L, L2H)."""

    def push_seconds(self, per_rank, active):
        # Message generation priced at the OCS-RMA rate.
        ctx = self.ctx
        return ctx.kernel_time(int(per_rank.max()), ctx.message_rate())

    def pull_rate(self):
        return self.ctx.rates.pull_rate_segmented()

    def owner_of_dst(self, dst, sender_rank) -> np.ndarray:
        """Rank receiving each message, by component semantics."""
        raise NotImplementedError

    def route_push(self, sel, ledger, record):
        ctx, name = self.ctx, self.name
        record.messages[name] = sel.num_arcs
        ctx.charge_row_alltoallv(
            name, np.bincount(sel.rank, minlength=ctx.num_ranks), ledger
        )
        recv_rank = self.owner_of_dst(sel.dst, sel.rank)
        ctx.charge_receiver_kernel(name, recv_rank, ledger, "push_recv")

    def route_pull_hits(self, scan, ledger, record):
        # hits travel intra-row to the destination's owner (H2L) or to
        # the column-delegate intersection rank (L2H).
        ctx, name = self.ctx, self.name
        record.messages[name] = scan.num_hits
        send_per_rank = np.bincount(scan.hit_rank, minlength=ctx.num_ranks)
        ctx.charge_row_alltoallv(name, send_per_rank, ledger)
        recv_rank = self.owner_of_dst(scan.hit_dst, scan.hit_rank)
        ctx.charge_receiver_kernel(name, recv_rank, ledger, "pull_recv")

    def route_push_lanes(self, sel, ledger, record):
        # One 16-byte message per selected arc carries all lanes' bits.
        ctx, name = self.ctx, self.name
        record.messages[name] = record.messages.get(name, 0) + sel.num_arcs
        ctx.charge_row_alltoallv(
            name,
            np.bincount(sel.rank, minlength=ctx.num_ranks),
            ledger,
            message_bytes=LANE_MESSAGE_BYTES,
        )
        recv_rank = self.owner_of_dst(sel.dst, sel.rank)
        ctx.charge_receiver_kernel(name, recv_rank, ledger, "push_recv")

    def route_pull_hits_lanes(self, scan, ledger, record):
        # Unique (dst, rank) winners across lanes share one message each.
        ctx, name = self.ctx, self.name
        record.messages[name] = record.messages.get(name, 0) + scan.num_messages
        send_per_rank = np.bincount(scan.msg_rank, minlength=ctx.num_ranks)
        ctx.charge_row_alltoallv(
            name, send_per_rank, ledger, message_bytes=LANE_MESSAGE_BYTES
        )
        recv_rank = self.owner_of_dst(scan.msg_dst, scan.msg_rank)
        ctx.charge_receiver_kernel(name, recv_rank, ledger, "pull_recv")

    def route_program_push(self, sel, ledger, record, message_bytes):
        # One (vertex, value) message per pushed arc, intra-row.
        ctx, name = self.ctx, self.name
        record.messages[name] = sel.num_arcs
        ctx.charge_row_alltoallv(
            name,
            np.bincount(sel.rank, minlength=ctx.num_ranks),
            ledger,
            message_bytes=message_bytes,
        )
        recv_rank = self.owner_of_dst(sel.dst, sel.rank)
        ctx.charge_receiver_kernel(name, recv_rank, ledger, "push_recv")

    def route_program_pull(self, sel, ledger, record, message_bytes):
        # Pulled (vertex, value) contributions travel the same intra-row
        # path as pull hits, one message per selected arc (no early exit
        # means no per-destination dedup before the combine).
        ctx, name = self.ctx, self.name
        record.messages[name] = sel.num_arcs
        ctx.charge_row_alltoallv(
            name,
            np.bincount(sel.rank, minlength=ctx.num_ranks),
            ledger,
            message_bytes=message_bytes,
        )
        recv_rank = self.owner_of_dst(sel.dst, sel.rank)
        ctx.charge_receiver_kernel(name, recv_rank, ledger, "pull_recv")


@FIFTEEND_KERNELS.register("H2L")
class H2LKernel(_RowMessageKernel):
    def owner_of_dst(self, dst, sender_rank):
        return self.ctx.mesh.owner_of(dst, self.ctx.num_vertices)

    def charge_pull_prereq(self, ledger, active, visited):
        # Unvisited-L state of each row, allgathered within the row
        # (bitmap or sparse IDs, whichever is cheaper on the wire).
        ctx = self.ctx
        unvisited_l = int(np.count_nonzero(~visited & ctx.masks["L"]))
        row_bits = ctx.block_bytes * 8 * ctx.mesh.cols
        recv = ctx.sync_bytes(row_bits, -(-unvisited_l // ctx.mesh.rows))
        intra, inter = ctx.split_bytes(recv, ctx.split_row)
        ledger.charge_collective(
            self.name,
            CollectiveKind.ALLGATHER,
            participants=ctx.mesh.cols,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=recv * ctx.mesh.cols,
        )

    def charge_pull_prereq_lanes(self, ledger, lanes, group_lanes):
        # Same row allgather, but one exchange ships every lane's
        # unvisited-L bits: lane-word bitmaps or (id, lane-word) entries.
        ctx = self.ctx
        cand = (~lanes.visited & group_lanes) != 0
        unvisited_l = int(np.count_nonzero(cand & ctx.masks["L"]))
        row_bits = ctx.block_bytes * 8 * ctx.mesh.cols
        recv = ctx.sync_bytes_lanes(
            row_bits, -(-unvisited_l // ctx.mesh.rows), lanes.num_lanes
        )
        intra, inter = ctx.split_bytes(recv, ctx.split_row)
        ledger.charge_collective(
            self.name,
            CollectiveKind.ALLGATHER,
            participants=ctx.mesh.cols,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=recv * ctx.mesh.cols,
        )


@FIFTEEND_KERNELS.register("L2H")
class L2HKernel(_RowMessageKernel):
    def owner_of_dst(self, dst, sender_rank):
        # Messages go to the intersection rank (sender's row, the H
        # vertex's EH-space column) where the column delegate lives.
        ctx = self.ctx
        sender_row = ctx.mesh.row_of(np.asarray(sender_rank, dtype=np.int64))
        return sender_row * ctx.mesh.cols + ctx.part.eh_col[dst]


@FIFTEEND_KERNELS.register("L2L")
class L2LKernel(_FifteenDKernel):
    """Plain-1D light arcs: two-stage forwarded push, query/reply pull."""

    def push_seconds(self, per_rank, active):
        ctx = self.ctx
        return ctx.kernel_time(int(per_rank.max()), ctx.message_rate())

    def pull_rate(self):
        # A program pull over 1D light arcs generates query/reply
        # messages (no local bitmap to scan), so the sweep is priced at
        # the message-generation rate like the native L2L pull.
        return self.ctx.message_rate()

    def route_push(self, sel, ledger, record):
        # Two-stage forwarding through the intersection rank of the
        # source's column and the destination's row (§4.4).
        ctx = self.ctx
        record.messages["L2L"] = sel.num_arcs
        o_dst = ctx.mesh.owner_of(sel.dst, ctx.num_vertices)
        ctx.charge_l2l_alltoallv(sel.rank, o_dst, ledger)
        ctx.charge_receiver_kernel("L2L", o_dst, ledger, "push_recv")

    def route_push_lanes(self, sel, ledger, record):
        ctx = self.ctx
        record.messages["L2L"] = record.messages.get("L2L", 0) + sel.num_arcs
        o_dst = ctx.mesh.owner_of(sel.dst, ctx.num_vertices)
        ctx.charge_l2l_alltoallv(
            sel.rank, o_dst, ledger, message_bytes=LANE_MESSAGE_BYTES
        )
        ctx.charge_receiver_kernel("L2L", o_dst, ledger, "push_recv")

    def route_program_push(self, sel, ledger, record, message_bytes):
        ctx = self.ctx
        record.messages["L2L"] = sel.num_arcs
        o_dst = ctx.mesh.owner_of(sel.dst, ctx.num_vertices)
        ctx.charge_l2l_alltoallv(
            sel.rank, o_dst, ledger, message_bytes=message_bytes
        )
        ctx.charge_receiver_kernel("L2L", o_dst, ledger, "push_recv")

    def route_program_pull(self, sel, ledger, record, message_bytes):
        # Query/reply economics as in BFS pull: each pulled contribution
        # costs the two-stage query plus the value-carrying reply.
        ctx = self.ctx
        record.messages["L2L"] = 2 * sel.num_arcs
        o_peer = ctx.mesh.owner_of(sel.src, ctx.num_vertices)
        ctx.charge_l2l_alltoallv(sel.rank, o_peer, ledger)
        ctx.charge_receiver_kernel("L2L", o_peer, ledger, "pull_query")
        ctx.charge_l2l_alltoallv(
            o_peer, sel.rank, ledger, message_bytes=message_bytes
        )
        ctx.charge_receiver_kernel("L2L", sel.rank, ledger, "pull_reply")

    def body_spec(self):
        return KernelBodySpec(component=self.comp, pull_kind="query")

    def pull_body(self, active, visited):
        # Scanning unvisited local sources is the destination-side pull
        # view (see :meth:`commit_pull`); no early exit.
        return self.comp.push_select(~visited)

    def lanes_pull_body(self, group_lanes, lanes):
        group = np.uint64(group_lanes)
        return self.comp.push_select((~lanes.visited & group) != 0)

    def commit_pull(self, sel, active, visited, ledger, record):
        """Bottom-up L2L via batched query/reply messages.

        By edge symmetry, the arcs stored at ``owner(v)`` with source ``v``
        are exactly v's undirected incidence, so scanning unvisited local
        sources is the destination-side pull view.  Each scanned arc costs
        a query to the neighbor's owner plus a reply — twice the push
        message size per arc, which is why pull only wins once the
        unvisited population is well below the active one (the
        ``cross_pull_bias`` economics).  Batching is why "1D partitioning
        methods have to drop or limit the early exit" (§2.1.2) — every
        arc of an unvisited vertex is queried.
        """
        ctx = self.ctx
        per_rank = sel.per_rank(ctx.num_ranks)
        record.scanned_arcs["L2L"] = sel.num_arcs
        seconds = ctx.kernel_time(int(per_rank.max()), ctx.message_rate())
        ledger.charge_compute("L2L", "pull:L2L", per_rank, seconds)
        if sel.num_arcs:
            record.messages["L2L"] = 2 * sel.num_arcs
            o_peer = ctx.mesh.owner_of(sel.dst, ctx.num_vertices)
            # query path (two-stage forwarding) and the reply back.
            ctx.charge_l2l_alltoallv(sel.rank, o_peer, ledger)
            ctx.charge_receiver_kernel("L2L", o_peer, ledger, "pull_query")
            ctx.charge_l2l_alltoallv(o_peer, sel.rank, ledger)
            ctx.charge_receiver_kernel("L2L", sel.rank, ledger, "pull_reply")
        hits = active[sel.dst]
        if not np.any(hits):
            return EMPTY_ACTIVATION
        v_h, u_h = sel.src[hits], sel.dst[hits]
        uniq, first = np.unique(v_h, return_index=True)
        return uniq, u_h[first]

    def commit_pull_lanes(self, sel, group_lanes, lanes, ledger, record):
        """Batched query/reply L2L pull: one query covers every lane in
        which the source is still unvisited; lane ``l``'s hits are the
        arcs whose source carries the candidate bit and whose neighbor
        carries the active bit — the sequential rule per lane."""
        ctx = self.ctx
        group = np.uint64(group_lanes)
        cand_bits = ~lanes.visited & group
        per_rank = sel.per_rank(ctx.num_ranks)
        record.scanned_arcs["L2L"] = (
            record.scanned_arcs.get("L2L", 0) + sel.num_arcs
        )
        seconds = ctx.kernel_time(int(per_rank.max()), ctx.message_rate())
        ledger.charge_compute("L2L", "pull:L2L", per_rank, seconds)
        if sel.num_arcs:
            record.messages["L2L"] = (
                record.messages.get("L2L", 0) + 2 * sel.num_arcs
            )
            o_peer = ctx.mesh.owner_of(sel.dst, ctx.num_vertices)
            ctx.charge_l2l_alltoallv(
                sel.rank, o_peer, ledger, message_bytes=LANE_MESSAGE_BYTES
            )
            ctx.charge_receiver_kernel("L2L", o_peer, ledger, "pull_query")
            ctx.charge_l2l_alltoallv(
                o_peer, sel.rank, ledger, message_bytes=LANE_MESSAGE_BYTES
            )
            ctx.charge_receiver_kernel("L2L", sel.rank, ledger, "pull_reply")
        hit_bits = cand_bits[sel.src] & (lanes.active & group)[sel.dst]
        if not hit_bits.any():
            return []
        updates = []
        for lane in iter_lanes(group):
            mask = (hit_bits & lane_bit(lane)) != 0
            if not mask.any():
                continue
            uniq, first = np.unique(sel.src[mask], return_index=True)
            updates.append((lane, uniq, sel.dst[mask][first]))
        return updates


def build_fifteend_kernels(ctx: FifteenDContext, order) -> dict[str, ComponentKernel]:
    """Instantiate the registry's kernels over a partition's components,
    in scheduler execution order (densest first)."""
    return {
        name: FIFTEEND_KERNELS[name](ctx, ctx.part.components[name])
        for name in order
    }
